#!/usr/bin/env bash
# The repository's CI gate. Run from the workspace root:
#
#   ./scripts/ci.sh
#
# Everything is offline — no crates are fetched. TSN_SWEEP_WORKERS and
# TSN_BENCH_MS can be exported beforehand to pin worker counts / bench
# budgets on constrained machines.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --all-targets
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --check

# Docs must build warning-free (broken intra-doc links, missing docs).
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace

# HDL machine check: parse the committed generated_hdl*/ trees and the
# freshly emitted preset bundles into the structural IR and run the full
# lint rule set (width mismatches, unused ports, undeclared identifiers,
# address-width violations, ...). Any finding is an error — shipped RTL
# lints clean by invariant.
run cargo run -q --release -p tsn-builder-suite --bin hdl_lint

# Fault-sweep smoke: the full intensity grid on a short horizon. The
# binary itself asserts monotone deadline-miss growth and that all three
# fault families fired, so a broken fault model fails CI here.
run cargo run -q --release -p tsn-experiments --bin fault_sweep -- --smoke

# Differential-testing smoke: replay the committed verify/corpus/ (seed
# pins + shrunk regressions), then run every cross-layer oracle and
# property on fresh random cases within the TSN_VERIFY_MS budget. The
# hdl-cost-agreement pin alone replays 128 cases x 8 randomized
# ResourceConfigs = 1024 parse/lint/cost checks against tsn-resource.
# Any failure is shrunk to a minimal case, persisted into verify/corpus/
# and printed with its reproduction command.
TSN_VERIFY_MS="${TSN_VERIFY_MS:-4000}" \
    run cargo run -q --release -p tsn-verify --bin verify -- --smoke

# Bench smoke: a tiny TSN_BENCH_MS budget proves the harness and every
# scenario still run end to end, and gates on the recorded summaries:
#   - the smoke's geomean speedup vs the b8cca7c baselines in
#     BENCH_2.json and the serial-path (shards=1) geomean vs the pinned
#     serial baselines in BENCH_5.json must both stay >= 0.95x;
#   - the sharded engine's shards=2 geomean vs the same-run serial
#     median must stay >= 1.0x on multi-core hosts, or >= 0.5x on a
#     single CPU (there the epoch protocol is pure overhead — the gate
#     bounds that overhead at 2x instead of demanding a speedup);
#   - every epoch message must replace at least 5 per-event exchanges
#     (released + replayed events per coordinator message), pinning the
#     batched protocol against a per-event regression.
# The tracked (full-budget) JSON files are restored afterwards so a
# smoke run never overwrites the recorded numbers.
tracked_bench2="$(mktemp)"
tracked_bench5="$(mktemp)"
cp BENCH_2.json "$tracked_bench2"
cp BENCH_5.json "$tracked_bench5"
TSN_BENCH_MS="${TSN_BENCH_MS:-25}" run cargo bench -q -p tsn-bench --bench simulation
smoke_geomean2="$(sed -n 's/.*"geomean_speedup": \([0-9.]*\).*/\1/p' BENCH_2.json)"
smoke_geomean5="$(sed -n 's/.*"serial_geomean_vs_baseline": \([0-9.]*\).*/\1/p' BENCH_5.json)"
smoke_shards2="$(sed -n 's/.*"shards2_geomean_vs_serial": \([0-9.]*\).*/\1/p' BENCH_5.json)"
smoke_reduction="$(sed -n 's/.*"message_reduction_vs_per_event_min": \([0-9.]*\).*/\1/p' BENCH_5.json)"
cp "$tracked_bench2" BENCH_2.json
cp "$tracked_bench5" BENCH_5.json
rm -f "$tracked_bench2" "$tracked_bench5"
if [ -z "$smoke_geomean2" ] || [ -z "$smoke_geomean5" ] \
    || [ -z "$smoke_shards2" ] || [ -z "$smoke_reduction" ]; then
    echo "bench smoke wrote incomplete summary fields" >&2
    exit 1
fi
echo "==> bench smoke geomean ${smoke_geomean2}x vs b8cca7c baselines (gate: >= 0.95)"
if ! awk -v g="$smoke_geomean2" 'BEGIN { exit !(g >= 0.95) }'; then
    echo "bench smoke geomean ${smoke_geomean2}x regressed below 0.95x baseline" >&2
    exit 1
fi
echo "==> shard-bench serial-path geomean ${smoke_geomean5}x vs pinned serial baselines (gate: >= 0.95)"
if ! awk -v g="$smoke_geomean5" 'BEGIN { exit !(g >= 0.95) }'; then
    echo "shard bench serial path ${smoke_geomean5}x regressed below 0.95x baseline" >&2
    exit 1
fi
cores="$(nproc 2>/dev/null || echo 1)"
if [ "$cores" -ge 2 ]; then
    shards2_floor="1.0"
else
    shards2_floor="0.5"
fi
echo "==> shards=2 geomean ${smoke_shards2}x vs same-run serial on ${cores} CPU(s) (gate: >= ${shards2_floor})"
if ! awk -v g="$smoke_shards2" -v f="$shards2_floor" 'BEGIN { exit !(g >= f) }'; then
    echo "sharded engine at shards=2 is ${smoke_shards2}x serial, below the ${shards2_floor}x floor" >&2
    exit 1
fi
echo "==> epoch batching: ${smoke_reduction} work units per coordinator message (gate: >= 5)"
if ! awk -v g="$smoke_reduction" 'BEGIN { exit !(g >= 5) }'; then
    echo "message reduction ${smoke_reduction}x fell below 5x — the epoch protocol is degrading toward per-event exchange" >&2
    exit 1
fi

# Zero-allocation proof: the counting-allocator test asserts the serial
# event loop's steady state performs no heap allocation after warmup on
# the large-plant workload. Release mode, on its own line so a hot-path
# allocation regression is named here rather than buried in the
# workspace test wall.
run cargo test -q --release -p tsn-sim --test zero_alloc

# Scale smoke: the 10k-flow cases of the scale bench — the plant
# throughput case (the 100k and opt-in 1M cases stay full-budget-only)
# plus the reconfigure-vs-rebuild case the same filter now selects. The
# throughput case asserts byte-identical reports across event-queue
# backends and the sharded engine and a < 1 GiB peak RSS; the reconfig
# case asserts the reconfigure-path report digests identically to a
# from-scratch build. The gates below add an absolute throughput floor,
# a smoke RSS ceiling, the events/sec geomeans vs the pinned baselines
# in BENCH_7.json / BENCH_10.json (same >= 0.95x rule as BENCH_2), and
# an incremental-reconfigure speedup floor: >= 2x over from-scratch
# rebuild at smoke scale (the recorded full-budget 100k case clears
# >= 5x; 10k rebuilds are small enough that fixed per-instantiation
# costs compress the ratio). Both tracked full-budget JSON files are
# restored afterwards.
tracked_bench7="$(mktemp)"
tracked_bench10="$(mktemp)"
cp BENCH_7.json "$tracked_bench7"
cp BENCH_10.json "$tracked_bench10"
run cargo bench -q -p tsn-bench --bench scale -- flows/10k
scale_geomean="$(sed -n 's/.*"events_per_sec_geomean_vs_baseline": \([0-9.]*\).*/\1/p' BENCH_7.json)"
scale_eps="$(sed -n 's/.*"events_per_sec": \([0-9.]*\).*/\1/p' BENCH_7.json | head -n1)"
scale_rss="$(sed -n 's/.*"peak_rss_bytes": \([0-9]*\).*/\1/p' BENCH_7.json | head -n1)"
reconfig_geomean="$(sed -n 's/.*"events_per_sec_geomean_vs_baseline": \([0-9.]*\).*/\1/p' BENCH_10.json)"
reconfig_speedup="$(sed -n 's/.*"reconfigure_speedup": \([0-9.]*\).*/\1/p' BENCH_10.json | head -n1)"
cp "$tracked_bench7" BENCH_7.json
cp "$tracked_bench10" BENCH_10.json
rm -f "$tracked_bench7" "$tracked_bench10"
if [ -z "$scale_geomean" ] || [ -z "$scale_eps" ] \
    || [ -z "$reconfig_geomean" ] || [ -z "$reconfig_speedup" ]; then
    echo "scale smoke wrote incomplete summary fields" >&2
    exit 1
fi
echo "==> scale smoke: ${scale_eps} events/sec at 10k flows (floor: 300000)"
if ! awk -v e="$scale_eps" 'BEGIN { exit !(e >= 300000) }'; then
    echo "scale smoke throughput ${scale_eps} events/sec fell below the 300k floor" >&2
    exit 1
fi
if [ -n "$scale_rss" ]; then
    echo "==> scale smoke: peak RSS $((scale_rss >> 20))MiB at 10k flows (ceiling: 512MiB)"
    if [ "$scale_rss" -gt 536870912 ]; then
        echo "scale smoke peak RSS ${scale_rss} bytes breached the 512 MiB ceiling" >&2
        exit 1
    fi
fi
echo "==> scale smoke geomean ${scale_geomean}x vs pinned events/sec baselines (gate: >= 0.95)"
if ! awk -v g="$scale_geomean" 'BEGIN { exit !(g >= 0.95) }'; then
    echo "scale bench geomean ${scale_geomean}x regressed below 0.95x baseline" >&2
    exit 1
fi
echo "==> reconfig smoke: ${reconfig_speedup}x incremental reconfigure vs rebuild at 10k flows (floor: 2)"
if ! awk -v s="$reconfig_speedup" 'BEGIN { exit !(s >= 2) }'; then
    echo "incremental reconfigure is only ${reconfig_speedup}x a from-scratch rebuild, below the 2x smoke floor" >&2
    exit 1
fi
echo "==> reconfig smoke geomean ${reconfig_geomean}x vs pinned events/sec baselines (gate: >= 0.95)"
if ! awk -v g="$reconfig_geomean" 'BEGIN { exit !(g >= 0.95) }'; then
    echo "reconfigure-path bench geomean ${reconfig_geomean}x regressed below 0.95x baseline" >&2
    exit 1
fi

# DSE smoke: the design-space-search service answers its three
# deterministic 100-query family batches (20 unique queries x 5 labels
# each) within the TSN_DSE_MS budget, then the gates below check the
# queries/sec geomean vs the pinned baselines in BENCH_9.json (same
# >= 0.95x rule as the other benches) and that the intra-batch dedup
# actually happened (answer-cache hit rate exactly 0.8 by construction).
# The dse-optimality corpus pin (64 randomized queries re-checked in
# both optimality directions) already replayed in the verify step above.
# The tracked full-budget BENCH_9.json is restored afterwards.
tracked_bench9="$(mktemp)"
cp BENCH_9.json "$tracked_bench9"
TSN_DSE_MS="${TSN_DSE_MS:-2000}" run cargo run -q --release -p tsn-dse --bin dse -- --smoke
dse_geomean="$(sed -n 's/.*"queries_per_sec_geomean_vs_baseline": \([0-9.]*\).*/\1/p' BENCH_9.json)"
dse_hit_rate="$(sed -n 's/.*"answers_hit_rate": \([0-9.]*\).*/\1/p' BENCH_9.json | head -n1)"
cp "$tracked_bench9" BENCH_9.json
rm -f "$tracked_bench9"
if [ -z "$dse_geomean" ] || [ -z "$dse_hit_rate" ]; then
    echo "dse smoke wrote incomplete summary fields" >&2
    exit 1
fi
echo "==> dse smoke geomean ${dse_geomean}x vs pinned queries/sec baselines (gate: >= 0.95)"
if ! awk -v g="$dse_geomean" 'BEGIN { exit !(g >= 0.95) }'; then
    echo "dse smoke geomean ${dse_geomean}x regressed below 0.95x baseline" >&2
    exit 1
fi
echo "==> dse smoke answer-cache hit rate ${dse_hit_rate} (expected: 0.8)"
if ! awk -v h="$dse_hit_rate" 'BEGIN { exit !(h >= 0.79 && h <= 0.81) }'; then
    echo "dse answer-cache hit rate ${dse_hit_rate} is off the designed 0.8 duplication ratio — fingerprint dedup is broken" >&2
    exit 1
fi

echo "CI gate passed."
