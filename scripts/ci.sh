#!/usr/bin/env bash
# The repository's CI gate. Run from the workspace root:
#
#   ./scripts/ci.sh
#
# Everything is offline — no crates are fetched. TSN_SWEEP_WORKERS and
# TSN_BENCH_MS can be exported beforehand to pin worker counts / bench
# budgets on constrained machines.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --all-targets
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --check

# Docs must build warning-free (broken intra-doc links, missing docs).
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace

# Bench smoke: a tiny TSN_BENCH_MS budget just proves the harness and
# every scenario still run end to end (and refreshes BENCH_2.json).
TSN_BENCH_MS="${TSN_BENCH_MS:-25}" run cargo bench -q -p tsn-bench --bench simulation

echo "CI gate passed."
