#!/usr/bin/env bash
# The repository's CI gate. Run from the workspace root:
#
#   ./scripts/ci.sh
#
# Everything is offline — no crates are fetched. TSN_SWEEP_WORKERS and
# TSN_BENCH_MS can be exported beforehand to pin worker counts / bench
# budgets on constrained machines.
set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --all-targets
run cargo test -q --workspace
run cargo clippy --workspace --all-targets -- -D warnings
run cargo fmt --check

echo "CI gate passed."
