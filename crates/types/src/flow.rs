//! TS / RC / BE flow specifications.
//!
//! These are the *application requirements* side of the paper: a scenario is
//! described by its topology plus a set of flows with known periods,
//! deadlines, sizes and endpoints (Section II.A: "the features in
//! TSN-related domains are pre-determined and simple"). The builder crate
//! derives resource parameters from a [`FlowSet`].

use crate::error::{TsnError, TsnResult};
use crate::frame::{MAX_FRAME_BYTES, MIN_FRAME_BYTES};
use crate::ids::{FlowId, NodeId};
use crate::time::{DataRate, SimDuration};

/// A periodic time-sensitive flow (highest priority).
///
/// TS packets are generated every `period`; each must reach the listener
/// within `deadline` of its injection, with ultra-low jitter and zero loss.
///
/// # Example
///
/// ```
/// use tsn_types::{TsFlowSpec, FlowId, NodeId, SimDuration};
///
/// let flow = TsFlowSpec::new(
///     FlowId::new(0),
///     NodeId::new(0),
///     NodeId::new(3),
///     SimDuration::from_millis(10), // period
///     SimDuration::from_millis(2),  // deadline
///     64,                           // frame bytes
/// )?;
/// assert_eq!(flow.period(), SimDuration::from_millis(10));
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TsFlowSpec {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    period: SimDuration,
    deadline: SimDuration,
    frame_bytes: u32,
}

impl TsFlowSpec {
    /// Creates a TS flow spec, validating all parameters.
    ///
    /// # Errors
    ///
    /// * [`TsnError::InvalidParameter`] if `period` or `deadline` is zero,
    ///   or `deadline > period` is violated the other way round (a deadline
    ///   longer than the period is allowed; a zero one is not).
    /// * [`TsnError::InvalidFrameSize`] if `frame_bytes` is outside 64..=1522.
    pub fn new(
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        period: SimDuration,
        deadline: SimDuration,
        frame_bytes: u32,
    ) -> TsnResult<Self> {
        if period.is_zero() {
            return Err(TsnError::invalid_parameter("period", "must be non-zero"));
        }
        if deadline.is_zero() {
            return Err(TsnError::invalid_parameter("deadline", "must be non-zero"));
        }
        if !(MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&frame_bytes) {
            return Err(TsnError::InvalidFrameSize(frame_bytes));
        }
        Ok(TsFlowSpec {
            id,
            src,
            dst,
            period,
            deadline,
            frame_bytes,
        })
    }

    /// Flow identifier.
    #[must_use]
    pub fn id(&self) -> FlowId {
        self.id
    }

    /// Talker node.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Listener node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Packet generation period.
    #[must_use]
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// End-to-end deadline, measured from injection.
    #[must_use]
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// Frame size on the wire, in bytes.
    #[must_use]
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }

    /// The average bandwidth the flow consumes.
    #[must_use]
    pub fn average_rate(&self) -> DataRate {
        let bits = u64::from(self.frame_bytes) * 8;
        // bits per period -> bits per second.
        DataRate::bps((bits as u128 * 1_000_000_000 / self.period.as_nanos() as u128) as u64)
    }
}

/// A rate-constrained flow (medium priority), shaped by a credit-based
/// shaper at each hop.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RcFlowSpec {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    reserved_rate: DataRate,
    frame_bytes: u32,
}

impl RcFlowSpec {
    /// Creates an RC flow spec.
    ///
    /// # Errors
    ///
    /// * [`TsnError::InvalidParameter`] if `reserved_rate` is zero.
    /// * [`TsnError::InvalidFrameSize`] if `frame_bytes` is outside 64..=1522.
    pub fn new(
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        reserved_rate: DataRate,
        frame_bytes: u32,
    ) -> TsnResult<Self> {
        if reserved_rate.is_zero() {
            return Err(TsnError::invalid_parameter(
                "reserved_rate",
                "must be non-zero",
            ));
        }
        if !(MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&frame_bytes) {
            return Err(TsnError::InvalidFrameSize(frame_bytes));
        }
        Ok(RcFlowSpec {
            id,
            src,
            dst,
            reserved_rate,
            frame_bytes,
        })
    }

    /// Flow identifier.
    #[must_use]
    pub fn id(&self) -> FlowId {
        self.id
    }

    /// Talker node.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Listener node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Bandwidth reserved for the flow (the shaper's `idleSlope`).
    #[must_use]
    pub fn reserved_rate(&self) -> DataRate {
        self.reserved_rate
    }

    /// Frame size on the wire, in bytes.
    #[must_use]
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }
}

/// A best-effort flow (lowest priority). `offered_rate` is the load the
/// talker tries to inject; the network gives it whatever is left.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BeFlowSpec {
    id: FlowId,
    src: NodeId,
    dst: NodeId,
    offered_rate: DataRate,
    frame_bytes: u32,
}

impl BeFlowSpec {
    /// Creates a BE flow spec.
    ///
    /// # Errors
    ///
    /// * [`TsnError::InvalidParameter`] if `offered_rate` is zero.
    /// * [`TsnError::InvalidFrameSize`] if `frame_bytes` is outside 64..=1522.
    pub fn new(
        id: FlowId,
        src: NodeId,
        dst: NodeId,
        offered_rate: DataRate,
        frame_bytes: u32,
    ) -> TsnResult<Self> {
        if offered_rate.is_zero() {
            return Err(TsnError::invalid_parameter(
                "offered_rate",
                "must be non-zero",
            ));
        }
        if !(MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&frame_bytes) {
            return Err(TsnError::InvalidFrameSize(frame_bytes));
        }
        Ok(BeFlowSpec {
            id,
            src,
            dst,
            offered_rate,
            frame_bytes,
        })
    }

    /// Flow identifier.
    #[must_use]
    pub fn id(&self) -> FlowId {
        self.id
    }

    /// Talker node.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Listener node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// The load the talker offers.
    #[must_use]
    pub fn offered_rate(&self) -> DataRate {
        self.offered_rate
    }

    /// Frame size on the wire, in bytes.
    #[must_use]
    pub fn frame_bytes(&self) -> u32 {
        self.frame_bytes
    }
}

/// Any of the three flow kinds.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FlowSpec {
    /// Time-sensitive flow.
    Ts(TsFlowSpec),
    /// Rate-constrained flow.
    Rc(RcFlowSpec),
    /// Best-effort flow.
    Be(BeFlowSpec),
}

impl FlowSpec {
    /// Flow identifier.
    #[must_use]
    pub fn id(&self) -> FlowId {
        match self {
            FlowSpec::Ts(f) => f.id(),
            FlowSpec::Rc(f) => f.id(),
            FlowSpec::Be(f) => f.id(),
        }
    }

    /// Talker node.
    #[must_use]
    pub fn src(&self) -> NodeId {
        match self {
            FlowSpec::Ts(f) => f.src(),
            FlowSpec::Rc(f) => f.src(),
            FlowSpec::Be(f) => f.src(),
        }
    }

    /// Listener node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        match self {
            FlowSpec::Ts(f) => f.dst(),
            FlowSpec::Rc(f) => f.dst(),
            FlowSpec::Be(f) => f.dst(),
        }
    }

    /// Frame size on the wire, in bytes.
    #[must_use]
    pub fn frame_bytes(&self) -> u32 {
        match self {
            FlowSpec::Ts(f) => f.frame_bytes(),
            FlowSpec::Rc(f) => f.frame_bytes(),
            FlowSpec::Be(f) => f.frame_bytes(),
        }
    }

    /// Traffic class of the flow.
    #[must_use]
    pub fn class(&self) -> crate::TrafficClass {
        match self {
            FlowSpec::Ts(_) => crate::TrafficClass::TimeSensitive,
            FlowSpec::Rc(_) => crate::TrafficClass::RateConstrained,
            FlowSpec::Be(_) => crate::TrafficClass::BestEffort,
        }
    }

    /// The TS spec, if this is a TS flow.
    #[must_use]
    pub fn as_ts(&self) -> Option<&TsFlowSpec> {
        match self {
            FlowSpec::Ts(f) => Some(f),
            _ => None,
        }
    }

    /// The RC spec, if this is an RC flow.
    #[must_use]
    pub fn as_rc(&self) -> Option<&RcFlowSpec> {
        match self {
            FlowSpec::Rc(f) => Some(f),
            _ => None,
        }
    }

    /// The BE spec, if this is a BE flow.
    #[must_use]
    pub fn as_be(&self) -> Option<&BeFlowSpec> {
        match self {
            FlowSpec::Be(f) => Some(f),
            _ => None,
        }
    }
}

impl From<TsFlowSpec> for FlowSpec {
    fn from(f: TsFlowSpec) -> Self {
        FlowSpec::Ts(f)
    }
}

impl From<RcFlowSpec> for FlowSpec {
    fn from(f: RcFlowSpec) -> Self {
        FlowSpec::Rc(f)
    }
}

impl From<BeFlowSpec> for FlowSpec {
    fn from(f: BeFlowSpec) -> Self {
        FlowSpec::Be(f)
    }
}

/// A collection of flows describing one application scenario.
///
/// # Example
///
/// ```
/// use tsn_types::{FlowSet, TsFlowSpec, FlowId, NodeId, SimDuration};
///
/// let mut set = FlowSet::new();
/// for i in 0..4 {
///     set.push(TsFlowSpec::new(
///         FlowId::new(i),
///         NodeId::new(0),
///         NodeId::new(1),
///         SimDuration::from_millis(if i % 2 == 0 { 10 } else { 4 }),
///         SimDuration::from_millis(2),
///         64,
///     )?.into());
/// }
/// assert_eq!(set.len(), 4);
/// assert_eq!(set.ts_count(), 4);
/// // Scheduling cycle = lcm(10ms, 4ms) = 20ms (Section III.C guideline 2).
/// assert_eq!(set.scheduling_cycle(), Some(SimDuration::from_millis(20)));
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Default, Clone, PartialEq)]
pub struct FlowSet {
    flows: Vec<FlowSpec>,
}

impl FlowSet {
    /// Creates an empty flow set.
    #[must_use]
    pub fn new() -> Self {
        FlowSet::default()
    }

    /// Adds a flow.
    pub fn push(&mut self, flow: FlowSpec) {
        self.flows.push(flow);
    }

    /// Number of flows of all classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// `true` if the set holds no flows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Iterates over all flows.
    pub fn iter(&self) -> core::slice::Iter<'_, FlowSpec> {
        self.flows.iter()
    }

    /// Iterates over the TS flows only.
    pub fn ts_flows(&self) -> impl Iterator<Item = &TsFlowSpec> {
        self.flows.iter().filter_map(FlowSpec::as_ts)
    }

    /// Iterates over the RC flows only.
    pub fn rc_flows(&self) -> impl Iterator<Item = &RcFlowSpec> {
        self.flows.iter().filter_map(FlowSpec::as_rc)
    }

    /// Iterates over the BE flows only.
    pub fn be_flows(&self) -> impl Iterator<Item = &BeFlowSpec> {
        self.flows.iter().filter_map(FlowSpec::as_be)
    }

    /// Number of TS flows.
    #[must_use]
    pub fn ts_count(&self) -> usize {
        self.ts_flows().count()
    }

    /// Number of RC flows.
    #[must_use]
    pub fn rc_count(&self) -> usize {
        self.rc_flows().count()
    }

    /// Number of BE flows.
    #[must_use]
    pub fn be_count(&self) -> usize {
        self.be_flows().count()
    }

    /// Looks up a flow by id.
    #[must_use]
    pub fn get(&self, id: FlowId) -> Option<&FlowSpec> {
        self.flows.iter().find(|f| f.id() == id)
    }

    /// The scheduling cycle: least common multiple of all TS flow periods
    /// (Section III.C guideline 2), or `None` if there are no TS flows.
    #[must_use]
    pub fn scheduling_cycle(&self) -> Option<SimDuration> {
        self.ts_flows()
            .map(TsFlowSpec::period)
            .reduce(|a, b| a.lcm(b))
    }

    /// The tightest TS deadline, or `None` if there are no TS flows.
    #[must_use]
    pub fn min_deadline(&self) -> Option<SimDuration> {
        self.ts_flows().map(TsFlowSpec::deadline).min()
    }

    /// The largest frame size in the set, or `None` if empty.
    #[must_use]
    pub fn max_frame_bytes(&self) -> Option<u32> {
        self.flows.iter().map(FlowSpec::frame_bytes).max()
    }

    /// Total average bandwidth of the TS flows.
    #[must_use]
    pub fn ts_aggregate_rate(&self) -> DataRate {
        DataRate::bps(
            self.ts_flows()
                .map(|f| f.average_rate().bits_per_sec())
                .sum(),
        )
    }
}

impl FromIterator<FlowSpec> for FlowSet {
    fn from_iter<I: IntoIterator<Item = FlowSpec>>(iter: I) -> Self {
        FlowSet {
            flows: iter.into_iter().collect(),
        }
    }
}

impl Extend<FlowSpec> for FlowSet {
    fn extend<I: IntoIterator<Item = FlowSpec>>(&mut self, iter: I) {
        self.flows.extend(iter);
    }
}

impl<'a> IntoIterator for &'a FlowSet {
    type Item = &'a FlowSpec;
    type IntoIter = core::slice::Iter<'a, FlowSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.flows.iter()
    }
}

impl IntoIterator for FlowSet {
    type Item = FlowSpec;
    type IntoIter = std::vec::IntoIter<FlowSpec>;
    fn into_iter(self) -> Self::IntoIter {
        self.flows.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(id: u32, period_ms: u64) -> TsFlowSpec {
        TsFlowSpec::new(
            FlowId::new(id),
            NodeId::new(0),
            NodeId::new(1),
            SimDuration::from_millis(period_ms),
            SimDuration::from_millis(2),
            64,
        )
        .expect("valid ts flow")
    }

    #[test]
    fn ts_validation() {
        assert!(TsFlowSpec::new(
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            SimDuration::ZERO,
            SimDuration::from_millis(1),
            64
        )
        .is_err());
        assert!(TsFlowSpec::new(
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            SimDuration::from_millis(1),
            SimDuration::ZERO,
            64
        )
        .is_err());
        assert!(TsFlowSpec::new(
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
            4000
        )
        .is_err());
    }

    #[test]
    fn rc_and_be_validation() {
        assert!(RcFlowSpec::new(
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            DataRate::ZERO,
            64
        )
        .is_err());
        assert!(BeFlowSpec::new(
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            DataRate::mbps(10),
            63
        )
        .is_err());
        assert!(RcFlowSpec::new(
            FlowId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            DataRate::mbps(10),
            1024
        )
        .is_ok());
    }

    #[test]
    fn ts_average_rate() {
        // 64 B every 10 ms = 51_200 bps.
        assert_eq!(ts(0, 10).average_rate(), DataRate::bps(51_200));
    }

    #[test]
    fn flow_set_counts_and_accessors() {
        let mut set = FlowSet::new();
        set.push(ts(0, 10).into());
        set.push(
            RcFlowSpec::new(
                FlowId::new(1),
                NodeId::new(0),
                NodeId::new(1),
                DataRate::mbps(100),
                1024,
            )
            .expect("valid rc")
            .into(),
        );
        set.push(
            BeFlowSpec::new(
                FlowId::new(2),
                NodeId::new(0),
                NodeId::new(1),
                DataRate::mbps(300),
                1024,
            )
            .expect("valid be")
            .into(),
        );
        assert_eq!(set.len(), 3);
        assert_eq!((set.ts_count(), set.rc_count(), set.be_count()), (1, 1, 1));
        assert_eq!(set.max_frame_bytes(), Some(1024));
        assert!(set.get(FlowId::new(1)).is_some());
        assert!(set.get(FlowId::new(99)).is_none());
        assert_eq!(
            set.get(FlowId::new(2)).map(FlowSpec::class),
            Some(crate::TrafficClass::BestEffort)
        );
    }

    #[test]
    fn scheduling_cycle_is_lcm_of_periods() {
        let set: FlowSet = [ts(0, 10), ts(1, 4), ts(2, 8)]
            .into_iter()
            .map(FlowSpec::from)
            .collect();
        assert_eq!(set.scheduling_cycle(), Some(SimDuration::from_millis(40)));
        assert_eq!(FlowSet::new().scheduling_cycle(), None);
    }

    #[test]
    fn min_deadline_over_ts_flows() {
        let a = ts(0, 10);
        let b = TsFlowSpec::new(
            FlowId::new(1),
            NodeId::new(0),
            NodeId::new(1),
            SimDuration::from_millis(10),
            SimDuration::from_millis(1),
            64,
        )
        .expect("valid");
        let set: FlowSet = [a, b].into_iter().map(FlowSpec::from).collect();
        assert_eq!(set.min_deadline(), Some(SimDuration::from_millis(1)));
    }

    #[test]
    fn aggregate_ts_rate_sums_flows() {
        let set: FlowSet = (0..4).map(|i| ts(i, 10).into()).collect();
        assert_eq!(set.ts_aggregate_rate(), DataRate::bps(4 * 51_200));
    }

    #[test]
    fn extend_and_into_iter() {
        let mut set = FlowSet::new();
        set.extend([FlowSpec::from(ts(0, 10))]);
        let ids: Vec<FlowId> = (&set).into_iter().map(FlowSpec::id).collect();
        assert_eq!(ids, vec![FlowId::new(0)]);
        let owned: Vec<FlowSpec> = set.into_iter().collect();
        assert_eq!(owned.len(), 1);
    }
}
