//! A dense, `FlowId`-indexed map.
//!
//! Flow identifiers are allocated densely from zero (background flows use
//! a fixed base offset), so a flat slot vector beats a tree or hash map on
//! the simulator's per-frame hot paths: lookups are one bounds check and
//! one index, iteration is in id order (which keeps float aggregation
//! deterministic), and the 100k–1M-flow working set stays contiguous.

use crate::ids::FlowId;
use core::fmt;

/// A map from [`FlowId`] to `T` backed by a dense slot vector.
///
/// Missing entries cost one `Option` discriminant each, which is fine for
/// the near-dense id spaces the workloads produce. Iteration order is
/// ascending flow id.
///
/// # Example
///
/// ```
/// use tsn_types::{FlowId, FlowMap};
///
/// let mut m: FlowMap<u64> = FlowMap::new();
/// m.insert(FlowId::new(3), 30);
/// m.insert(FlowId::new(1), 10);
/// assert_eq!(m.get(FlowId::new(3)), Some(&30));
/// assert_eq!(m.get(FlowId::new(2)), None);
/// assert_eq!(m.len(), 2);
/// let ids: Vec<u32> = m.iter().map(|(id, _)| id.index()).collect();
/// assert_eq!(ids, vec![1, 3]);
/// ```
#[derive(Clone)]
pub struct FlowMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
}

impl<T> FlowMap<T> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        FlowMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty map with room for flow ids `0..capacity` without
    /// reallocating.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        FlowMap {
            slots: Vec::with_capacity(capacity),
            len: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a value, returning the previous one if the flow was
    /// already present.
    pub fn insert(&mut self, flow: FlowId, value: T) -> Option<T> {
        let idx = flow.as_usize();
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Looks up a flow.
    #[must_use]
    pub fn get(&self, flow: FlowId) -> Option<&T> {
        self.slots.get(flow.as_usize())?.as_ref()
    }

    /// Mutable lookup.
    #[must_use]
    pub fn get_mut(&mut self, flow: FlowId) -> Option<&mut T> {
        self.slots.get_mut(flow.as_usize())?.as_mut()
    }

    /// `true` when the flow has an entry.
    #[must_use]
    pub fn contains_key(&self, flow: FlowId) -> bool {
        self.get(flow).is_some()
    }

    /// Removes an entry, returning it if present. The slot stays
    /// allocated (ids are never reused within a run).
    pub fn remove(&mut self, flow: FlowId) -> Option<T> {
        let old = self.slots.get_mut(flow.as_usize())?.take();
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Iterates entries in ascending flow-id order.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| slot.as_ref().map(|v| (FlowId::new(idx as u32), v)))
    }

    /// Iterates values in ascending flow-id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.iter().map(|(id, _)| id)
    }
}

impl<T> Default for FlowMap<T> {
    fn default() -> Self {
        FlowMap::new()
    }
}

// Manual impl: trailing empty slots are representation detail, not state —
// two maps with the same entries must compare equal however they were
// grown.
impl<T: PartialEq> PartialEq for FlowMap<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: fmt::Debug> fmt::Debug for FlowMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T> FromIterator<(FlowId, T)> for FlowMap<T> {
    fn from_iter<I: IntoIterator<Item = (FlowId, T)>>(iter: I) -> Self {
        let mut map = FlowMap::new();
        for (flow, value) in iter {
            map.insert(flow, value);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = FlowMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(FlowId::new(5), "a"), None);
        assert_eq!(m.insert(FlowId::new(5), "b"), Some("a"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(FlowId::new(5)), Some(&"b"));
        assert!(!m.contains_key(FlowId::new(4)));
        assert_eq!(m.remove(FlowId::new(5)), Some("b"));
        assert_eq!(m.remove(FlowId::new(5)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_id_ordered() {
        let m: FlowMap<u32> = [(FlowId::new(7), 70), (FlowId::new(2), 20)]
            .into_iter()
            .collect();
        let pairs: Vec<(u32, u32)> = m.iter().map(|(id, &v)| (id.index(), v)).collect();
        assert_eq!(pairs, vec![(2, 20), (7, 70)]);
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![20, 70]);
    }

    #[test]
    fn equality_ignores_trailing_capacity() {
        let mut a = FlowMap::new();
        a.insert(FlowId::new(1), 1u8);
        let mut b = FlowMap::new();
        b.insert(FlowId::new(1), 1u8);
        b.insert(FlowId::new(100), 2u8);
        b.remove(FlowId::new(100));
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        b.insert(FlowId::new(1), 3u8);
        assert_ne!(a, b);
    }
}
