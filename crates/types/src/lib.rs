//! Core domain types shared by every crate of the TSN-Builder reproduction.
//!
//! The types here mirror the vocabulary of the paper (DAC 2020,
//! *TSN-Builder: Enabling Rapid Customization of Resource-Efficient Switches
//! for Time-Sensitive Networking*):
//!
//! * [`time`] — nanosecond-resolution simulation time ([`SimTime`],
//!   [`SimDuration`]) and link rates ([`DataRate`]); Time-Sensitive
//!   Networking is all about time, so these are newtypes rather than bare
//!   integers.
//! * [`mac`] — Ethernet MAC addresses ([`MacAddr`]).
//! * [`vlan`] — 802.1Q VLAN identifiers ([`VlanId`]) and priority code
//!   points ([`Pcp`]).
//! * [`ids`] — opaque identifiers for nodes, ports, queues, flows, meters
//!   and multicast groups.
//! * [`frame`] — the Ethernet frame model carried through the simulated
//!   switches, together with [`TrafficClass`].
//! * [`flow`] — TS / RC / BE flow specifications with the parameters used
//!   in the paper's evaluation (period, deadline, frame size, path length).
//! * [`flowmap`] — a dense [`FlowId`]-indexed map ([`FlowMap`]) for the
//!   simulator's per-frame hot paths at 100k–1M-flow scale.
//! * [`error`] — the shared [`TsnError`] type.
//!
//! # Example
//!
//! ```
//! use tsn_types::{MacAddr, SimDuration, DataRate, TrafficClass};
//!
//! let rate = DataRate::gbps(1);
//! // Serializing a minimum-size (64 B) frame on 1 Gbps takes 512 ns.
//! assert_eq!(rate.serialization_time(64), SimDuration::from_nanos(512));
//! let mac = MacAddr::new([0x01, 0x00, 0x5e, 0, 0, 1]);
//! assert!(mac.is_multicast());
//! assert_eq!(TrafficClass::TimeSensitive.strict_priority(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod flow;
pub mod flowmap;
pub mod frame;
pub mod ids;
pub mod mac;
pub mod rng;
pub mod time;
pub mod vlan;

pub use error::{TsnError, TsnResult};
pub use flow::{BeFlowSpec, FlowSet, FlowSpec, RcFlowSpec, TsFlowSpec};
pub use flowmap::FlowMap;
pub use frame::{EthernetFrame, FrameBuilder, TrafficClass, ETHERNET_OVERHEAD_BYTES};
pub use ids::{FlowId, McId, MeterId, NodeId, PortId, QueueId};
pub use mac::MacAddr;
pub use rng::SplitMix64;
pub use time::{DataRate, SimDuration, SimTime};
pub use vlan::{Pcp, VlanId};
