//! Nanosecond-resolution simulation time.
//!
//! TSN gate control, CQF slotting and gPTP synchronization all reason about
//! absolute instants and durations with nanosecond granularity. Two newtypes
//! keep instants and durations apart at the type level ([`SimTime`] and
//! [`SimDuration`]), and [`DataRate`] converts frame lengths into
//! serialization delays.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant on the simulated timeline, in nanoseconds since the
/// simulation epoch.
///
/// `SimTime` is a point; [`SimDuration`] is a span. Subtracting two instants
/// yields a duration, and adding a duration to an instant yields an instant —
/// the remaining combinations do not compile, which rules out a family of
/// unit bugs in gate-control arithmetic.
///
/// # Example
///
/// ```
/// use tsn_types::{SimTime, SimDuration};
///
/// let start = SimTime::ZERO + SimDuration::from_micros(10);
/// let end = start + SimDuration::from_micros(5);
/// assert_eq!(end - start, SimDuration::from_micros(5));
/// assert_eq!(end.as_nanos(), 15_000);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for event scheduling.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the epoch.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, truncating.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[must_use]
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[must_use]
    pub const fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(d.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }

    /// The index of the time slot containing this instant, for a slotted
    /// schedule with the given `slot` length starting at the epoch.
    ///
    /// This is the primitive CQF uses to decide which of its queues is
    /// currently enqueuing.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is zero.
    #[must_use]
    pub fn slot_index(self, slot: SimDuration) -> u64 {
        assert!(slot.0 > 0, "slot length must be non-zero");
        self.0 / slot.0
    }

    /// The instant at which the slot containing `self` ends (equivalently,
    /// the start of the next slot).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is zero.
    #[must_use]
    pub fn next_slot_boundary(self, slot: SimDuration) -> SimTime {
        let idx = self.slot_index(slot);
        SimTime((idx + 1) * slot.0)
    }

    /// Offset of this instant inside its slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is zero.
    #[must_use]
    pub fn offset_in_slot(self, slot: SimDuration) -> SimDuration {
        assert!(slot.0 > 0, "slot length must be non-zero");
        SimDuration(self.0 % slot.0)
    }

    /// Rounds this instant *up* to the nearest slot boundary (an instant
    /// already on a boundary is returned unchanged).
    ///
    /// CQF talkers transmit at slot starts; this is the alignment they
    /// apply to their nominal periodic release times.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is zero.
    #[must_use]
    pub fn align_up(self, slot: SimDuration) -> SimTime {
        assert!(slot.0 > 0, "slot length must be non-zero");
        if self.0.is_multiple_of(slot.0) {
            self
        } else {
            self.next_slot_boundary(slot)
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use tsn_types::SimDuration;
///
/// let slot = SimDuration::from_micros(65); // the paper's CQF slot
/// assert_eq!(slot * 4, SimDuration::from_micros(260));
/// assert_eq!(SimDuration::from_millis(10) / slot, 153);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// The length in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The length in microseconds, truncating.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The length in milliseconds, truncating.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The length in (fractional) microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `true` if this duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[must_use]
    pub const fn checked_mul(self, rhs: u64) -> Option<SimDuration> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// Least common multiple of two durations.
    ///
    /// The CQF scheduling cycle is the LCM of all flow periods (Section
    /// III.C of the paper), so this is exposed as a first-class operation.
    ///
    /// # Panics
    ///
    /// Panics if either duration is zero.
    #[must_use]
    pub fn lcm(self, other: SimDuration) -> SimDuration {
        assert!(
            self.0 > 0 && other.0 > 0,
            "lcm of a zero duration is undefined"
        );
        SimDuration(self.0 / gcd(self.0, other.0) * other.0)
    }

    /// Greatest common divisor of two durations.
    #[must_use]
    pub fn gcd(self, other: SimDuration) -> SimDuration {
        SimDuration(gcd(self.0, other.0))
    }

    /// `true` if `other` divides this duration exactly.
    #[must_use]
    pub fn is_multiple_of(self, other: SimDuration) -> bool {
        other.0 != 0 && self.0.is_multiple_of(other.0)
    }
}

const fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0ns")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self * rhs.0)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self`.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// A link or shaper rate in bits per second.
///
/// # Example
///
/// ```
/// use tsn_types::{DataRate, SimDuration};
///
/// let gig = DataRate::gbps(1);
/// assert_eq!(gig.serialization_time(1500), SimDuration::from_nanos(12_000));
/// assert_eq!(DataRate::mbps(100).bits_per_sec(), 100_000_000);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataRate(u64);

impl DataRate {
    /// A zero rate (no bandwidth).
    pub const ZERO: DataRate = DataRate(0);

    /// Creates a rate of `bps` bits per second.
    #[must_use]
    pub const fn bps(bps: u64) -> Self {
        DataRate(bps)
    }

    /// Creates a rate of `kbps` kilobits (10^3 bits) per second.
    #[must_use]
    pub const fn kbps(kbps: u64) -> Self {
        DataRate(kbps * 1_000)
    }

    /// Creates a rate of `mbps` megabits (10^6 bits) per second.
    #[must_use]
    pub const fn mbps(mbps: u64) -> Self {
        DataRate(mbps * 1_000_000)
    }

    /// Creates a rate of `gbps` gigabits (10^9 bits) per second.
    #[must_use]
    pub const fn gbps(gbps: u64) -> Self {
        DataRate(gbps * 1_000_000_000)
    }

    /// The rate in bits per second.
    #[must_use]
    pub const fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// `true` if this rate carries no bandwidth.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The time to serialize `bytes` bytes at this rate, rounded up to the
    /// next nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    #[must_use]
    pub fn serialization_time(self, bytes: u32) -> SimDuration {
        assert!(self.0 > 0, "cannot serialize on a zero-rate link");
        let bits = u64::from(bytes) * 8;
        // ceil(bits * 1e9 / rate) without overflow for realistic inputs.
        let ns = (bits as u128 * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration(ns as u64)
    }

    /// The number of whole bytes this rate can carry in `window`.
    #[must_use]
    pub fn bytes_in(self, window: SimDuration) -> u64 {
        ((self.0 as u128 * window.0 as u128) / 8 / 1_000_000_000) as u64
    }

    /// This rate scaled by a load factor in `[0.0, 1.0+]` (e.g. "60 % of a
    /// 1 Gbps link").
    #[must_use]
    pub fn scaled(self, factor: f64) -> DataRate {
        DataRate((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1_000_000_000 && bps.is_multiple_of(1_000_000) {
            let whole = bps / 1_000_000_000;
            let frac = bps % 1_000_000_000 / 1_000_000;
            if frac == 0 {
                write!(f, "{whole}Gbps")
            } else {
                write!(f, "{whole}.{frac:03}Gbps")
            }
        } else if bps >= 1_000_000 && bps.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", bps / 1_000_000)
        } else if bps >= 1_000 && bps.is_multiple_of(1_000) {
            write!(f, "{}Kbps", bps / 1_000)
        } else {
            write!(f, "{bps}bps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_roundtrips_between_units() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(1_234).as_micros(), 1);
    }

    #[test]
    fn instant_duration_arithmetic() {
        let a = SimTime::from_micros(100);
        let b = a + SimDuration::from_micros(50);
        assert_eq!(b - a, SimDuration::from_micros(50));
        assert_eq!(b - SimDuration::from_micros(150), SimTime::ZERO);
        let mut c = a;
        c += SimDuration::from_nanos(1);
        assert_eq!(c.as_nanos(), 100_001);
    }

    #[test]
    fn saturating_since_does_not_underflow() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(late.saturating_since(early).as_nanos(), 4);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn slot_index_and_boundary() {
        let slot = SimDuration::from_micros(65);
        let t = SimTime::from_micros(130);
        assert_eq!(t.slot_index(slot), 2);
        assert_eq!(SimTime::from_nanos(129_999).slot_index(slot), 1);
        assert_eq!(
            t.next_slot_boundary(slot),
            SimTime::from_micros(195),
            "boundary is the start of the next slot"
        );
        assert_eq!(
            SimTime::from_micros(70).offset_in_slot(slot),
            SimDuration::from_micros(5)
        );
    }

    #[test]
    fn align_up_rounds_to_boundaries() {
        let slot = SimDuration::from_micros(65);
        assert_eq!(
            SimTime::from_micros(65).align_up(slot),
            SimTime::from_micros(65),
            "boundary stays put"
        );
        assert_eq!(
            SimTime::from_micros(66).align_up(slot),
            SimTime::from_micros(130)
        );
        assert_eq!(SimTime::ZERO.align_up(slot), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "slot length must be non-zero")]
    fn slot_index_rejects_zero_slot() {
        let _ = SimTime::ZERO.slot_index(SimDuration::ZERO);
    }

    #[test]
    fn duration_lcm_and_gcd() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a.lcm(b), SimDuration::from_millis(20));
        assert_eq!(a.gcd(b), SimDuration::from_millis(2));
        assert!(a.is_multiple_of(SimDuration::from_millis(5)));
        assert!(!a.is_multiple_of(SimDuration::from_millis(3)));
        assert!(!a.is_multiple_of(SimDuration::ZERO));
    }

    #[test]
    fn duration_division_counts_whole_spans() {
        let period = SimDuration::from_millis(10);
        let slot = SimDuration::from_micros(65);
        assert_eq!(period / slot, 153);
        assert_eq!(period % slot, SimDuration::from_micros(55));
    }

    #[test]
    fn duration_display_picks_natural_unit() {
        assert_eq!(SimDuration::ZERO.to_string(), "0ns");
        assert_eq!(SimDuration::from_nanos(512).to_string(), "512ns");
        assert_eq!(SimDuration::from_micros(65).to_string(), "65us");
        assert_eq!(SimDuration::from_millis(10).to_string(), "10ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
    }

    #[test]
    fn serialization_time_matches_wire_math() {
        let gig = DataRate::gbps(1);
        assert_eq!(gig.serialization_time(64).as_nanos(), 512);
        assert_eq!(gig.serialization_time(1500).as_nanos(), 12_000);
        let hundred = DataRate::mbps(100);
        assert_eq!(hundred.serialization_time(64).as_nanos(), 5_120);
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 3 bytes = 24 bits at 7 bps -> 24/7 s, not an integer ns count.
        let odd = DataRate::bps(7_000_000_000);
        assert_eq!(odd.serialization_time(3).as_nanos(), 4); // ceil(24/7) = 4
    }

    #[test]
    #[should_panic(expected = "zero-rate link")]
    fn serialization_on_zero_rate_panics() {
        let _ = DataRate::ZERO.serialization_time(64);
    }

    #[test]
    fn bytes_in_window() {
        assert_eq!(DataRate::gbps(1).bytes_in(SimDuration::from_micros(1)), 125);
        assert_eq!(
            DataRate::mbps(8).bytes_in(SimDuration::from_secs(1)),
            1_000_000
        );
    }

    #[test]
    fn rate_display() {
        assert_eq!(DataRate::gbps(1).to_string(), "1Gbps");
        assert_eq!(DataRate::mbps(1500).to_string(), "1.500Gbps");
        assert_eq!(DataRate::mbps(100).to_string(), "100Mbps");
        assert_eq!(DataRate::kbps(64).to_string(), "64Kbps");
        assert_eq!(DataRate::bps(42).to_string(), "42bps");
    }

    #[test]
    fn rate_scaling() {
        assert_eq!(DataRate::gbps(1).scaled(0.5), DataRate::mbps(500));
        assert_eq!(DataRate::mbps(100).scaled(0.0), DataRate::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
