//! The Ethernet frame model carried through the simulated switches.
//!
//! The simulator is not byte-accurate — payload contents never matter to a
//! TSN switch — but it is *size*- and *header*-accurate: the fields the five
//! templates actually consult (destination/source MAC, VLAN id, PCP, wire
//! size) are first-class, plus bookkeeping the analyzer needs (flow id,
//! sequence number, injection timestamp).

use crate::error::{TsnError, TsnResult};
use crate::ids::{FlowId, McId};
use crate::mac::MacAddr;
use crate::time::SimTime;
use crate::vlan::{Pcp, VlanId};
use core::fmt;

/// Minimum legal frame size in this model (classic Ethernet minimum).
pub const MIN_FRAME_BYTES: u32 = 64;
/// Maximum legal frame size in this model (1500 B MTU + 18 B L2 header/FCS
/// + 4 B 802.1Q tag).
pub const MAX_FRAME_BYTES: u32 = 1522;
/// Per-frame wire overhead that is not part of the frame itself:
/// 7 B preamble + 1 B SFD + 12 B inter-frame gap.
pub const ETHERNET_OVERHEAD_BYTES: u32 = 20;

/// The paper's three-level flow taxonomy (Section II.A).
///
/// * `TimeSensitive` — periodic critical traffic; must meet deadlines with
///   ultra-low jitter and zero loss. Highest priority.
/// * `RateConstrained` — reserved-bandwidth traffic, shaped by credit-based
///   shapers. Medium priority.
/// * `BestEffort` — whatever bandwidth is left. Lowest priority.
///
/// # Example
///
/// ```
/// use tsn_types::{TrafficClass, Pcp};
///
/// assert_eq!(TrafficClass::from_pcp(Pcp::HIGHEST), TrafficClass::TimeSensitive);
/// assert_eq!(TrafficClass::from_pcp(Pcp::LOWEST), TrafficClass::BestEffort);
/// assert!(TrafficClass::TimeSensitive.strict_priority()
///     > TrafficClass::RateConstrained.strict_priority());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrafficClass {
    /// Best-effort traffic (lowest priority).
    BestEffort,
    /// Rate-constrained traffic (medium priority).
    RateConstrained,
    /// Time-sensitive traffic (highest priority).
    TimeSensitive,
}

impl TrafficClass {
    /// All classes, lowest priority first.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::BestEffort,
        TrafficClass::RateConstrained,
        TrafficClass::TimeSensitive,
    ];

    /// The numeric strict priority used by the egress scheduler (larger
    /// wins).
    #[must_use]
    pub const fn strict_priority(self) -> u8 {
        match self {
            TrafficClass::BestEffort => 0,
            TrafficClass::RateConstrained => 3,
            TrafficClass::TimeSensitive => 7,
        }
    }

    /// The default PCP a talker stamps on frames of this class.
    #[must_use]
    pub const fn default_pcp(self) -> Pcp {
        match self {
            TrafficClass::BestEffort => Pcp::LOWEST,
            TrafficClass::RateConstrained => Pcp::MEDIUM,
            TrafficClass::TimeSensitive => Pcp::HIGHEST,
        }
    }

    /// Classifies a PCP into one of the three bands: 6–7 time-sensitive,
    /// 3–5 rate-constrained, 0–2 best-effort.
    #[must_use]
    pub const fn from_pcp(pcp: Pcp) -> TrafficClass {
        match pcp.value() {
            6..=7 => TrafficClass::TimeSensitive,
            3..=5 => TrafficClass::RateConstrained,
            _ => TrafficClass::BestEffort,
        }
    }

    /// Short label used in reports (`TS` / `RC` / `BE`).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            TrafficClass::BestEffort => "BE",
            TrafficClass::RateConstrained => "RC",
            TrafficClass::TimeSensitive => "TS",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One Ethernet frame travelling through the simulated network.
///
/// Construct frames with [`EthernetFrame::builder`]; sizes are validated
/// against [`MIN_FRAME_BYTES`]..=[`MAX_FRAME_BYTES`].
///
/// # Example
///
/// ```
/// use tsn_types::{EthernetFrame, MacAddr, TrafficClass, FlowId, SimTime};
///
/// let frame = EthernetFrame::builder()
///     .src(MacAddr::station(1))
///     .dst(MacAddr::station(2))
///     .class(TrafficClass::TimeSensitive)
///     .size_bytes(64)
///     .flow(FlowId::new(7))
///     .injected_at(SimTime::from_micros(10))
///     .build()?;
/// assert_eq!(frame.size_bytes(), 64);
/// assert_eq!(frame.class(), TrafficClass::TimeSensitive);
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EthernetFrame {
    dst: MacAddr,
    src: MacAddr,
    vlan: VlanId,
    pcp: Pcp,
    class: TrafficClass,
    size_bytes: u32,
    flow: FlowId,
    sequence: u64,
    mc_id: Option<McId>,
    injected_at: SimTime,
    corrupted: bool,
}

impl EthernetFrame {
    /// Starts building a frame. See the type-level example.
    #[must_use]
    pub fn builder() -> FrameBuilder {
        FrameBuilder::new()
    }

    /// Destination MAC address.
    #[must_use]
    pub fn dst(&self) -> MacAddr {
        self.dst
    }

    /// Source MAC address.
    #[must_use]
    pub fn src(&self) -> MacAddr {
        self.src
    }

    /// 802.1Q VLAN id.
    #[must_use]
    pub fn vlan(&self) -> VlanId {
        self.vlan
    }

    /// 802.1Q priority code point.
    #[must_use]
    pub fn pcp(&self) -> Pcp {
        self.pcp
    }

    /// Traffic class (TS / RC / BE).
    #[must_use]
    pub fn class(&self) -> TrafficClass {
        self.class
    }

    /// Frame size on the wire in bytes (header + payload + FCS).
    #[must_use]
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Frame size plus preamble/SFD/inter-frame gap — the bytes a link is
    /// actually busy for.
    #[must_use]
    pub fn wire_bytes(&self) -> u32 {
        self.size_bytes + ETHERNET_OVERHEAD_BYTES
    }

    /// The application flow this frame belongs to.
    #[must_use]
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Per-flow sequence number (0-based), used for loss accounting.
    #[must_use]
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Multicast group index, if the destination is a group address.
    #[must_use]
    pub fn mc_id(&self) -> Option<McId> {
        self.mc_id
    }

    /// When the talker handed this frame to its NIC (simulation time);
    /// end-to-end latency is measured from this instant.
    #[must_use]
    pub fn injected_at(&self) -> SimTime {
        self.injected_at
    }

    /// `true` if the destination is a group (multicast/broadcast) address.
    #[must_use]
    pub fn is_multicast(&self) -> bool {
        self.dst.is_multicast()
    }

    /// `true` if the payload was damaged on a wire (fault injection): the
    /// FCS no longer matches, and any standards-compliant receiver must
    /// discard the frame instead of delivering it.
    #[must_use]
    pub fn is_corrupted(&self) -> bool {
        self.corrupted
    }

    /// Returns a copy of this frame with the FCS-mismatch marker set, as if
    /// bits were flipped in transit.
    #[must_use]
    pub fn with_corruption(mut self) -> EthernetFrame {
        self.corrupted = true;
        self
    }
}

impl fmt::Display for EthernetFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} seq{} {}B {}->{} {} {}]",
            self.class,
            self.flow,
            self.sequence,
            self.size_bytes,
            self.src,
            self.dst,
            self.vlan,
            self.pcp,
        )
    }
}

/// Builder for [`EthernetFrame`] (see [`EthernetFrame::builder`]).
#[derive(Debug, Clone, Default)]
pub struct FrameBuilder {
    dst: MacAddr,
    src: MacAddr,
    vlan: VlanId,
    pcp: Option<Pcp>,
    class: Option<TrafficClass>,
    size_bytes: u32,
    flow: FlowId,
    sequence: u64,
    mc_id: Option<McId>,
    injected_at: SimTime,
}

impl FrameBuilder {
    /// Creates a builder with default VLAN 1, best-effort class and zero
    /// identifiers. `size_bytes` must always be provided.
    #[must_use]
    pub fn new() -> Self {
        FrameBuilder::default()
    }

    /// Sets the destination MAC address.
    #[must_use]
    pub fn dst(mut self, dst: MacAddr) -> Self {
        self.dst = dst;
        self
    }

    /// Sets the source MAC address.
    #[must_use]
    pub fn src(mut self, src: MacAddr) -> Self {
        self.src = src;
        self
    }

    /// Sets the VLAN id (default: VLAN 1).
    #[must_use]
    pub fn vlan(mut self, vlan: VlanId) -> Self {
        self.vlan = vlan;
        self
    }

    /// Sets the PCP explicitly. If unset, the class's
    /// [`TrafficClass::default_pcp`] is used.
    #[must_use]
    pub fn pcp(mut self, pcp: Pcp) -> Self {
        self.pcp = Some(pcp);
        self
    }

    /// Sets the traffic class. If unset, the class is derived from the PCP
    /// (or defaults to best-effort when neither is given).
    #[must_use]
    pub fn class(mut self, class: TrafficClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Sets the on-wire frame size in bytes. Required.
    #[must_use]
    pub fn size_bytes(mut self, size_bytes: u32) -> Self {
        self.size_bytes = size_bytes;
        self
    }

    /// Sets the owning flow id.
    #[must_use]
    pub fn flow(mut self, flow: FlowId) -> Self {
        self.flow = flow;
        self
    }

    /// Sets the per-flow sequence number.
    #[must_use]
    pub fn sequence(mut self, sequence: u64) -> Self {
        self.sequence = sequence;
        self
    }

    /// Marks the frame as belonging to a multicast group.
    #[must_use]
    pub fn mc_id(mut self, mc_id: McId) -> Self {
        self.mc_id = Some(mc_id);
        self
    }

    /// Sets the injection timestamp.
    #[must_use]
    pub fn injected_at(mut self, at: SimTime) -> Self {
        self.injected_at = at;
        self
    }

    /// Validates and builds the frame.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidFrameSize`] if `size_bytes` is outside
    /// `64..=1522`.
    pub fn build(self) -> TsnResult<EthernetFrame> {
        if !(MIN_FRAME_BYTES..=MAX_FRAME_BYTES).contains(&self.size_bytes) {
            return Err(TsnError::InvalidFrameSize(self.size_bytes));
        }
        let (class, pcp) = match (self.class, self.pcp) {
            (Some(c), Some(p)) => (c, p),
            (Some(c), None) => (c, c.default_pcp()),
            (None, Some(p)) => (TrafficClass::from_pcp(p), p),
            (None, None) => (TrafficClass::BestEffort, Pcp::LOWEST),
        };
        Ok(EthernetFrame {
            dst: self.dst,
            src: self.src,
            vlan: self.vlan,
            pcp,
            class,
            size_bytes: self.size_bytes,
            flow: self.flow,
            sequence: self.sequence,
            mc_id: self.mc_id,
            injected_at: self.injected_at,
            corrupted: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a_frame(size: u32) -> TsnResult<EthernetFrame> {
        EthernetFrame::builder()
            .src(MacAddr::station(1))
            .dst(MacAddr::station(2))
            .size_bytes(size)
            .build()
    }

    #[test]
    fn size_limits_are_enforced() {
        assert!(a_frame(64).is_ok());
        assert!(a_frame(1522).is_ok());
        assert!(matches!(a_frame(63), Err(TsnError::InvalidFrameSize(63))));
        assert!(matches!(
            a_frame(1523),
            Err(TsnError::InvalidFrameSize(1523))
        ));
        assert!(a_frame(0).is_err());
    }

    #[test]
    fn class_defaults_to_best_effort() {
        let f = a_frame(64).expect("valid frame");
        assert_eq!(f.class(), TrafficClass::BestEffort);
        assert_eq!(f.pcp(), Pcp::LOWEST);
    }

    #[test]
    fn class_derives_pcp_and_vice_versa() {
        let ts = EthernetFrame::builder()
            .size_bytes(64)
            .class(TrafficClass::TimeSensitive)
            .build()
            .expect("valid");
        assert_eq!(ts.pcp(), Pcp::HIGHEST);

        let from_pcp = EthernetFrame::builder()
            .size_bytes(64)
            .pcp(Pcp::new(4).expect("4 is a legal pcp"))
            .build()
            .expect("valid");
        assert_eq!(from_pcp.class(), TrafficClass::RateConstrained);
    }

    #[test]
    fn explicit_class_and_pcp_are_both_kept() {
        // A deliberately mismatched pair must be preserved verbatim: the
        // classification table, not the wire priority, decides the queue.
        let f = EthernetFrame::builder()
            .size_bytes(64)
            .class(TrafficClass::TimeSensitive)
            .pcp(Pcp::LOWEST)
            .build()
            .expect("valid");
        assert_eq!(f.class(), TrafficClass::TimeSensitive);
        assert_eq!(f.pcp(), Pcp::LOWEST);
    }

    #[test]
    fn wire_bytes_adds_overhead() {
        let f = a_frame(64).expect("valid frame");
        assert_eq!(f.wire_bytes(), 84);
    }

    #[test]
    fn multicast_detection_follows_dst() {
        let m = EthernetFrame::builder()
            .dst(MacAddr::BROADCAST)
            .size_bytes(64)
            .build()
            .expect("valid");
        assert!(m.is_multicast());
        assert!(!a_frame(64).expect("valid frame").is_multicast());
    }

    #[test]
    fn traffic_class_priorities_are_strictly_ordered() {
        let prios: Vec<u8> = TrafficClass::ALL
            .iter()
            .map(|c| c.strict_priority())
            .collect();
        assert!(prios.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pcp_band_mapping_covers_all_pcps() {
        for v in 0..=7u8 {
            let pcp = Pcp::new(v).expect("0..=7 all legal");
            let class = TrafficClass::from_pcp(pcp);
            match v {
                0..=2 => assert_eq!(class, TrafficClass::BestEffort),
                3..=5 => assert_eq!(class, TrafficClass::RateConstrained),
                _ => assert_eq!(class, TrafficClass::TimeSensitive),
            }
        }
    }

    #[test]
    fn corruption_marker_round_trips() {
        let f = a_frame(64).expect("valid frame");
        assert!(!f.is_corrupted());
        let bad = f.with_corruption();
        assert!(bad.is_corrupted());
        assert!(!f.is_corrupted(), "marker applies to the copy only");
        assert_eq!(bad.size_bytes(), f.size_bytes());
    }

    #[test]
    fn display_mentions_flow_and_class() {
        let f = a_frame(64).expect("valid frame");
        let text = f.to_string();
        assert!(text.contains("BE"));
        assert!(text.contains("flow0"));
        assert!(text.contains("64B"));
    }
}
