//! Opaque identifiers used across the switch, simulator and builder crates.
//!
//! Each identifier is a distinct newtype so that, for example, a
//! [`QueueId`] can never be passed where a [`PortId`] is expected — exactly
//! the class of mix-up the paper's per-port / per-queue resource tables
//! invite.

use core::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name($repr);

        impl $name {
            /// Creates the identifier from its raw index.
            #[must_use]
            pub const fn new(index: $repr) -> Self {
                $name(index)
            }

            /// The raw index.
            #[must_use]
            pub const fn index(self) -> $repr {
                self.0
            }

            /// The raw index widened to `usize` for container indexing.
            #[must_use]
            pub const fn as_usize(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            fn from(index: $repr) -> Self {
                $name(index)
            }
        }

        impl From<$name> for $repr {
            fn from(id: $name) -> $repr {
                id.0
            }
        }
    };
}

id_newtype!(
    /// Identifies a node (switch or end device) in a topology.
    NodeId, "node", u32
);

id_newtype!(
    /// Identifies a port within one node. Port numbering is local to the
    /// node; `(NodeId, PortId)` is globally unique.
    PortId, "port", u16
);

id_newtype!(
    /// Identifies one of the (typically 8) egress queues of a port.
    QueueId, "queue", u8
);

id_newtype!(
    /// Identifies an application flow (TS, RC or BE).
    FlowId, "flow", u32
);

id_newtype!(
    /// Identifies an entry of the meter table in the ingress filter.
    MeterId, "meter", u32
);

id_newtype!(
    /// Multicast group index (`MC ID` in the paper's Fig. 4) used to look up
    /// a set of output ports in the multicast table.
    McId, "mc", u32
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_their_raw_index() {
        assert_eq!(NodeId::new(3).index(), 3);
        assert_eq!(PortId::from(2u16).index(), 2);
        assert_eq!(u8::from(QueueId::new(5)), 5);
        assert_eq!(FlowId::new(1023).as_usize(), 1023);
    }

    #[test]
    fn ids_display_with_their_prefix() {
        assert_eq!(NodeId::new(0).to_string(), "node0");
        assert_eq!(PortId::new(1).to_string(), "port1");
        assert_eq!(QueueId::new(7).to_string(), "queue7");
        assert_eq!(FlowId::new(42).to_string(), "flow42");
        assert_eq!(MeterId::new(9).to_string(), "meter9");
        assert_eq!(McId::new(4).to_string(), "mc4");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(QueueId::new(0) < QueueId::new(7));
        assert!(FlowId::new(10) > FlowId::new(9));
    }

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; the test documents intent.
        fn takes_port(_p: PortId) {}
        takes_port(PortId::new(0));
    }
}
