//! The shared error type of the TSN-Builder crates.

use crate::ids::{FlowId, NodeId, PortId};
use core::fmt;

/// Convenience alias for `Result<T, TsnError>`.
pub type TsnResult<T> = Result<T, TsnError>;

/// Errors produced across the TSN-Builder workspace.
///
/// The enum is `#[non_exhaustive]`: downstream code must keep a catch-all
/// arm, which lets the library add variants without breaking users.
///
/// # Example
///
/// ```
/// use tsn_types::{TsnError, VlanId};
///
/// let err = VlanId::new(4095).unwrap_err();
/// assert!(matches!(err, TsnError::InvalidVlanId(4095)));
/// assert_eq!(err.to_string(), "invalid VLAN id 4095 (legal range is 1..=4094)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TsnError {
    /// A string did not parse as a MAC address.
    ParseMacError(String),
    /// A VLAN id was outside 1..=4094.
    InvalidVlanId(u16),
    /// A priority code point was above 7.
    InvalidPcp(u8),
    /// A frame size was outside the Ethernet range (64..=1522 bytes on the
    /// wire in this model).
    InvalidFrameSize(u32),
    /// A configuration parameter failed validation.
    InvalidParameter {
        /// Name of the offending parameter (matches the paper's API names
        /// where applicable, e.g. `queue_depth`).
        name: String,
        /// Why the value was rejected.
        reason: String,
    },
    /// A fixed-capacity hardware resource (table, queue, buffer pool) is
    /// full.
    CapacityExceeded {
        /// Human-readable name of the resource, e.g. `"classification table"`.
        resource: String,
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// A referenced node does not exist in the topology.
    UnknownNode(NodeId),
    /// A referenced port does not exist on the given node.
    UnknownPort {
        /// The node on which the port was looked up.
        node: NodeId,
        /// The missing port.
        port: PortId,
    },
    /// No path exists between two nodes.
    NoRoute {
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// A flow references configuration that does not exist.
    UnknownFlow(FlowId),
    /// The requested set of flows cannot be scheduled with the given
    /// resources (e.g. slot too small, queue depth insufficient).
    ScheduleInfeasible(String),
    /// A generated artifact (e.g. emitted Verilog) failed validation.
    InvalidArtifact(String),
}

impl fmt::Display for TsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsnError::ParseMacError(s) => {
                write!(f, "invalid MAC address syntax: {s:?}")
            }
            TsnError::InvalidVlanId(v) => {
                write!(f, "invalid VLAN id {v} (legal range is 1..=4094)")
            }
            TsnError::InvalidPcp(v) => write!(f, "invalid priority code point {v} (must be 0..=7)"),
            TsnError::InvalidFrameSize(v) => {
                write!(f, "invalid frame size {v}B (must be 64..=1522 bytes)")
            }
            TsnError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            TsnError::CapacityExceeded { resource, capacity } => {
                write!(f, "{resource} is full (capacity {capacity})")
            }
            TsnError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TsnError::UnknownPort { node, port } => {
                write!(f, "unknown port {port} on {node}")
            }
            TsnError::NoRoute { from, to } => write!(f, "no route from {from} to {to}"),
            TsnError::UnknownFlow(id) => write!(f, "unknown flow {id}"),
            TsnError::ScheduleInfeasible(why) => write!(f, "schedule infeasible: {why}"),
            TsnError::InvalidArtifact(why) => write!(f, "invalid generated artifact: {why}"),
        }
    }
}

impl std::error::Error for TsnError {}

impl TsnError {
    /// Shorthand for [`TsnError::InvalidParameter`].
    #[must_use]
    pub fn invalid_parameter(name: impl Into<String>, reason: impl Into<String>) -> Self {
        TsnError::InvalidParameter {
            name: name.into(),
            reason: reason.into(),
        }
    }

    /// Shorthand for [`TsnError::CapacityExceeded`].
    #[must_use]
    pub fn capacity(resource: impl Into<String>, capacity: usize) -> Self {
        TsnError::CapacityExceeded {
            resource: resource.into(),
            capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<TsnError>();
    }

    #[test]
    fn display_messages_are_lowercase_without_trailing_punctuation() {
        let samples: Vec<TsnError> = vec![
            TsnError::ParseMacError("xx".into()),
            TsnError::InvalidVlanId(0),
            TsnError::InvalidPcp(9),
            TsnError::InvalidFrameSize(9000),
            TsnError::invalid_parameter("queue_depth", "must be non-zero"),
            TsnError::capacity("meter table", 512),
            TsnError::UnknownNode(NodeId::new(9)),
            TsnError::UnknownPort {
                node: NodeId::new(1),
                port: PortId::new(4),
            },
            TsnError::NoRoute {
                from: NodeId::new(0),
                to: NodeId::new(5),
            },
            TsnError::UnknownFlow(FlowId::new(77)),
            TsnError::ScheduleInfeasible("slot smaller than one frame".into()),
            TsnError::InvalidArtifact("unbalanced endmodule".into()),
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(
                !msg.ends_with('.'),
                "error messages should not end with a period: {msg:?}"
            );
            let first = msg.chars().next().expect("non-empty");
            assert!(
                first.is_lowercase() || !first.is_alphabetic(),
                "error messages start lowercase: {msg:?}"
            );
        }
    }

    #[test]
    fn helpers_build_expected_variants() {
        assert_eq!(
            TsnError::invalid_parameter("a", "b"),
            TsnError::InvalidParameter {
                name: "a".into(),
                reason: "b".into()
            }
        );
        assert_eq!(
            TsnError::capacity("queue", 8),
            TsnError::CapacityExceeded {
                resource: "queue".into(),
                capacity: 8
            }
        );
    }
}
