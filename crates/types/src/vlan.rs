//! 802.1Q VLAN identifiers and priority code points.

use crate::error::{TsnError, TsnResult};
use core::fmt;

/// A 12-bit 802.1Q VLAN identifier (1..=4094; 0 and 4095 are reserved).
///
/// # Example
///
/// ```
/// use tsn_types::VlanId;
///
/// let vid = VlanId::new(100)?;
/// assert_eq!(vid.value(), 100);
/// assert!(VlanId::new(0).is_err());
/// assert!(VlanId::new(4095).is_err());
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VlanId(u16);

impl VlanId {
    /// The smallest legal VLAN id.
    pub const MIN: VlanId = VlanId(1);
    /// The largest legal VLAN id.
    pub const MAX: VlanId = VlanId(4094);
    /// The conventional default VLAN (VID 1).
    pub const DEFAULT: VlanId = VlanId(1);

    /// Creates a VLAN id, validating the 802.1Q range.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidVlanId`] for 0 (priority tag), 4095
    /// (reserved) and anything above 12 bits.
    pub fn new(value: u16) -> TsnResult<Self> {
        if (1..=4094).contains(&value) {
            Ok(VlanId(value))
        } else {
            Err(TsnError::InvalidVlanId(value))
        }
    }

    /// The numeric id.
    #[must_use]
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl Default for VlanId {
    fn default() -> Self {
        VlanId::DEFAULT
    }
}

impl fmt::Display for VlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vlan{}", self.0)
    }
}

impl TryFrom<u16> for VlanId {
    type Error = TsnError;
    fn try_from(value: u16) -> TsnResult<Self> {
        VlanId::new(value)
    }
}

impl From<VlanId> for u16 {
    fn from(vid: VlanId) -> u16 {
        vid.0
    }
}

/// A 3-bit 802.1Q Priority Code Point.
///
/// The paper's flow taxonomy maps onto PCPs as: TS flows use the highest
/// priority, RC flows a medium band, BE flows the lowest (Section II.A).
/// [`crate::TrafficClass`] provides that mapping; `Pcp` is the raw wire
/// field.
///
/// # Example
///
/// ```
/// use tsn_types::Pcp;
///
/// let pcp = Pcp::new(7)?;
/// assert_eq!(pcp.value(), 7);
/// assert!(Pcp::new(8).is_err());
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pcp(u8);

impl Pcp {
    /// Lowest priority (0).
    pub const LOWEST: Pcp = Pcp(0);
    /// The conventional medium (AVB/rate-constrained) priority (3).
    pub const MEDIUM: Pcp = Pcp(3);
    /// Highest priority (7).
    pub const HIGHEST: Pcp = Pcp(7);

    /// Creates a PCP, validating the 3-bit range.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidPcp`] for values above 7.
    pub fn new(value: u8) -> TsnResult<Self> {
        if value <= 7 {
            Ok(Pcp(value))
        } else {
            Err(TsnError::InvalidPcp(value))
        }
    }

    /// The numeric 0..=7 priority.
    #[must_use]
    pub const fn value(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Pcp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcp{}", self.0)
    }
}

impl TryFrom<u8> for Pcp {
    type Error = TsnError;
    fn try_from(value: u8) -> TsnResult<Self> {
        Pcp::new(value)
    }
}

impl From<Pcp> for u8 {
    fn from(pcp: Pcp) -> u8 {
        pcp.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlan_range_is_enforced() {
        assert!(VlanId::new(1).is_ok());
        assert!(VlanId::new(4094).is_ok());
        assert!(matches!(VlanId::new(0), Err(TsnError::InvalidVlanId(0))));
        assert!(matches!(
            VlanId::new(4095),
            Err(TsnError::InvalidVlanId(4095))
        ));
        assert!(VlanId::new(u16::MAX).is_err());
    }

    #[test]
    fn vlan_conversions() {
        let vid = VlanId::try_from(42).expect("42 is a legal vid");
        assert_eq!(u16::from(vid), 42);
        assert_eq!(vid.to_string(), "vlan42");
        assert_eq!(VlanId::default(), VlanId::DEFAULT);
    }

    #[test]
    fn pcp_range_is_enforced() {
        for v in 0..=7 {
            assert!(Pcp::new(v).is_ok());
        }
        assert!(matches!(Pcp::new(8), Err(TsnError::InvalidPcp(8))));
    }

    #[test]
    fn pcp_ordering_matches_priority() {
        assert!(Pcp::HIGHEST > Pcp::LOWEST);
        assert_eq!(Pcp::default(), Pcp::LOWEST);
        assert_eq!(Pcp::HIGHEST.to_string(), "pcp7");
    }
}
