//! A small deterministic PRNG for workload generation and tests.
//!
//! The repo is built to run hermetically — workload draws (deadline sets,
//! fuzz-style test inputs) come from this SplitMix64 generator instead of
//! an external crate, so the same seed always produces the same scenario
//! on every platform.

/// SplitMix64: tiny, fast, and statistically solid for non-cryptographic
/// use (Steele, Lea & Flood, OOPSLA 2014). One `u64` of state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. Identical seeds yield identical streams.
    #[must_use]
    pub const fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound` must be non-zero).
    ///
    /// Uses the widening-multiply trick with a rejection step, so the
    /// distribution is exactly uniform.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be non-zero");
        // Lemire's method: multiply-shift with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw from `lo..hi` (`lo < hi`).
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_in needs lo < hi");
        lo + self.gen_range(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 4];
        for _ in 0..256 {
            let v = rng.gen_range(4);
            assert!(v < 4);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 values drawn in 256 tries");
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
