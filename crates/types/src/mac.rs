//! Ethernet MAC addresses.

use crate::error::{TsnError, TsnResult};
use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
///
/// The packet-switch template keys its unicast table on
/// `(destination MAC, VLAN id)` and consults the multicast table whenever
/// [`MacAddr::is_multicast`] holds, exactly as described in Section III.B of
/// the paper.
///
/// # Example
///
/// ```
/// use tsn_types::MacAddr;
///
/// let a: MacAddr = "02:00:00:00:00:2a".parse()?;
/// assert_eq!(a, MacAddr::from_u64(0x0200_0000_002a));
/// assert!(!a.is_multicast());
/// assert!(a.is_locally_administered());
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as a "no address" placeholder.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    #[must_use]
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Creates an address from the low 48 bits of `value`.
    ///
    /// Handy for generating dense, distinct station addresses in tests and
    /// workload generators.
    #[must_use]
    pub const fn from_u64(value: u64) -> Self {
        let b = value.to_be_bytes();
        MacAddr([b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// The address as a 48-bit integer.
    #[must_use]
    pub const fn to_u64(self) -> u64 {
        let o = self.0;
        (o[0] as u64) << 40
            | (o[1] as u64) << 32
            | (o[2] as u64) << 24
            | (o[3] as u64) << 16
            | (o[4] as u64) << 8
            | o[5] as u64
    }

    /// The six octets of the address.
    #[must_use]
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// `true` for group (multicast and broadcast) addresses — the I/G bit of
    /// the first octet is set.
    #[must_use]
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// `true` only for the broadcast address.
    #[must_use]
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// `true` for locally administered addresses — the U/L bit of the first
    /// octet is set.
    #[must_use]
    pub const fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// A deterministic locally-administered unicast station address for
    /// test/workload generation, derived from `index`.
    ///
    /// The generated addresses are pairwise distinct for distinct indices
    /// below 2^40 and never collide with multicast space.
    #[must_use]
    pub const fn station(index: u64) -> Self {
        // 0x02 prefix: locally administered, unicast.
        MacAddr::from_u64(0x0200_0000_0000 | (index & 0x00ff_ffff_ffff))
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl FromStr for MacAddr {
    type Err = TsnError;

    /// Parses the canonical colon-separated form, e.g. `"02:00:00:00:00:01"`.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::ParseMacError`] if the string is not six
    /// colon-separated hex octets.
    fn from_str(s: &str) -> TsnResult<Self> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| bad_mac(s))?;
            if part.len() != 2 {
                return Err(bad_mac(s));
            }
            *slot = u8::from_str_radix(part, 16).map_err(|_| bad_mac(s))?;
        }
        if parts.next().is_some() {
            return Err(bad_mac(s));
        }
        Ok(MacAddr(octets))
    }
}

fn bad_mac(s: &str) -> TsnError {
    TsnError::ParseMacError(s.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let mac = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x2a]);
        let text = mac.to_string();
        assert_eq!(text, "de:ad:be:ef:00:2a");
        let parsed: MacAddr = text.parse().expect("canonical form parses");
        assert_eq!(parsed, mac);
    }

    #[test]
    fn parse_rejects_malformed_strings() {
        for bad in [
            "",
            "de:ad:be:ef:00",
            "de:ad:be:ef:00:2a:00",
            "de:ad:be:ef:00:zz",
            "dead:be:ef:00:2a",
            "d:ad:be:ef:00:2a",
        ] {
            assert!(bad.parse::<MacAddr>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn u64_conversion_roundtrip() {
        let value = 0x0123_4567_89ab;
        assert_eq!(MacAddr::from_u64(value).to_u64(), value);
        // High 16 bits are dropped.
        assert_eq!(MacAddr::from_u64(0xffff_0000_0000_0001).to_u64(), 1);
    }

    #[test]
    fn multicast_and_broadcast_bits() {
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        let mcast = MacAddr::new([0x01, 0x00, 0x5e, 0, 0, 1]);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_broadcast());
        assert!(!MacAddr::station(7).is_multicast());
    }

    #[test]
    fn station_addresses_are_distinct_and_local() {
        let a = MacAddr::station(0);
        let b = MacAddr::station(1);
        assert_ne!(a, b);
        assert!(a.is_locally_administered());
        assert!(!a.is_multicast());
    }

    #[test]
    fn conversions_to_and_from_octets() {
        let octets = [1, 2, 3, 4, 5, 6];
        let mac = MacAddr::from(octets);
        let back: [u8; 6] = mac.into();
        assert_eq!(back, octets);
        assert_eq!(mac.as_ref(), &octets[..]);
    }
}
