//! Parameterized Verilog emission for the TSN-Builder templates.
//!
//! The paper's output artifact is Verilog: five function templates whose
//! table/queue/buffer geometry is injected through the Table II APIs at
//! synthesis time. This crate reproduces that synthesis stage:
//!
//! * [`ast`] — a small Verilog-2001 AST (modules, parameters, ports,
//!   memories, instances, `always` blocks) with an emitter;
//! * [`templates`] — generators for the five templates plus the shared
//!   primitives (`dpram`, `meta_fifo`) and the `tsn_switch_top` that wires
//!   one Gate Ctrl + Egress Sched per enabled TSN port;
//! * [`validate`] — a lexical checker (balance, identifiers, duplicate
//!   modules) every generated file must pass;
//! * [`parse`] — a structural parser that reads generated Verilog back
//!   (modules, parameters, ports, memories, instances) for round-trip
//!   checks.
//!
//! # Example
//!
//! ```
//! use tsn_hdl::templates::generate;
//! use tsn_resource::ResourceConfig;
//!
//! let bundle = generate(&ResourceConfig::new())?;
//! let top = bundle.file("tsn_switch_top.v").expect("top is generated");
//! assert!(top.contains("module tsn_switch_top"));
//! # Ok::<(), tsn_types::TsnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod parse;
pub mod templates;
pub mod validate;

pub use ast::{Dir, Item, Module, Param, Port};
pub use parse::{parse_modules, ParsedInstance, ParsedModule, ParsedPort};
pub use templates::{generate, HdlBundle};
pub use validate::check_source;
