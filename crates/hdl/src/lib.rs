//! Parameterized Verilog emission — and machine checking — for the
//! TSN-Builder templates.
//!
//! The paper's output artifact is Verilog: five function templates whose
//! table/queue/buffer geometry is injected through the Table II APIs at
//! synthesis time. This crate reproduces that synthesis stage and then
//! closes the loop by parsing, linting and costing its own output:
//!
//! * [`ast`] — a small Verilog-2001 AST (modules, parameters, ports,
//!   memories, instances, `always` blocks) with an emitter;
//! * [`templates`] — generators for the five templates plus the shared
//!   primitives (`dpram`, `meta_fifo`) and the `tsn_switch_top` that wires
//!   one Gate Ctrl + Egress Sched per enabled TSN port;
//! * [`validate`] — a lexical checker (balance, identifiers, duplicate
//!   modules) every generated file must pass;
//! * [`parse`] — a structural parser producing a module/port/parameter/
//!   memory/instance IR rich enough to analyze;
//! * [`expr`] — integer evaluation of the width/depth expressions the
//!   parser keeps as text, against a parameter environment;
//! * [`lint`] — structural checks over the parsed IR (width mismatches,
//!   unused ports, undeclared identifiers, address-width/depth
//!   violations, …); shipped bundles must lint clean;
//! * [`cost`] — elaborates the parsed design into its memory map and
//!   register count and demands bit-exact agreement with
//!   `tsn_resource::rtl` (the `hdl-cost-agreement` oracle).
//!
//! # Example
//!
//! ```
//! use tsn_hdl::templates::generate;
//! use tsn_hdl::{cost, lint, parse_modules};
//! use tsn_resource::ResourceConfig;
//!
//! let cfg = ResourceConfig::new();
//! let bundle = generate(&cfg)?;
//! let modules = parse_modules(&bundle.concatenated())?;
//! assert!(lint::lint_modules(&modules).is_empty());
//! cost::check_agreement(&cfg, &modules).expect("HDL cost matches tsn-resource");
//! # Ok::<(), tsn_types::TsnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cost;
pub mod expr;
pub mod lint;
pub mod parse;
pub mod templates;
pub mod validate;

pub use ast::{Dir, Item, Module, Param, Port};
pub use cost::{check_agreement, cost_of, HdlCost, MemoryInstance};
pub use lint::{lint_modules, LintFinding};
pub use parse::{
    parse_modules, ParsedInstance, ParsedMemory, ParsedModule, ParsedNet, ParsedPort, ParsedRange,
};
pub use templates::{generate, HdlBundle};
pub use validate::check_source;
