//! Structural lints over the parsed Verilog IR.
//!
//! The rules encode what a synthesis front-end would reject or warn
//! about in the narrow dialect `tsn-hdl` emits: width mismatches on
//! port connections, unused ports, undeclared identifiers in
//! instantiation expressions, duplicate parameters/ports, address
//! widths too small for their memory depths, unknown modules/ports in
//! instantiations, and magic numbers where a generated parameter
//! exists. The invariant — enforced by tests and CI — is that every
//! shipped bundle lints clean; a template edit that breaks geometry
//! shows up here before it reaches synthesis.
//!
//! [`lint_modules`] is a whole-design check: pass it every module of a
//! bundle at once so instantiations can be bound against the modules
//! they reference.

use crate::expr::{self, Env};
use crate::parse::{ParsedInstance, ParsedModule};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One lint diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Module the finding is anchored in.
    pub module: String,
    /// Stable rule identifier (kebab-case).
    pub rule: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.module, self.message)
    }
}

/// Folds a module's parameter defaults (then localparams) into a value
/// environment. Parameters whose defaults do not evaluate (they may
/// reference enclosing-scope names) are simply absent from the result —
/// width checks that need them degrade to "unresolved" rather than
/// false findings.
#[must_use]
pub fn default_env(module: &ParsedModule) -> Env {
    let mut env = Env::new();
    for (name, value) in module.params.iter().chain(&module.localparams) {
        if let Ok(v) = expr::eval(value, &env) {
            env.insert(name.clone(), v);
        }
    }
    env
}

/// Resolves a child module's parameters under an instantiation: each
/// override is evaluated in the *parent* environment, remaining
/// parameters fall back to their defaults (evaluated left to right, so
/// defaults may reference earlier parameters).
#[must_use]
pub fn instance_env(child: &ParsedModule, inst: &ParsedInstance, parent_env: &Env) -> Env {
    let mut env = Env::new();
    for (name, default) in &child.params {
        let value = match inst.params.iter().find(|(n, _)| n == name) {
            Some((_, over)) => expr::eval(over, parent_env),
            None => expr::eval(default, &env),
        };
        if let Ok(v) = value {
            env.insert(name.clone(), v);
        }
    }
    for (name, value) in &child.localparams {
        if let Ok(v) = expr::eval(value, &env) {
            env.insert(name.clone(), v);
        }
    }
    env
}

/// Widths of every port, wire and reg of `module`, where resolvable in
/// `env`. Scalar declarations have width 1.
fn net_widths(module: &ParsedModule, env: &Env) -> BTreeMap<String, i64> {
    let mut widths = BTreeMap::new();
    let ranged = module
        .ports
        .iter()
        .map(|p| (&p.name, &p.range))
        .chain(module.wires.iter().map(|n| (&n.name, &n.range)))
        .chain(module.regs.iter().map(|n| (&n.name, &n.range)));
    for (name, range) in ranged {
        let width = match range {
            None => Ok(1),
            Some(r) => expr::range_width(r, env),
        };
        if let Ok(w) = width {
            widths.insert(name.clone(), w);
        }
    }
    widths
}

/// Every name declared in a module's scope: ports, nets, memories,
/// parameters and localparams.
fn declared_names(module: &ParsedModule) -> BTreeSet<&str> {
    module
        .ports
        .iter()
        .map(|p| p.name.as_str())
        .chain(module.wires.iter().map(|n| n.name.as_str()))
        .chain(module.regs.iter().map(|n| n.name.as_str()))
        .chain(module.memories.iter().map(|m| m.name.as_str()))
        .chain(module.params.iter().map(|(n, _)| n.as_str()))
        .chain(module.localparams.iter().map(|(n, _)| n.as_str()))
        .collect()
}

fn duplicates<'a>(names: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    let mut seen = BTreeSet::new();
    let mut dups = Vec::new();
    for name in names {
        if !seen.insert(name) && !dups.contains(&name) {
            dups.push(name);
        }
    }
    dups
}

/// Lints a whole design (every module of a bundle together).
///
/// Cross-module rules (port binding, width agreement) require the
/// instantiated modules to be present in `modules`; an instantiation of
/// a module that is not is itself a finding (`unknown-module`) — except
/// that nothing in the shipped bundles triggers it.
#[must_use]
pub fn lint_modules(modules: &[ParsedModule]) -> Vec<LintFinding> {
    let by_name: BTreeMap<&str, &ParsedModule> =
        modules.iter().map(|m| (m.name.as_str(), m)).collect();
    let mut findings = Vec::new();
    for module in modules {
        lint_module(module, &by_name, &mut findings);
    }
    findings
}

fn lint_module(
    module: &ParsedModule,
    by_name: &BTreeMap<&str, &ParsedModule>,
    findings: &mut Vec<LintFinding>,
) {
    let push = |findings: &mut Vec<LintFinding>, rule: &'static str, message: String| {
        findings.push(LintFinding {
            module: module.name.clone(),
            rule,
            message,
        });
    };

    for name in duplicates(module.params.iter().map(|(n, _)| n.as_str())) {
        push(
            findings,
            "duplicate-parameter",
            format!("parameter {name} declared more than once"),
        );
    }
    for name in duplicates(module.ports.iter().map(|p| p.name.as_str())) {
        push(
            findings,
            "duplicate-port",
            format!("port {name} declared more than once"),
        );
    }

    for port in &module.ports {
        if !module.body_refs.contains(&port.name) {
            let what = if port.dir == crate::ast::Dir::Input {
                "is never read"
            } else {
                "is never driven"
            };
            push(
                findings,
                "unused-port",
                format!("{} port {} {what} in the module body", port.dir, port.name),
            );
        }
    }

    let env = default_env(module);
    check_addr_widths(&module.name, &module.params, &env, findings);

    let widths = net_widths(module, &env);
    let scope = declared_names(module);

    for inst in &module.instances {
        for name in duplicates(inst.params.iter().map(|(n, _)| n.as_str())) {
            push(
                findings,
                "duplicate-parameter",
                format!("instance {} overrides parameter {name} twice", inst.name),
            );
        }
        for name in duplicates(inst.connections.iter().map(|(n, _)| n.as_str())) {
            push(
                findings,
                "duplicate-port",
                format!("instance {} connects port {name} twice", inst.name),
            );
        }

        // Every identifier mentioned in override/connection expressions
        // must exist in the parent scope.
        for (_, value) in inst.params.iter().chain(&inst.connections) {
            for ident in expr::idents(value) {
                if !scope.contains(ident.as_str()) {
                    push(
                        findings,
                        "undeclared-identifier",
                        format!(
                            "instance {} references undeclared identifier {ident} in {value:?}",
                            inst.name
                        ),
                    );
                }
            }
        }

        // Magic numbers: a literal override where the module already has
        // a parameter carrying that value.
        for (pname, value) in &inst.params {
            let Ok(literal) = value.parse::<i64>() else {
                continue;
            };
            if literal <= 1 {
                continue; // 0/1 literals are idiomatic, not magic
            }
            let named = module
                .params
                .iter()
                .chain(&module.localparams)
                .filter_map(|(n, _)| env.get(n).map(|v| (n, *v)))
                .find(|&(_, v)| v == literal);
            if let Some((name, _)) = named {
                push(
                    findings,
                    "magic-number",
                    format!(
                        "instance {} hardcodes {pname}={literal} where parameter {name} holds that value",
                        inst.name
                    ),
                );
            }
        }

        let Some(child) = by_name.get(inst.module.as_str()) else {
            push(
                findings,
                "unknown-module",
                format!(
                    "instance {} references unknown module {}",
                    inst.name, inst.module
                ),
            );
            continue;
        };

        for (pname, _) in &inst.params {
            if !child.params.iter().any(|(n, _)| n == pname) {
                push(
                    findings,
                    "unknown-parameter",
                    format!(
                        "instance {} overrides parameter {pname} that {} does not declare",
                        inst.name, child.name
                    ),
                );
            }
        }
        for (cname, _) in &inst.connections {
            if child.port(cname).is_none() {
                push(
                    findings,
                    "unknown-port",
                    format!(
                        "instance {} connects port {cname} that {} does not declare",
                        inst.name, child.name
                    ),
                );
            }
        }
        for port in &child.ports {
            if !inst.connections.iter().any(|(n, _)| n == &port.name) {
                push(
                    findings,
                    "unconnected-port",
                    format!(
                        "instance {} leaves port {} of {} unconnected",
                        inst.name, port.name, child.name
                    ),
                );
            }
        }

        let child_env = instance_env(child, inst, &env);
        check_addr_widths_instance(&module.name, inst, child, &child_env, findings);

        // Width agreement, where both sides resolve statically. Slices,
        // expressions and unsized literals are implicitly resized by
        // Verilog and stay unjudged (see expr::connection_width).
        for (cname, value) in &inst.connections {
            let Some(port) = child.port(cname) else {
                continue;
            };
            let port_width = match &port.range {
                None => Some(1),
                Some(r) => expr::range_width(r, &child_env).ok(),
            };
            let (Some(pw), Some(cw)) = (port_width, expr::connection_width(value, &widths)) else {
                continue;
            };
            if pw != cw {
                push(
                    findings,
                    "width-mismatch",
                    format!(
                        "instance {}: port {cname} of {} is {pw} bit(s) but connection {value:?} is {cw} bit(s)",
                        inst.name, child.name
                    ),
                );
            }
        }
    }
}

/// `X_AW`/`X_DEPTH` (and `ADDR_WIDTH`/`DEPTH`) parameter pairs must
/// satisfy `2^aw >= depth`, else the address bus cannot reach every
/// memory word.
fn pair_violations(params: &[(String, String)], env: &Env) -> Vec<(String, i64, String, i64)> {
    let mut out = Vec::new();
    for (name, _) in params {
        let depth_name = if name == "ADDR_WIDTH" {
            "DEPTH".to_owned()
        } else if let Some(prefix) = name.strip_suffix("_AW") {
            format!("{prefix}_DEPTH")
        } else {
            continue;
        };
        let (Some(&aw), Some(&depth)) = (env.get(name), env.get(&depth_name)) else {
            continue;
        };
        if !(0..63).contains(&aw) || depth < 0 {
            continue;
        }
        if (1i64 << aw) < depth {
            out.push((name.clone(), aw, depth_name, depth));
        }
    }
    out
}

fn check_addr_widths(
    module: &str,
    params: &[(String, String)],
    env: &Env,
    findings: &mut Vec<LintFinding>,
) {
    for (aw_name, aw, depth_name, depth) in pair_violations(params, env) {
        findings.push(LintFinding {
            module: module.to_owned(),
            rule: "addr-width",
            message: format!(
                "{aw_name}={aw} addresses only {} words but {depth_name}={depth}",
                1i64 << aw
            ),
        });
    }
}

fn check_addr_widths_instance(
    module: &str,
    inst: &ParsedInstance,
    child: &ParsedModule,
    child_env: &Env,
    findings: &mut Vec<LintFinding>,
) {
    for (aw_name, aw, depth_name, depth) in pair_violations(&child.params, child_env) {
        findings.push(LintFinding {
            module: module.to_owned(),
            rule: "addr-width",
            message: format!(
                "instance {} resolves {aw_name}={aw} ({} words) against {depth_name}={depth} in {}",
                inst.name,
                1i64 << aw,
                child.name
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_modules;
    use crate::templates::generate;
    use tsn_resource::ResourceConfig;

    fn lint_src(src: &str) -> Vec<LintFinding> {
        lint_modules(&parse_modules(src).expect("parses"))
    }

    fn rules(findings: &[LintFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn shipped_default_bundle_lints_clean() {
        let bundle = generate(&ResourceConfig::new()).expect("generates");
        let modules = parse_modules(&bundle.concatenated()).expect("parses");
        let findings = lint_modules(&modules);
        assert!(
            findings.is_empty(),
            "shipped output must lint clean, got:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn flags_width_mismatch_on_plain_identifier_connections() {
        let src = "module child ( input [7:0] d );\n\
                   wire probe;\nassign probe = d[0];\nendmodule\n\
                   module parent ( input clk );\n\
                   wire [3:0] narrow;\n\
                   assign narrow = {4{clk}};\n\
                   child u0 ( .d(narrow) );\nendmodule\n";
        let findings = lint_src(src);
        assert_eq!(rules(&findings), vec!["width-mismatch"]);
        assert!(findings[0].message.contains("8 bit(s)"));
        assert!(findings[0].message.contains("4 bit(s)"));
    }

    #[test]
    fn width_checks_skip_slices_and_expressions() {
        let src = "module child ( input [7:0] d, input v );\n\
                   wire probe;\nassign probe = d[0] & v;\nendmodule\n\
                   module parent ( input clk );\n\
                   wire [31:0] bus;\n\
                   wire a;\n\
                   assign bus = 0;\n\
                   assign a = clk;\n\
                   child u0 ( .d(bus[9:2]), .v(a & clk) );\nendmodule\n";
        assert!(lint_src(src).is_empty());
    }

    #[test]
    fn sized_literals_participate_in_width_checks() {
        let src = "module child ( input [3:0] d );\n\
                   wire probe;\nassign probe = d[0];\nendmodule\n\
                   module parent ( input clk );\n\
                   wire probe2;\nassign probe2 = clk;\n\
                   child u0 ( .d(8'hff) );\nendmodule\n";
        assert_eq!(rules(&lint_src(src)), vec!["width-mismatch"]);
    }

    #[test]
    fn width_checks_honour_parameter_overrides() {
        let src = "module child #(\n parameter W = 8\n) ( input [W-1:0] d );\n\
                   wire probe;\nassign probe = d[0];\nendmodule\n\
                   module parent #(\n parameter BUS = 16\n) ( input clk );\n\
                   wire [BUS-1:0] bus;\n\
                   assign bus = {BUS{clk}};\n\
                   child #(.W(BUS)) u0 ( .d(bus) );\nendmodule\n";
        assert!(lint_src(src).is_empty());
        // Without the override the default (8) mismatches the 16-bit bus.
        let bad = src.replace("#(.W(BUS)) ", "");
        assert_eq!(rules(&lint_src(&bad)), vec!["width-mismatch"]);
    }

    #[test]
    fn flags_unused_ports() {
        let src = "module m ( input clk, input unused_in, output unused_out );\n\
                   wire x;\nassign x = clk;\nendmodule\n";
        let findings = lint_src(src);
        assert_eq!(rules(&findings), vec!["unused-port", "unused-port"]);
        assert!(findings[0].message.contains("never read"));
        assert!(findings[1].message.contains("never driven"));
    }

    #[test]
    fn flags_undeclared_identifiers_in_connections() {
        let src = "module child ( input d );\n\
                   wire probe;\nassign probe = d;\nendmodule\n\
                   module parent ( input clk );\n\
                   wire probe2;\nassign probe2 = clk;\n\
                   child u0 ( .d(ghost_net) );\nendmodule\n";
        let findings = lint_src(src);
        assert_eq!(rules(&findings), vec!["undeclared-identifier"]);
        assert!(findings[0].message.contains("ghost_net"));
    }

    #[test]
    fn flags_duplicate_parameters_and_ports() {
        let src = "module m #(\n parameter W = 8,\n parameter W = 9\n) ( input clk, input clk );\n\
                   wire x;\nassign x = clk & W;\nendmodule\n";
        let r = rules(&lint_src(src));
        assert!(r.contains(&"duplicate-parameter"));
        assert!(r.contains(&"duplicate-port"));
    }

    #[test]
    fn flags_unknown_module_parameter_and_port() {
        let src = "module child #(\n parameter W = 8\n) ( input [W-1:0] d );\n\
                   wire probe;\nassign probe = d[0];\nendmodule\n\
                   module parent ( input clk );\n\
                   wire [7:0] b;\n\
                   assign b = {8{clk}};\n\
                   child u0 ( .d(b), .extra(clk) );\n\
                   child #(.NOPE(3)) u1 ( .d(b) );\n\
                   mystery u2 ( .q(b) );\nendmodule\n";
        let r = rules(&lint_src(src));
        assert!(r.contains(&"unknown-port"));
        assert!(r.contains(&"unknown-parameter"));
        assert!(r.contains(&"unknown-module"));
    }

    #[test]
    fn flags_unconnected_ports() {
        let src = "module child ( input a, input b );\n\
                   wire probe;\nassign probe = a & b;\nendmodule\n\
                   module parent ( input clk );\n\
                   child u0 ( .a(clk) );\nendmodule\n";
        let findings = lint_src(src);
        assert_eq!(rules(&findings), vec!["unconnected-port"]);
        assert!(findings[0].message.contains("port b"));
    }

    #[test]
    fn flags_magic_numbers_shadowing_parameters() {
        let src = "module child #(\n parameter DEPTH = 4\n) ( input clk );\n\
                   wire probe;\nassign probe = clk;\nendmodule\n\
                   module parent #(\n parameter QUEUE_DEPTH = 12\n) ( input clk );\n\
                   child #(.DEPTH(12)) u0 ( .clk(clk) );\nendmodule\n";
        let findings = lint_src(src);
        assert_eq!(rules(&findings), vec!["magic-number"]);
        assert!(findings[0].message.contains("QUEUE_DEPTH"));
    }

    #[test]
    fn flags_addr_width_too_small_for_depth() {
        let src =
            "module m #(\n parameter DEPTH = 16,\n parameter ADDR_WIDTH = 3\n) ( input clk );\n\
                   wire x;\nassign x = clk;\nendmodule\n";
        let findings = lint_src(src);
        assert_eq!(rules(&findings), vec!["addr-width"]);
        assert!(findings[0].message.contains("ADDR_WIDTH=3"));
        // The prefixed form is checked too, including through overrides.
        let src2 = "module fifo #(\n parameter DEPTH = 4,\n parameter ADDR_WIDTH = 2\n) ( input clk );\n\
                    wire probe;\nassign probe = clk;\nendmodule\n\
                    module parent #(\n parameter Q_DEPTH = 64,\n parameter Q_AW = 6\n) ( input clk );\n\
                    fifo #(.DEPTH(Q_DEPTH), .ADDR_WIDTH(2)) u0 ( .clk(clk) );\nendmodule\n";
        let r = rules(&lint_src(src2));
        assert!(r.contains(&"addr-width"));
    }
}
