//! Verilog generation for the five TSN-Builder templates.
//!
//! This is the synthesis-stage output of Fig. 1: given a
//! [`ResourceConfig`], emit parameterized Verilog where every memory
//! (table, queue, buffer pool) is sized by the customization APIs. The
//! control-heavy datapaths (full parser, DMA glue — things FAST provides
//! on the real platform) are left as clearly-marked hook points, while
//! the resource-bearing structures (memories, FIFOs, GCL state machine,
//! priority encoder, token-bucket and credit arithmetic) are generated as
//! complete RTL.

use crate::ast::{Item, Module, Port};
use crate::validate::check_source;
use tsn_resource::ResourceConfig;
use tsn_types::{TsnError, TsnResult};

/// A generated set of Verilog files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdlBundle {
    files: Vec<(String, String)>,
}

impl HdlBundle {
    /// The generated `(file name, source)` pairs, top module last.
    #[must_use]
    pub fn files(&self) -> &[(String, String)] {
        &self.files
    }

    /// Looks up one file's source by name (e.g. `"gate_ctrl.v"`).
    #[must_use]
    pub fn file(&self, name: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, src)| src.as_str())
    }

    /// All files concatenated into a single source (what a one-file
    /// project hand-off would ship).
    #[must_use]
    pub fn concatenated(&self) -> String {
        self.files
            .iter()
            .map(|(_, src)| src.as_str())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Total source lines.
    #[must_use]
    pub fn total_lines(&self) -> usize {
        self.files.iter().map(|(_, s)| s.lines().count()).sum()
    }
}

fn clog2(value: u32) -> u32 {
    32 - value.max(1).next_power_of_two().leading_zeros() - 1
}

fn addr_width(depth: u32) -> u32 {
    clog2(depth).max(1)
}

/// Generates the complete per-switch HDL bundle for `config` and
/// validates every file.
///
/// # Errors
///
/// Returns [`TsnError::InvalidArtifact`] if any generated file fails
/// lexical validation (a generator bug), or propagates configuration
/// errors.
pub fn generate(config: &ResourceConfig) -> TsnResult<HdlBundle> {
    let modules = vec![
        ("dpram.v", dpram()),
        ("meta_fifo.v", meta_fifo()),
        ("time_sync.v", time_sync()),
        ("packet_switch.v", packet_switch(config)),
        ("ingress_filter.v", ingress_filter(config)),
        ("gate_ctrl.v", gate_ctrl(config)),
        ("egress_sched.v", egress_sched(config)),
        ("tsn_switch_top.v", top(config)),
        ("tsn_switch_tb.v", testbench(config)),
    ];
    let files: Vec<(String, String)> = modules
        .into_iter()
        .map(|(name, module)| (name.to_owned(), module.emit()))
        .collect();
    for (name, src) in &files {
        check_source(src).map_err(|e| TsnError::InvalidArtifact(format!("{name}: {e}")))?;
    }
    let bundle = HdlBundle { files };
    check_source(&bundle.concatenated())?;
    Ok(bundle)
}

/// Generic simple-dual-port RAM, the BRAM-inferrable primitive every
/// table maps onto.
fn dpram() -> Module {
    let mut m = Module::new("dpram");
    m.param("WIDTH", 32)
        .param("DEPTH", 1024)
        .param("ADDR_WIDTH", 10)
        .port(Port::input("1", "clk"))
        .port(Port::input("1", "wr_en"))
        .port(Port::input("ADDR_WIDTH", "wr_addr"))
        .port(Port::input("WIDTH", "wr_data"))
        .port(Port::input("ADDR_WIDTH", "rd_addr"))
        .port(Port::output_reg("WIDTH", "rd_data"))
        .item(Item::Comment(
            "inferred block RAM; one 18Kb/36Kb primitive per instance".into(),
        ))
        .item(Item::Memory {
            width: "WIDTH".into(),
            depth: "DEPTH".into(),
            name: "mem".into(),
        })
        .item(Item::Always {
            sensitivity: "posedge clk".into(),
            body: vec![
                "if (wr_en) mem[wr_addr] <= wr_data;".into(),
                "rd_data <= mem[rd_addr];".into(),
            ],
        });
    m
}

/// Metadata FIFO: one per queue, depth = `queue_depth`.
fn meta_fifo() -> Module {
    let mut m = Module::new("meta_fifo");
    m.param("WIDTH", 32)
        .param("DEPTH", 12)
        .param("ADDR_WIDTH", 4)
        .port(Port::input("1", "clk"))
        .port(Port::input("1", "rst_n"))
        .port(Port::input("1", "push"))
        .port(Port::input("WIDTH", "din"))
        .port(Port::input("1", "pop"))
        .port(Port::output_reg("WIDTH", "dout"))
        .port(Port::output("1", "full"))
        .port(Port::output("1", "empty"))
        .item(Item::Memory {
            width: "WIDTH".into(),
            depth: "DEPTH".into(),
            name: "mem".into(),
        })
        .item(Item::Reg {
            width: "ADDR_WIDTH+1".into(),
            name: "wr_ptr".into(),
        })
        .item(Item::Reg {
            width: "ADDR_WIDTH+1".into(),
            name: "rd_ptr".into(),
        })
        .item(Item::Wire {
            width: "ADDR_WIDTH+1".into(),
            name: "level".into(),
        })
        .item(Item::Assign {
            lhs: "level".into(),
            rhs: "wr_ptr - rd_ptr".into(),
        })
        .item(Item::Assign {
            lhs: "full".into(),
            rhs: "level == DEPTH".into(),
        })
        .item(Item::Assign {
            lhs: "empty".into(),
            rhs: "level == 0".into(),
        })
        .item(Item::Always {
            sensitivity: "posedge clk".into(),
            body: vec![
                "if (!rst_n) begin".into(),
                "    wr_ptr <= 0;".into(),
                "    rd_ptr <= 0;".into(),
                "end else begin".into(),
                "    if (push && !full) begin".into(),
                "        mem[wr_ptr[ADDR_WIDTH-1:0]] <= din;".into(),
                "        wr_ptr <= wr_ptr + 1;".into(),
                "    end".into(),
                "    if (pop && !empty) begin".into(),
                "        dout <= mem[rd_ptr[ADDR_WIDTH-1:0]];".into(),
                "        rd_ptr <= rd_ptr + 1;".into(),
                "    end".into(),
                "end".into(),
            ],
        });
    m
}

/// gPTP correction datapath: offset + rate-ratio registers applied to the
/// free-running counter (the "clock correction" submodule of Fig. 5).
fn time_sync() -> Module {
    let mut m = Module::new("time_sync");
    m.param("TS_WIDTH", 64)
        .param("FRAC_WIDTH", 32)
        .port(Port::input("1", "clk"))
        .port(Port::input("1", "rst_n"))
        .port(Port::input("1", "corr_wr"))
        .port(Port::input("TS_WIDTH", "corr_offset"))
        .port(Port::input("FRAC_WIDTH", "corr_rate"))
        .port(Port::output_reg("TS_WIDTH", "ptp_time"))
        .item(Item::Comment(
            "collection of clock time: free-running counter".into(),
        ))
        .item(Item::Reg {
            width: "TS_WIDTH".into(),
            name: "raw_time".into(),
        })
        .item(Item::Reg {
            width: "TS_WIDTH".into(),
            name: "offset_reg".into(),
        })
        .item(Item::Reg {
            width: "FRAC_WIDTH".into(),
            name: "rate_reg".into(),
        })
        .item(Item::Comment(
            "calculation of correction time happens on the embedded CPU; the".into(),
        ))
        .item(Item::Comment(
            "result is written through corr_wr (clock correction submodule)".into(),
        ))
        .item(Item::Always {
            sensitivity: "posedge clk".into(),
            body: vec![
                "if (!rst_n) begin".into(),
                "    raw_time <= 0;".into(),
                "    offset_reg <= 0;".into(),
                "    rate_reg <= 0;".into(),
                "    ptp_time <= 0;".into(),
                "end else begin".into(),
                "    raw_time <= raw_time + 8; // 125 MHz -> 8 ns per cycle".into(),
                "    if (corr_wr) begin".into(),
                "        offset_reg <= corr_offset;".into(),
                "        rate_reg <= corr_rate;".into(),
                "    end".into(),
                "    ptp_time <= raw_time + offset_reg + ((raw_time * rate_reg) >> FRAC_WIDTH);"
                    .into(),
                "end".into(),
            ],
        });
    m
}

/// Packet Switch template: parser hook + unicast/multicast lookup.
fn packet_switch(config: &ResourceConfig) -> Module {
    let unicast = config.unicast_size().max(1);
    let multicast = config.multicast_size().max(1);
    let mut m = Module::new("packet_switch");
    m.param("UNICAST_DEPTH", unicast)
        .param("UNICAST_AW", addr_width(unicast))
        .param("MULTICAST_DEPTH", multicast)
        .param("MULTICAST_AW", addr_width(multicast))
        .param("ENTRY_WIDTH", config.widths().switch_tbl_bits)
        .param("KEY_WIDTH", 60) // 48-bit dst MAC + 12-bit VID
        .param("PORT_WIDTH", 4)
        .port(Port::input("1", "clk"))
        .port(Port::input("1", "rst_n"))
        .port(Port::input("1", "lookup_valid"))
        .port(Port::input("KEY_WIDTH", "lookup_key"))
        .port(Port::input("1", "is_multicast"))
        .port(Port::input("MULTICAST_AW", "mc_index"))
        .port(Port::output_reg("1", "hit"))
        .port(Port::output_reg("PORT_WIDTH", "out_port"))
        .port(Port::input("1", "cfg_wr"))
        .port(Port::input("UNICAST_AW", "cfg_addr"))
        .port(Port::input("ENTRY_WIDTH", "cfg_data"))
        .item(Item::Comment(
            "lookup submodule: hash-indexed unicast table (Dst MAC + VID)".into(),
        ))
        .item(Item::Wire {
            width: "UNICAST_AW".into(),
            name: "hash_index".into(),
        })
        .item(Item::Assign {
            lhs: "hash_index".into(),
            rhs: "lookup_key[UNICAST_AW-1:0] ^ lookup_key[2*UNICAST_AW-1:UNICAST_AW]".into(),
        })
        .item(Item::Wire {
            width: "ENTRY_WIDTH".into(),
            name: "unicast_entry".into(),
        })
        .item(Item::Instance {
            module: "dpram".into(),
            name: "u_unicast_tbl".into(),
            params: vec![
                ("WIDTH".into(), "ENTRY_WIDTH".into()),
                ("DEPTH".into(), "UNICAST_DEPTH".into()),
                ("ADDR_WIDTH".into(), "UNICAST_AW".into()),
            ],
            connections: vec![
                ("clk".into(), "clk".into()),
                ("wr_en".into(), "cfg_wr".into()),
                ("wr_addr".into(), "cfg_addr".into()),
                ("wr_data".into(), "cfg_data".into()),
                ("rd_addr".into(), "hash_index".into()),
                ("rd_data".into(), "unicast_entry".into()),
            ],
        })
        .item(Item::Wire {
            width: "ENTRY_WIDTH".into(),
            name: "multicast_entry".into(),
        })
        .item(Item::Instance {
            module: "dpram".into(),
            name: "u_multicast_tbl".into(),
            params: vec![
                ("WIDTH".into(), "ENTRY_WIDTH".into()),
                ("DEPTH".into(), "MULTICAST_DEPTH".into()),
                ("ADDR_WIDTH".into(), "MULTICAST_AW".into()),
            ],
            connections: vec![
                ("clk".into(), "clk".into()),
                ("wr_en".into(), "1'b0".into()),
                ("wr_addr".into(), "mc_index".into()),
                ("wr_data".into(), "multicast_entry".into()),
                ("rd_addr".into(), "mc_index".into()),
                ("rd_data".into(), "multicast_entry".into()),
            ],
        })
        .item(Item::Comment(
            "entry layout: [KEY_WIDTH-1:0] stored key, then the out-port".into(),
        ))
        .item(Item::Always {
            sensitivity: "posedge clk".into(),
            body: vec![
                "if (!rst_n) begin".into(),
                "    hit <= 1'b0;".into(),
                "    out_port <= 0;".into(),
                "end else if (lookup_valid) begin".into(),
                "    if (is_multicast) begin".into(),
                "        hit <= 1'b1;".into(),
                "        out_port <= multicast_entry[PORT_WIDTH-1:0];".into(),
                "    end else begin".into(),
                "        hit <= unicast_entry[KEY_WIDTH-1:0] == lookup_key;".into(),
                "        out_port <= unicast_entry[KEY_WIDTH+PORT_WIDTH-1:KEY_WIDTH];".into(),
                "    end".into(),
                "end".into(),
            ],
        });
    m
}

/// Ingress Filter template: classification table + meter table with the
/// token-bucket refill/charge arithmetic.
fn ingress_filter(config: &ResourceConfig) -> Module {
    let class = config.class_size().max(1);
    let meters = config.meter_size().max(1);
    let mut m = Module::new("ingress_filter");
    m.param("CLASS_DEPTH", class)
        .param("CLASS_AW", addr_width(class))
        .param("CLASS_WIDTH", config.widths().class_tbl_bits)
        .param("METER_DEPTH", meters)
        .param("METER_AW", addr_width(meters))
        .param("METER_WIDTH", config.widths().meter_tbl_bits)
        .param("QUEUE_WIDTH", 3)
        .port(Port::input("1", "clk"))
        .port(Port::input("1", "rst_n"))
        .port(Port::input("1", "classify_valid"))
        .port(Port::input("CLASS_AW", "class_index"))
        .port(Port::input("16", "frame_bytes"))
        .port(Port::output_reg("1", "accept"))
        .port(Port::output_reg("QUEUE_WIDTH", "queue_id"))
        .port(Port::input("1", "cfg_wr"))
        .port(Port::input("CLASS_AW", "cfg_addr"))
        .port(Port::input("CLASS_WIDTH", "cfg_data"))
        .item(Item::Comment(
            "classifier: (Src MAC, Dst MAC, VID, PRI) hashed upstream to class_index".into(),
        ))
        .item(Item::Wire {
            width: "CLASS_WIDTH".into(),
            name: "class_entry".into(),
        })
        .item(Item::Instance {
            module: "dpram".into(),
            name: "u_class_tbl".into(),
            params: vec![
                ("WIDTH".into(), "CLASS_WIDTH".into()),
                ("DEPTH".into(), "CLASS_DEPTH".into()),
                ("ADDR_WIDTH".into(), "CLASS_AW".into()),
            ],
            connections: vec![
                ("clk".into(), "clk".into()),
                ("wr_en".into(), "cfg_wr".into()),
                ("wr_addr".into(), "cfg_addr".into()),
                ("wr_data".into(), "cfg_data".into()),
                ("rd_addr".into(), "class_index".into()),
                ("rd_data".into(), "class_entry".into()),
            ],
        })
        .item(Item::Comment(
            "meter table: entry = {tokens[31:0], rate[23:0], burst[11:0]}".into(),
        ))
        .item(Item::Memory {
            width: "METER_WIDTH".into(),
            depth: "METER_DEPTH".into(),
            name: "meter_tbl".into(),
        })
        .item(Item::Wire {
            width: "METER_AW".into(),
            name: "meter_id".into(),
        })
        .item(Item::Assign {
            lhs: "meter_id".into(),
            rhs: "class_entry[METER_AW-1:0]".into(),
        })
        .item(Item::Reg {
            width: "32".into(),
            name: "tokens".into(),
        })
        .item(Item::Always {
            sensitivity: "posedge clk".into(),
            body: vec![
                "if (!rst_n) begin".into(),
                "    accept <= 1'b0;".into(),
                "    queue_id <= 0;".into(),
                "    tokens <= 0;".into(),
                "end else if (classify_valid) begin".into(),
                "    // token-bucket police: refill then charge".into(),
                "    tokens = meter_tbl[meter_id][31:0] + meter_tbl[meter_id][55:32];".into(),
                "    if (tokens >= {16'd0, frame_bytes}) begin".into(),
                "        meter_tbl[meter_id][31:0] <= tokens - {16'd0, frame_bytes};".into(),
                "        accept <= 1'b1;".into(),
                "    end else begin".into(),
                "        meter_tbl[meter_id][31:0] <= tokens;".into(),
                "        accept <= 1'b0;".into(),
                "    end".into(),
                "    queue_id <= class_entry[METER_AW+QUEUE_WIDTH-1:METER_AW];".into(),
                "end".into(),
            ],
        });
    m
}

/// Gate Ctrl template: slot counter + In/Out GCL lookup + the per-queue
/// metadata FIFOs.
fn gate_ctrl(config: &ResourceConfig) -> Module {
    let gate = config.gate_size().max(1);
    let queues = config.queue_num().max(1);
    let depth = config.queue_depth().max(1);
    let mut m = Module::new("gate_ctrl");
    m.param("GCL_DEPTH", gate)
        .param("GCL_AW", addr_width(gate))
        .param("GATE_WIDTH", config.widths().gate_tbl_bits)
        .param("QUEUE_NUM", queues)
        .param("QUEUE_DEPTH", depth)
        .param("QUEUE_AW", addr_width(depth))
        .param("META_WIDTH", config.widths().queue_meta_bits)
        .param("SLOT_NS", 65_000)
        .port(Port::input("1", "clk"))
        .port(Port::input("1", "rst_n"))
        .port(Port::input("64", "ptp_time"))
        .port(Port::input("1", "enq_valid"))
        .port(Port::input("QUEUE_NUM", "enq_queue_onehot"))
        .port(Port::input("META_WIDTH", "enq_meta"))
        .port(Port::input("QUEUE_NUM", "deq_queue_onehot"))
        .port(Port::output("META_WIDTH", "deq_meta"))
        .port(Port::output("QUEUE_NUM", "in_gate_state"))
        .port(Port::output("QUEUE_NUM", "out_gate_state"))
        .port(Port::output("QUEUE_NUM", "queue_empty"))
        .port(Port::output("QUEUE_NUM", "queue_full"))
        .port(Port::input("1", "cfg_wr"))
        .port(Port::input("GCL_AW", "cfg_addr"))
        .port(Port::input("2*GATE_WIDTH", "cfg_data"))
        .item(Item::Comment(
            "update module: the current slot selects one In/Out GCL entry".into(),
        ))
        .item(Item::Memory {
            width: "GATE_WIDTH".into(),
            depth: "GCL_DEPTH".into(),
            name: "in_gcl".into(),
        })
        .item(Item::Memory {
            width: "GATE_WIDTH".into(),
            depth: "GCL_DEPTH".into(),
            name: "out_gcl".into(),
        })
        .item(Item::Wire {
            width: "64".into(),
            name: "slot_index".into(),
        })
        .item(Item::Assign {
            lhs: "slot_index".into(),
            rhs: "ptp_time / SLOT_NS".into(),
        })
        .item(Item::Wire {
            width: "GCL_AW".into(),
            name: "gcl_sel".into(),
        })
        .item(Item::Assign {
            lhs: "gcl_sel".into(),
            rhs: "slot_index % GCL_DEPTH".into(),
        })
        .item(Item::Assign {
            lhs: "in_gate_state".into(),
            rhs: "in_gcl[gcl_sel][QUEUE_NUM-1:0]".into(),
        })
        .item(Item::Assign {
            lhs: "out_gate_state".into(),
            rhs: "out_gcl[gcl_sel][QUEUE_NUM-1:0]".into(),
        })
        .item(Item::Always {
            sensitivity: "posedge clk".into(),
            body: vec![
                "if (cfg_wr) begin".into(),
                "    in_gcl[cfg_addr] <= cfg_data[GATE_WIDTH-1:0];".into(),
                "    out_gcl[cfg_addr] <= cfg_data[2*GATE_WIDTH-1:GATE_WIDTH];".into(),
                "end".into(),
            ],
        })
        .item(Item::Comment(
            "per-queue metadata FIFOs (one BRAM primitive each)".into(),
        ))
        .item(Item::Wire {
            width: "QUEUE_NUM*META_WIDTH".into(),
            name: "deq_meta_bus".into(),
        });
    for q in 0..queues {
        m.item(Item::Instance {
            module: "meta_fifo".into(),
            name: format!("u_queue{q}"),
            params: vec![
                ("WIDTH".into(), "META_WIDTH".into()),
                ("DEPTH".into(), "QUEUE_DEPTH".into()),
                ("ADDR_WIDTH".into(), "QUEUE_AW".into()),
            ],
            connections: vec![
                ("clk".into(), "clk".into()),
                ("rst_n".into(), "rst_n".into()),
                (
                    "push".into(),
                    format!("enq_valid & enq_queue_onehot[{q}] & in_gate_state[{q}]"),
                ),
                ("din".into(), "enq_meta".into()),
                (
                    "pop".into(),
                    format!("deq_queue_onehot[{q}] & out_gate_state[{q}]"),
                ),
                (
                    "dout".into(),
                    format!("deq_meta_bus[{q}*META_WIDTH +: META_WIDTH]"),
                ),
                ("full".into(), format!("queue_full[{q}]")),
                ("empty".into(), format!("queue_empty[{q}]")),
            ],
        });
    }
    m.item(Item::Comment(
        "dequeue mux over the one-hot selected queue".into(),
    ))
    .item(Item::Assign {
        lhs: "deq_meta".into(),
        rhs: mux_expr(queues),
    });
    m
}

fn mux_expr(queues: u32) -> String {
    let mut expr = String::from("0");
    for q in 0..queues {
        expr = format!(
            "deq_queue_onehot[{q}] ? deq_meta_bus[{q}*META_WIDTH +: META_WIDTH] : ({expr})"
        );
    }
    expr
}

/// Egress Sched template: strict-priority encoder over gate-eligible
/// queues plus the CBS credit arithmetic.
fn egress_sched(config: &ResourceConfig) -> Module {
    let queues = config.queue_num().max(1);
    let cbs = config.cbs_size().max(1);
    let mut m = Module::new("egress_sched");
    m.param("QUEUE_NUM", queues)
        .param("CBS_DEPTH", cbs)
        .param("CBS_AW", addr_width(cbs))
        .param("CBS_WIDTH", config.widths().cbs_tbl_bits)
        .param("MAP_WIDTH", config.widths().cbs_map_bits)
        .port(Port::input("1", "clk"))
        .port(Port::input("1", "rst_n"))
        .port(Port::input("QUEUE_NUM", "queue_ready"))
        .port(Port::input("QUEUE_NUM", "out_gate_state"))
        .port(Port::output_reg("QUEUE_NUM", "grant_onehot"))
        .port(Port::input("1", "cfg_wr"))
        .port(Port::input("CBS_AW", "cfg_addr"))
        .port(Port::input("CBS_WIDTH", "cfg_data"))
        .item(Item::Comment(
            "CBS map table: queue -> shaper; CBS table: {idleslope, sendslope}".into(),
        ))
        .item(Item::Memory {
            width: "MAP_WIDTH".into(),
            depth: "QUEUE_NUM".into(),
            name: "cbs_map_tbl".into(),
        })
        .item(Item::Memory {
            width: "CBS_WIDTH".into(),
            depth: "CBS_DEPTH".into(),
            name: "cbs_tbl".into(),
        })
        .item(Item::Memory {
            width: "32".into(),
            depth: "CBS_DEPTH".into(),
            name: "credit".into(),
        })
        .item(Item::Always {
            sensitivity: "posedge clk".into(),
            body: vec!["if (cfg_wr) cbs_tbl[cfg_addr] <= cfg_data;".into()],
        })
        .item(Item::Wire {
            width: "QUEUE_NUM".into(),
            name: "eligible".into(),
        })
        .item(Item::Assign {
            lhs: "eligible".into(),
            rhs: "queue_ready & out_gate_state".into(),
        })
        .item(Item::Comment(
            "strict priority: highest eligible queue index wins".into(),
        ))
        .item(Item::Always {
            sensitivity: "posedge clk".into(),
            body: priority_encoder_body(queues),
        });
    m
}

fn priority_encoder_body(queues: u32) -> Vec<String> {
    let mut body = vec![
        "if (!rst_n) begin".to_owned(),
        "    grant_onehot <= 0;".to_owned(),
        "end else begin".to_owned(),
        "    grant_onehot <= 0;".to_owned(),
    ];
    for q in (0..queues).rev() {
        let keyword = if q == queues - 1 { "if" } else { "else if" };
        body.push(format!(
            "    {keyword} (eligible[{q}]) grant_onehot[{q}] <= 1'b1;"
        ));
    }
    body.push("end".to_owned());
    body
}

/// Top level: Time Sync + shared Packet Switch / Ingress Filter + one
/// Gate Ctrl and Egress Sched per enabled TSN port.
fn top(config: &ResourceConfig) -> Module {
    let ports = config.port_num().max(1);
    let mut m = Module::new("tsn_switch_top");
    m.param("PORT_NUM", ports)
        .param("META_WIDTH", config.widths().queue_meta_bits)
        .param("QUEUE_NUM", config.queue_num())
        .port(Port::input("1", "clk"))
        .port(Port::input("1", "rst_n"))
        .port(Port::input("1", "rx_valid"))
        .port(Port::input("60", "rx_key"))
        .port(Port::input("16", "rx_bytes"))
        .port(Port::output("PORT_NUM*META_WIDTH", "tx_meta"))
        .port(Port::input("1", "cfg_wr"))
        .port(Port::input("32", "cfg_addr"))
        .port(Port::input("128", "cfg_data"))
        .item(Item::Comment(format!(
            "generated by tsn-builder: {} unicast, {} class, {} meters, gate {}x{}q, depth {}, {} buffers, {} port(s)",
            config.unicast_size(),
            config.class_size(),
            config.meter_size(),
            config.gate_size(),
            config.queue_num(),
            config.queue_depth(),
            config.buffer_num(),
            ports,
        )))
        .item(Item::Wire {
            width: "64".into(),
            name: "ptp_time".into(),
        })
        .item(Item::Instance {
            module: "time_sync".into(),
            name: "u_time_sync".into(),
            params: vec![],
            connections: vec![
                ("clk".into(), "clk".into()),
                ("rst_n".into(), "rst_n".into()),
                ("corr_wr".into(), "cfg_wr".into()),
                ("corr_offset".into(), "cfg_data[63:0]".into()),
                ("corr_rate".into(), "cfg_data[95:64]".into()),
                ("ptp_time".into(), "ptp_time".into()),
            ],
        })
        .item(Item::Wire {
            width: "1".into(),
            name: "lookup_hit".into(),
        })
        .item(Item::Wire {
            width: "4".into(),
            name: "lookup_port".into(),
        })
        .item(Item::Instance {
            module: "packet_switch".into(),
            name: "u_packet_switch".into(),
            params: vec![],
            connections: vec![
                ("clk".into(), "clk".into()),
                ("rst_n".into(), "rst_n".into()),
                ("lookup_valid".into(), "rx_valid".into()),
                ("lookup_key".into(), "rx_key".into()),
                ("is_multicast".into(), "1'b0".into()),
                ("mc_index".into(), "0".into()),
                ("hit".into(), "lookup_hit".into()),
                ("out_port".into(), "lookup_port".into()),
                ("cfg_wr".into(), "cfg_wr".into()),
                ("cfg_addr".into(), "cfg_addr[9:0]".into()),
                ("cfg_data".into(), "cfg_data[71:0]".into()),
            ],
        })
        .item(Item::Wire {
            width: "1".into(),
            name: "filter_accept".into(),
        })
        .item(Item::Wire {
            width: "3".into(),
            name: "filter_queue".into(),
        })
        .item(Item::Instance {
            module: "ingress_filter".into(),
            name: "u_ingress_filter".into(),
            params: vec![],
            connections: vec![
                ("clk".into(), "clk".into()),
                ("rst_n".into(), "rst_n".into()),
                ("classify_valid".into(), "rx_valid".into()),
                ("class_index".into(), "cfg_addr[9:0]".into()),
                ("frame_bytes".into(), "rx_bytes".into()),
                ("accept".into(), "filter_accept".into()),
                ("queue_id".into(), "filter_queue".into()),
                ("cfg_wr".into(), "cfg_wr".into()),
                ("cfg_addr".into(), "cfg_addr[9:0]".into()),
                ("cfg_data".into(), "cfg_data[116:0]".into()),
            ],
        });
    for p in 0..ports {
        m.item(Item::Comment(format!("enabled TSN port {p}")))
            .item(Item::Wire {
                width: "QUEUE_NUM".into(),
                name: format!("p{p}_in_gate"),
            })
            .item(Item::Wire {
                width: "QUEUE_NUM".into(),
                name: format!("p{p}_out_gate"),
            })
            .item(Item::Wire {
                width: "QUEUE_NUM".into(),
                name: format!("p{p}_empty"),
            })
            .item(Item::Wire {
                width: "QUEUE_NUM".into(),
                name: format!("p{p}_full"),
            })
            .item(Item::Wire {
                width: "QUEUE_NUM".into(),
                name: format!("p{p}_grant"),
            })
            .item(Item::Instance {
                module: "gate_ctrl".into(),
                name: format!("u_gate_ctrl{p}"),
                params: vec![],
                connections: vec![
                    ("clk".into(), "clk".into()),
                    ("rst_n".into(), "rst_n".into()),
                    ("ptp_time".into(), "ptp_time".into()),
                    (
                        "enq_valid".into(),
                        format!("rx_valid & filter_accept & lookup_hit & (lookup_port == {p})"),
                    ),
                    (
                        "enq_queue_onehot".into(),
                        "{{(QUEUE_NUM-1){1'b0}}, 1'b1} << filter_queue".into(),
                    ),
                    ("enq_meta".into(), "rx_key[META_WIDTH-1:0]".into()),
                    ("deq_queue_onehot".into(), format!("p{p}_grant")),
                    (
                        "deq_meta".into(),
                        format!("tx_meta[{p}*META_WIDTH +: META_WIDTH]"),
                    ),
                    ("in_gate_state".into(), format!("p{p}_in_gate")),
                    ("out_gate_state".into(), format!("p{p}_out_gate")),
                    ("queue_empty".into(), format!("p{p}_empty")),
                    ("queue_full".into(), format!("p{p}_full")),
                    ("cfg_wr".into(), "cfg_wr".into()),
                    ("cfg_addr".into(), "cfg_addr[0:0]".into()),
                    ("cfg_data".into(), "cfg_data[33:0]".into()),
                ],
            })
            .item(Item::Instance {
                module: "egress_sched".into(),
                name: format!("u_egress_sched{p}"),
                params: vec![],
                connections: vec![
                    ("clk".into(), "clk".into()),
                    ("rst_n".into(), "rst_n".into()),
                    ("queue_ready".into(), format!("~p{p}_empty")),
                    ("out_gate_state".into(), format!("p{p}_out_gate")),
                    ("grant_onehot".into(), format!("p{p}_grant")),
                    ("cfg_wr".into(), "cfg_wr".into()),
                    ("cfg_addr".into(), "cfg_addr[1:0]".into()),
                    ("cfg_data".into(), "cfg_data[63:0]".into()),
                ],
            });
    }
    m
}

/// A smoke testbench: 125 MHz clock, reset, a couple of configuration
/// writes and a lookup pulse, then `$finish`. Enough to elaborate the
/// whole design in any simulator and watch the datapath move.
fn testbench(config: &ResourceConfig) -> Module {
    let mut m = Module::new("tsn_switch_tb");
    m.item(Item::Comment(
        "smoke testbench generated alongside the design".into(),
    ))
    .item(Item::Reg {
        width: "1".into(),
        name: "clk".into(),
    })
    .item(Item::Reg {
        width: "1".into(),
        name: "rst_n".into(),
    })
    .item(Item::Reg {
        width: "1".into(),
        name: "rx_valid".into(),
    })
    .item(Item::Reg {
        width: "60".into(),
        name: "rx_key".into(),
    })
    .item(Item::Reg {
        width: "16".into(),
        name: "rx_bytes".into(),
    })
    .item(Item::Reg {
        width: "1".into(),
        name: "cfg_wr".into(),
    })
    .item(Item::Reg {
        width: "32".into(),
        name: "cfg_addr".into(),
    })
    .item(Item::Reg {
        width: "128".into(),
        name: "cfg_data".into(),
    })
    .item(Item::Wire {
        width: format!(
            "{}*{}",
            config.port_num().max(1),
            config.widths().queue_meta_bits
        ),
        name: "tx_meta".into(),
    })
    .item(Item::Instance {
        module: "tsn_switch_top".into(),
        name: "dut".into(),
        params: vec![],
        connections: vec![
            ("clk".into(), "clk".into()),
            ("rst_n".into(), "rst_n".into()),
            ("rx_valid".into(), "rx_valid".into()),
            ("rx_key".into(), "rx_key".into()),
            ("rx_bytes".into(), "rx_bytes".into()),
            ("tx_meta".into(), "tx_meta".into()),
            ("cfg_wr".into(), "cfg_wr".into()),
            ("cfg_addr".into(), "cfg_addr".into()),
            ("cfg_data".into(), "cfg_data".into()),
        ],
    })
    .item(Item::Comment("125 MHz clock".into()))
    .item(Item::Raw("always #4 clk = ~clk;".into()))
    .item(Item::Initial {
        body: vec![
            "clk = 1'b0;".into(),
            "rst_n = 1'b0;".into(),
            "rx_valid = 1'b0;".into(),
            "rx_key = 0;".into(),
            "rx_bytes = 16'd64;".into(),
            "cfg_wr = 1'b0;".into(),
            "cfg_addr = 0;".into(),
            "cfg_data = 0;".into(),
            "#40 rst_n = 1'b1;".into(),
            "// program one unicast entry".into(),
            "#8 cfg_wr = 1'b1;".into(),
            "cfg_addr = 32'd1;".into(),
            "cfg_data = 128'h2a;".into(),
            "#8 cfg_wr = 1'b0;".into(),
            "// present one frame key".into(),
            "#8 rx_valid = 1'b1;".into(),
            "rx_key = 60'h2a;".into(),
            "#8 rx_valid = 1'b0;".into(),
            "#400 $finish;".into(),
        ],
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clog2_values() {
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(3), 2);
        assert_eq!(clog2(8), 3);
        assert_eq!(clog2(1024), 10);
        assert_eq!(clog2(1025), 11);
        assert_eq!(
            addr_width(1),
            1,
            "a 1-deep memory still needs an address bit"
        );
    }

    #[test]
    fn generate_produces_all_nine_files() {
        let bundle = generate(&ResourceConfig::new()).expect("generation succeeds");
        let names: Vec<&str> = bundle.files().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "dpram.v",
                "meta_fifo.v",
                "time_sync.v",
                "packet_switch.v",
                "ingress_filter.v",
                "gate_ctrl.v",
                "egress_sched.v",
                "tsn_switch_top.v",
                "tsn_switch_tb.v"
            ]
        );
        assert!(bundle.total_lines() > 200, "non-trivial RTL volume");
        let tb = bundle.file("tsn_switch_tb.v").expect("testbench emitted");
        assert!(tb.contains("tsn_switch_top dut ("));
        assert!(tb.contains("$finish"));
    }

    #[test]
    fn parameters_reflect_the_resource_config() {
        let mut cfg = ResourceConfig::new();
        cfg.set_class_tbl(2048)
            .expect("valid")
            .set_queues(24, 8, 2)
            .expect("valid");
        let bundle = generate(&cfg).expect("generation succeeds");
        let filter = bundle.file("ingress_filter.v").expect("file exists");
        assert!(filter.contains("parameter CLASS_DEPTH = 2048"));
        let gates = bundle.file("gate_ctrl.v").expect("file exists");
        assert!(gates.contains("parameter QUEUE_DEPTH = 24"));
        let top = bundle.file("tsn_switch_top.v").expect("file exists");
        assert!(top.contains("parameter PORT_NUM = 2"));
        assert!(top.contains("u_gate_ctrl1"));
        assert!(!top.contains("u_gate_ctrl2"));
    }

    #[test]
    fn per_queue_fifos_are_instantiated() {
        let bundle = generate(&ResourceConfig::new()).expect("generation succeeds");
        let gates = bundle.file("gate_ctrl.v").expect("file exists");
        for q in 0..8 {
            assert!(gates.contains(&format!("u_queue{q}")), "queue {q} FIFO");
        }
    }

    #[test]
    fn every_file_passes_validation_for_varied_configs() {
        for ports in [1u32, 2, 3, 4] {
            let mut cfg = ResourceConfig::new();
            cfg.set_gate_tbl(2, 8, ports)
                .expect("valid")
                .set_buffers(96, ports)
                .expect("valid");
            let bundle = generate(&cfg).expect("generation succeeds");
            for (name, src) in bundle.files() {
                check_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }

    #[test]
    fn top_comment_documents_the_customization() {
        let bundle = generate(&tsn_resource::baseline::bcm53154()).expect("generation succeeds");
        let top = bundle.file("tsn_switch_top.v").expect("file exists");
        assert!(top.contains("16384 unicast"));
        assert!(top.contains("4 port(s)"));
    }
}
