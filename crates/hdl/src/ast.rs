//! A small Verilog-2001 AST sufficient for the TSN-Builder templates.
//!
//! The paper's deliverable is parameterized Verilog whose memory geometry
//! comes from the customization APIs. This AST models exactly what those
//! templates need: modules with parameters, ports, nets, memory arrays,
//! module instances and behavioural `always` blocks.

use core::fmt;

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `output reg`
    OutputReg,
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dir::Input => f.write_str("input"),
            Dir::Output => f.write_str("output"),
            Dir::OutputReg => f.write_str("output reg"),
        }
    }
}

/// A module parameter with a default value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// Parameter name (conventionally SCREAMING_SNAKE_CASE).
    pub name: String,
    /// Default value expression (usually a decimal literal).
    pub value: String,
}

/// A module port.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Port {
    /// Direction.
    pub dir: Dir,
    /// Bit width expression; `"1"` renders without a range, anything else
    /// renders as `[expr-1:0]`.
    pub width: String,
    /// Port name.
    pub name: String,
}

impl Port {
    /// An `input` port.
    #[must_use]
    pub fn input(width: impl Into<String>, name: impl Into<String>) -> Self {
        Port {
            dir: Dir::Input,
            width: width.into(),
            name: name.into(),
        }
    }

    /// An `output` port.
    #[must_use]
    pub fn output(width: impl Into<String>, name: impl Into<String>) -> Self {
        Port {
            dir: Dir::Output,
            width: width.into(),
            name: name.into(),
        }
    }

    /// An `output reg` port.
    #[must_use]
    pub fn output_reg(width: impl Into<String>, name: impl Into<String>) -> Self {
        Port {
            dir: Dir::OutputReg,
            width: width.into(),
            name: name.into(),
        }
    }
}

/// One item in a module body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Item {
    /// `// comment`
    Comment(String),
    /// `wire [w-1:0] name;`
    Wire {
        /// Width expression.
        width: String,
        /// Net name.
        name: String,
    },
    /// `reg [w-1:0] name;`
    Reg {
        /// Width expression.
        width: String,
        /// Register name.
        name: String,
    },
    /// `reg [w-1:0] name [0:depth-1];` — a BRAM-inferrable memory.
    Memory {
        /// Element width expression.
        width: String,
        /// Depth expression.
        depth: String,
        /// Memory name.
        name: String,
    },
    /// `assign lhs = rhs;`
    Assign {
        /// Left-hand side.
        lhs: String,
        /// Right-hand side expression.
        rhs: String,
    },
    /// `localparam name = value;`
    Localparam {
        /// Name.
        name: String,
        /// Value expression.
        value: String,
    },
    /// An `always @(sensitivity) begin … end` block; `body` lines are
    /// emitted verbatim, indented.
    Always {
        /// Sensitivity list, e.g. `posedge clk`.
        sensitivity: String,
        /// Statement lines.
        body: Vec<String>,
    },
    /// An `initial begin … end` block (testbenches).
    Initial {
        /// Statement lines.
        body: Vec<String>,
    },
    /// A verbatim line (e.g. `always #4 clk = ~clk;`). Still subject to
    /// the validator.
    Raw(String),
    /// A module instance.
    Instance {
        /// Instantiated module name.
        module: String,
        /// Instance name.
        name: String,
        /// `#(…)` parameter overrides.
        params: Vec<(String, String)>,
        /// `.port(net)` connections.
        connections: Vec<(String, String)>,
    },
}

/// A Verilog module.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Ports.
    pub ports: Vec<Port>,
    /// Body items.
    pub items: Vec<Item>,
}

impl Module {
    /// Creates an empty module.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            params: Vec::new(),
            ports: Vec::new(),
            items: Vec::new(),
        }
    }

    /// Adds a parameter.
    pub fn param(&mut self, name: impl Into<String>, value: impl fmt::Display) -> &mut Self {
        self.params.push(Param {
            name: name.into(),
            value: value.to_string(),
        });
        self
    }

    /// Adds a port.
    pub fn port(&mut self, port: Port) -> &mut Self {
        self.ports.push(port);
        self
    }

    /// Adds a body item.
    pub fn item(&mut self, item: Item) -> &mut Self {
        self.items.push(item);
        self
    }

    /// Renders the module as Verilog source.
    #[must_use]
    pub fn emit(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("module {}", self.name));
        if !self.params.is_empty() {
            out.push_str(" #(\n");
            let lines: Vec<String> = self
                .params
                .iter()
                .map(|p| format!("    parameter {} = {}", p.name, p.value))
                .collect();
            out.push_str(&lines.join(",\n"));
            out.push_str("\n)");
        }
        out.push_str(" (\n");
        let ports: Vec<String> = self
            .ports
            .iter()
            .map(|p| {
                if p.width == "1" {
                    format!("    {} {}", p.dir, p.name)
                } else {
                    format!("    {} [{}-1:0] {}", p.dir, p.width, p.name)
                }
            })
            .collect();
        out.push_str(&ports.join(",\n"));
        out.push_str("\n);\n");
        for item in &self.items {
            emit_item(&mut out, item);
        }
        out.push_str("endmodule\n");
        out
    }
}

fn emit_item(out: &mut String, item: &Item) {
    match item {
        Item::Comment(text) => out.push_str(&format!("    // {text}\n")),
        Item::Wire { width, name } => {
            if width == "1" {
                out.push_str(&format!("    wire {name};\n"));
            } else {
                out.push_str(&format!("    wire [{width}-1:0] {name};\n"));
            }
        }
        Item::Reg { width, name } => {
            if width == "1" {
                out.push_str(&format!("    reg {name};\n"));
            } else {
                out.push_str(&format!("    reg [{width}-1:0] {name};\n"));
            }
        }
        Item::Memory { width, depth, name } => {
            out.push_str(&format!("    reg [{width}-1:0] {name} [0:{depth}-1];\n"));
        }
        Item::Assign { lhs, rhs } => out.push_str(&format!("    assign {lhs} = {rhs};\n")),
        Item::Localparam { name, value } => {
            out.push_str(&format!("    localparam {name} = {value};\n"));
        }
        Item::Always { sensitivity, body } => {
            out.push_str(&format!("    always @({sensitivity}) begin\n"));
            for line in body {
                out.push_str(&format!("        {line}\n"));
            }
            out.push_str("    end\n");
        }
        Item::Initial { body } => {
            out.push_str("    initial begin\n");
            for line in body {
                out.push_str(&format!("        {line}\n"));
            }
            out.push_str("    end\n");
        }
        Item::Raw(line) => {
            out.push_str(&format!("    {line}\n"));
        }
        Item::Instance {
            module,
            name,
            params,
            connections,
        } => {
            out.push_str(&format!("    {module}"));
            if !params.is_empty() {
                let p: Vec<String> = params.iter().map(|(k, v)| format!(".{k}({v})")).collect();
                out.push_str(&format!(" #({})", p.join(", ")));
            }
            out.push_str(&format!(" {name} (\n"));
            let c: Vec<String> = connections
                .iter()
                .map(|(port, net)| format!("        .{port}({net})"))
                .collect();
            out.push_str(&c.join(",\n"));
            out.push_str("\n    );\n");
        }
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.emit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Module {
        let mut m = Module::new("demo");
        m.param("WIDTH", 32)
            .param("DEPTH", 16)
            .port(Port::input("1", "clk"))
            .port(Port::input("WIDTH", "din"))
            .port(Port::output_reg("WIDTH", "dout"))
            .item(Item::Comment("demo memory".into()))
            .item(Item::Memory {
                width: "WIDTH".into(),
                depth: "DEPTH".into(),
                name: "mem".into(),
            })
            .item(Item::Always {
                sensitivity: "posedge clk".into(),
                body: vec!["dout <= mem[0];".into()],
            });
        m
    }

    #[test]
    fn emits_module_skeleton() {
        let text = demo().emit();
        assert!(text.starts_with("module demo #(\n"));
        assert!(text.contains("parameter WIDTH = 32"));
        assert!(text.contains("input clk"));
        assert!(text.contains("input [WIDTH-1:0] din"));
        assert!(text.contains("output reg [WIDTH-1:0] dout"));
        assert!(text.contains("reg [WIDTH-1:0] mem [0:DEPTH-1];"));
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn always_block_renders_body() {
        let text = demo().emit();
        assert!(text.contains("always @(posedge clk) begin"));
        assert!(text.contains("dout <= mem[0];"));
    }

    #[test]
    fn instance_with_params_and_connections() {
        let mut m = Module::new("top");
        m.port(Port::input("1", "clk")).item(Item::Instance {
            module: "fifo".into(),
            name: "u_fifo0".into(),
            params: vec![("DEPTH".into(), "12".into())],
            connections: vec![("clk".into(), "clk".into()), ("din".into(), "8'h00".into())],
        });
        let text = m.emit();
        assert!(text.contains("fifo #(.DEPTH(12)) u_fifo0 ("));
        assert!(text.contains(".clk(clk)"));
        assert!(text.contains(".din(8'h00)"));
    }

    #[test]
    fn scalar_ports_have_no_range() {
        let mut m = Module::new("t");
        m.port(Port::input("1", "rst_n"));
        assert!(m.emit().contains("input rst_n\n"));
        assert!(!m.emit().contains("[1-1:0]"));
    }

    #[test]
    fn display_matches_emit() {
        let m = demo();
        assert_eq!(m.to_string(), m.emit());
    }
}
