//! BRAM and register cost of the *parsed* HDL, closed against
//! `tsn_resource`.
//!
//! [`cost_of`] elaborates a parsed design from a root module exactly the
//! way a synthesis tool would — folding parameter defaults, applying
//! instance overrides, recursing into children — and collects every
//! memory (with resolved entry count and width) plus every register bit.
//! [`check_agreement`] then demands bit-exact agreement with
//! [`tsn_resource::rtl`]'s independent prediction of the emitted memory
//! map under every [`AllocationPolicy`]. Because `tsn_resource::rtl` is
//! itself tied back to the Table III cost queries, this closes the loop:
//! config → emitted Verilog → parsed cost → paper accounting.

use crate::expr;
use crate::lint::{default_env, instance_env};
use crate::parse::ParsedModule;
use std::collections::BTreeMap;
use tsn_resource::bram::{AllocationPolicy, BRAM18_BITS, BRAM36_BITS};
use tsn_resource::{rtl, ResourceConfig};
use tsn_types::{TsnError, TsnResult};

/// One elaborated memory: a physical table/FIFO RAM instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryInstance {
    /// Hierarchical path below the root, e.g.
    /// `u_packet_switch.u_unicast_tbl.mem`.
    pub path: String,
    /// Module the memory is declared in.
    pub module: String,
    /// Declared memory name.
    pub memory: String,
    /// Resolved entry count (depth).
    pub entries: u64,
    /// Resolved entry width in bits.
    pub width_bits: u64,
}

impl MemoryInstance {
    /// Raw payload bits (`entries * width`).
    #[must_use]
    pub fn raw_bits(&self) -> u64 {
        self.entries.saturating_mul(self.width_bits)
    }
}

/// The full cost picture of one elaborated design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdlCost {
    /// Every memory instance below the root, in elaboration order.
    pub memories: Vec<MemoryInstance>,
    /// Total register bits (plain `reg`s plus `output reg` ports).
    pub register_bits: u64,
}

impl HdlCost {
    /// Total table bits under `policy` (each memory instance costed
    /// independently, as the paper's accounting does).
    #[must_use]
    pub fn table_bits(&self, policy: AllocationPolicy) -> u64 {
        self.memories.iter().fold(0u64, |acc, m| {
            acc.saturating_add(policy.table_cost_bits(m.entries, m.width_bits))
        })
    }

    /// 18 Kb BRAM primitives needed when each memory rounds up
    /// independently.
    #[must_use]
    pub fn bram18_blocks(&self) -> u64 {
        self.memories.iter().fold(0u64, |acc, m| {
            acc.saturating_add(m.raw_bits().div_ceil(BRAM18_BITS))
        })
    }

    /// 36 Kb BRAM blocks needed when each memory rounds up independently.
    #[must_use]
    pub fn bram36_blocks(&self) -> u64 {
        self.memories.iter().fold(0u64, |acc, m| {
            acc.saturating_add(m.raw_bits().div_ceil(BRAM36_BITS))
        })
    }
}

const MAX_DEPTH: usize = 32;

/// Elaborates `root` (usually `tsn_switch_top`) against the design in
/// `modules` and returns its memory map and register count.
///
/// # Errors
///
/// Returns [`TsnError::InvalidArtifact`] when an instantiated module is
/// missing from `modules`, a width/depth expression does not resolve to
/// a positive integer, or the hierarchy nests deeper than a generated
/// design ever does (a cycle).
pub fn cost_of(modules: &[ParsedModule], root: &str) -> TsnResult<HdlCost> {
    let by_name: BTreeMap<&str, &ParsedModule> =
        modules.iter().map(|m| (m.name.as_str(), m)).collect();
    let Some(root_module) = by_name.get(root) else {
        return Err(TsnError::InvalidArtifact(format!(
            "root module {root} not found in the parsed design"
        )));
    };
    let mut cost = HdlCost {
        memories: Vec::new(),
        register_bits: 0,
    };
    let env = default_env(root_module);
    elaborate(root_module, &by_name, &env, "", 0, &mut cost)?;
    Ok(cost)
}

fn resolve(
    module: &str,
    what: &str,
    range: Option<&crate::parse::ParsedRange>,
    env: &expr::Env,
) -> TsnResult<u64> {
    let width = match range {
        None => 1,
        Some(r) => expr::range_width(r, env).map_err(|e| {
            TsnError::InvalidArtifact(format!("{module}: cannot resolve {what}: {e}"))
        })?,
    };
    u64::try_from(width).map_err(|_| {
        TsnError::InvalidArtifact(format!("{module}: {what} resolved to negative {width}"))
    })
}

fn elaborate(
    module: &ParsedModule,
    by_name: &BTreeMap<&str, &ParsedModule>,
    env: &expr::Env,
    path: &str,
    depth: usize,
    cost: &mut HdlCost,
) -> TsnResult<()> {
    if depth > MAX_DEPTH {
        return Err(TsnError::InvalidArtifact(format!(
            "instantiation of {} nests deeper than {MAX_DEPTH} levels (cycle?)",
            module.name
        )));
    }
    for mem in &module.memories {
        let width_bits = resolve(
            &module.name,
            &format!("width of memory {}", mem.name),
            mem.range.as_ref(),
            env,
        )?;
        let entries = resolve(
            &module.name,
            &format!("depth of memory {}", mem.name),
            Some(&mem.depth),
            env,
        )?;
        cost.memories.push(MemoryInstance {
            path: format!("{path}{}", mem.name),
            module: module.name.clone(),
            memory: mem.name.clone(),
            entries,
            width_bits,
        });
    }
    let registers = module.regs.iter().map(|r| (&r.name, &r.range)).chain(
        module
            .ports
            .iter()
            .filter(|p| p.dir == crate::ast::Dir::OutputReg)
            .map(|p| (&p.name, &p.range)),
    );
    for (name, range) in registers {
        let bits = resolve(
            &module.name,
            &format!("width of register {name}"),
            range.as_ref(),
            env,
        )?;
        cost.register_bits = cost.register_bits.saturating_add(bits);
    }
    for inst in &module.instances {
        let Some(child) = by_name.get(inst.module.as_str()) else {
            return Err(TsnError::InvalidArtifact(format!(
                "{}: instance {} references unknown module {}",
                module.name, inst.name, inst.module
            )));
        };
        let child_env = instance_env(child, inst, env);
        let child_path = format!("{path}{}.", inst.name);
        elaborate(child, by_name, &child_env, &child_path, depth + 1, cost)?;
    }
    Ok(())
}

/// Demands bit-exact agreement between the parsed design's cost and
/// `tsn_resource`'s independent accounting of `cfg`.
///
/// Checked, in order:
/// 1. the full memory map — `(path, entries, width)` triples — against
///    [`rtl::emitted_memories`];
/// 2. total table bits under every [`AllocationPolicy`] against
///    [`rtl::emitted_table_bits`];
/// 3. BRAM18/BRAM36 block counts against the `rtl` mirror;
/// 4. register bits against [`rtl::emitted_register_bits`];
/// 5. per-group sums (class, meter, gate, queue memories) against the
///    Table III cost queries on `cfg` itself — the same numbers
///    `total_bits` is built from.
///
/// # Errors
///
/// Returns a diagnostic describing the first disagreement.
pub fn check_agreement(cfg: &ResourceConfig, modules: &[ParsedModule]) -> Result<(), String> {
    let cost = cost_of(modules, "tsn_switch_top").map_err(|e| e.to_string())?;

    let mut parsed: Vec<(&str, u64, u64)> = cost
        .memories
        .iter()
        .map(|m| (m.path.as_str(), m.entries, m.width_bits))
        .collect();
    parsed.sort_unstable();
    let expected_mems = rtl::emitted_memories(cfg);
    let mut expected: Vec<(&str, u64, u64)> = expected_mems
        .iter()
        .map(|m| (m.path.as_str(), m.entries, m.width_bits))
        .collect();
    expected.sort_unstable();
    if parsed != expected {
        return Err(format!(
            "memory map disagrees:\n  parsed   {parsed:?}\n  expected {expected:?}"
        ));
    }

    for policy in AllocationPolicy::ALL {
        let got = cost.table_bits(policy);
        let want = rtl::emitted_table_bits(cfg, policy);
        if got != want {
            return Err(format!(
                "table bits disagree under {policy}: parsed {got}, expected {want}"
            ));
        }
    }
    if cost.bram18_blocks() != rtl::emitted_bram18_blocks(cfg) {
        return Err(format!(
            "BRAM18 blocks disagree: parsed {}, expected {}",
            cost.bram18_blocks(),
            rtl::emitted_bram18_blocks(cfg)
        ));
    }
    if cost.bram36_blocks() != rtl::emitted_bram36_blocks(cfg) {
        return Err(format!(
            "BRAM36 blocks disagree: parsed {}, expected {}",
            cost.bram36_blocks(),
            rtl::emitted_bram36_blocks(cfg)
        ));
    }
    if cost.register_bits != rtl::emitted_register_bits(cfg) {
        return Err(format!(
            "register bits disagree: parsed {}, expected {}",
            cost.register_bits,
            rtl::emitted_register_bits(cfg)
        ));
    }

    // Group sums against the paper's own cost queries. These groups map
    // one-to-one onto Table III rows; the switch table (split into two
    // >=1-entry RAMs in RTL) and the CBS group (the RTL adds a per-queue
    // map and a credit array) are covered by the exact `rtl` mirror
    // above instead.
    for policy in AllocationPolicy::ALL {
        let group = |pred: &dyn Fn(&MemoryInstance) -> bool| {
            cost.memories
                .iter()
                .filter(|m| pred(m))
                .fold(0u64, |acc, m| {
                    acc.saturating_add(policy.table_cost_bits(m.entries, m.width_bits))
                })
        };
        let checks: [(&str, u64, u64); 4] = [
            (
                "class table",
                group(&|m| m.path.contains("u_class_tbl")),
                cfg.class_tbl_bits(policy),
            ),
            (
                "meter table",
                group(&|m| m.memory == "meter_tbl"),
                cfg.meter_tbl_bits(policy),
            ),
            (
                "gate tables",
                group(&|m| m.memory == "in_gcl" || m.memory == "out_gcl"),
                cfg.gate_tbl_bits(policy),
            ),
            (
                "queue FIFOs",
                group(&|m| m.path.contains(".u_queue")),
                cfg.queue_bits(policy),
            ),
        ];
        for (what, got, want) in checks {
            if got != want {
                return Err(format!(
                    "{what} bits disagree under {policy}: parsed {got}, expected {want}"
                ));
            }
        }
        // The RTL switch table can only cost more than the paper's
        // combined figure (two physical RAMs, each at least one entry).
        let switch_group = group(&|m| m.path.starts_with("u_packet_switch."));
        if switch_group < cfg.switch_tbl_bits(policy) {
            return Err(format!(
                "switch table bits {switch_group} fell below the paper figure {} under {policy}",
                cfg.switch_tbl_bits(policy)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_modules;
    use crate::templates::generate;

    fn parsed(cfg: &ResourceConfig) -> Vec<ParsedModule> {
        let bundle = generate(cfg).expect("generates");
        parse_modules(&bundle.concatenated()).expect("parses")
    }

    #[test]
    fn default_config_cost_agrees() {
        let cfg = ResourceConfig::new();
        check_agreement(&cfg, &parsed(&cfg)).expect("agrees");
    }

    #[test]
    fn commercial_baseline_cost_agrees() {
        let cfg = tsn_resource::baseline::bcm53154();
        check_agreement(&cfg, &parsed(&cfg)).expect("agrees");
    }

    #[test]
    fn varied_configs_agree() {
        let mut cfg = ResourceConfig::new();
        cfg.set_switch_tbl(0, 64)
            .expect("multicast-only is valid")
            .set_gate_tbl(154, 8, 3)
            .expect("valid")
            .set_cbs_tbl(0, 0, 3)
            .expect("shaping disabled")
            .set_queues(2, 8, 3)
            .expect("valid")
            .set_buffers(16, 3)
            .expect("valid");
        check_agreement(&cfg, &parsed(&cfg)).expect("agrees");
    }

    #[test]
    fn memory_paths_are_hierarchical() {
        let cfg = ResourceConfig::new();
        let cost = cost_of(&parsed(&cfg), "tsn_switch_top").expect("elaborates");
        let paths: Vec<&str> = cost.memories.iter().map(|m| m.path.as_str()).collect();
        assert!(paths.contains(&"u_packet_switch.u_unicast_tbl.mem"));
        assert!(paths.contains(&"u_ingress_filter.meter_tbl"));
        assert!(paths.contains(&"u_gate_ctrl0.u_queue7.mem"));
        assert!(paths.contains(&"u_egress_sched0.cbs_tbl"));
        let unicast = cost
            .memories
            .iter()
            .find(|m| m.path == "u_packet_switch.u_unicast_tbl.mem")
            .expect("unicast table present");
        assert_eq!(unicast.entries, 1024);
        assert_eq!(unicast.width_bits, 72);
        assert_eq!(unicast.module, "dpram");
        assert_eq!(unicast.memory, "mem");
    }

    #[test]
    fn testbench_is_outside_the_costed_hierarchy() {
        let cfg = ResourceConfig::new();
        let cost = cost_of(&parsed(&cfg), "tsn_switch_top").expect("elaborates");
        // The tb's own registers (cfg_data etc.) must not be counted.
        assert_eq!(cost.register_bits, rtl::emitted_register_bits(&cfg));
    }

    #[test]
    fn unknown_root_and_missing_children_error() {
        let cfg = ResourceConfig::new();
        let modules = parsed(&cfg);
        assert!(cost_of(&modules, "nonexistent").is_err());
        // Drop dpram: packet_switch's tables can no longer elaborate.
        let without: Vec<ParsedModule> = modules
            .iter()
            .filter(|m| m.name != "dpram")
            .cloned()
            .collect();
        assert!(cost_of(&without, "tsn_switch_top").is_err());
    }

    #[test]
    fn a_wrong_depth_edit_breaks_agreement() {
        let cfg = ResourceConfig::new();
        let bundle = generate(&cfg).expect("generates");
        let tampered = bundle
            .concatenated()
            .replace("parameter QUEUE_DEPTH = 12", "parameter QUEUE_DEPTH = 13");
        let modules = parse_modules(&tampered).expect("still parses");
        let err = check_agreement(&cfg, &modules).expect_err("must disagree");
        assert!(err.contains("memory map"), "unexpected diagnostic: {err}");
    }
}
