//! A structural Verilog parser: enough of the grammar to read back what
//! [`crate::templates`] emits and machine-check it.
//!
//! This is deliberately not a full Verilog front-end — it recovers the
//! *structure* a reviewer checks by eye, now rich enough for the
//! [`crate::lint`] and [`crate::cost`] passes to work on: module names,
//! parameter defaults, port directions/ranges, net and memory
//! declarations with their width/depth expressions, `assign` statements,
//! and module instantiations with their parameter overrides and named
//! connections. Width expressions stay textual here; [`crate::expr`]
//! evaluates them against a parameter environment.
//!
//! Every public entry point returns [`TsnError::InvalidArtifact`] on
//! malformed or truncated input — never a panic (pinned by the
//! prefix-truncation tests below).

use crate::ast::Dir;
use std::collections::BTreeSet;
use tsn_types::{TsnError, TsnResult};

/// One token of the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Number(String),
    Sym(char),
}

/// Lexes a source fragment. `//` line comments and `/* … */` block
/// comments (including multi-line ones) are skipped; an unterminated
/// block comment silently swallows the rest of the input, which the
/// structural checks downstream then report.
pub(crate) fn lex(source: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '/' {
            chars.next();
            match chars.peek() {
                Some(&'/') => {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some(&'*') => {
                    chars.next();
                    let mut prev = ' ';
                    for c in chars.by_ref() {
                        if prev == '*' && c == '/' {
                            break;
                        }
                        prev = c;
                    }
                }
                _ => toks.push(Tok::Sym('/')),
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                    ident.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Ident(ident));
        } else if c.is_ascii_digit() {
            let mut num = String::new();
            while let Some(&c) = chars.peek() {
                // Covers sized literals like 8'h00 and plain decimals.
                if c.is_ascii_alphanumeric() || c == '\'' || c == '_' {
                    num.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Number(num));
        } else {
            toks.push(Tok::Sym(c));
            chars.next();
        }
    }
    toks
}

/// A `[msb:lsb]` range, both bounds kept as expression text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRange {
    /// Left (most-significant / first) bound expression.
    pub msb: String,
    /// Right (least-significant / second) bound expression.
    pub lsb: String,
}

/// A parsed port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPort {
    /// Direction.
    pub dir: Dir,
    /// The `[msb:lsb]` range, if declared; `None` means a scalar port.
    pub range: Option<ParsedRange>,
    /// Port name.
    pub name: String,
}

impl ParsedPort {
    /// `true` when the port carries a `[..:..]` range.
    #[must_use]
    pub fn has_range(&self) -> bool {
        self.range.is_some()
    }
}

/// A parsed `wire`/`reg` net declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedNet {
    /// Width range, if declared; `None` means a 1-bit net.
    pub range: Option<ParsedRange>,
    /// Net name.
    pub name: String,
}

/// A parsed memory (`reg [w] name [d];`) declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedMemory {
    /// Element width range, if declared; `None` means 1-bit elements.
    pub range: Option<ParsedRange>,
    /// Depth range (e.g. `[0:DEPTH-1]`).
    pub depth: ParsedRange,
    /// Memory name.
    pub name: String,
}

/// A parsed module instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedInstance {
    /// Name of the instantiated module.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// `#(.NAME(expr))` parameter overrides, in order.
    pub params: Vec<(String, String)>,
    /// `.port(net-expr)` connections, in order.
    pub connections: Vec<(String, String)>,
}

/// A parsed module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedModule {
    /// Module name.
    pub name: String,
    /// `(parameter name, default expression)` pairs.
    pub params: Vec<(String, String)>,
    /// Ports, in declaration order.
    pub ports: Vec<ParsedPort>,
    /// `wire` declarations in the body.
    pub wires: Vec<ParsedNet>,
    /// Plain `reg` declarations in the body (memories excluded).
    pub regs: Vec<ParsedNet>,
    /// Memory (`reg [..] name [..];`) declarations.
    pub memories: Vec<ParsedMemory>,
    /// `localparam name = value;` pairs.
    pub localparams: Vec<(String, String)>,
    /// `assign lhs = rhs;` statements (lhs text, rhs text).
    pub assigns: Vec<(String, String)>,
    /// Module instantiations in the body.
    pub instances: Vec<ParsedInstance>,
    /// Every identifier mentioned anywhere in the body (declarations,
    /// expressions, sensitivity lists, connections) minus keywords. The
    /// unused-port lint checks ports against this set.
    pub body_refs: BTreeSet<String>,
}

impl ParsedModule {
    /// Looks a parameter's default expression up by name.
    #[must_use]
    pub fn param_default(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Looks a port up by name.
    #[must_use]
    pub fn port(&self, name: &str) -> Option<&ParsedPort> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Looks a memory up by name.
    #[must_use]
    pub fn memory(&self, name: &str) -> Option<&ParsedMemory> {
        self.memories.iter().find(|m| m.name == name)
    }
}

pub(crate) const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "reg",
    "wire",
    "assign",
    "always",
    "begin",
    "end",
    "if",
    "else",
    "parameter",
    "localparam",
    "posedge",
    "negedge",
    "initial",
    "forever",
    "integer",
];

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char, context: &str) -> TsnResult<()> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            Err(TsnError::InvalidArtifact(format!(
                "expected {c:?} in {context}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self, what: &str) -> TsnResult<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(TsnError::InvalidArtifact(format!(
                "expected {what}, found {other:?}"
            ))),
        }
    }

    /// Collects tokens until one of `stops` appears at depth 0 (brackets
    /// tracked), rendering them back to text. Running out of tokens ends
    /// the scan: truncated input surfaces as a structured parse error at
    /// the caller (which will miss its stop symbol), never as a panic.
    fn text_until(&mut self, stops: &[char]) -> String {
        let mut depth = 0i32;
        let mut out = String::new();
        let mut prev_word = false;
        while let Some(tok) = self.peek() {
            if depth == 0 {
                if let Tok::Sym(c) = tok {
                    if stops.contains(c) {
                        break;
                    }
                }
            }
            let Some(tok) = self.next() else { break };
            match tok {
                Tok::Sym(c) => {
                    match c {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => depth -= 1,
                        _ => {}
                    }
                    out.push(c);
                    prev_word = false;
                }
                Tok::Ident(s) | Tok::Number(s) => {
                    // Space only between adjacent word tokens, so
                    // `WIDTH-1` and `A*2` render back verbatim.
                    if prev_word {
                        out.push(' ');
                    }
                    out.push_str(&s);
                    prev_word = true;
                }
            }
        }
        out
    }

    /// Parses an optional `[msb:lsb]` range in a declaration position.
    fn parse_range(&mut self) -> TsnResult<Option<ParsedRange>> {
        if !self.eat_sym('[') {
            return Ok(None);
        }
        let msb = self.text_until(&[':', ']']);
        self.expect_sym(':', "range")?;
        let lsb = self.text_until(&[']']);
        self.expect_sym(']', "range")?;
        Ok(Some(ParsedRange { msb, lsb }))
    }

    /// Parses a `.name(expr)` list terminated by `)` — shared by
    /// parameter overrides and port connections. Tokens that are neither
    /// `.name(expr)` nor commas (e.g. positional arguments) are skipped.
    fn parse_named_list(&mut self, what: &str) -> TsnResult<Vec<(String, String)>> {
        let mut out = Vec::new();
        loop {
            if self.eat_sym(')') {
                return Ok(out);
            }
            if self.eat_sym('.') {
                let name = self.expect_ident(what)?;
                self.expect_sym('(', what)?;
                let value = self.text_until(&[')']);
                self.expect_sym(')', what)?;
                out.push((name, value));
            } else if self.next().is_none() {
                return Err(TsnError::InvalidArtifact(format!("unterminated {what}")));
            }
        }
    }

    fn parse_module(&mut self) -> TsnResult<ParsedModule> {
        let name = self.expect_ident("module name")?;
        let mut module = ParsedModule {
            name,
            params: Vec::new(),
            ports: Vec::new(),
            wires: Vec::new(),
            regs: Vec::new(),
            memories: Vec::new(),
            localparams: Vec::new(),
            assigns: Vec::new(),
            instances: Vec::new(),
            body_refs: BTreeSet::new(),
        };

        // #( parameter N = V, ... )
        if self.eat_sym('#') {
            self.expect_sym('(', "parameter list")?;
            loop {
                match self.next() {
                    Some(Tok::Ident(kw)) if kw == "parameter" => {
                        let pname = self.expect_ident("parameter name")?;
                        self.expect_sym('=', "parameter")?;
                        let value = self.text_until(&[',', ')']);
                        module.params.push((pname, value));
                    }
                    Some(Tok::Sym(',')) => {}
                    Some(Tok::Sym(')')) => break,
                    other => {
                        return Err(TsnError::InvalidArtifact(format!(
                            "unexpected token in parameter list: {other:?}"
                        )))
                    }
                }
            }
        }

        // ( port declarations )
        if !self.eat_sym('(') {
            return Err(TsnError::InvalidArtifact(
                "expected port list after module header".to_owned(),
            ));
        }
        loop {
            match self.next() {
                Some(Tok::Sym(')')) => break,
                Some(Tok::Sym(',')) => {}
                Some(Tok::Ident(dir_kw)) if ["input", "output"].contains(&dir_kw.as_str()) => {
                    let mut dir = if dir_kw == "input" {
                        Dir::Input
                    } else {
                        Dir::Output
                    };
                    // Optional `reg`.
                    if self.peek() == Some(&Tok::Ident("reg".to_owned())) {
                        self.pos += 1;
                        if dir == Dir::Output {
                            dir = Dir::OutputReg;
                        }
                    }
                    let range = self.parse_range()?;
                    let pname = self.expect_ident("port name")?;
                    module.ports.push(ParsedPort {
                        dir,
                        range,
                        name: pname,
                    });
                }
                other => {
                    return Err(TsnError::InvalidArtifact(format!(
                        "unexpected token in port list: {other:?}"
                    )))
                }
            }
        }
        self.expect_sym(';', "module header")?;

        // Body: structured declarations, instances, endmodule.
        let body_start = self.pos;
        loop {
            match self.next() {
                None => {
                    return Err(TsnError::InvalidArtifact(format!(
                        "module {} missing endmodule",
                        module.name
                    )))
                }
                Some(Tok::Ident(kw)) if kw == "endmodule" => break,
                Some(Tok::Ident(kw)) if kw == "wire" => {
                    let range = self.parse_range()?;
                    let name = self.expect_ident("wire name")?;
                    self.text_until(&[';']);
                    self.expect_sym(';', "wire declaration")?;
                    module.wires.push(ParsedNet { range, name });
                }
                Some(Tok::Ident(kw)) if kw == "reg" => {
                    let range = self.parse_range()?;
                    let name = self.expect_ident("reg name")?;
                    let depth = self.parse_range()?;
                    self.text_until(&[';']);
                    self.expect_sym(';', "reg declaration")?;
                    match depth {
                        Some(depth) => module.memories.push(ParsedMemory { range, depth, name }),
                        None => module.regs.push(ParsedNet { range, name }),
                    }
                }
                Some(Tok::Ident(kw)) if kw == "localparam" => {
                    let name = self.expect_ident("localparam name")?;
                    self.expect_sym('=', "localparam")?;
                    let value = self.text_until(&[';']);
                    self.expect_sym(';', "localparam")?;
                    module.localparams.push((name, value));
                }
                Some(Tok::Ident(kw)) if kw == "assign" => {
                    let lhs = self.text_until(&['=']);
                    self.expect_sym('=', "assign")?;
                    let rhs = self.text_until(&[';']);
                    self.expect_sym(';', "assign")?;
                    module.assigns.push((lhs, rhs));
                }
                Some(Tok::Ident(ident)) if !KEYWORDS.contains(&ident.as_str()) => {
                    // Candidate instantiation:
                    //   IDENT [#(.P(v), …)] IDENT ( .p(n), … );
                    // Anything that stops matching before the opening
                    // `(` of the connection list backtracks (it was an
                    // expression statement, not an instance).
                    let saved = self.pos;
                    let mut params = Vec::new();
                    if self.eat_sym('#') {
                        if !self.eat_sym('(') {
                            self.pos = saved;
                            continue;
                        }
                        params = self.parse_named_list("parameter override")?;
                    }
                    let Some(Tok::Ident(inst_name)) = self.peek().cloned() else {
                        self.pos = saved;
                        continue;
                    };
                    self.pos += 1;
                    if !self.eat_sym('(') {
                        self.pos = saved;
                        continue;
                    }
                    let connections = self.parse_named_list("connection")?;
                    self.expect_sym(';', "instance")?;
                    module.instances.push(ParsedInstance {
                        module: ident,
                        name: inst_name,
                        params,
                        connections,
                    });
                }
                _ => {}
            }
        }
        // `self.pos - 1` points past the consumed `endmodule`.
        for tok in &self.toks[body_start..self.pos.saturating_sub(1)] {
            if let Tok::Ident(s) = tok {
                if !KEYWORDS.contains(&s.as_str()) {
                    module.body_refs.insert(s.clone());
                }
            }
        }
        Ok(module)
    }
}

/// Parses every module in a Verilog source string.
///
/// # Errors
///
/// Returns [`TsnError::InvalidArtifact`] on structurally broken input
/// (missing `endmodule`, malformed parameter/port lists, truncated
/// declarations).
///
/// # Example
///
/// ```
/// use tsn_hdl::parse::parse_modules;
///
/// let src = "module m #(\n parameter W = 8\n) (\n input clk,\n output [W-1:0] q\n);\nendmodule\n";
/// let modules = parse_modules(src)?;
/// assert_eq!(modules.len(), 1);
/// assert_eq!(modules[0].name, "m");
/// assert_eq!(modules[0].params, vec![("W".to_owned(), "8".to_owned())]);
/// assert_eq!(modules[0].ports.len(), 2);
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
pub fn parse_modules(source: &str) -> TsnResult<Vec<ParsedModule>> {
    let mut parser = Parser {
        toks: lex(source),
        pos: 0,
    };
    let mut modules = Vec::new();
    while let Some(tok) = parser.next() {
        if tok == Tok::Ident("module".to_owned()) {
            modules.push(parser.parse_module()?);
        }
    }
    Ok(modules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Item, Module, Port};
    use crate::templates::generate;
    use tsn_resource::ResourceConfig;

    #[test]
    fn parses_a_hand_written_module() {
        let src = "module demo #(\n    parameter WIDTH = 32,\n    parameter DEPTH = 16\n) (\n    input clk,\n    input [WIDTH-1:0] din,\n    output reg [WIDTH-1:0] dout\n);\n    reg [WIDTH-1:0] mem [0:DEPTH-1];\nendmodule\n";
        let modules = parse_modules(src).expect("parses");
        assert_eq!(modules.len(), 1);
        let m = &modules[0];
        assert_eq!(m.name, "demo");
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0], ("WIDTH".to_owned(), "32".to_owned()));
        assert_eq!(m.ports.len(), 3);
        assert_eq!(
            m.ports[0],
            ParsedPort {
                dir: Dir::Input,
                range: None,
                name: "clk".into()
            }
        );
        assert_eq!(m.ports[2].dir, Dir::OutputReg);
        assert!(m.ports[2].has_range());
        assert_eq!(
            m.ports[2].range.as_ref().map(|r| r.msb.as_str()),
            Some("WIDTH-1")
        );
        assert_eq!(m.memories.len(), 1);
        let mem = m.memory("mem").expect("memory parsed");
        assert_eq!(mem.depth.msb, "0");
        assert_eq!(mem.depth.lsb, "DEPTH-1");
        assert_eq!(mem.range.as_ref().map(|r| r.msb.as_str()), Some("WIDTH-1"));
    }

    #[test]
    fn parses_instances_with_overrides_and_connections() {
        let src = "module top (\n    input clk\n);\n    fifo #(.DEPTH(12)) u_f (\n        .clk(clk),\n        .din(8'h00)\n    );\nendmodule\n";
        let modules = parse_modules(src).expect("parses");
        assert_eq!(
            modules[0].instances,
            vec![ParsedInstance {
                module: "fifo".into(),
                name: "u_f".into(),
                params: vec![("DEPTH".into(), "12".into())],
                connections: vec![("clk".into(), "clk".into()), ("din".into(), "8'h00".into())],
            }]
        );
        assert!(modules[0].body_refs.contains("fifo"));
        assert!(modules[0].body_refs.contains("clk"));
    }

    #[test]
    fn parses_wires_regs_assigns_and_localparams() {
        let src = "module m (\n    input clk\n);\n    localparam LP = 7;\n    wire [LP-1:0] w;\n    reg r;\n    reg [3:0] counter;\n    assign w = counter + LP;\nendmodule\n";
        let m = &parse_modules(src).expect("parses")[0];
        assert_eq!(m.localparams, vec![("LP".to_owned(), "7".to_owned())]);
        assert_eq!(m.wires.len(), 1);
        assert_eq!(m.wires[0].name, "w");
        assert_eq!(
            m.wires[0].range.as_ref().map(|r| r.msb.as_str()),
            Some("LP-1")
        );
        assert_eq!(m.regs.len(), 2);
        assert_eq!(
            m.regs[0],
            ParsedNet {
                range: None,
                name: "r".into()
            }
        );
        assert_eq!(m.assigns.len(), 1);
        assert_eq!(m.assigns[0].0, "w");
        assert!(m.body_refs.contains("counter"));
    }

    #[test]
    fn block_comments_are_skipped_even_with_keywords_inside() {
        let src =
            "module m ( input clk );\n/* module fake ( input x );\n   begin [ ( */\nendmodule\n";
        let modules = parse_modules(src).expect("parses");
        assert_eq!(modules.len(), 1);
        assert_eq!(modules[0].name, "m");
        // Inline form too.
        let src2 = "module /* not_the_name */ n ( input clk );\nendmodule\n";
        assert_eq!(parse_modules(src2).expect("parses")[0].name, "n");
    }

    #[test]
    fn rejects_missing_endmodule() {
        assert!(parse_modules("module broken ( input clk );\n").is_err());
    }

    #[test]
    fn emitted_ast_round_trips() {
        let mut m = Module::new("roundtrip");
        m.param("A", 7)
            .param("B", "A*2")
            .port(Port::input("1", "clk"))
            .port(Port::input("A", "d"))
            .port(Port::output_reg("B", "q"))
            .item(Item::Memory {
                width: "A".into(),
                depth: "B".into(),
                name: "store".into(),
            });
        let parsed = parse_modules(&m.emit()).expect("parses");
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.name, "roundtrip");
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.params[0].0, "A");
        assert_eq!(p.ports.len(), 3);
        assert_eq!(p.memories.len(), 1);
        assert_eq!(p.memories[0].name, "store");
    }

    #[test]
    fn every_generated_file_parses_and_matches_structure() {
        let bundle = generate(&ResourceConfig::new()).expect("generates");
        let mut all = Vec::new();
        for (name, src) in bundle.files() {
            let modules =
                parse_modules(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            assert_eq!(modules.len(), 1, "{name} holds exactly one module");
            all.push(modules.into_iter().next().expect("one module"));
        }
        let names: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "dpram",
                "meta_fifo",
                "time_sync",
                "packet_switch",
                "ingress_filter",
                "gate_ctrl",
                "egress_sched",
                "tsn_switch_top",
                "tsn_switch_tb"
            ]
        );
        // The top instantiates the shared blocks plus one gate_ctrl and
        // one egress_sched per enabled port (1 for the default ring
        // config).
        let top = &all[7];
        let count = |module: &str| top.instances.iter().filter(|i| i.module == module).count();
        assert_eq!(count("time_sync"), 1);
        assert_eq!(count("packet_switch"), 1);
        assert_eq!(count("ingress_filter"), 1);
        assert_eq!(count("gate_ctrl"), 1);
        assert_eq!(count("egress_sched"), 1);
        // gate_ctrl holds the 8 per-queue FIFOs, each with full override
        // and connection lists.
        let gates = &all[5];
        let fifos: Vec<_> = gates
            .instances
            .iter()
            .filter(|i| i.module == "meta_fifo")
            .collect();
        assert_eq!(fifos.len(), 8);
        for fifo in &fifos {
            assert_eq!(fifo.params.len(), 3);
            assert_eq!(fifo.connections.len(), 8);
        }
        // Memories: GCLs in gate_ctrl, meter table in the filter.
        assert!(gates.memory("in_gcl").is_some());
        assert!(gates.memory("out_gcl").is_some());
        assert!(all[4].memory("meter_tbl").is_some());
    }

    #[test]
    fn parsed_parameters_track_the_config() {
        let mut cfg = ResourceConfig::new();
        cfg.set_queues(24, 8, 2).expect("valid");
        let bundle = generate(&cfg).expect("generates");
        let gates = parse_modules(bundle.file("gate_ctrl.v").expect("file")).expect("parses");
        assert_eq!(gates[0].param_default("QUEUE_DEPTH"), Some("24"));
        let top = parse_modules(bundle.file("tsn_switch_top.v").expect("file")).expect("parses");
        assert_eq!(
            top[0]
                .instances
                .iter()
                .filter(|i| i.module == "gate_ctrl")
                .count(),
            2,
            "two enabled ports, two gate controllers"
        );
    }

    #[test]
    fn truncated_verilog_errors_instead_of_panicking() {
        // Every prefix of every generated file must parse to Ok or a
        // structured error — cutting the token stream mid-construct used
        // to hit `self.next().expect("peeked")`.
        let bundle = generate(&ResourceConfig::new()).expect("generates");
        for (name, src) in bundle.files() {
            for cut in (0..src.len()).step_by(61).chain([src.len() - 1]) {
                let Some(prefix) = src.get(..cut) else {
                    continue; // not a char boundary
                };
                let _ = parse_modules(prefix); // Ok or Err, never a panic
                let _ = std::hint::black_box(name);
            }
        }
    }

    #[test]
    fn garbage_input_errors_instead_of_panicking() {
        let cases = [
            "module",
            "module m",
            "module m #(",
            "module m #( parameter W = ",
            "module m #( parameter W = 8",
            "module m #( parameter W = [8",
            "module m (",
            "module m ( input ",
            "module m ( input [7:0",
            "module m ( input [7",
            "module m ( input clk ); reg [7:0] mem [0:3",
            "module m ( input clk ); wire [3",
            "module m ( input clk ); localparam X",
            "module m ( input clk ); assign a",
            "module m ( input clk ); sub #( .W(8",
            "module m ( input clk ); sub u0 ( .a(b",
            ")))]]]}}}",
            "module ; ( ) # = , .",
            "/ // /// #(((",
            "module m ( input clk ); /* unterminated",
        ];
        for src in cases {
            let _ = parse_modules(src); // must return, never panic
        }
    }
}
