//! A structural Verilog parser: enough of the grammar to read back what
//! [`crate::templates`] emits and check it round-trips.
//!
//! This is deliberately not a full Verilog front-end — it recovers the
//! *structure* a reviewer checks by eye: module names, parameter
//! defaults, port directions/names, memory declarations and module
//! instantiations. `tsn-hdl`'s tests parse every generated file back and
//! compare against the AST that produced it.

use crate::ast::Dir;
use tsn_types::{TsnError, TsnResult};

/// One token of the source.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Number(String),
    Sym(char),
}

fn tokenize(source: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '/' {
            // Line comment (the emitter only produces `//`).
            chars.next();
            if chars.peek() == Some(&'/') {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                toks.push(Tok::Sym('/'));
            }
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                    ident.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Ident(ident));
        } else if c.is_ascii_digit() {
            let mut num = String::new();
            while let Some(&c) = chars.peek() {
                // Covers sized literals like 8'h00 and plain decimals.
                if c.is_ascii_alphanumeric() || c == '\'' || c == '_' {
                    num.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            toks.push(Tok::Number(num));
        } else {
            toks.push(Tok::Sym(c));
            chars.next();
        }
    }
    toks
}

/// A parsed port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPort {
    /// Direction.
    pub dir: Dir,
    /// `true` when the port carries a `[..:..]` range.
    pub has_range: bool,
    /// Port name.
    pub name: String,
}

/// A parsed module instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedInstance {
    /// Name of the instantiated module.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Number of `.port(net)` connections.
    pub connections: usize,
}

/// A parsed module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedModule {
    /// Module name.
    pub name: String,
    /// `(parameter name, default expression)` pairs.
    pub params: Vec<(String, String)>,
    /// Ports, in declaration order.
    pub ports: Vec<ParsedPort>,
    /// Memory (`reg [..] name [..];`) declaration names.
    pub memories: Vec<String>,
    /// Module instantiations in the body.
    pub instances: Vec<ParsedInstance>,
}

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "reg",
    "wire",
    "assign",
    "always",
    "begin",
    "end",
    "if",
    "else",
    "parameter",
    "localparam",
    "posedge",
    "negedge",
    "initial",
    "forever",
    "integer",
];

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> TsnResult<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(TsnError::InvalidArtifact(format!(
                "expected {what}, found {other:?}"
            ))),
        }
    }

    /// Collects tokens until one of `stops` appears at depth 0 (brackets
    /// tracked), rendering them back to text. Running out of tokens ends
    /// the scan: truncated input surfaces as a structured parse error at
    /// the caller (which will miss its stop symbol), never as a panic.
    fn text_until(&mut self, stops: &[char]) -> String {
        let mut depth = 0i32;
        let mut out = String::new();
        while let Some(tok) = self.peek() {
            if depth == 0 {
                if let Tok::Sym(c) = tok {
                    if stops.contains(c) {
                        break;
                    }
                }
            }
            let Some(tok) = self.next() else { break };
            match tok {
                Tok::Sym(c) => {
                    match c {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => depth -= 1,
                        _ => {}
                    }
                    out.push(c);
                }
                Tok::Ident(s) => {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(&s);
                }
                Tok::Number(s) => {
                    if !out.is_empty() {
                        out.push(' ');
                    }
                    out.push_str(&s);
                }
            }
        }
        out
    }

    fn skip_range(&mut self) -> bool {
        if self.eat_sym('[') {
            let mut depth = 1;
            while depth > 0 {
                match self.next() {
                    Some(Tok::Sym('[')) => depth += 1,
                    Some(Tok::Sym(']')) => depth -= 1,
                    None => return false,
                    _ => {}
                }
            }
            true
        } else {
            false
        }
    }

    fn parse_module(&mut self) -> TsnResult<ParsedModule> {
        let name = self.expect_ident("module name")?;
        let mut module = ParsedModule {
            name,
            params: Vec::new(),
            ports: Vec::new(),
            memories: Vec::new(),
            instances: Vec::new(),
        };

        // #( parameter N = V, ... )
        if self.eat_sym('#') {
            if !self.eat_sym('(') {
                return Err(TsnError::InvalidArtifact("expected ( after #".to_owned()));
            }
            loop {
                match self.next() {
                    Some(Tok::Ident(kw)) if kw == "parameter" => {
                        let pname = self.expect_ident("parameter name")?;
                        if !self.eat_sym('=') {
                            return Err(TsnError::InvalidArtifact(
                                "expected = in parameter".to_owned(),
                            ));
                        }
                        let value = self.text_until(&[',', ')']);
                        module.params.push((pname, value));
                    }
                    Some(Tok::Sym(',')) => {}
                    Some(Tok::Sym(')')) => break,
                    other => {
                        return Err(TsnError::InvalidArtifact(format!(
                            "unexpected token in parameter list: {other:?}"
                        )))
                    }
                }
            }
        }

        // ( port declarations )
        if !self.eat_sym('(') {
            return Err(TsnError::InvalidArtifact(
                "expected port list after module header".to_owned(),
            ));
        }
        loop {
            match self.next() {
                Some(Tok::Sym(')')) => break,
                Some(Tok::Sym(',')) => {}
                Some(Tok::Ident(dir_kw)) if ["input", "output"].contains(&dir_kw.as_str()) => {
                    let mut dir = if dir_kw == "input" {
                        Dir::Input
                    } else {
                        Dir::Output
                    };
                    // Optional `reg`.
                    if self.peek() == Some(&Tok::Ident("reg".to_owned())) {
                        self.pos += 1;
                        if dir == Dir::Output {
                            dir = Dir::OutputReg;
                        }
                    }
                    let has_range = self.skip_range();
                    let pname = self.expect_ident("port name")?;
                    module.ports.push(ParsedPort {
                        dir,
                        has_range,
                        name: pname,
                    });
                }
                other => {
                    return Err(TsnError::InvalidArtifact(format!(
                        "unexpected token in port list: {other:?}"
                    )))
                }
            }
        }
        if !self.eat_sym(';') {
            return Err(TsnError::InvalidArtifact(
                "expected ; after port list".to_owned(),
            ));
        }

        // Body: scan for memories, instances and endmodule.
        loop {
            match self.next() {
                None => {
                    return Err(TsnError::InvalidArtifact(format!(
                        "module {} missing endmodule",
                        module.name
                    )))
                }
                Some(Tok::Ident(kw)) if kw == "endmodule" => break,
                Some(Tok::Ident(kw)) if kw == "reg" => {
                    self.skip_range();
                    let rname = self.expect_ident("reg name")?;
                    if self.skip_range() {
                        module.memories.push(rname);
                    }
                    // Consume to the statement end.
                    self.text_until(&[';']);
                    self.eat_sym(';');
                }
                Some(Tok::Ident(ident)) if !KEYWORDS.contains(&ident.as_str()) => {
                    // Candidate instantiation: IDENT [#(..)] IDENT ( .p(n), ... );
                    let saved = self.pos;
                    if self.eat_sym('#') {
                        if !self.eat_sym('(') {
                            self.pos = saved;
                            continue;
                        }
                        self.text_until(&[')']);
                        self.eat_sym(')');
                    }
                    let Some(Tok::Ident(inst_name)) = self.peek().cloned() else {
                        self.pos = saved;
                        continue;
                    };
                    self.pos += 1;
                    if !self.eat_sym('(') {
                        self.pos = saved;
                        continue;
                    }
                    let mut connections = 0usize;
                    loop {
                        if self.eat_sym(')') {
                            break;
                        }
                        if self.eat_sym('.') {
                            connections += 1;
                            self.expect_ident("connection port")?;
                            if !self.eat_sym('(') {
                                return Err(TsnError::InvalidArtifact(
                                    "expected ( in connection".to_owned(),
                                ));
                            }
                            self.text_until(&[')']);
                            self.eat_sym(')');
                        } else if self.next().is_none() {
                            return Err(TsnError::InvalidArtifact(
                                "unterminated instance".to_owned(),
                            ));
                        }
                    }
                    self.eat_sym(';');
                    module.instances.push(ParsedInstance {
                        module: ident,
                        name: inst_name,
                        connections,
                    });
                }
                _ => {}
            }
        }
        Ok(module)
    }
}

/// Parses every module in a Verilog source string.
///
/// # Errors
///
/// Returns [`TsnError::InvalidArtifact`] on structurally broken input
/// (missing `endmodule`, malformed parameter/port lists).
///
/// # Example
///
/// ```
/// use tsn_hdl::parse::parse_modules;
///
/// let src = "module m #(\n parameter W = 8\n) (\n input clk,\n output [W-1:0] q\n);\nendmodule\n";
/// let modules = parse_modules(src)?;
/// assert_eq!(modules.len(), 1);
/// assert_eq!(modules[0].name, "m");
/// assert_eq!(modules[0].params, vec![("W".to_owned(), "8".to_owned())]);
/// assert_eq!(modules[0].ports.len(), 2);
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
pub fn parse_modules(source: &str) -> TsnResult<Vec<ParsedModule>> {
    let mut parser = Parser {
        toks: tokenize(source),
        pos: 0,
    };
    let mut modules = Vec::new();
    while let Some(tok) = parser.next() {
        if tok == Tok::Ident("module".to_owned()) {
            modules.push(parser.parse_module()?);
        }
    }
    Ok(modules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Item, Module, Port};
    use crate::templates::generate;
    use tsn_resource::ResourceConfig;

    #[test]
    fn parses_a_hand_written_module() {
        let src = "module demo #(\n    parameter WIDTH = 32,\n    parameter DEPTH = 16\n) (\n    input clk,\n    input [WIDTH-1:0] din,\n    output reg [WIDTH-1:0] dout\n);\n    reg [WIDTH-1:0] mem [0:DEPTH-1];\nendmodule\n";
        let modules = parse_modules(src).expect("parses");
        assert_eq!(modules.len(), 1);
        let m = &modules[0];
        assert_eq!(m.name, "demo");
        assert_eq!(m.params.len(), 2);
        assert_eq!(m.params[0], ("WIDTH".to_owned(), "32".to_owned()));
        assert_eq!(m.ports.len(), 3);
        assert_eq!(
            m.ports[0],
            ParsedPort {
                dir: Dir::Input,
                has_range: false,
                name: "clk".into()
            }
        );
        assert_eq!(m.ports[2].dir, Dir::OutputReg);
        assert!(m.ports[2].has_range);
        assert_eq!(m.memories, vec!["mem".to_owned()]);
    }

    #[test]
    fn parses_instances_with_connection_counts() {
        let src = "module top (\n    input clk\n);\n    fifo #(.DEPTH(12)) u_f (\n        .clk(clk),\n        .din(8'h00)\n    );\nendmodule\n";
        let modules = parse_modules(src).expect("parses");
        assert_eq!(
            modules[0].instances,
            vec![ParsedInstance {
                module: "fifo".into(),
                name: "u_f".into(),
                connections: 2
            }]
        );
    }

    #[test]
    fn rejects_missing_endmodule() {
        assert!(parse_modules("module broken ( input clk );\n").is_err());
    }

    #[test]
    fn emitted_ast_round_trips() {
        let mut m = Module::new("roundtrip");
        m.param("A", 7)
            .param("B", "A*2")
            .port(Port::input("1", "clk"))
            .port(Port::input("A", "d"))
            .port(Port::output_reg("B", "q"))
            .item(Item::Memory {
                width: "A".into(),
                depth: "B".into(),
                name: "store".into(),
            });
        let parsed = parse_modules(&m.emit()).expect("parses");
        assert_eq!(parsed.len(), 1);
        let p = &parsed[0];
        assert_eq!(p.name, "roundtrip");
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.params[0].0, "A");
        assert_eq!(p.ports.len(), 3);
        assert_eq!(p.memories, vec!["store".to_owned()]);
    }

    #[test]
    fn every_generated_file_parses_and_matches_structure() {
        let bundle = generate(&ResourceConfig::new()).expect("generates");
        let mut all = Vec::new();
        for (name, src) in bundle.files() {
            let modules =
                parse_modules(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
            assert_eq!(modules.len(), 1, "{name} holds exactly one module");
            all.push(modules.into_iter().next().expect("one module"));
        }
        let names: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "dpram",
                "meta_fifo",
                "time_sync",
                "packet_switch",
                "ingress_filter",
                "gate_ctrl",
                "egress_sched",
                "tsn_switch_top",
                "tsn_switch_tb"
            ]
        );
        // The top instantiates the shared blocks plus one gate_ctrl and
        // one egress_sched per enabled port (1 for the default ring
        // config).
        let top = &all[7];
        let count = |module: &str| top.instances.iter().filter(|i| i.module == module).count();
        assert_eq!(count("time_sync"), 1);
        assert_eq!(count("packet_switch"), 1);
        assert_eq!(count("ingress_filter"), 1);
        assert_eq!(count("gate_ctrl"), 1);
        assert_eq!(count("egress_sched"), 1);
        // gate_ctrl holds the 8 per-queue FIFOs.
        let gates = &all[5];
        assert_eq!(
            gates
                .instances
                .iter()
                .filter(|i| i.module == "meta_fifo")
                .count(),
            8
        );
        // Memories: GCLs in gate_ctrl, meter table in the filter.
        assert!(gates.memories.contains(&"in_gcl".to_owned()));
        assert!(gates.memories.contains(&"out_gcl".to_owned()));
        assert!(all[4].memories.contains(&"meter_tbl".to_owned()));
    }

    #[test]
    fn parsed_parameters_track_the_config() {
        let mut cfg = ResourceConfig::new();
        cfg.set_queues(24, 8, 2).expect("valid");
        let bundle = generate(&cfg).expect("generates");
        let gates = parse_modules(bundle.file("gate_ctrl.v").expect("file")).expect("parses");
        let depth = gates[0]
            .params
            .iter()
            .find(|(n, _)| n == "QUEUE_DEPTH")
            .map(|(_, v)| v.clone());
        assert_eq!(depth.as_deref(), Some("24"));
        let top = parse_modules(bundle.file("tsn_switch_top.v").expect("file")).expect("parses");
        assert_eq!(
            top[0]
                .instances
                .iter()
                .filter(|i| i.module == "gate_ctrl")
                .count(),
            2,
            "two enabled ports, two gate controllers"
        );
    }

    #[test]
    fn truncated_verilog_errors_instead_of_panicking() {
        // Every prefix of a real generated file must parse to Ok or a
        // structured error — cutting the token stream mid-construct used
        // to hit `self.next().expect("peeked")`.
        let bundle = generate(&ResourceConfig::new()).expect("generates");
        let src = bundle.file("gate_ctrl.v").expect("file");
        for cut in (0..src.len()).step_by(97).chain([src.len() - 1]) {
            let Some(prefix) = src.get(..cut) else {
                continue; // not a char boundary
            };
            let _ = parse_modules(prefix); // Ok or Err, never a panic
        }
    }

    #[test]
    fn garbage_input_errors_instead_of_panicking() {
        let cases = [
            "module",
            "module m",
            "module m #(",
            "module m #( parameter W = ",
            "module m #( parameter W = 8",
            "module m #( parameter W = [8",
            "module m (",
            "module m ( input ",
            "module m ( input [7:0",
            "module m ( input clk ); reg [7:0] mem [0:3",
            "module m ( input clk ); sub #( .W(8",
            "module m ( input clk ); sub u0 ( .a(b",
            ")))]]]}}}",
            "module ; ( ) # = , .",
            "/ // /// #(((",
        ];
        for src in cases {
            let _ = parse_modules(src); // must return, never panic
        }
    }
}
