//! Lexical validation of emitted Verilog.
//!
//! Not a parser — a safety net that catches the classes of generator bug
//! that actually happen: unbalanced `module`/`endmodule`, unbalanced
//! `begin`/`end`, unbalanced parentheses/brackets, illegal identifiers,
//! and duplicate module names in one source file.

use std::collections::HashSet;
use tsn_types::{TsnError, TsnResult};

/// Checks a Verilog source string for structural sanity.
///
/// # Errors
///
/// Returns [`TsnError::InvalidArtifact`] describing the first problem
/// found.
///
/// # Example
///
/// ```
/// use tsn_hdl::validate::check_source;
///
/// check_source("module m (\n    input clk\n);\nendmodule\n")?;
/// assert!(check_source("module m ();\n").is_err()); // missing endmodule
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
pub fn check_source(source: &str) -> TsnResult<()> {
    let stripped = strip_comments(source)?;
    check_balance(&stripped, "module", "endmodule")?;
    check_balance(&stripped, "begin", "end")?;
    check_brackets(&stripped)?;
    check_module_names(&stripped)?;
    Ok(())
}

/// `true` if `name` is a legal (non-escaped) Verilog identifier.
#[must_use]
pub fn is_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
}

/// Removes `//` line comments and `/* … */` block comments. Newlines
/// inside block comments are preserved so downstream diagnostics keep
/// their line positions. An unterminated block comment is an error — it
/// would otherwise silently swallow the rest of the file (including any
/// `endmodule`s the balance checks are counting).
fn strip_comments(source: &str) -> TsnResult<String> {
    let mut out = String::with_capacity(source.len());
    let mut chars = source.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '/' {
            out.push(c);
            continue;
        }
        match chars.peek() {
            Some(&'/') => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        out.push('\n');
                        break;
                    }
                }
            }
            Some(&'*') => {
                chars.next();
                let mut prev = ' ';
                let mut terminated = false;
                for c in chars.by_ref() {
                    if prev == '*' && c == '/' {
                        terminated = true;
                        break;
                    }
                    if c == '\n' {
                        out.push('\n');
                    }
                    prev = c;
                }
                if !terminated {
                    return Err(TsnError::InvalidArtifact(
                        "unterminated block comment".to_owned(),
                    ));
                }
                // Keep tokens on either side separated.
                out.push(' ');
            }
            _ => out.push('/'),
        }
    }
    Ok(out)
}

fn tokens(source: &str) -> impl Iterator<Item = &str> {
    source.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '$'))
}

fn check_balance(source: &str, open: &str, close: &str) -> TsnResult<()> {
    let mut depth: i64 = 0;
    for token in tokens(source) {
        if token == open {
            depth += 1;
        } else if token == close {
            depth -= 1;
            if depth < 0 {
                return Err(TsnError::InvalidArtifact(format!(
                    "{close} without matching {open}"
                )));
            }
        }
    }
    if depth != 0 {
        return Err(TsnError::InvalidArtifact(format!(
            "{depth} unclosed {open} block(s)"
        )));
    }
    Ok(())
}

fn check_brackets(source: &str) -> TsnResult<()> {
    let mut stack = Vec::new();
    for c in source.chars() {
        match c {
            '(' | '[' | '{' => stack.push(c),
            ')' | ']' | '}' => {
                let expected = match c {
                    ')' => '(',
                    ']' => '[',
                    _ => '{',
                };
                if stack.pop() != Some(expected) {
                    return Err(TsnError::InvalidArtifact(format!(
                        "unbalanced bracket {c:?}"
                    )));
                }
            }
            _ => {}
        }
    }
    if let Some(open) = stack.pop() {
        return Err(TsnError::InvalidArtifact(format!(
            "unclosed bracket {open:?}"
        )));
    }
    Ok(())
}

fn check_module_names(source: &str) -> TsnResult<()> {
    let mut seen = HashSet::new();
    let mut toks = tokens(source).filter(|t| !t.is_empty());
    while let Some(tok) = toks.next() {
        if tok == "module" {
            let Some(name) = toks.next() else {
                return Err(TsnError::InvalidArtifact(
                    "module keyword without a name".to_owned(),
                ));
            };
            if !is_identifier(name) {
                return Err(TsnError::InvalidArtifact(format!(
                    "illegal module name {name:?}"
                )));
            }
            if !seen.insert(name.to_owned()) {
                return Err(TsnError::InvalidArtifact(format!(
                    "duplicate module {name:?}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_module() {
        let src = "module m #(\n parameter W = 8\n) (\n input clk\n);\n\
                   always @(posedge clk) begin\n end\nendmodule\n";
        assert!(check_source(src).is_ok());
    }

    #[test]
    fn rejects_unbalanced_endmodule() {
        assert!(check_source("module a ();\nendmodule\nendmodule\n").is_err());
        assert!(check_source("module a ();\n").is_err());
    }

    #[test]
    fn rejects_unbalanced_begin_end() {
        let src = "module m ( input clk );\nalways @(posedge clk) begin\nendmodule\n";
        assert!(check_source(src).is_err());
    }

    #[test]
    fn rejects_unbalanced_brackets() {
        assert!(check_source("module m ( input [7:0 d );\nendmodule\n").is_err());
        assert!(check_source("module m ( input d ));\nendmodule\n").is_err());
    }

    #[test]
    fn rejects_duplicate_modules() {
        let src = "module a ();\nendmodule\nmodule a ();\nendmodule\n";
        assert!(check_source(src).is_err());
    }

    #[test]
    fn comments_are_ignored() {
        let src = "module m ( input clk ); // begin ( [ module\nendmodule\n";
        assert!(check_source(src).is_ok());
    }

    #[test]
    fn block_comments_are_ignored() {
        // Keywords and brackets inside `/* … */` must not reach the
        // balance checks, whether the comment is inline or multi-line.
        let src = "module m ( input clk ); /* begin ( [ module */\nendmodule\n";
        assert!(check_source(src).is_ok());
        let multiline = "module m ( input clk );\n\
                         /* module ghost ( input x );\n\
                            begin begin [ { (\n\
                         */\n\
                         endmodule\n";
        assert!(check_source(multiline).is_ok());
        // A block comment must also not glue its neighbours into one
        // token: `module/* */m` still declares module `m`.
        assert!(check_source("module/* x */m ( input clk );\nendmodule\n").is_ok());
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        let src = "module m ( input clk );\nendmodule\n/* trailing";
        assert!(check_source(src).is_err());
    }

    #[test]
    fn line_comment_inside_block_comment_does_not_resurrect_code() {
        let src = "module m ( input clk );\n/* // still a block comment\nbegin [\n*/\nendmodule\n";
        assert!(check_source(src).is_ok());
    }

    #[test]
    fn identifier_rules() {
        assert!(is_identifier("tsn_switch_top"));
        assert!(is_identifier("_x$1"));
        assert!(!is_identifier("1abc"));
        assert!(!is_identifier(""));
        assert!(!is_identifier("a-b"));
    }

    #[test]
    fn end_keyword_inside_identifiers_is_not_counted() {
        // `endmodule`, `legend`, `end_of_frame` must not confuse `end`.
        let src =
            "module m ( input clk );\nalways @(posedge clk) begin\nlegend <= end_of_frame;\nend\nendmodule\n";
        assert!(check_source(src).is_ok());
    }
}
