//! Integer evaluation of the width/depth expressions the parser keeps
//! as text.
//!
//! The generated Verilog only ever uses `+ - * / %`, parentheses, plain
//! decimal numbers and parameter names in declaration ranges, so that is
//! the whole grammar here. Evaluation happens against an environment of
//! resolved parameter values; anything outside the grammar (sized
//! literals, missing identifiers, division by zero) is a soft `Err` the
//! callers turn into "could not resolve" rather than a lint finding.

use crate::parse::{lex, ParsedRange, Tok, KEYWORDS};
use std::collections::BTreeMap;

/// Parameter-name → resolved-value environment.
pub type Env = BTreeMap<String, i64>;

/// Evaluates an integer expression against `env`.
///
/// # Errors
///
/// Returns a human-readable reason when the expression falls outside the
/// supported grammar or references an identifier missing from `env`.
///
/// # Example
///
/// ```
/// use tsn_hdl::expr::{eval, Env};
///
/// let mut env = Env::new();
/// env.insert("WIDTH".to_owned(), 32);
/// assert_eq!(eval("WIDTH-1", &env), Ok(31));
/// assert_eq!(eval("2*(WIDTH+1)", &env), Ok(66));
/// assert!(eval("MISSING-1", &env).is_err());
/// ```
pub fn eval(expr: &str, env: &Env) -> Result<i64, String> {
    let toks = lex(expr);
    let mut p = ExprParser {
        toks: &toks,
        pos: 0,
        env,
    };
    let value = p.add_expr()?;
    if p.pos != toks.len() {
        return Err(format!("trailing tokens in expression {expr:?}"));
    }
    Ok(value)
}

/// Width in bits of a declaration range: `|msb - lsb| + 1`.
///
/// Works for both `[W-1:0]` (width) and `[0:D-1]` (depth) orderings.
///
/// # Errors
///
/// Propagates [`eval`] failures from either bound.
pub fn range_width(range: &ParsedRange, env: &Env) -> Result<i64, String> {
    let msb = eval(&range.msb, env)?;
    let lsb = eval(&range.lsb, env)?;
    Ok((msb - lsb).abs() + 1)
}

/// Bit width of a connection expression, where statically known.
///
/// Only two shapes resolve: a plain identifier (looked up in
/// `net_widths`) and a sized literal like `4'b0101` (the size prefix).
/// Everything else — slices, concatenations, arithmetic, unsized
/// literals — returns `None`: Verilog implicitly resizes those, so the
/// width lint must not judge them.
#[must_use]
pub fn connection_width(expr: &str, net_widths: &BTreeMap<String, i64>) -> Option<i64> {
    let toks = lex(expr);
    match toks.as_slice() {
        [Tok::Ident(name)] => net_widths.get(name).copied(),
        [Tok::Number(num)] => {
            let (size, _) = num.split_once('\'')?;
            size.parse::<i64>().ok().filter(|&s| s > 0)
        }
        _ => None,
    }
}

/// Every non-keyword identifier mentioned in an expression, in order of
/// first appearance.
#[must_use]
pub fn idents(expr: &str) -> Vec<String> {
    let mut seen = Vec::new();
    for tok in lex(expr) {
        if let Tok::Ident(name) = tok {
            if !KEYWORDS.contains(&name.as_str()) && !seen.contains(&name) {
                seen.push(name);
            }
        }
    }
    seen
}

struct ExprParser<'a> {
    toks: &'a [Tok],
    pos: usize,
    env: &'a Env,
}

impl ExprParser<'_> {
    fn add_expr(&mut self) -> Result<i64, String> {
        let mut acc = self.mul_expr()?;
        loop {
            match self.toks.get(self.pos) {
                Some(Tok::Sym('+')) => {
                    self.pos += 1;
                    acc = acc.saturating_add(self.mul_expr()?);
                }
                Some(Tok::Sym('-')) => {
                    self.pos += 1;
                    acc = acc.saturating_sub(self.mul_expr()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn mul_expr(&mut self) -> Result<i64, String> {
        let mut acc = self.atom()?;
        loop {
            match self.toks.get(self.pos) {
                Some(Tok::Sym('*')) => {
                    self.pos += 1;
                    acc = acc.saturating_mul(self.atom()?);
                }
                Some(Tok::Sym('/')) => {
                    self.pos += 1;
                    let rhs = self.atom()?;
                    if rhs == 0 {
                        return Err("division by zero".to_owned());
                    }
                    acc /= rhs;
                }
                Some(Tok::Sym('%')) => {
                    self.pos += 1;
                    let rhs = self.atom()?;
                    if rhs == 0 {
                        return Err("modulo by zero".to_owned());
                    }
                    acc %= rhs;
                }
                _ => return Ok(acc),
            }
        }
    }

    fn atom(&mut self) -> Result<i64, String> {
        match self.toks.get(self.pos) {
            Some(Tok::Sym('-')) => {
                self.pos += 1;
                Ok(self.atom()?.saturating_neg())
            }
            Some(Tok::Sym('(')) => {
                self.pos += 1;
                let value = self.add_expr()?;
                if self.toks.get(self.pos) != Some(&Tok::Sym(')')) {
                    return Err("missing closing parenthesis".to_owned());
                }
                self.pos += 1;
                Ok(value)
            }
            Some(Tok::Number(num)) => {
                self.pos += 1;
                if num.contains('\'') {
                    return Err(format!("sized literal {num:?} is not a plain integer"));
                }
                num.replace('_', "")
                    .parse::<i64>()
                    .map_err(|_| format!("unparseable number {num:?}"))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                self.env
                    .get(name)
                    .copied()
                    .ok_or_else(|| format!("unknown identifier {name:?}"))
            }
            other => Err(format!("unexpected token {other:?} in expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> Env {
        pairs.iter().map(|&(k, v)| (k.to_owned(), v)).collect()
    }

    #[test]
    fn evaluates_arithmetic() {
        let e = env(&[("W", 32), ("D", 12)]);
        assert_eq!(eval("W-1", &e), Ok(31));
        assert_eq!(eval("2*W+D", &e), Ok(76));
        assert_eq!(eval("(W+D)/2", &e), Ok(22));
        assert_eq!(eval("W%5", &e), Ok(2));
        assert_eq!(eval("-3+W", &e), Ok(29));
        assert_eq!(eval("1_024", &e), Ok(1024));
    }

    #[test]
    fn rejects_bad_expressions() {
        let e = env(&[("W", 32)]);
        assert!(eval("Q-1", &e).is_err());
        assert!(eval("W/0", &e).is_err());
        assert!(eval("W%0", &e).is_err());
        assert!(eval("(W", &e).is_err());
        assert!(eval("W 3", &e).is_err());
        assert!(eval("8'h00", &e).is_err());
        assert!(eval("", &e).is_err());
    }

    #[test]
    fn range_widths_work_both_orderings() {
        let e = env(&[("W", 32), ("D", 12)]);
        let width = ParsedRange {
            msb: "W-1".into(),
            lsb: "0".into(),
        };
        assert_eq!(range_width(&width, &e), Ok(32));
        let depth = ParsedRange {
            msb: "0".into(),
            lsb: "D-1".into(),
        };
        assert_eq!(range_width(&depth, &e), Ok(12));
    }

    #[test]
    fn connection_widths_resolve_only_safe_shapes() {
        let mut nets = BTreeMap::new();
        nets.insert("data_bus".to_owned(), 64);
        assert_eq!(connection_width("data_bus", &nets), Some(64));
        assert_eq!(connection_width("4'b0101", &nets), Some(4));
        assert_eq!(connection_width("1'b0", &nets), Some(1));
        // Implicitly resized shapes stay unjudged.
        assert_eq!(connection_width("data_bus[9:0]", &nets), None);
        assert_eq!(connection_width("0", &nets), None);
        assert_eq!(connection_width("a&b", &nets), None);
        assert_eq!(connection_width("{a,b}", &nets), None);
        assert_eq!(connection_width("missing", &nets), None);
    }

    #[test]
    fn idents_skip_keywords_and_dedupe() {
        assert_eq!(
            idents("a + begin + b*a"),
            vec!["a".to_owned(), "b".to_owned()]
        );
        assert!(idents("1'b0 + 4").is_empty());
    }
}
