//! Property-style tests over the gate-control and scheduling invariants
//! of the switch templates under seeded randomized traffic.
//!
//! Inputs are drawn from [`tsn_types::SplitMix64`] with fixed seeds, so
//! every run explores the same (broad) input sets deterministically and
//! failures are reproducible without a shrinker.

use tsn_switch::gate_ctrl::GateCtrl;
use tsn_switch::layout::QueueLayout;
use tsn_switch::pipeline::{PortKind, SwitchSpec, TsnSwitchCore};
use tsn_types::{
    EthernetFrame, FlowId, MacAddr, PortId, QueueId, SimDuration, SimTime, SplitMix64,
    TrafficClass, VlanId,
};

fn frame(class: TrafficClass, seq: u64) -> EthernetFrame {
    EthernetFrame::builder()
        .src(MacAddr::station(1))
        .dst(MacAddr::station(2))
        .class(class)
        .size_bytes(64)
        .flow(FlowId::new(0))
        .sequence(seq)
        .build()
        .expect("valid frame")
}

/// CQF invariant: a TS frame enqueued in slot `i` is dequeueable in slot
/// `i+1` and NOT in slot `i`, for any slot length and enqueue instant.
#[test]
fn cqf_one_slot_forwarding() {
    let mut rng = SplitMix64::seed_from_u64(0x5107);
    for _ in 0..256 {
        let slot_us = rng.gen_range_in(1, 1000);
        let offset_ns = rng.gen_range(1_000_000_000);
        let slot = SimDuration::from_micros(slot_us);
        let mut gates = GateCtrl::cqf(QueueLayout::standard8(), 64, slot).expect("valid cqf");
        let t = SimTime::from_nanos(offset_ns);
        let queue = gates
            .enqueue(QueueId::new(6), frame(TrafficClass::TimeSensitive, 0), t)
            .expect("one TS in-gate is always open under CQF");
        assert!(
            !gates.eligible(queue, t),
            "no same-slot forwarding (slot_us={slot_us}, offset_ns={offset_ns})"
        );
        let next_slot = t.next_slot_boundary(slot);
        assert!(
            gates.eligible(queue, next_slot),
            "next slot forwards (slot_us={slot_us}, offset_ns={offset_ns})"
        );
        // And the slot after that it is closed again (if not drained).
        let after = next_slot.next_slot_boundary(slot);
        assert!(!gates.eligible(queue, after) || gates.queue_len(queue) == 0);
    }
}

/// The CQF pair absorbs any interleaving of TS enqueues across slots
/// without ever putting two *different-slot* batches into the same queue
/// (as long as each batch is drained in its window).
#[test]
fn cqf_batches_never_mix() {
    let mut rng = SplitMix64::seed_from_u64(0xba7c);
    for _ in 0..128 {
        let slot_us = rng.gen_range_in(5, 200);
        let batch_count = rng.gen_range_in(1, 12) as usize;
        let batches: Vec<usize> = (0..batch_count)
            .map(|_| rng.gen_range_in(1, 8) as usize)
            .collect();
        let slot = SimDuration::from_micros(slot_us);
        let mut gates = GateCtrl::cqf(QueueLayout::standard8(), 64, slot).expect("valid cqf");
        let mut seq = 0u64;
        for (slot_idx, &batch) in batches.iter().enumerate() {
            let now = SimTime::ZERO + slot * slot_idx as u64 + SimDuration::from_nanos(10);
            let mut batch_queue = None;
            for _ in 0..batch {
                let q = gates
                    .enqueue(
                        QueueId::new(7),
                        frame(TrafficClass::TimeSensitive, seq),
                        now,
                    )
                    .expect("gate open");
                seq += 1;
                if let Some(prev) = batch_queue {
                    assert_eq!(prev, q, "one batch, one queue");
                }
                batch_queue = Some(q);
            }
            // Drain the previous slot's batch (CQF guarantees it is
            // eligible now).
            let queue = batch_queue.expect("batch non-empty");
            let other = if queue == QueueId::new(6) {
                QueueId::new(7)
            } else {
                QueueId::new(6)
            };
            while gates.eligible(other, now) {
                gates.pop(other);
            }
        }
    }
}

/// Strict priority with random backlogs: the selected queue is always the
/// highest-priority eligible one.
#[test]
fn scheduler_picks_the_top_eligible_queue() {
    use tsn_switch::egress_sched::EgressScheduler;
    use tsn_switch::gate_ctrl::GateControlList;
    let mut rng = SplitMix64::seed_from_u64(0x5e1ec7);
    for _ in 0..256 {
        let backlogs: Vec<usize> = (0..8).map(|_| rng.gen_range(4) as usize).collect();
        let probe_slot = rng.gen_range(4);
        let slot = SimDuration::from_micros(65);
        let mut gates = GateCtrl::new(
            QueueLayout::standard8(),
            16,
            GateControlList::always_open(slot),
            GateControlList::always_open(slot),
        )
        .expect("valid gates");
        let mut sched = EgressScheduler::new(8, 3, 3);
        let classes = [
            TrafficClass::BestEffort,
            TrafficClass::BestEffort,
            TrafficClass::BestEffort,
            TrafficClass::RateConstrained,
            TrafficClass::RateConstrained,
            TrafficClass::RateConstrained,
            TrafficClass::TimeSensitive,
            TrafficClass::TimeSensitive,
        ];
        let now = SimTime::ZERO + slot * probe_slot;
        for (q, &n) in backlogs.iter().enumerate() {
            for k in 0..n {
                let _ = gates.enqueue(QueueId::new(q as u8), frame(classes[q], k as u64), now);
            }
        }
        let expected = (0..8u8)
            .rev()
            .map(QueueId::new)
            .find(|&q| gates.queue_len(q) > 0);
        assert_eq!(sched.select(&gates, now), expected);
    }
}

/// The pipeline conserves frames: received = enqueued + dropped, and
/// buffered + transmitted = enqueued, for any burst size.
#[test]
fn pipeline_conserves_frames() {
    let mut rng = SplitMix64::seed_from_u64(0xf1a3);
    for case in 0..64 {
        // Cover the boundaries explicitly, then sample the range.
        let burst = match case {
            0 => 1,
            1 => 199,
            _ => rng.gen_range_in(1, 200),
        };
        let resources = tsn_resource::ResourceConfig::new();
        let spec = SwitchSpec::new(
            &resources,
            vec![PortKind::Tsn],
            SimDuration::from_micros(65),
        );
        let mut sw = TsnSwitchCore::new(&spec).expect("valid spec");
        let dst = MacAddr::station(9);
        sw.add_unicast(dst, VlanId::DEFAULT, PortId::new(0))
            .expect("fits");
        let t0 = SimTime::ZERO;
        for seq in 0..burst {
            let f = EthernetFrame::builder()
                .src(MacAddr::station(1))
                .dst(dst)
                .class(TrafficClass::TimeSensitive)
                .size_bytes(64)
                .sequence(seq)
                .build()
                .expect("valid frame");
            sw.receive(f, t0);
        }
        let stats = *sw.stats();
        assert_eq!(stats.received, burst);
        assert_eq!(stats.enqueued + stats.total_drops(), burst);
        // Drain everything over the next slots.
        let mut drained = 0u64;
        let mut now = t0;
        for _ in 0..4 {
            now = now.next_slot_boundary(SimDuration::from_micros(65));
            while sw.dequeue(PortId::new(0), now).is_some() {
                drained += 1;
            }
        }
        assert_eq!(drained, stats.enqueued);
    }
}
