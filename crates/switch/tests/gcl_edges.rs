//! Gate-control-list edge cases: constructor rejections, the oversized
//! scan fallback behind `next_open`, never-opening queues, and the
//! zero-slot guard in `always_open`.
//!
//! These are the boundaries the randomized harness (`tsn-verify`) steers
//! away from by construction, so they get deterministic coverage here.

use tsn_switch::{GateControlList, GateEntry};
use tsn_types::{QueueId, SimDuration, SimTime, TsnError};

fn q(n: u8) -> QueueId {
    QueueId::new(n)
}

#[test]
fn constructor_rejects_empty_entries_and_zero_slot() {
    let empty = GateControlList::new(vec![], SimDuration::from_micros(65));
    assert!(
        matches!(empty, Err(TsnError::InvalidParameter { ref name, .. }) if name == "entries"),
        "{empty:?}"
    );
    let zero_slot = GateControlList::new(vec![GateEntry::all_open()], SimDuration::ZERO);
    assert!(
        matches!(zero_slot, Err(TsnError::InvalidParameter { ref name, .. }) if name == "slot"),
        "{zero_slot:?}"
    );
}

#[test]
fn always_open_survives_a_zero_slot() {
    // The convenience constructor can't fail, so it substitutes a sane
    // slot instead of dividing by a zero-length one later.
    let gcl = GateControlList::always_open(SimDuration::ZERO);
    assert!(gcl.slot() > SimDuration::ZERO);
    assert!(gcl.is_open(q(0), SimTime::ZERO));
    assert_eq!(gcl.next_open(q(7), SimTime::ZERO), Some(SimTime::ZERO));
    assert!(gcl.cycle() > SimDuration::ZERO);
}

#[test]
fn never_opening_queue_reports_none_not_a_bogus_instant() {
    // Queue 3 opens on odd slots; queue 5 never opens at all.
    let entries = vec![
        GateEntry::all_closed().with_open(q(0)),
        GateEntry::all_closed().with_open(q(3)),
    ];
    let gcl = GateControlList::new(entries, SimDuration::from_micros(10)).expect("valid");
    assert_eq!(gcl.next_open(q(5), SimTime::ZERO), None);
    assert!(!gcl.is_open(q(5), SimTime::ZERO));
    // The queues that do open still resolve correctly.
    assert_eq!(gcl.next_open(q(0), SimTime::ZERO), Some(SimTime::ZERO));
    assert_eq!(
        gcl.next_open(q(3), SimTime::ZERO),
        Some(SimTime::ZERO + SimDuration::from_micros(10))
    );
}

/// Lists longer than the precomputed transition table (4096 entries) fall
/// back to scanning the cycle on demand; the two paths must agree.
#[test]
fn oversized_list_scan_fallback_matches_the_table_path() {
    const LONG: usize = 5000; // > MAX_TABLE_ENTRIES = 4096
    const SHORT: usize = 100;
    let slot = SimDuration::from_micros(1);

    // Queue 2 opens only in the last entry of the cycle; everything else
    // stays closed, making the scan traverse nearly the whole list.
    let pattern = |len: usize| -> Vec<GateEntry> {
        let mut entries = vec![GateEntry::all_closed().with_open(q(0)); len];
        entries[len - 1] = entries[len - 1].with_open(q(2));
        entries
    };

    let long = GateControlList::new(pattern(LONG), slot).expect("valid");
    let short = GateControlList::new(pattern(SHORT), slot).expect("valid");
    assert_eq!(long.len(), LONG);
    assert_eq!(long.cycle(), slot * LONG as u64);

    for (gcl, len) in [(&long, LONG), (&short, SHORT)] {
        let last_slot_start = SimTime::ZERO + slot * (len as u64 - 1);
        // From mid-cycle, queue 2 next opens at the start of the final slot.
        let mid = SimTime::ZERO + slot * (len as u64 / 2);
        assert_eq!(gcl.next_open(q(2), mid), Some(last_slot_start), "len {len}");
        // Inside the open slot it is open right now.
        assert_eq!(
            gcl.next_open(q(2), last_slot_start),
            Some(last_slot_start),
            "len {len}"
        );
        // Queue 0 is open in every entry; queue 7 in none.
        assert_eq!(gcl.next_open(q(0), mid), Some(mid), "len {len}");
        assert_eq!(gcl.next_open(q(7), mid), None, "len {len}");
        // From the open slot, the *next* opening wraps into the following
        // cycle's final entry.
        let after = last_slot_start + slot;
        assert_eq!(
            gcl.next_open(q(2), after),
            Some(SimTime::ZERO + slot * (2 * len as u64 - 1)),
            "len {len}"
        );
    }
}

#[test]
fn uniform_list_short_circuits_to_now() {
    let entry = GateEntry::all_closed().with_open(q(1)).with_open(q(4));
    let gcl = GateControlList::new(vec![entry; 16], SimDuration::from_micros(65)).expect("valid");
    assert!(gcl.is_uniform());
    let t = SimTime::ZERO + SimDuration::from_micros(12_345);
    assert_eq!(gcl.next_open(q(1), t), Some(t));
    assert_eq!(gcl.next_open(q(4), t), Some(t));
    assert_eq!(gcl.next_open(q(0), t), None);
}
