//! Per-switch data-plane statistics.

use core::fmt;

/// Why the data plane dropped a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// No forwarding entry matched (a TSN switch must not flood
    /// deterministic traffic).
    LookupMiss,
    /// The ingress meter was out of tokens.
    MeterRed,
    /// The classification entry referenced an empty meter slot.
    DanglingMeter,
    /// No ingress gate open for the frame's class.
    GateClosed,
    /// Target queue out of metadata slots (`queue_depth`).
    QueueOverflow,
    /// Per-port packet-buffer pool exhausted (`buffer_num`).
    BufferExhausted,
    /// Classification pointed at a queue that does not exist.
    UnknownQueue,
    /// Frame-check-sequence mismatch: the frame was corrupted on the wire
    /// (fault injection) and the ingress filter refused it.
    FcsError,
}

impl DropReason {
    /// All reasons, for iteration in reports.
    pub const ALL: [DropReason; 8] = [
        DropReason::LookupMiss,
        DropReason::MeterRed,
        DropReason::DanglingMeter,
        DropReason::GateClosed,
        DropReason::QueueOverflow,
        DropReason::BufferExhausted,
        DropReason::UnknownQueue,
        DropReason::FcsError,
    ];
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::LookupMiss => "lookup-miss",
            DropReason::MeterRed => "meter-red",
            DropReason::DanglingMeter => "dangling-meter",
            DropReason::GateClosed => "gate-closed",
            DropReason::QueueOverflow => "queue-overflow",
            DropReason::BufferExhausted => "buffer-exhausted",
            DropReason::UnknownQueue => "unknown-queue",
            DropReason::FcsError => "fcs-error",
        };
        f.write_str(s)
    }
}

/// Counters for one switch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwitchStats {
    /// Frames handed to the pipeline.
    pub received: u64,
    /// Frames successfully enqueued towards an egress port (multicast
    /// counts once per replica).
    pub enqueued: u64,
    /// Frames transmitted out of an egress port.
    pub transmitted: u64,
    drops: [u64; 8],
}

impl SwitchStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        SwitchStats::default()
    }

    pub(crate) fn count_drop(&mut self, reason: DropReason) {
        self.drops[Self::idx(reason)] += 1;
    }

    fn idx(reason: DropReason) -> usize {
        DropReason::ALL
            .iter()
            .position(|&r| r == reason)
            .expect("every reason is in ALL")
    }

    /// Drops recorded for one reason.
    #[must_use]
    pub fn drops(&self, reason: DropReason) -> u64 {
        self.drops[Self::idx(reason)]
    }

    /// Total drops over all reasons.
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &SwitchStats) {
        self.received += other.received;
        self.enqueued += other.enqueued;
        self.transmitted += other.transmitted;
        for (a, b) in self.drops.iter_mut().zip(other.drops.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for SwitchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rx={} enq={} tx={} drops={}",
            self.received,
            self.enqueued,
            self.transmitted,
            self.total_drops()
        )?;
        for reason in DropReason::ALL {
            let n = self.drops(reason);
            if n > 0 {
                write!(f, " {reason}={n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_counting_per_reason() {
        let mut s = SwitchStats::new();
        s.count_drop(DropReason::QueueOverflow);
        s.count_drop(DropReason::QueueOverflow);
        s.count_drop(DropReason::MeterRed);
        assert_eq!(s.drops(DropReason::QueueOverflow), 2);
        assert_eq!(s.drops(DropReason::MeterRed), 1);
        assert_eq!(s.drops(DropReason::LookupMiss), 0);
        assert_eq!(s.total_drops(), 3);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = SwitchStats::new();
        a.received = 10;
        a.count_drop(DropReason::GateClosed);
        let mut b = SwitchStats::new();
        b.received = 5;
        b.transmitted = 4;
        b.count_drop(DropReason::GateClosed);
        b.count_drop(DropReason::BufferExhausted);
        a.merge(&b);
        assert_eq!(a.received, 15);
        assert_eq!(a.transmitted, 4);
        assert_eq!(a.drops(DropReason::GateClosed), 2);
        assert_eq!(a.total_drops(), 3);
    }

    #[test]
    fn display_lists_only_nonzero_reasons() {
        let mut s = SwitchStats::new();
        s.count_drop(DropReason::MeterRed);
        let text = s.to_string();
        assert!(text.contains("meter-red=1"));
        assert!(!text.contains("lookup-miss"));
    }
}
