//! Queue layout: which per-port queues serve which traffic class.
//!
//! The paper's prototype gives every port 8 queues: two for CQF's cyclic
//! time-sensitive pair, three for rate-constrained flows ("there are three
//! queues for RC flows in each port", Section IV.B), and the rest for
//! best-effort traffic.

use tsn_types::{QueueId, TrafficClass, TsnError, TsnResult};

/// Assignment of traffic classes to the queues of one port.
///
/// # Example
///
/// ```
/// use tsn_switch::layout::QueueLayout;
/// use tsn_types::{QueueId, TrafficClass};
///
/// let layout = QueueLayout::standard8();
/// assert_eq!(layout.queue_num(), 8);
/// assert_eq!(layout.ts_queues(), &[QueueId::new(6), QueueId::new(7)]);
/// assert_eq!(layout.rc_queues().len(), 3);
/// assert_eq!(layout.class_of(QueueId::new(0)), Some(TrafficClass::BestEffort));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueueLayout {
    classes: Vec<TrafficClass>,
    ts: Vec<QueueId>,
    rc: Vec<QueueId>,
    be: Vec<QueueId>,
}

impl QueueLayout {
    /// Builds a layout from a per-queue class assignment (index = queue
    /// id).
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if `classes` is empty, holds
    /// more than 256 queues, or contains no time-sensitive queue (a TSN
    /// port needs at least one), or fewer than two TS queues (CQF needs a
    /// cyclic pair).
    pub fn new(classes: Vec<TrafficClass>) -> TsnResult<Self> {
        if classes.is_empty() {
            return Err(TsnError::invalid_parameter(
                "classes",
                "a port needs at least one queue",
            ));
        }
        if classes.len() > 256 {
            return Err(TsnError::invalid_parameter(
                "classes",
                "queue ids are 8-bit; at most 256 queues",
            ));
        }
        let collect = |class: TrafficClass| {
            classes
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c == class)
                .map(|(i, _)| QueueId::new(i as u8))
                .collect::<Vec<_>>()
        };
        let ts = collect(TrafficClass::TimeSensitive);
        let rc = collect(TrafficClass::RateConstrained);
        let be = collect(TrafficClass::BestEffort);
        if ts.len() < 2 {
            return Err(TsnError::invalid_parameter(
                "classes",
                "CQF needs at least two time-sensitive queues",
            ));
        }
        Ok(QueueLayout {
            classes,
            ts,
            rc,
            be,
        })
    }

    /// The paper's 8-queue layout: queues 0–2 best-effort, 3–5
    /// rate-constrained, 6–7 time-sensitive (the CQF pair).
    #[must_use]
    pub fn standard8() -> Self {
        QueueLayout::new(vec![
            TrafficClass::BestEffort,
            TrafficClass::BestEffort,
            TrafficClass::BestEffort,
            TrafficClass::RateConstrained,
            TrafficClass::RateConstrained,
            TrafficClass::RateConstrained,
            TrafficClass::TimeSensitive,
            TrafficClass::TimeSensitive,
        ])
        .expect("the standard layout is valid")
    }

    /// Number of queues on the port.
    #[must_use]
    pub fn queue_num(&self) -> usize {
        self.classes.len()
    }

    /// The time-sensitive queues, ascending. The last two form the CQF
    /// pair.
    #[must_use]
    pub fn ts_queues(&self) -> &[QueueId] {
        &self.ts
    }

    /// The rate-constrained queues, ascending.
    #[must_use]
    pub fn rc_queues(&self) -> &[QueueId] {
        &self.rc
    }

    /// The best-effort queues, ascending.
    #[must_use]
    pub fn be_queues(&self) -> &[QueueId] {
        &self.be
    }

    /// The class a queue serves, or `None` for an out-of-range id.
    #[must_use]
    pub fn class_of(&self, queue: QueueId) -> Option<TrafficClass> {
        self.classes.get(queue.as_usize()).copied()
    }

    /// The default queue for a class when the classification table has no
    /// entry: the lowest-numbered queue of that class (for TS this is only
    /// a *nominal* target — the CQF in-gates decide the actual queue).
    ///
    /// Falls back to queue 0 if the class has no queue.
    #[must_use]
    pub fn default_queue(&self, class: TrafficClass) -> QueueId {
        let set = match class {
            TrafficClass::TimeSensitive => &self.ts,
            TrafficClass::RateConstrained => &self.rc,
            TrafficClass::BestEffort => &self.be,
        };
        set.first()
            .copied()
            .unwrap_or_else(|| self.ts.first().copied().unwrap_or(QueueId::new(0)))
    }

    /// Spreads flows of a class over its queue set: picks the
    /// `(hash % set size)`-th queue of the class.
    #[must_use]
    pub fn spread_queue(&self, class: TrafficClass, hash: u64) -> QueueId {
        let set = match class {
            TrafficClass::TimeSensitive => &self.ts,
            TrafficClass::RateConstrained => &self.rc,
            TrafficClass::BestEffort => &self.be,
        };
        if set.is_empty() {
            self.default_queue(class)
        } else {
            set[(hash % set.len() as u64) as usize]
        }
    }

    /// The CQF queue pair: the two highest time-sensitive queues.
    #[must_use]
    pub fn cqf_pair(&self) -> (QueueId, QueueId) {
        let n = self.ts.len();
        (self.ts[n - 2], self.ts[n - 1])
    }
}

impl Default for QueueLayout {
    fn default() -> Self {
        QueueLayout::standard8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard8_matches_the_paper() {
        let l = QueueLayout::standard8();
        assert_eq!(l.queue_num(), 8);
        assert_eq!(l.ts_queues().len(), 2);
        assert_eq!(l.rc_queues().len(), 3, "three RC queues per port");
        assert_eq!(l.be_queues().len(), 3);
        assert_eq!(l.cqf_pair(), (QueueId::new(6), QueueId::new(7)));
    }

    #[test]
    fn default_queues_per_class() {
        let l = QueueLayout::standard8();
        assert_eq!(
            l.default_queue(TrafficClass::TimeSensitive),
            QueueId::new(6)
        );
        assert_eq!(
            l.default_queue(TrafficClass::RateConstrained),
            QueueId::new(3)
        );
        assert_eq!(l.default_queue(TrafficClass::BestEffort), QueueId::new(0));
    }

    #[test]
    fn spread_cycles_over_the_class_set() {
        let l = QueueLayout::standard8();
        let queues: Vec<QueueId> = (0..6)
            .map(|h| l.spread_queue(TrafficClass::RateConstrained, h))
            .collect();
        assert_eq!(
            queues,
            vec![
                QueueId::new(3),
                QueueId::new(4),
                QueueId::new(5),
                QueueId::new(3),
                QueueId::new(4),
                QueueId::new(5)
            ]
        );
    }

    #[test]
    fn validation_rejects_degenerate_layouts() {
        assert!(QueueLayout::new(vec![]).is_err());
        assert!(QueueLayout::new(vec![TrafficClass::BestEffort]).is_err());
        assert!(QueueLayout::new(vec![TrafficClass::TimeSensitive]).is_err());
        assert!(QueueLayout::new(vec![
            TrafficClass::TimeSensitive,
            TrafficClass::TimeSensitive
        ])
        .is_ok());
    }

    #[test]
    fn class_of_out_of_range_is_none() {
        let l = QueueLayout::standard8();
        assert_eq!(l.class_of(QueueId::new(8)), None);
        assert_eq!(
            l.class_of(QueueId::new(7)),
            Some(TrafficClass::TimeSensitive)
        );
    }

    #[test]
    fn minimal_ts_only_layout_works() {
        let l = QueueLayout::new(vec![
            TrafficClass::TimeSensitive,
            TrafficClass::TimeSensitive,
        ])
        .expect("valid");
        // No RC/BE queues: default falls back to a TS queue.
        assert_eq!(l.default_queue(TrafficClass::BestEffort), QueueId::new(0));
        assert_eq!(
            l.spread_queue(TrafficClass::RateConstrained, 5),
            QueueId::new(0)
        );
    }
}
