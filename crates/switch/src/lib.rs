//! The five TSN-Builder function templates (Fig. 5) as executable models.
//!
//! The paper encapsulates the *fixed processing logic* of a TSN switch into
//! five Verilog templates whose memory geometry is injected through the
//! customization APIs. This crate is the behavioural equivalent: the same
//! five components, the same resource knobs, enforced at runtime:
//!
//! | paper template | module | role |
//! |---|---|---|
//! | Time Sync | [`time_sync`] | gPTP: drifting clocks, peer delay, offset/rate servo |
//! | Packet Switch | [`packet_switch`] | parser + unicast/multicast lookup |
//! | Ingress Filter | [`ingress_filter`] | classifier + token-bucket meters |
//! | Gate Ctrl | [`gate_ctrl`] | In/Out GCLs, gated queues, CQF |
//! | Egress Sched | [`egress_sched`] | strict priority + credit-based shapers |
//!
//! [`pipeline::TsnSwitchCore`] composes them into one switch data plane
//! (Fig. 3); `tsn-sim` adds links and event timing around it.
//!
//! # Example
//!
//! ```
//! use tsn_switch::pipeline::{TsnSwitchCore, SwitchSpec, PortKind};
//! use tsn_resource::ResourceConfig;
//! use tsn_types::SimDuration;
//!
//! let resources = ResourceConfig::new();     // paper's customized ring column
//! let spec = SwitchSpec::new(
//!     &resources,
//!     vec![PortKind::Tsn, PortKind::Edge],   // one ring port, one host port
//!     SimDuration::from_micros(65),          // the paper's CQF slot
//! );
//! let switch = TsnSwitchCore::new(&spec)?;
//! assert_eq!(switch.port_count(), 2);
//! # Ok::<(), tsn_types::TsnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod egress_sched;
pub mod gate_ctrl;
pub mod ingress_filter;
pub mod layout;
pub mod packet_switch;
pub mod pipeline;
pub mod stats;
pub mod table;
pub mod time_sync;

pub use egress_sched::{CreditBasedShaper, EgressScheduler};
pub use gate_ctrl::{GateControlList, GateCtrl, GateDrop, GateEntry};
pub use ingress_filter::{ClassEntry, ClassKey, FilterVerdict, IngressFilter, TokenBucketMeter};
pub use layout::QueueLayout;
pub use packet_switch::{LookupOutcome, PacketSwitch};
pub use pipeline::{Disposition, PortKind, SwitchSpec, TsnSwitchCore};
pub use stats::{DropReason, SwitchStats};
pub use time_sync::{ClockModel, SyncConfig, SyncDomain, SyncFaultProfile, TimeSync};
