//! The composed TSN switch (Fig. 3): Ingress Filter → Packet Switch →
//! Gate Ctrl → Egress Sched, with Time Sync feeding corrected time to the
//! gates.
//!
//! [`TsnSwitchCore`] is the *logic* of one switch; the `tsn-sim` crate
//! wraps it with link timing and events. The core is built from a
//! [`tsn_resource::ResourceConfig`], so every hardware capacity the
//! customization APIs set (table sizes, queue depth, buffer count) is
//! enforced on the data path.

use crate::egress_sched::{CreditBasedShaper, EgressScheduler};
use crate::gate_ctrl::{GateControlList, GateCtrl, GateDrop};
use crate::ingress_filter::{ClassEntry, ClassKey, FilterDrop, FilterVerdict, IngressFilter};
use crate::layout::QueueLayout;
use crate::packet_switch::PacketSwitch;
use crate::stats::{DropReason, SwitchStats};
use tsn_types::{
    DataRate, EthernetFrame, MacAddr, McId, MeterId, PortId, QueueId, SimDuration, SimTime,
    TrafficClass, TsnError, TsnResult, VlanId,
};

/// Whether a physical port runs the TSN machinery (CQF gate control) or is
/// a plain store-and-forward edge port (e.g. facing a host).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortKind {
    /// Deterministic port: CQF in/out GCLs on the TS queue pair.
    Tsn,
    /// Edge port: all gates always open; strict priority still applies.
    Edge,
}

/// Construction parameters for one [`TsnSwitchCore`].
///
/// The spec *borrows* the resource configuration and any GCL overrides:
/// building a whole network of switches from one shared `ResourceConfig`
/// (and from a schedule synthesizer's GCL map) then copies nothing on
/// the build path — [`TsnSwitchCore::new`] clones a GCL exactly once,
/// for the port that actually installs it.
#[derive(Debug, Clone)]
pub struct SwitchSpec<'a> {
    /// Memory resource configuration (Table II parameters).
    pub resources: &'a tsn_resource::ResourceConfig,
    /// Per-port role. Length = number of cabled ports.
    pub ports: Vec<PortKind>,
    /// CQF slot length for the TSN ports.
    pub slot: SimDuration,
    /// Explicit per-port GCL pairs `(in, out)` overriding the default
    /// CQF configuration — the hook for synthesized 802.1Qbv schedules.
    /// Entries beyond `ports.len()` are rejected at build time.
    pub gcl_overrides: Vec<(PortId, &'a GateControlList, &'a GateControlList)>,
}

impl<'a> SwitchSpec<'a> {
    /// A spec with `ports` roles, the paper's default resources, and the
    /// given CQF slot.
    #[must_use]
    pub fn new(
        resources: &'a tsn_resource::ResourceConfig,
        ports: Vec<PortKind>,
        slot: SimDuration,
    ) -> Self {
        SwitchSpec {
            resources,
            ports,
            slot,
            gcl_overrides: Vec::new(),
        }
    }

    /// Installs an explicit In/Out GCL pair on one port (replacing the
    /// role-derived default).
    pub fn override_gcl(
        &mut self,
        port: PortId,
        in_gcl: &'a GateControlList,
        out_gcl: &'a GateControlList,
    ) -> &mut Self {
        self.gcl_overrides.push((port, in_gcl, out_gcl));
        self
    }

    fn tsn_port_count(&self) -> usize {
        self.ports.iter().filter(|&&k| k == PortKind::Tsn).count()
    }
}

/// Outcome of presenting one frame to the switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// Enqueued on `queue` of egress `port`.
    Enqueued {
        /// Egress port.
        port: PortId,
        /// Queue the gate control selected.
        queue: QueueId,
    },
    /// Dropped on (or before) egress `port`.
    Dropped {
        /// The egress port involved, if the drop happened after lookup.
        port: Option<PortId>,
        /// Why.
        reason: DropReason,
    },
}

impl Disposition {
    /// `true` if the frame was enqueued.
    #[must_use]
    pub fn is_enqueued(&self) -> bool {
        matches!(self, Disposition::Enqueued { .. })
    }
}

#[derive(Debug, Clone)]
struct EgressPort {
    gates: GateCtrl,
    sched: EgressScheduler,
    kind: PortKind,
}

/// One switch's complete data plane.
///
/// # Example
///
/// ```
/// use tsn_switch::pipeline::{TsnSwitchCore, SwitchSpec, PortKind};
/// use tsn_resource::ResourceConfig;
/// use tsn_types::{SimDuration, SimTime, MacAddr, VlanId, PortId, EthernetFrame, TrafficClass};
///
/// let resources = ResourceConfig::new();
/// let spec = SwitchSpec::new(
///     &resources,
///     vec![PortKind::Tsn, PortKind::Edge],
///     SimDuration::from_micros(65),
/// );
/// let mut sw = TsnSwitchCore::new(&spec)?;
/// let dst = MacAddr::station(9);
/// sw.add_unicast(dst, VlanId::DEFAULT, PortId::new(0))?;
/// let frame = EthernetFrame::builder()
///     .src(MacAddr::station(1)).dst(dst)
///     .class(TrafficClass::TimeSensitive).size_bytes(64)
///     .build()?;
/// let report = sw.receive(frame, SimTime::ZERO);
/// assert!(report[0].is_enqueued());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TsnSwitchCore {
    packet_switch: PacketSwitch,
    filter: IngressFilter,
    ports: Vec<EgressPort>,
    buffer_capacity: usize,
    stats: SwitchStats,
}

impl TsnSwitchCore {
    /// Builds the data plane from a spec.
    ///
    /// # Errors
    ///
    /// * [`TsnError::InvalidParameter`] if the spec has no ports, or more
    ///   TSN ports than the resource configuration provisions
    ///   (`port_num`), or a queue layout cannot be built for
    ///   `queue_num`.
    pub fn new(spec: &SwitchSpec<'_>) -> TsnResult<Self> {
        if spec.ports.is_empty() {
            return Err(TsnError::invalid_parameter(
                "ports",
                "a switch needs at least one port",
            ));
        }
        let res = spec.resources;
        if spec.tsn_port_count() > res.port_num() as usize {
            return Err(TsnError::invalid_parameter(
                "ports",
                format!(
                    "{} TSN ports requested but resources provision port_num={}",
                    spec.tsn_port_count(),
                    res.port_num()
                ),
            ));
        }
        let layout = layout_for(res.queue_num())?;
        let filter = IngressFilter::new(
            res.class_size() as usize,
            res.meter_size() as usize,
            layout.clone(),
        );
        let packet_switch =
            PacketSwitch::new(res.unicast_size() as usize, res.multicast_size() as usize);
        for (port, _, _) in &spec.gcl_overrides {
            if port.as_usize() >= spec.ports.len() {
                return Err(TsnError::UnknownPort {
                    node: tsn_types::NodeId::new(0),
                    port: *port,
                });
            }
        }
        let ports = spec
            .ports
            .iter()
            .enumerate()
            .map(|(index, &kind)| {
                let port_id = PortId::new(index as u16);
                let overridden = spec
                    .gcl_overrides
                    .iter()
                    .find(|(p, _, _)| *p == port_id)
                    .map(|(_, in_gcl, out_gcl)| (*in_gcl, *out_gcl));
                let gates = match (overridden, kind) {
                    (Some((in_gcl, out_gcl)), _) => {
                        if in_gcl.len() > res.gate_size() as usize
                            || out_gcl.len() > res.gate_size() as usize
                        {
                            return Err(TsnError::capacity("gate table", res.gate_size() as usize));
                        }
                        // The single clone: the port takes ownership of
                        // its installed tables.
                        GateCtrl::new(
                            layout.clone(),
                            res.queue_depth() as usize,
                            in_gcl.clone(),
                            out_gcl.clone(),
                        )?
                    }
                    (None, PortKind::Tsn) => {
                        GateCtrl::cqf(layout.clone(), res.queue_depth() as usize, spec.slot)?
                    }
                    (None, PortKind::Edge) => GateCtrl::new(
                        layout.clone(),
                        res.queue_depth() as usize,
                        GateControlList::always_open(spec.slot),
                        GateControlList::always_open(spec.slot),
                    )?,
                };
                Ok(EgressPort {
                    gates,
                    sched: EgressScheduler::new(
                        layout.queue_num(),
                        res.cbs_map_size() as usize,
                        res.cbs_size() as usize,
                    ),
                    kind,
                })
            })
            .collect::<TsnResult<Vec<_>>>()?;
        Ok(TsnSwitchCore {
            packet_switch,
            filter,
            ports,
            buffer_capacity: res.buffer_num() as usize,
            stats: SwitchStats::new(),
        })
    }

    // --- control plane -----------------------------------------------------

    /// Installs a unicast forwarding entry.
    ///
    /// # Errors
    ///
    /// Propagates table-capacity errors.
    pub fn add_unicast(&mut self, dst: MacAddr, vlan: VlanId, port: PortId) -> TsnResult<()> {
        self.check_port(port)?;
        self.packet_switch.add_unicast(dst, vlan, port)
    }

    /// Installs an aggregated (any-VLAN) unicast entry — one table entry
    /// per destination, the guideline-(1) optimization.
    ///
    /// # Errors
    ///
    /// Propagates table-capacity errors.
    pub fn add_unicast_any_vlan(&mut self, dst: MacAddr, port: PortId) -> TsnResult<()> {
        self.check_port(port)?;
        self.packet_switch.add_unicast_any_vlan(dst, port)
    }

    /// Installs a multicast group.
    ///
    /// # Errors
    ///
    /// Propagates table-capacity errors.
    pub fn add_multicast(&mut self, mc: McId, ports: Vec<PortId>) -> TsnResult<()> {
        for &p in &ports {
            self.check_port(p)?;
        }
        self.packet_switch.add_multicast(mc, ports)
    }

    /// Installs a classification entry.
    ///
    /// # Errors
    ///
    /// Propagates table-capacity errors.
    pub fn add_class_entry(&mut self, key: ClassKey, entry: ClassEntry) -> TsnResult<()> {
        self.filter.add_class_entry(key, entry)
    }

    /// Installs a meter.
    ///
    /// # Errors
    ///
    /// Propagates meter-table bounds errors.
    pub fn set_meter(
        &mut self,
        id: MeterId,
        meter: crate::ingress_filter::TokenBucketMeter,
    ) -> TsnResult<()> {
        self.filter.set_meter(id, meter)
    }

    /// Adopts this (fully programmed) data plane under a new resource
    /// configuration without replaying a single install — the
    /// incremental-reconfiguration fast path. Table capacities, the CBS
    /// table sizes and the buffer pool are re-provisioned in place; the
    /// programmed entries, meters, shapers and gate schedules are kept.
    ///
    /// Returns `false` when `res` is not adoptable and the caller must
    /// fall back to a from-scratch build instead:
    ///
    /// * a *structural* knob differs (`queue_num` changes the queue
    ///   layout, `queue_depth` the per-queue capacity — both change run
    ///   behavior, not just a capacity check), or
    /// * a *capacity* no longer fits what is already installed (tables,
    ///   meters, shapers, GCL lengths vs `gate_size`, TSN ports vs
    ///   `port_num`) — a from-scratch build would have rejected an
    ///   install, and only the replay reproduces that error exactly.
    ///
    /// On `false` the core may be left partially re-provisioned; callers
    /// operate on a clone and discard it on that path.
    #[must_use]
    pub fn reprovision(&mut self, res: &tsn_resource::ResourceConfig) -> bool {
        let tsn_ports = self
            .ports
            .iter()
            .filter(|p| p.kind == PortKind::Tsn)
            .count();
        if tsn_ports > res.port_num() as usize {
            return false;
        }
        let structural_ok = layout_for(res.queue_num())
            .is_ok_and(|layout| self.ports.iter().all(|p| *p.gates.layout() == layout))
            && self
                .ports
                .iter()
                .all(|p| p.gates.queue_depth() == res.queue_depth() as usize);
        if !structural_ok {
            return false;
        }
        let gate_fits = self.ports.iter().all(|p| {
            p.gates.in_gcl().len() <= res.gate_size() as usize
                && p.gates.out_gcl().len() <= res.gate_size() as usize
        });
        if !gate_fits {
            return false;
        }
        if !self
            .filter
            .reprovision(res.class_size() as usize, res.meter_size() as usize)
        {
            return false;
        }
        if !self
            .packet_switch
            .reprovision(res.unicast_size() as usize, res.multicast_size() as usize)
        {
            return false;
        }
        for port in &mut self.ports {
            if !port
                .sched
                .reprovision(res.cbs_map_size() as usize, res.cbs_size() as usize)
            {
                return false;
            }
        }
        self.buffer_capacity = res.buffer_num() as usize;
        true
    }

    /// Installs a credit-based shaper on a port.
    ///
    /// # Errors
    ///
    /// Propagates CBS-table bounds errors and unknown ports.
    pub fn set_shaper(&mut self, port: PortId, slot: usize, idle_slope: DataRate) -> TsnResult<()> {
        self.check_port(port)?;
        self.ports[port.as_usize()]
            .sched
            .set_shaper(slot, CreditBasedShaper::new(idle_slope)?)
    }

    /// Maps a queue of a port onto a CBS slot.
    ///
    /// # Errors
    ///
    /// Propagates CBS map capacity errors and unknown ports.
    pub fn map_queue_to_shaper(
        &mut self,
        port: PortId,
        queue: QueueId,
        slot: usize,
    ) -> TsnResult<()> {
        self.check_port(port)?;
        self.ports[port.as_usize()].sched.map_queue(queue, slot)
    }

    fn check_port(&self, port: PortId) -> TsnResult<()> {
        if port.as_usize() < self.ports.len() {
            Ok(())
        } else {
            Err(TsnError::UnknownPort {
                node: tsn_types::NodeId::new(0),
                port,
            })
        }
    }

    // --- data plane ----------------------------------------------------------

    /// Presents a frame to the pipeline at (corrected) time `now`: filter,
    /// police, look up, and enqueue on every target port. Returns one
    /// [`Disposition`] per target (one for unicast, several for
    /// multicast, exactly one `Dropped` for pre-lookup drops).
    pub fn receive(&mut self, frame: EthernetFrame, now: SimTime) -> Vec<Disposition> {
        let mut dispositions = Vec::new();
        self.receive_into(frame, now, &mut dispositions);
        dispositions
    }

    /// As [`TsnSwitchCore::receive`], appending the dispositions to a
    /// caller-provided buffer — the allocation-free form the simulator's
    /// per-frame hot path uses.
    pub fn receive_into(&mut self, frame: EthernetFrame, now: SimTime, out: &mut Vec<Disposition>) {
        self.stats.received += 1;

        // Ingress Filter: classify and police.
        let queue = match self.filter.classify(&frame, now) {
            FilterVerdict::Accept { queue, .. } => queue,
            FilterVerdict::Drop(cause) => {
                let reason = match cause {
                    FilterDrop::MeterRed => DropReason::MeterRed,
                    FilterDrop::DanglingMeter => DropReason::DanglingMeter,
                    FilterDrop::FcsError => DropReason::FcsError,
                };
                self.stats.count_drop(reason);
                out.push(Disposition::Dropped { port: None, reason });
                return;
            }
        };

        // Packet Switch: find the outport(s), then Gate Ctrl: enqueue per
        // target port, respecting the buffer pool.
        match self.packet_switch.lookup(&frame) {
            crate::packet_switch::LookupOutcome::Unicast(port) => {
                out.push(self.enqueue_on(port, queue, frame, now));
            }
            crate::packet_switch::LookupOutcome::Multicast(ports) => {
                out.reserve(ports.len());
                for &port in ports.iter() {
                    out.push(self.enqueue_on(port, queue, frame, now));
                }
            }
            crate::packet_switch::LookupOutcome::Miss => {
                self.stats.count_drop(DropReason::LookupMiss);
                out.push(Disposition::Dropped {
                    port: None,
                    reason: DropReason::LookupMiss,
                });
            }
        }
    }

    fn enqueue_on(
        &mut self,
        port: PortId,
        queue: QueueId,
        frame: EthernetFrame,
        now: SimTime,
    ) -> Disposition {
        let Some(egress) = self.ports.get_mut(port.as_usize()) else {
            self.stats.count_drop(DropReason::UnknownQueue);
            return Disposition::Dropped {
                port: Some(port),
                reason: DropReason::UnknownQueue,
            };
        };
        if egress.gates.total_buffered() >= self.buffer_capacity {
            self.stats.count_drop(DropReason::BufferExhausted);
            return Disposition::Dropped {
                port: Some(port),
                reason: DropReason::BufferExhausted,
            };
        }
        match egress.gates.enqueue(queue, frame, now) {
            Ok(actual_queue) => {
                if egress.gates.queue_len(actual_queue) == 1 {
                    // Empty → backlogged transition: settle the queue's
                    // shaper over the idle period so credit accrual does
                    // not depend on polling cadence.
                    egress.sched.note_backlog_start(actual_queue, now);
                }
                self.stats.enqueued += 1;
                Disposition::Enqueued {
                    port,
                    queue: actual_queue,
                }
            }
            Err(gate_drop) => {
                let reason = match gate_drop {
                    GateDrop::GateClosed => DropReason::GateClosed,
                    GateDrop::QueueOverflow => DropReason::QueueOverflow,
                    GateDrop::UnknownQueue => DropReason::UnknownQueue,
                };
                self.stats.count_drop(reason);
                Disposition::Dropped {
                    port: Some(port),
                    reason,
                }
            }
        }
    }

    /// Picks and removes the next frame to transmit on `port` at `now`
    /// (Egress Sched: strict priority + CBS + egress gates). Returns the
    /// queue it came from and the frame, or `None` if nothing is eligible.
    pub fn dequeue(&mut self, port: PortId, now: SimTime) -> Option<(QueueId, EthernetFrame)> {
        self.dequeue_class(port, now, None)
    }

    /// As [`TsnSwitchCore::dequeue`], restricted to one MAC of the
    /// 802.3br split: `Some(true)` serves only the express
    /// (time-sensitive) queues, `Some(false)` only the preemptable
    /// (non-TS) queues, `None` all queues.
    pub fn dequeue_class(
        &mut self,
        port: PortId,
        now: SimTime,
        express: Option<bool>,
    ) -> Option<(QueueId, EthernetFrame)> {
        let egress = self.ports.get_mut(port.as_usize())?;
        let EgressPort { gates, sched, .. } = egress;
        let ts_mask = gates.ts_mask();
        let queue = sched.select_filtered(gates, now, |q| match express {
            None => true,
            Some(want_ts) => (ts_mask >> q.index()) & 1 == u64::from(want_ts),
        })?;
        let frame = gates.pop(queue)?;
        self.stats.transmitted += 1;
        Some((queue, frame))
    }

    /// Whether `port` holds a gate- and credit-eligible *express*
    /// (time-sensitive) frame at `now` — the trigger for preempting a
    /// preemptable transmission.
    #[must_use]
    pub fn express_ready(&self, port: PortId, now: SimTime) -> bool {
        let Some(egress) = self.ports.get(port.as_usize()) else {
            return false;
        };
        egress.gates.eligible_mask(now) & egress.gates.ts_mask() != 0
    }

    /// Records a completed transmission so shapers are charged.
    pub fn note_transmitted(
        &mut self,
        port: PortId,
        queue: QueueId,
        frame_bits: u64,
        tx_start: SimTime,
        tx_end: SimTime,
    ) {
        if let Some(egress) = self.ports.get_mut(port.as_usize()) {
            egress
                .sched
                .on_transmitted(queue, frame_bits, tx_start, tx_end);
        }
    }

    /// The next instant any gate state changes on `port` — the time the
    /// simulator should re-poll an idle port.
    #[must_use]
    pub fn next_gate_change(&self, port: PortId, now: SimTime) -> Option<SimTime> {
        self.ports
            .get(port.as_usize())
            .map(|p| p.gates.next_gate_change(now))
    }

    /// The earliest future instant at which a dequeue on `port` could
    /// newly succeed, computed gate-aware per occupied queue: a
    /// gate-closed queue wakes exactly when its gate opens (transition
    /// table lookup, not boundary polling); a gate-open queue that was
    /// still passed over must be credit-blocked and wakes at its shaper's
    /// recovery. `None` when the port holds no frames or no held frame
    /// can ever become eligible.
    #[must_use]
    pub fn next_dequeue_opportunity(&self, port: PortId, now: SimTime) -> Option<SimTime> {
        let p = self.ports.get(port.as_usize())?;
        let occupied = p.gates.occupied_mask();
        if occupied == 0 {
            return None;
        }
        let out = p.gates.out_gcl();
        let open_now = out.entry_at(now).bits();
        let mut earliest: Option<SimTime> = None;
        let mut merge = |t: SimTime| {
            earliest = Some(earliest.map_or(t, |e| e.min(t)));
        };
        let mut mask = occupied;
        while mask != 0 {
            let q = mask.trailing_zeros();
            mask &= mask - 1;
            let queue = QueueId::new(q as u8);
            if (open_now >> q) & 1 == 1 {
                // Open but skipped by the dequeue that prompted this
                // call: a shaper is blocking. Fall back to the next slot
                // boundary if no recovery instant exists, so a frame can
                // never be stranded by an unmodeled blocker.
                match p.sched.queue_credit_recovery(queue, now) {
                    Some(t) => merge(t),
                    None => merge(out.next_change(now)),
                }
            } else if let Some(t) = out.next_open(queue, now) {
                merge(t);
            }
        }
        earliest
    }

    /// The next instant worth re-checking an in-flight *preemptable*
    /// segment on `port` for an express frame that became eligible
    /// mid-segment: the next gate change, or `None` when the port buffers
    /// nothing or its egress gates never change (always-open list —
    /// arrivals trigger their own kicks).
    #[must_use]
    pub fn next_preemption_check(&self, port: PortId, now: SimTime) -> Option<SimTime> {
        let p = self.ports.get(port.as_usize())?;
        if p.gates.total_buffered() == 0 || p.gates.out_gcl().is_uniform() {
            return None;
        }
        Some(p.gates.next_gate_change(now))
    }

    /// Whether any queue of `port` holds frames.
    #[must_use]
    pub fn port_backlogged(&self, port: PortId) -> bool {
        self.ports
            .get(port.as_usize())
            .is_some_and(|p| p.gates.total_buffered() > 0)
    }

    /// Number of cabled ports.
    #[must_use]
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The role of a port.
    #[must_use]
    pub fn port_kind(&self, port: PortId) -> Option<PortKind> {
        self.ports.get(port.as_usize()).map(|p| p.kind)
    }

    /// Data-plane statistics.
    #[must_use]
    pub fn stats(&self) -> &SwitchStats {
        &self.stats
    }

    /// Gate-control state of one port (for tests and reports).
    #[must_use]
    pub fn gates(&self, port: PortId) -> Option<&GateCtrl> {
        self.ports.get(port.as_usize()).map(|p| &p.gates)
    }

    /// The ingress filter (for reports).
    #[must_use]
    pub fn filter(&self) -> &IngressFilter {
        &self.filter
    }

    /// The packet switch (for reports).
    #[must_use]
    pub fn packet_switch(&self) -> &PacketSwitch {
        &self.packet_switch
    }

    /// Highest per-queue occupancy seen on any port — the measurement that
    /// justifies shrinking `queue_depth` (Table I's insight).
    #[must_use]
    pub fn max_queue_high_water(&self) -> usize {
        self.ports
            .iter()
            .flat_map(|p| {
                (0..p.gates.layout().queue_num()).map(|q| p.gates.high_water(QueueId::new(q as u8)))
            })
            .max()
            .unwrap_or(0)
    }
}

/// Builds the queue layout for a port with `queue_num` queues: the paper's
/// standard split for 8, otherwise a proportional split with the top two
/// queues time-sensitive.
fn layout_for(queue_num: u32) -> TsnResult<QueueLayout> {
    if queue_num == 8 {
        return Ok(QueueLayout::standard8());
    }
    if queue_num < 2 {
        return Err(TsnError::invalid_parameter(
            "queue_num",
            "at least two queues are needed for the CQF pair",
        ));
    }
    let n = queue_num as usize;
    let mut classes = vec![TrafficClass::BestEffort; n];
    classes[n - 1] = TrafficClass::TimeSensitive;
    classes[n - 2] = TrafficClass::TimeSensitive;
    // Up to three RC queues below the TS pair, paper-style.
    let rc = (n.saturating_sub(2)).min(3);
    for slot in classes.iter_mut().skip(n.saturating_sub(2 + rc)).take(rc) {
        *slot = TrafficClass::RateConstrained;
    }
    QueueLayout::new(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_types::FlowId;

    const SLOT: SimDuration = SimDuration::from_micros(65);

    fn default_core() -> TsnSwitchCore {
        let resources = tsn_resource::ResourceConfig::new();
        let spec = SwitchSpec::new(&resources, vec![PortKind::Tsn, PortKind::Edge], SLOT);
        TsnSwitchCore::new(&spec).expect("valid spec")
    }

    fn ts_frame(dst: MacAddr, seq: u64) -> EthernetFrame {
        EthernetFrame::builder()
            .src(MacAddr::station(1))
            .dst(dst)
            .class(TrafficClass::TimeSensitive)
            .size_bytes(64)
            .flow(FlowId::new(0))
            .sequence(seq)
            .build()
            .expect("valid frame")
    }

    #[test]
    fn end_to_end_receive_then_dequeue() {
        let mut sw = default_core();
        let dst = MacAddr::station(9);
        sw.add_unicast(dst, VlanId::DEFAULT, PortId::new(0))
            .expect("fits");
        let report = sw.receive(ts_frame(dst, 0), SimTime::ZERO);
        assert_eq!(report.len(), 1);
        assert!(report[0].is_enqueued());
        // CQF: the frame is only dequeuable in the next slot.
        assert!(sw.dequeue(PortId::new(0), SimTime::ZERO).is_none());
        let (queue, frame) = sw
            .dequeue(PortId::new(0), SimTime::ZERO + SLOT)
            .expect("eligible next slot");
        assert_eq!(frame.sequence(), 0);
        assert!(sw
            .gates(PortId::new(0))
            .expect("port exists")
            .layout()
            .ts_queues()
            .contains(&queue));
        assert_eq!(sw.stats().transmitted, 1);
    }

    #[test]
    fn lookup_miss_is_dropped_not_flooded() {
        let mut sw = default_core();
        let report = sw.receive(ts_frame(MacAddr::station(66), 0), SimTime::ZERO);
        assert_eq!(
            report,
            vec![Disposition::Dropped {
                port: None,
                reason: DropReason::LookupMiss
            }]
        );
        assert_eq!(sw.stats().drops(DropReason::LookupMiss), 1);
    }

    #[test]
    fn multicast_replicates_to_all_member_ports() {
        let mut resources = tsn_resource::ResourceConfig::new();
        resources.set_switch_tbl(1024, 16).expect("valid");
        let spec = SwitchSpec::new(&resources, vec![PortKind::Tsn, PortKind::Edge], SLOT);
        let mut sw = TsnSwitchCore::new(&spec).expect("valid spec");
        let group = MacAddr::new([0x01, 0, 0x5e, 0, 0, 9]);
        sw.add_multicast(McId::new(1), vec![PortId::new(0), PortId::new(1)])
            .expect("fits");
        let frame = EthernetFrame::builder()
            .src(MacAddr::station(1))
            .dst(group)
            .mc_id(McId::new(1))
            .class(TrafficClass::TimeSensitive)
            .size_bytes(64)
            .build()
            .expect("valid frame");
        let report = sw.receive(frame, SimTime::ZERO);
        assert_eq!(report.len(), 2);
        assert!(report.iter().all(Disposition::is_enqueued));
        assert_eq!(sw.stats().enqueued, 2);
    }

    #[test]
    fn buffer_pool_exhaustion_drops() {
        let mut resources = tsn_resource::ResourceConfig::new();
        resources
            .set_buffers(2, 1)
            .expect("valid")
            .set_queues(16, 8, 1)
            .expect("valid");
        let spec = SwitchSpec::new(&resources, vec![PortKind::Tsn], SLOT);
        let mut sw = TsnSwitchCore::new(&spec).expect("valid spec");
        let dst = MacAddr::station(9);
        sw.add_unicast(dst, VlanId::DEFAULT, PortId::new(0))
            .expect("fits");
        for seq in 0..2 {
            assert!(sw.receive(ts_frame(dst, seq), SimTime::ZERO)[0].is_enqueued());
        }
        let report = sw.receive(ts_frame(dst, 2), SimTime::ZERO);
        assert_eq!(
            report,
            vec![Disposition::Dropped {
                port: Some(PortId::new(0)),
                reason: DropReason::BufferExhausted
            }]
        );
    }

    #[test]
    fn queue_depth_exhaustion_drops() {
        let mut resources = tsn_resource::ResourceConfig::new();
        resources
            .set_queues(2, 8, 1)
            .expect("valid")
            .set_buffers(96, 1)
            .expect("valid");
        let spec = SwitchSpec::new(&resources, vec![PortKind::Tsn], SLOT);
        let mut sw = TsnSwitchCore::new(&spec).expect("valid spec");
        let dst = MacAddr::station(9);
        sw.add_unicast(dst, VlanId::DEFAULT, PortId::new(0))
            .expect("fits");
        for seq in 0..2 {
            assert!(sw.receive(ts_frame(dst, seq), SimTime::ZERO)[0].is_enqueued());
        }
        let report = sw.receive(ts_frame(dst, 2), SimTime::ZERO);
        assert_eq!(
            report,
            vec![Disposition::Dropped {
                port: Some(PortId::new(0)),
                reason: DropReason::QueueOverflow
            }]
        );
        assert_eq!(sw.max_queue_high_water(), 2);
    }

    #[test]
    fn spec_validation_checks_tsn_port_budget() {
        let mut resources = tsn_resource::ResourceConfig::new();
        resources.set_buffers(96, 1).expect("valid"); // port_num = 1
        let spec = SwitchSpec::new(&resources, vec![PortKind::Tsn, PortKind::Tsn], SLOT);
        assert!(TsnSwitchCore::new(&spec).is_err());
    }

    #[test]
    fn edge_ports_do_not_hold_frames_for_a_slot() {
        let mut sw = default_core();
        let dst = MacAddr::station(9);
        sw.add_unicast(dst, VlanId::DEFAULT, PortId::new(1))
            .expect("fits");
        sw.receive(ts_frame(dst, 0), SimTime::ZERO);
        // Port 1 is an edge port: dequeue works immediately.
        assert!(sw.dequeue(PortId::new(1), SimTime::ZERO).is_some());
    }

    #[test]
    fn nonstandard_queue_counts_build_layouts() {
        for n in [2u32, 3, 4, 6, 12] {
            let mut resources = tsn_resource::ResourceConfig::new();
            resources.set_queues(8, n, 1).expect("valid");
            resources.set_gate_tbl(2, n, 1).expect("valid");
            let spec = SwitchSpec::new(&resources, vec![PortKind::Tsn], SLOT);
            let sw = TsnSwitchCore::new(&spec).expect("valid spec");
            assert_eq!(
                sw.gates(PortId::new(0)).expect("port").layout().queue_num(),
                n as usize
            );
        }
    }

    #[test]
    fn dequeue_class_splits_express_and_preemptable() {
        let mut sw = default_core();
        let dst = MacAddr::station(9);
        sw.add_unicast(dst, VlanId::DEFAULT, PortId::new(1))
            .expect("fits");
        // Port 1 is an edge port (always-open gates): enqueue one TS and
        // one BE frame.
        sw.receive(ts_frame(dst, 0), SimTime::ZERO);
        let be = EthernetFrame::builder()
            .src(MacAddr::station(1))
            .dst(dst)
            .class(TrafficClass::BestEffort)
            .size_bytes(64)
            .build()
            .expect("valid frame");
        sw.receive(be, SimTime::ZERO);

        assert!(sw.express_ready(PortId::new(1), SimTime::ZERO));
        // The preemptable MAC never serves the TS frame.
        let (q_be, f_be) = sw
            .dequeue_class(PortId::new(1), SimTime::ZERO, Some(false))
            .expect("BE eligible");
        assert_eq!(f_be.class(), TrafficClass::BestEffort);
        assert!(sw
            .gates(PortId::new(1))
            .expect("port")
            .layout()
            .be_queues()
            .contains(&q_be));
        // And the express MAC never serves BE.
        assert!(sw
            .dequeue_class(PortId::new(1), SimTime::ZERO, Some(false))
            .is_none());
        let (_, f_ts) = sw
            .dequeue_class(PortId::new(1), SimTime::ZERO, Some(true))
            .expect("TS eligible");
        assert_eq!(f_ts.class(), TrafficClass::TimeSensitive);
        assert!(!sw.express_ready(PortId::new(1), SimTime::ZERO));
    }

    #[test]
    fn express_ready_respects_cqf_gates() {
        let mut sw = default_core();
        let dst = MacAddr::station(9);
        sw.add_unicast(dst, VlanId::DEFAULT, PortId::new(0))
            .expect("fits");
        sw.receive(ts_frame(dst, 0), SimTime::ZERO);
        // Same slot: the frame fills, it is not yet drainable.
        assert!(!sw.express_ready(PortId::new(0), SimTime::ZERO));
        // Next slot: express is ready.
        assert!(sw.express_ready(PortId::new(0), SimTime::ZERO + SLOT));
    }

    #[test]
    fn control_plane_rejects_unknown_ports() {
        let mut sw = default_core();
        assert!(sw
            .add_unicast(MacAddr::station(9), VlanId::DEFAULT, PortId::new(7))
            .is_err());
        assert!(sw
            .set_shaper(PortId::new(7), 0, DataRate::mbps(10))
            .is_err());
    }
}
