//! The **Packet Switch** template: parser + lookup (Fig. 5, left).
//!
//! "It is used to lookup the outport for each packet with the specified
//! packet fields. … the unicast table is firstly matched with the *Dst MAC*
//! and *VID* in the packet header for finding the outport. If *Dst MAC* is
//! a multicast address, the multicast index (*MC ID*) is used to find a set
//! of outports from the multicast table." (Sections III.A/III.B)

use crate::table::CapTable;
use std::sync::Arc;
use tsn_types::{EthernetFrame, MacAddr, McId, Pcp, PortId, TsnResult, VlanId};

/// The header fields the parser submodule extracts from a frame.
///
/// On the FPGA this is the output of the parser pipeline stage; here it is
/// a plain struct so the lookup stage (and tests) can be driven without a
/// full frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketFields {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// VLAN identifier.
    pub vlan: VlanId,
    /// Priority code point.
    pub pcp: Pcp,
    /// Multicast index carried by group-addressed frames.
    pub mc_id: Option<McId>,
}

impl PacketFields {
    /// Parses (extracts) the lookup-relevant fields of a frame.
    #[must_use]
    pub fn parse(frame: &EthernetFrame) -> Self {
        PacketFields {
            dst: frame.dst(),
            src: frame.src(),
            vlan: frame.vlan(),
            pcp: frame.pcp(),
            mc_id: frame.mc_id(),
        }
    }
}

/// Result of a forwarding lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Forward out of a single port.
    Unicast(PortId),
    /// Replicate to a set of ports. The port set is interned behind an
    /// `Arc` at install time, so the per-frame lookup is a refcount bump
    /// instead of a heap-allocating `Vec` clone.
    Multicast(Arc<[PortId]>),
    /// No matching entry — the frame cannot be forwarded
    /// deterministically. (A TSN switch must not flood TS traffic; misses
    /// are counted and the frame dropped by the pipeline.)
    Miss,
}

impl LookupOutcome {
    /// All egress ports the outcome names.
    #[must_use]
    pub fn ports(&self) -> &[PortId] {
        match self {
            LookupOutcome::Unicast(p) => core::slice::from_ref(p),
            LookupOutcome::Multicast(ports) => ports,
            LookupOutcome::Miss => &[],
        }
    }

    /// `true` when no entry matched.
    #[must_use]
    pub fn is_miss(&self) -> bool {
        matches!(self, LookupOutcome::Miss)
    }
}

/// The packet-switch template instance: a unicast table keyed on
/// `(dst MAC, VID)` plus a multicast table keyed on `MC ID`.
///
/// # Example
///
/// ```
/// use tsn_switch::packet_switch::{PacketSwitch, LookupOutcome};
/// use tsn_types::{MacAddr, VlanId, PortId};
///
/// let mut ps = PacketSwitch::new(1024, 0);
/// let dst = MacAddr::station(7);
/// ps.add_unicast(dst, VlanId::DEFAULT, PortId::new(2))?;
/// let hit = ps.lookup_fields(dst, VlanId::DEFAULT, None);
/// assert_eq!(hit, LookupOutcome::Unicast(PortId::new(2)));
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PacketSwitch {
    /// Exact entries are keyed `(dst, Some(vid))`; aggregated entries
    /// (Section III.C guideline 1: "some table entries could be
    /// aggregated according to the transmission path") use `(dst, None)`
    /// and match any VLAN. Both kinds share the table's capacity.
    unicast: CapTable<(MacAddr, Option<VlanId>), PortId>,
    /// Interned port sets: lookups hand out shared references, never
    /// per-frame copies of the group membership.
    multicast: CapTable<McId, Arc<[PortId]>>,
}

impl PacketSwitch {
    /// Creates the template with the given table sizes (the
    /// `set_switch_tbl(unicast_size, multicast_size)` parameters).
    #[must_use]
    pub fn new(unicast_size: usize, multicast_size: usize) -> Self {
        PacketSwitch {
            unicast: CapTable::new("unicast switch table", unicast_size),
            multicast: CapTable::new("multicast switch table", multicast_size),
        }
    }

    /// Installs a unicast forwarding entry.
    ///
    /// # Errors
    ///
    /// Returns [`tsn_types::TsnError::CapacityExceeded`] when the unicast
    /// table is full.
    pub fn add_unicast(&mut self, dst: MacAddr, vlan: VlanId, port: PortId) -> TsnResult<()> {
        self.unicast.insert((dst, Some(vlan)), port)?;
        Ok(())
    }

    /// Installs an *aggregated* unicast entry that matches the
    /// destination on any VLAN — one entry per destination instead of one
    /// per flow, the optimization guideline (1) suggests for flows that
    /// share a transmission path.
    ///
    /// # Errors
    ///
    /// Returns [`tsn_types::TsnError::CapacityExceeded`] when the unicast
    /// table is full.
    pub fn add_unicast_any_vlan(&mut self, dst: MacAddr, port: PortId) -> TsnResult<()> {
        self.unicast.insert((dst, None), port)?;
        Ok(())
    }

    /// Installs a multicast group entry.
    ///
    /// # Errors
    ///
    /// Returns [`tsn_types::TsnError::CapacityExceeded`] when the
    /// multicast table is full.
    pub fn add_multicast(&mut self, mc_id: McId, ports: Vec<PortId>) -> TsnResult<()> {
        self.multicast.insert(mc_id, ports.into())?;
        Ok(())
    }

    /// Re-provisions both table capacities in place, keeping the
    /// programmed entries — the incremental-reconfiguration path.
    ///
    /// Returns `false` when either table already holds more entries than
    /// its new size allows; a from-scratch build at those sizes would
    /// have rejected an install, so the caller must replay instead. On
    /// `false` the unicast capacity may already have been updated — the
    /// caller discards the (cloned) switch state on that path.
    #[must_use]
    pub fn reprovision(&mut self, unicast_size: usize, multicast_size: usize) -> bool {
        self.unicast.set_capacity(unicast_size) && self.multicast.set_capacity(multicast_size)
    }

    /// Looks up the outport(s) for a frame.
    pub fn lookup(&mut self, frame: &EthernetFrame) -> LookupOutcome {
        let fields = PacketFields::parse(frame);
        self.lookup_fields(fields.dst, fields.vlan, fields.mc_id)
    }

    /// Looks up by raw fields (the lookup submodule's native interface).
    pub fn lookup_fields(
        &mut self,
        dst: MacAddr,
        vlan: VlanId,
        mc_id: Option<McId>,
    ) -> LookupOutcome {
        if dst.is_multicast() {
            let Some(mc) = mc_id else {
                return LookupOutcome::Miss;
            };
            match self.multicast.lookup(&mc) {
                // Cloning an `Arc<[PortId]>` is a refcount bump — the
                // interned port set itself is never copied per frame.
                Some(ports) => LookupOutcome::Multicast(Arc::clone(ports)),
                None => LookupOutcome::Miss,
            }
        } else {
            // Exact (dst, vid) first, then the aggregated any-VLAN entry.
            if let Some(&port) = self.unicast.lookup(&(dst, Some(vlan))) {
                return LookupOutcome::Unicast(port);
            }
            match self.unicast.lookup(&(dst, None)) {
                Some(&port) => LookupOutcome::Unicast(port),
                None => LookupOutcome::Miss,
            }
        }
    }

    /// Occupancy of the unicast table.
    #[must_use]
    pub fn unicast_occupancy(&self) -> usize {
        self.unicast.occupancy()
    }

    /// Occupancy of the multicast table.
    #[must_use]
    pub fn multicast_occupancy(&self) -> usize {
        self.multicast.occupancy()
    }

    /// Lookup misses over both tables.
    #[must_use]
    pub fn miss_count(&self) -> u64 {
        self.unicast.misses() + self.multicast.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_types::{FlowId, TrafficClass};

    fn frame_to(dst: MacAddr) -> EthernetFrame {
        EthernetFrame::builder()
            .src(MacAddr::station(0))
            .dst(dst)
            .class(TrafficClass::TimeSensitive)
            .size_bytes(64)
            .flow(FlowId::new(1))
            .build()
            .expect("valid frame")
    }

    #[test]
    fn unicast_lookup_hits_and_misses() {
        let mut ps = PacketSwitch::new(4, 0);
        let dst = MacAddr::station(9);
        ps.add_unicast(dst, VlanId::DEFAULT, PortId::new(1))
            .expect("fits");
        assert_eq!(
            ps.lookup(&frame_to(dst)),
            LookupOutcome::Unicast(PortId::new(1))
        );
        assert_eq!(
            ps.lookup(&frame_to(MacAddr::station(8))),
            LookupOutcome::Miss
        );
        // A full miss probes both the exact and the aggregated entry,
        // like the two-pass hardware lookup it models.
        assert_eq!(ps.miss_count(), 2);
    }

    #[test]
    fn aggregated_entry_matches_any_vlan() {
        let mut ps = PacketSwitch::new(4, 0);
        let dst = MacAddr::station(9);
        ps.add_unicast_any_vlan(dst, PortId::new(3)).expect("fits");
        for vid in [1u16, 7, 4000] {
            let vlan = VlanId::new(vid).expect("legal vid");
            assert_eq!(
                ps.lookup_fields(dst, vlan, None),
                LookupOutcome::Unicast(PortId::new(3))
            );
        }
        assert_eq!(ps.unicast_occupancy(), 1, "one entry covers every VLAN");
    }

    #[test]
    fn exact_entry_wins_over_aggregated() {
        let mut ps = PacketSwitch::new(4, 0);
        let dst = MacAddr::station(9);
        ps.add_unicast_any_vlan(dst, PortId::new(3)).expect("fits");
        ps.add_unicast(dst, VlanId::DEFAULT, PortId::new(1))
            .expect("fits");
        assert_eq!(
            ps.lookup_fields(dst, VlanId::DEFAULT, None),
            LookupOutcome::Unicast(PortId::new(1)),
            "exact match takes precedence"
        );
        let other = VlanId::new(5).expect("legal vid");
        assert_eq!(
            ps.lookup_fields(dst, other, None),
            LookupOutcome::Unicast(PortId::new(3)),
            "other VLANs fall back to the aggregate"
        );
    }

    #[test]
    fn aggregated_entries_share_capacity() {
        let mut ps = PacketSwitch::new(1, 0);
        ps.add_unicast_any_vlan(MacAddr::station(1), PortId::new(0))
            .expect("fits");
        assert!(ps
            .add_unicast(MacAddr::station(2), VlanId::DEFAULT, PortId::new(0))
            .is_err());
    }

    #[test]
    fn unicast_is_keyed_on_vlan_too() {
        let mut ps = PacketSwitch::new(4, 0);
        let dst = MacAddr::station(9);
        let v2 = VlanId::new(2).expect("valid vid");
        ps.add_unicast(dst, VlanId::DEFAULT, PortId::new(1))
            .expect("fits");
        ps.add_unicast(dst, v2, PortId::new(2)).expect("fits");
        assert_eq!(
            ps.lookup_fields(dst, v2, None),
            LookupOutcome::Unicast(PortId::new(2))
        );
        assert_eq!(
            ps.lookup_fields(dst, VlanId::DEFAULT, None),
            LookupOutcome::Unicast(PortId::new(1))
        );
    }

    #[test]
    fn multicast_uses_the_mc_index() {
        let mut ps = PacketSwitch::new(0, 4);
        let group = MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]);
        ps.add_multicast(McId::new(3), vec![PortId::new(0), PortId::new(2)])
            .expect("fits");
        let mut frame = frame_to(group);
        frame = EthernetFrame::builder()
            .src(frame.src())
            .dst(group)
            .size_bytes(64)
            .mc_id(McId::new(3))
            .build()
            .expect("valid frame");
        match ps.lookup(&frame) {
            LookupOutcome::Multicast(ports) => {
                assert_eq!(&ports[..], [PortId::new(0), PortId::new(2)]);
            }
            other => panic!("expected multicast outcome, got {other:?}"),
        }
        // A group frame without an MC id cannot be resolved.
        let tagless = frame_to(group);
        assert!(ps.lookup(&tagless).is_miss());
    }

    #[test]
    fn capacity_mirrors_set_switch_tbl() {
        let mut ps = PacketSwitch::new(2, 1);
        ps.add_unicast(MacAddr::station(1), VlanId::DEFAULT, PortId::new(0))
            .expect("fits");
        ps.add_unicast(MacAddr::station(2), VlanId::DEFAULT, PortId::new(0))
            .expect("fits");
        assert!(ps
            .add_unicast(MacAddr::station(3), VlanId::DEFAULT, PortId::new(0))
            .is_err());
        ps.add_multicast(McId::new(0), vec![]).expect("fits");
        assert!(ps.add_multicast(McId::new(1), vec![]).is_err());
        assert_eq!(ps.unicast_occupancy(), 2);
        assert_eq!(ps.multicast_occupancy(), 1);
    }

    #[test]
    fn outcome_ports_view() {
        assert_eq!(
            LookupOutcome::Unicast(PortId::new(3)).ports(),
            &[PortId::new(3)]
        );
        assert!(LookupOutcome::Miss.ports().is_empty());
        assert!(LookupOutcome::Miss.is_miss());
    }

    #[test]
    fn parser_extracts_fields() {
        let f = frame_to(MacAddr::station(5));
        let fields = PacketFields::parse(&f);
        assert_eq!(fields.dst, MacAddr::station(5));
        assert_eq!(fields.src, MacAddr::station(0));
        assert_eq!(fields.vlan, VlanId::DEFAULT);
        assert_eq!(fields.mc_id, None);
    }
}
