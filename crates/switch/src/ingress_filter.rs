//! The **Ingress Filter** template: classifier + meters (Fig. 5).
//!
//! "The classification table in *Ingress Filter* is used to get Meter and
//! Queue ID based on the combination of *Src MAC*, *Dst MAC*, *VID* and
//! *PRI* carried in the packet header. Then, the *Meter ID* is used to find
//! the corresponding meter that regulates a flow with its current rate. The
//! *Queue ID* indicates which queue the packet would be enqueued."
//! (Section III.B) — this is the per-stream filtering and policing role of
//! 802.1Qci.

use crate::layout::QueueLayout;
use crate::table::CapTable;
use tsn_types::{
    DataRate, EthernetFrame, MacAddr, MeterId, Pcp, QueueId, SimTime, TrafficClass, TsnError,
    TsnResult, VlanId,
};

/// Classification key: the 4-tuple the paper's classifier matches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassKey {
    /// Source MAC address.
    pub src: MacAddr,
    /// Destination MAC address.
    pub dst: MacAddr,
    /// VLAN identifier.
    pub vlan: VlanId,
    /// Priority code point (`PRI`).
    pub pcp: Pcp,
}

impl ClassKey {
    /// Extracts the classification key from a frame.
    #[must_use]
    pub fn of(frame: &EthernetFrame) -> Self {
        ClassKey {
            src: frame.src(),
            dst: frame.dst(),
            vlan: frame.vlan(),
            pcp: frame.pcp(),
        }
    }
}

/// A classification entry: where the flow's frames go and which meter
/// polices them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassEntry {
    /// Target queue.
    pub queue: QueueId,
    /// Policing meter, if the flow is rate-regulated.
    pub meter: Option<MeterId>,
}

/// A single-rate two-colour token-bucket meter.
///
/// Tokens (in bits) refill at `rate` up to `burst_bytes`; a frame passes if
/// the bucket holds at least its size, otherwise it is dropped (coloured
/// red). This is the shape the paper's Verilog meter template implements.
///
/// # Example
///
/// ```
/// use tsn_switch::ingress_filter::TokenBucketMeter;
/// use tsn_types::{DataRate, SimTime, SimDuration};
///
/// let mut meter = TokenBucketMeter::new(DataRate::mbps(8), 2_000)?;
/// let t0 = SimTime::ZERO;
/// assert!(meter.police(t0, 1_500));          // burst allows it
/// assert!(!meter.police(t0, 1_500), "bucket exhausted");
/// // 8 Mbps refills 1 500 B in 1.5 ms.
/// assert!(meter.police(t0 + SimDuration::from_micros(1_500), 1_500));
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucketMeter {
    rate: DataRate,
    burst_bits: u64,
    /// Bits earned are computed from scratch against this horizon on
    /// every decision, so rounding never accumulates (a meter fed at
    /// exactly its rate stays green forever).
    last_seen: SimTime,
    consumed_bits: u64,
    passed: u64,
    dropped: u64,
}

impl TokenBucketMeter {
    /// Creates a meter with committed information rate `rate` and burst
    /// size `burst_bytes` (the bucket starts full).
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if the rate or burst is zero.
    pub fn new(rate: DataRate, burst_bytes: u32) -> TsnResult<Self> {
        if rate.is_zero() {
            return Err(TsnError::invalid_parameter("rate", "must be non-zero"));
        }
        if burst_bytes == 0 {
            return Err(TsnError::invalid_parameter(
                "burst_bytes",
                "must be non-zero",
            ));
        }
        let burst_bits = u64::from(burst_bytes) * 8;
        Ok(TokenBucketMeter {
            rate,
            burst_bits,
            last_seen: SimTime::ZERO,
            consumed_bits: 0,
            passed: 0,
            dropped: 0,
        })
    }

    /// Polices one frame of `frame_bytes` at time `now`. Returns `true`
    /// if the frame conforms (passes).
    ///
    /// Time may not go backwards; out-of-order calls refill nothing.
    pub fn police(&mut self, now: SimTime, frame_bytes: u32) -> bool {
        self.last_seen = self.last_seen.max(now);
        let need = u64::from(frame_bytes) * 8;
        if self.tokens_at_horizon() >= need {
            self.consume(need);
            self.passed += 1;
            true
        } else {
            self.dropped += 1;
            false
        }
    }

    /// Tokens currently in the bucket: `min(burst, burst + earned −
    /// consumed)`, with `earned` recomputed from the epoch in one step.
    fn tokens_at_horizon(&self) -> u64 {
        let earned = (self.rate.bits_per_sec() as u128 * self.last_seen.as_nanos() as u128
            / 1_000_000_000) as u64;
        (self.burst_bits + earned)
            .saturating_sub(self.consumed_bits)
            .min(self.burst_bits)
    }

    fn consume(&mut self, need: u64) {
        // Consuming from a capped bucket: anything earned beyond the cap
        // is gone, so re-baseline `consumed` against the cap first.
        let earned = (self.rate.bits_per_sec() as u128 * self.last_seen.as_nanos() as u128
            / 1_000_000_000) as u64;
        let uncapped = (self.burst_bits + earned).saturating_sub(self.consumed_bits);
        if uncapped > self.burst_bits {
            self.consumed_bits = earned; // bucket was full: forget the overflow
        }
        self.consumed_bits += need;
    }

    /// The committed rate.
    #[must_use]
    pub fn rate(&self) -> DataRate {
        self.rate
    }

    /// Frames passed so far.
    #[must_use]
    pub fn passed(&self) -> u64 {
        self.passed
    }

    /// Frames dropped (red) so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Why the ingress filter dropped a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterDrop {
    /// The frame's meter was out of tokens.
    MeterRed,
    /// The classification entry referenced a meter id outside the meter
    /// table (configuration error surfaced at runtime, like hardware
    /// would).
    DanglingMeter,
    /// The frame-check sequence did not verify: the frame was corrupted in
    /// transit and must not be delivered.
    FcsError,
}

/// Outcome of classifying one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVerdict {
    /// Frame accepted, to be enqueued on `queue` of the egress port.
    Accept {
        /// Target queue id.
        queue: QueueId,
        /// Whether the decision came from a classification-table hit
        /// (`true`) or the PCP fallback (`false`).
        table_hit: bool,
    },
    /// Frame dropped by policing.
    Drop(FilterDrop),
}

/// The ingress-filter template instance.
///
/// Resource parameters: `class_size` entries in the classification table
/// and `meter_size` meters (Table II: `set_class_tbl`, `set_meter_tbl`).
#[derive(Debug, Clone)]
pub struct IngressFilter {
    class_table: CapTable<ClassKey, ClassEntry>,
    meters: Vec<Option<TokenBucketMeter>>,
    layout: QueueLayout,
    fallback_hits: u64,
}

impl IngressFilter {
    /// Creates the template with the given table sizes and queue layout.
    #[must_use]
    pub fn new(class_size: usize, meter_size: usize, layout: QueueLayout) -> Self {
        IngressFilter {
            class_table: CapTable::new("classification table", class_size),
            meters: vec![None; meter_size],
            layout,
            fallback_hits: 0,
        }
    }

    /// Installs a classification entry.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::CapacityExceeded`] when the classification
    /// table is full, or [`TsnError::InvalidParameter`] if the entry
    /// references a meter slot outside the meter table.
    pub fn add_class_entry(&mut self, key: ClassKey, entry: ClassEntry) -> TsnResult<()> {
        if let Some(meter) = entry.meter {
            if meter.as_usize() >= self.meters.len() {
                return Err(TsnError::invalid_parameter(
                    "meter",
                    format!(
                        "meter index {} outside meter table of size {}",
                        meter.as_usize(),
                        self.meters.len()
                    ),
                ));
            }
        }
        self.class_table.insert(key, entry)?;
        Ok(())
    }

    /// Installs (or replaces) a meter.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::CapacityExceeded`] if `id` is outside the meter
    /// table.
    pub fn set_meter(&mut self, id: MeterId, meter: TokenBucketMeter) -> TsnResult<()> {
        let capacity = self.meters.len();
        let slot = self
            .meters
            .get_mut(id.as_usize())
            .ok_or_else(|| TsnError::capacity("meter table", capacity))?;
        *slot = Some(meter);
        Ok(())
    }

    /// Re-provisions the filter's table sizes in place, keeping the
    /// programmed entries — the incremental-reconfiguration path.
    ///
    /// Returns `false` (without mutating anything) when the installed
    /// state does not fit the new sizes: the classification table holds
    /// more entries than `class_size`, or a meter is installed at an
    /// index at or beyond `meter_size`. A from-scratch build would have
    /// rejected those installs, so the caller must replay instead.
    #[must_use]
    pub fn reprovision(&mut self, class_size: usize, meter_size: usize) -> bool {
        let meters_used = self
            .meters
            .iter()
            .rposition(Option::is_some)
            .map_or(0, |i| i + 1);
        if meters_used > meter_size || !self.class_table.set_capacity(class_size) {
            return false;
        }
        self.meters.resize(meter_size, None);
        true
    }

    /// Classifies and polices one frame.
    ///
    /// A classification-table hit yields the configured queue and meter.
    /// A miss falls back to the PCP → class → default-queue mapping (the
    /// frame is not dropped: BE traffic does not need table entries).
    pub fn classify(&mut self, frame: &EthernetFrame, now: SimTime) -> FilterVerdict {
        // FCS check runs before classification: a corrupted header cannot
        // be trusted to index any table.
        if frame.is_corrupted() {
            return FilterVerdict::Drop(FilterDrop::FcsError);
        }
        let key = ClassKey::of(frame);
        match self.class_table.lookup(&key).copied() {
            Some(entry) => {
                if let Some(meter_id) = entry.meter {
                    match self.meters.get_mut(meter_id.as_usize()) {
                        Some(Some(meter)) => {
                            if !meter.police(now, frame.size_bytes()) {
                                return FilterVerdict::Drop(FilterDrop::MeterRed);
                            }
                        }
                        _ => return FilterVerdict::Drop(FilterDrop::DanglingMeter),
                    }
                }
                FilterVerdict::Accept {
                    queue: entry.queue,
                    table_hit: true,
                }
            }
            None => {
                self.fallback_hits += 1;
                let class = TrafficClass::from_pcp(frame.pcp());
                FilterVerdict::Accept {
                    queue: self.layout.default_queue(class),
                    table_hit: false,
                }
            }
        }
    }

    /// The queue layout the filter maps fallback traffic onto.
    #[must_use]
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// Classification-table occupancy.
    #[must_use]
    pub fn class_occupancy(&self) -> usize {
        self.class_table.occupancy()
    }

    /// Frames classified via the PCP fallback (table misses).
    #[must_use]
    pub fn fallback_hits(&self) -> u64 {
        self.fallback_hits
    }

    /// Read access to a meter (for reports/tests).
    #[must_use]
    pub fn meter(&self, id: MeterId) -> Option<&TokenBucketMeter> {
        self.meters.get(id.as_usize()).and_then(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_types::{FlowId, SimDuration};

    fn frame(pcp: u8, size: u32) -> EthernetFrame {
        EthernetFrame::builder()
            .src(MacAddr::station(1))
            .dst(MacAddr::station(2))
            .pcp(Pcp::new(pcp).expect("valid pcp"))
            .size_bytes(size)
            .flow(FlowId::new(0))
            .build()
            .expect("valid frame")
    }

    fn filter() -> IngressFilter {
        IngressFilter::new(16, 4, QueueLayout::standard8())
    }

    #[test]
    fn table_hit_returns_configured_queue() {
        let mut f = filter();
        let frm = frame(7, 64);
        f.add_class_entry(
            ClassKey::of(&frm),
            ClassEntry {
                queue: QueueId::new(6),
                meter: None,
            },
        )
        .expect("fits");
        assert_eq!(
            f.classify(&frm, SimTime::ZERO),
            FilterVerdict::Accept {
                queue: QueueId::new(6),
                table_hit: true
            }
        );
    }

    #[test]
    fn miss_falls_back_to_pcp_band() {
        let mut f = filter();
        assert_eq!(
            f.classify(&frame(0, 64), SimTime::ZERO),
            FilterVerdict::Accept {
                queue: QueueId::new(0),
                table_hit: false
            }
        );
        assert_eq!(
            f.classify(&frame(4, 64), SimTime::ZERO),
            FilterVerdict::Accept {
                queue: QueueId::new(3),
                table_hit: false
            }
        );
        assert_eq!(f.fallback_hits(), 2);
    }

    #[test]
    fn meter_red_drops_and_recovers() {
        let mut f = filter();
        let frm = frame(4, 1024);
        f.set_meter(
            MeterId::new(1),
            TokenBucketMeter::new(DataRate::mbps(8), 1024).expect("valid meter"),
        )
        .expect("slot exists");
        f.add_class_entry(
            ClassKey::of(&frm),
            ClassEntry {
                queue: QueueId::new(4),
                meter: Some(MeterId::new(1)),
            },
        )
        .expect("fits");

        let t0 = SimTime::ZERO;
        assert!(matches!(f.classify(&frm, t0), FilterVerdict::Accept { .. }));
        assert_eq!(
            f.classify(&frm, t0),
            FilterVerdict::Drop(FilterDrop::MeterRed)
        );
        // After 1.024 ms the 8 Mbps meter regains 1024 B.
        let later = t0 + SimDuration::from_micros(1_024);
        assert!(matches!(
            f.classify(&frm, later),
            FilterVerdict::Accept { .. }
        ));
        let meter = f.meter(MeterId::new(1)).expect("installed");
        assert_eq!(meter.passed(), 2);
        assert_eq!(meter.dropped(), 1);
    }

    #[test]
    fn corrupted_frames_fail_the_fcs_check() {
        let mut f = filter();
        let frm = frame(7, 64);
        f.add_class_entry(
            ClassKey::of(&frm),
            ClassEntry {
                queue: QueueId::new(6),
                meter: None,
            },
        )
        .expect("fits");
        // Even a frame with a matching table entry is refused once marked
        // corrupted — and it does not count as a fallback hit either.
        assert_eq!(
            f.classify(&frm.with_corruption(), SimTime::ZERO),
            FilterVerdict::Drop(FilterDrop::FcsError)
        );
        assert_eq!(f.fallback_hits(), 0);
    }

    #[test]
    fn dangling_meter_reference_is_a_drop() {
        let mut f = filter();
        let frm = frame(4, 64);
        // Slot 2 exists but holds no meter.
        f.add_class_entry(
            ClassKey::of(&frm),
            ClassEntry {
                queue: QueueId::new(4),
                meter: Some(MeterId::new(2)),
            },
        )
        .expect("fits");
        assert_eq!(
            f.classify(&frm, SimTime::ZERO),
            FilterVerdict::Drop(FilterDrop::DanglingMeter)
        );
    }

    #[test]
    fn entries_cannot_reference_out_of_range_meters() {
        let mut f = filter();
        let frm = frame(4, 64);
        assert!(f
            .add_class_entry(
                ClassKey::of(&frm),
                ClassEntry {
                    queue: QueueId::new(4),
                    meter: Some(MeterId::new(99)),
                },
            )
            .is_err());
        assert!(f
            .set_meter(
                MeterId::new(99),
                TokenBucketMeter::new(DataRate::mbps(1), 64).expect("valid meter")
            )
            .is_err());
    }

    #[test]
    fn class_capacity_is_enforced() {
        let mut f = IngressFilter::new(1, 1, QueueLayout::standard8());
        let a = frame(7, 64);
        let b = frame(6, 64);
        f.add_class_entry(
            ClassKey::of(&a),
            ClassEntry {
                queue: QueueId::new(7),
                meter: None,
            },
        )
        .expect("fits");
        assert!(f
            .add_class_entry(
                ClassKey::of(&b),
                ClassEntry {
                    queue: QueueId::new(7),
                    meter: None,
                },
            )
            .is_err());
        assert_eq!(f.class_occupancy(), 1);
    }

    #[test]
    fn token_bucket_never_exceeds_burst() {
        let mut m = TokenBucketMeter::new(DataRate::gbps(1), 100).expect("valid meter");
        // Long idle: bucket must still cap at burst.
        assert!(!m.police(SimTime::from_secs_helper(10), 200));
        assert!(m.police(SimTime::from_secs_helper(10), 100));
    }

    // Local helper: SimTime lacks from_secs by design; keep the test
    // readable without widening the public API.
    trait FromSecs {
        fn from_secs_helper(secs: u64) -> SimTime;
    }
    impl FromSecs for SimTime {
        fn from_secs_helper(secs: u64) -> SimTime {
            SimTime::from_nanos(secs * 1_000_000_000)
        }
    }

    #[test]
    fn meter_validation() {
        assert!(TokenBucketMeter::new(DataRate::ZERO, 100).is_err());
        assert!(TokenBucketMeter::new(DataRate::mbps(1), 0).is_err());
    }

    #[test]
    fn time_going_backwards_does_not_refill() {
        let mut m = TokenBucketMeter::new(DataRate::mbps(8), 64).expect("valid meter");
        assert!(m.police(SimTime::from_millis(5), 64));
        // Earlier timestamp: no refill, bucket stays empty.
        assert!(!m.police(SimTime::from_millis(1), 64));
    }
}
