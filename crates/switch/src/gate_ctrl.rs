//! The **Gate Ctrl** template: gated queues driven by In/Out gate control
//! lists (Fig. 5).
//!
//! "The gate control is used to control the enqueue and dequeue time of
//! each packet with two Gate Control Lists (GCL) attached to the ingress
//! and egress of each queue … In each time slot, the queue stays in an open
//! or a close state." (Sections III.A/III.B)
//!
//! The evaluation configures the GCLs statically to implement **CQF**
//! (Cyclic Queuing and Forwarding, 802.1Qch): two time-sensitive queues
//! alternate — while one enqueues, the other dequeues — so a packet
//! received in slot *i* is transmitted in slot *i+1* and the per-hop delay
//! is bounded by the slot length.

use crate::layout::QueueLayout;
use std::collections::VecDeque;
use tsn_types::{EthernetFrame, QueueId, SimDuration, SimTime, TrafficClass, TsnError, TsnResult};

/// One gate-control-list entry: the set of queues whose gate is open
/// during one time slot (bit *q* = queue *q* open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GateEntry {
    mask: u64,
}

impl GateEntry {
    /// An entry with every queue's gate open.
    #[must_use]
    pub const fn all_open() -> Self {
        GateEntry { mask: u64::MAX }
    }

    /// An entry with every gate closed.
    #[must_use]
    pub const fn all_closed() -> Self {
        GateEntry { mask: 0 }
    }

    /// Builds an entry from an iterator of open queues.
    #[must_use]
    pub fn open_for(queues: impl IntoIterator<Item = QueueId>) -> Self {
        let mut mask = 0u64;
        for q in queues {
            mask |= 1 << q.index();
        }
        GateEntry { mask }
    }

    /// Opens one more queue.
    #[must_use]
    pub const fn with_open(self, queue: QueueId) -> Self {
        GateEntry {
            mask: self.mask | 1 << queue.index(),
        }
    }

    /// Closes one queue.
    #[must_use]
    pub const fn with_closed(self, queue: QueueId) -> Self {
        GateEntry {
            mask: self.mask & !(1 << queue.index()),
        }
    }

    /// Whether `queue`'s gate is open in this entry.
    #[must_use]
    pub const fn is_open(self, queue: QueueId) -> bool {
        self.mask & (1 << queue.index()) != 0
    }

    /// The raw open-gate bitmask (bit *q* = queue *q* open).
    #[must_use]
    pub const fn bits(self) -> u64 {
        self.mask
    }
}

/// A gate control list: equally sized time slots, one [`GateEntry`] per
/// slot, repeating with period `len × slot`.
///
/// `gate_size` in the customization API (`set_gate_tbl`) is the number of
/// entries; CQF needs only 2.
///
/// # Example
///
/// ```
/// use tsn_switch::gate_ctrl::{GateControlList, GateEntry};
/// use tsn_types::{QueueId, SimDuration, SimTime};
///
/// let q6 = QueueId::new(6);
/// let q7 = QueueId::new(7);
/// let gcl = GateControlList::new(
///     vec![GateEntry::open_for([q6]), GateEntry::open_for([q7])],
///     SimDuration::from_micros(65),
/// )?;
/// assert!(gcl.is_open(q6, SimTime::ZERO));
/// assert!(!gcl.is_open(q7, SimTime::ZERO));
/// assert!(gcl.is_open(q7, SimTime::from_micros(65)));
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GateControlList {
    entries: Vec<GateEntry>,
    slot: SimDuration,
    /// All entries are identical, so the gate state never changes — true
    /// for every always-open list. Lets the hot path skip the
    /// `slot_index` division entirely.
    uniform: bool,
    /// OR of every entry: a queue absent here can never open.
    open_union: GateEntry,
    /// Transition table, `[entry_idx * 64 + queue]` → slots ahead until
    /// `queue`'s gate is next open (0 = open in that entry,
    /// [`NEVER_OPENS`] = the queue is closed in every entry). Empty for
    /// uniform lists (nothing to look up) and for lists longer than
    /// [`MAX_TABLE_ENTRIES`] (which fall back to scanning).
    next_open_tbl: Vec<u16>,
}

/// Sentinel in [`GateControlList::next_open_tbl`]: the queue never opens.
const NEVER_OPENS: u16 = u16::MAX;
/// Longest list the precomputed transition table covers; anything longer
/// (far beyond any real `gate_size`) scans entries on demand instead.
const MAX_TABLE_ENTRIES: usize = 4096;

impl GateControlList {
    /// Creates a GCL from its entries and slot length.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if `entries` is empty or
    /// `slot` is zero.
    pub fn new(entries: Vec<GateEntry>, slot: SimDuration) -> TsnResult<Self> {
        if entries.is_empty() {
            return Err(TsnError::invalid_parameter(
                "entries",
                "a gate control list needs at least one entry",
            ));
        }
        if slot.is_zero() {
            return Err(TsnError::invalid_parameter("slot", "must be non-zero"));
        }
        Ok(GateControlList::with_tables(entries, slot))
    }

    /// A degenerate single-entry list that keeps every gate open — what a
    /// non-TSN port effectively runs.
    #[must_use]
    pub fn always_open(slot: SimDuration) -> Self {
        GateControlList::with_tables(
            vec![GateEntry::all_open()],
            if slot.is_zero() {
                SimDuration::from_micros(1)
            } else {
                slot
            },
        )
    }

    /// Builds the list and precomputes its transition tables (done once
    /// per port at network-build time, so per-event lookups are O(1)).
    fn with_tables(entries: Vec<GateEntry>, slot: SimDuration) -> Self {
        let uniform = entries.windows(2).all(|w| w[0] == w[1]);
        let open_union = if entries.is_empty() {
            GateEntry::all_open()
        } else {
            entries
                .iter()
                .fold(GateEntry::all_closed(), |acc, e| GateEntry {
                    mask: acc.mask | e.mask,
                })
        };
        let len = entries.len();
        let next_open_tbl = if uniform || len > MAX_TABLE_ENTRIES {
            Vec::new()
        } else {
            let mut tbl = vec![NEVER_OPENS; len * 64];
            for q in 0..64u8 {
                let queue = QueueId::new(q);
                if !open_union.is_open(queue) {
                    continue;
                }
                // Two backward passes over the cycle fill the distance to
                // the next open slot (wrapping across the cycle end).
                let mut dist = NEVER_OPENS;
                for idx in (0..len * 2).rev() {
                    if entries[idx % len].is_open(queue) {
                        dist = 0;
                    } else if dist != NEVER_OPENS {
                        dist += 1;
                    }
                    if idx < len {
                        tbl[idx * 64 + q as usize] = dist;
                    }
                }
            }
            tbl
        };
        GateControlList {
            entries,
            slot,
            uniform,
            open_union,
            next_open_tbl,
        }
    }

    /// The entry in force at `now`.
    ///
    /// An entry-less list (impossible via [`GateControlList::new`], which
    /// rejects it, but conceivable through future construction paths)
    /// behaves as all-open instead of panicking on `% 0`.
    #[must_use]
    pub fn entry_at(&self, now: SimTime) -> GateEntry {
        if self.uniform {
            // Covers single-entry lists (the common always-open case) and
            // the defensive entry-less case without any division.
            return self
                .entries
                .first()
                .copied()
                .unwrap_or(GateEntry::all_open());
        }
        let idx = (now.slot_index(self.slot) as usize) % self.entries.len();
        self.entries[idx]
    }

    /// `true` when every entry is identical, i.e. the gate state never
    /// changes (always-open edge-port lists in particular).
    #[must_use]
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// The union of every entry: queues that can ever be open.
    #[must_use]
    pub fn open_union(&self) -> GateEntry {
        self.open_union
    }

    /// The earliest instant `>= now` at which `queue`'s gate is open:
    /// `now` itself if it is open already, the start of the slot where it
    /// next opens otherwise, `None` if it is closed in every entry. A
    /// table lookup instead of a boundary-by-boundary scan.
    #[must_use]
    pub fn next_open(&self, queue: QueueId, now: SimTime) -> Option<SimTime> {
        if !self.open_union.is_open(queue) {
            return None;
        }
        if self.uniform {
            return Some(now); // open in every slot
        }
        let global = now.slot_index(self.slot);
        let len = self.entries.len();
        let idx = (global as usize) % len;
        let dist = if self.next_open_tbl.is_empty() {
            // Oversized list: scan the cycle once.
            (0..len)
                .find(|&d| self.entries[(idx + d) % len].is_open(queue))
                .unwrap_or(0) as u64
        } else {
            u64::from(self.next_open_tbl[idx * 64 + queue.as_usize()])
        };
        if dist == 0 {
            Some(now)
        } else {
            Some(SimTime::ZERO + self.slot * (global + dist))
        }
    }

    /// Whether `queue`'s gate is open at `now`.
    #[must_use]
    pub fn is_open(&self, queue: QueueId, now: SimTime) -> bool {
        self.entry_at(now).is_open(queue)
    }

    /// The instant of the next gate-state change (the next slot boundary).
    /// With a single entry the state never changes, but the boundary is
    /// still returned so callers can poll uniformly.
    #[must_use]
    pub fn next_change(&self, now: SimTime) -> SimTime {
        now.next_slot_boundary(self.slot)
    }

    /// Number of entries (`gate_size`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the list has no entries (never constructible via `new`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Slot length.
    #[must_use]
    pub fn slot(&self) -> SimDuration {
        self.slot
    }

    /// Full cycle length (`len × slot`). An entry-less list reports one
    /// slot rather than a zero-length cycle, so callers that step by
    /// `cycle()` can never loop in place.
    #[must_use]
    pub fn cycle(&self) -> SimDuration {
        self.slot * (self.entries.len() as u64).max(1)
    }
}

/// Why Gate Ctrl refused a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateDrop {
    /// No queue of the frame's class had an open ingress gate.
    GateClosed,
    /// The target queue had no free metadata slot (`queue_depth`
    /// exhausted) — the drop Table I's case study provokes when depth is
    /// under-provisioned.
    QueueOverflow,
    /// The target queue id does not exist on this port.
    UnknownQueue,
}

/// A metadata queue with a hardware depth limit.
#[derive(Debug, Clone, Default)]
struct GatedQueue {
    frames: VecDeque<EthernetFrame>,
    depth: usize,
    overflow_drops: u64,
    high_water: usize,
}

impl GatedQueue {
    fn new(depth: usize) -> Self {
        GatedQueue {
            frames: VecDeque::with_capacity(depth.min(1024)),
            depth,
            overflow_drops: 0,
            high_water: 0,
        }
    }

    fn push(&mut self, frame: EthernetFrame) -> Result<(), GateDrop> {
        if self.frames.len() >= self.depth {
            self.overflow_drops += 1;
            return Err(GateDrop::QueueOverflow);
        }
        self.frames.push_back(frame);
        self.high_water = self.high_water.max(self.frames.len());
        Ok(())
    }
}

/// Per-port gate control: the gated queues plus their In/Out GCLs.
///
/// The **ingress** GCL decides which queue an arriving frame may enter
/// (for CQF, which of the two TS queues is filling this slot); the
/// **egress** GCL decides which queues the scheduler may drain.
#[derive(Debug, Clone)]
pub struct GateCtrl {
    queues: Vec<GatedQueue>,
    in_gcl: GateControlList,
    out_gcl: GateControlList,
    layout: QueueLayout,
    gate_closed_drops: u64,
    /// Bit *q* set ⇔ queue *q* holds at least one frame. Lets the
    /// scheduler compute per-instant eligibility with one AND instead of
    /// per-queue length checks.
    occupied: u64,
    /// Total frames buffered across all queues (kept incrementally so
    /// buffer-pool checks are O(1)).
    buffered: usize,
    /// Bit mask of the layout's time-sensitive queues.
    ts_mask: u64,
}

impl GateCtrl {
    /// Creates the gate-control stage for one port.
    ///
    /// `queue_depth` is the per-queue metadata capacity (`set_queues`).
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if `queue_depth` is zero.
    pub fn new(
        layout: QueueLayout,
        queue_depth: usize,
        in_gcl: GateControlList,
        out_gcl: GateControlList,
    ) -> TsnResult<Self> {
        if queue_depth == 0 {
            return Err(TsnError::invalid_parameter(
                "queue_depth",
                "must be non-zero",
            ));
        }
        let queues = (0..layout.queue_num())
            .map(|_| GatedQueue::new(queue_depth))
            .collect();
        let ts_mask = layout
            .ts_queues()
            .iter()
            .fold(0u64, |m, q| m | 1 << q.index());
        Ok(GateCtrl {
            queues,
            in_gcl,
            out_gcl,
            layout,
            gate_closed_drops: 0,
            occupied: 0,
            buffered: 0,
            ts_mask,
        })
    }

    /// Builds the static CQF configuration of the paper's evaluation:
    /// the TS pair alternates between the two GCL entries; all other
    /// queues stay open in both GCLs (they are shaped/prioritized by the
    /// egress scheduler instead).
    ///
    /// # Errors
    ///
    /// Propagates [`GateControlList::new`] validation errors.
    pub fn cqf(layout: QueueLayout, queue_depth: usize, slot: SimDuration) -> TsnResult<Self> {
        let (qa, qb) = layout.cqf_pair();
        let others_open = |entry: GateEntry| {
            // Open every non-TS-pair queue on top of the TS bit.
            let mut e = entry;
            for q in 0..layout.queue_num() {
                let q = QueueId::new(q as u8);
                if q != qa && q != qb {
                    e = e.with_open(q);
                }
            }
            e
        };
        // Slot parity 0: qa fills, qb drains. Slot parity 1: swapped.
        let in_gcl = GateControlList::new(
            vec![
                others_open(GateEntry::open_for([qa])),
                others_open(GateEntry::open_for([qb])),
            ],
            slot,
        )?;
        let out_gcl = GateControlList::new(
            vec![
                others_open(GateEntry::open_for([qb])),
                others_open(GateEntry::open_for([qa])),
            ],
            slot,
        )?;
        GateCtrl::new(layout, queue_depth, in_gcl, out_gcl)
    }

    /// Enqueues a frame.
    ///
    /// Time-sensitive frames are steered to whichever queue of the CQF
    /// pair has an open ingress gate at `now` (the `target` only conveys
    /// the class). Other frames go to `target` directly if its ingress
    /// gate is open.
    ///
    /// # Errors
    ///
    /// Returns the [`GateDrop`] cause on gate-closed, overflow, or an
    /// unknown queue id.
    pub fn enqueue(
        &mut self,
        target: QueueId,
        frame: EthernetFrame,
        now: SimTime,
    ) -> Result<QueueId, GateDrop> {
        let class = self.layout.class_of(target).ok_or(GateDrop::UnknownQueue)?;
        let queue = if class == TrafficClass::TimeSensitive {
            let entry = self.in_gcl.entry_at(now);
            match self
                .layout
                .ts_queues()
                .iter()
                .copied()
                .find(|&q| entry.is_open(q))
            {
                Some(q) => q,
                None => {
                    self.gate_closed_drops += 1;
                    return Err(GateDrop::GateClosed);
                }
            }
        } else {
            if !self.in_gcl.is_open(target, now) {
                self.gate_closed_drops += 1;
                return Err(GateDrop::GateClosed);
            }
            target
        };
        self.queues[queue.as_usize()].push(frame)?;
        self.occupied |= 1 << queue.index();
        self.buffered += 1;
        Ok(queue)
    }

    /// Whether `queue` may transmit at `now`: non-empty and egress gate
    /// open.
    #[must_use]
    pub fn eligible(&self, queue: QueueId, now: SimTime) -> bool {
        self.queues
            .get(queue.as_usize())
            .is_some_and(|q| !q.frames.is_empty())
            && self.out_gcl.is_open(queue, now)
    }

    /// Bitmask of queues that may transmit at `now` (non-empty AND egress
    /// gate open) — the scheduler's whole eligibility scan in one AND.
    #[must_use]
    pub fn eligible_mask(&self, now: SimTime) -> u64 {
        self.occupied & self.out_gcl.entry_at(now).bits()
    }

    /// Bitmask of non-empty queues.
    #[must_use]
    pub fn occupied_mask(&self) -> u64 {
        self.occupied
    }

    /// Bitmask of the layout's time-sensitive (express) queues.
    #[must_use]
    pub fn ts_mask(&self) -> u64 {
        self.ts_mask
    }

    /// The head frame of a queue without removing it.
    #[must_use]
    pub fn peek(&self, queue: QueueId) -> Option<&EthernetFrame> {
        self.queues.get(queue.as_usize())?.frames.front()
    }

    /// Removes and returns the head frame of a queue.
    pub fn pop(&mut self, queue: QueueId) -> Option<EthernetFrame> {
        let q = self.queues.get_mut(queue.as_usize())?;
        let frame = q.frames.pop_front()?;
        self.buffered -= 1;
        if q.frames.is_empty() {
            self.occupied &= !(1 << queue.index());
        }
        Some(frame)
    }

    /// Occupancy of one queue.
    #[must_use]
    pub fn queue_len(&self, queue: QueueId) -> usize {
        self.queues
            .get(queue.as_usize())
            .map_or(0, |q| q.frames.len())
    }

    /// Total frames buffered across all queues of the port (what the
    /// packet-buffer pool must hold).
    #[must_use]
    pub fn total_buffered(&self) -> usize {
        self.buffered
    }

    /// The highest simultaneous occupancy any queue has reached — the
    /// basis for right-sizing `queue_depth`.
    #[must_use]
    pub fn high_water(&self, queue: QueueId) -> usize {
        self.queues
            .get(queue.as_usize())
            .map_or(0, |q| q.high_water)
    }

    /// Frames dropped because the target queue was full.
    #[must_use]
    pub fn overflow_drops(&self) -> u64 {
        self.queues.iter().map(|q| q.overflow_drops).sum()
    }

    /// Frames dropped because no ingress gate was open.
    #[must_use]
    pub fn gate_closed_drops(&self) -> u64 {
        self.gate_closed_drops
    }

    /// The per-queue metadata capacity (`set_queues`), identical across
    /// the port's queues.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queues.first().map_or(0, |q| q.depth)
    }

    /// The ingress GCL.
    #[must_use]
    pub fn in_gcl(&self) -> &GateControlList {
        &self.in_gcl
    }

    /// The egress GCL.
    #[must_use]
    pub fn out_gcl(&self) -> &GateControlList {
        &self.out_gcl
    }

    /// The queue layout.
    #[must_use]
    pub fn layout(&self) -> &QueueLayout {
        &self.layout
    }

    /// The next instant at which any gate state changes.
    #[must_use]
    pub fn next_gate_change(&self, now: SimTime) -> SimTime {
        self.in_gcl
            .next_change(now)
            .min(self.out_gcl.next_change(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_types::{FlowId, MacAddr};

    const SLOT: SimDuration = SimDuration::from_micros(65);

    fn ts_frame(seq: u64) -> EthernetFrame {
        EthernetFrame::builder()
            .src(MacAddr::station(1))
            .dst(MacAddr::station(2))
            .class(TrafficClass::TimeSensitive)
            .size_bytes(64)
            .flow(FlowId::new(0))
            .sequence(seq)
            .build()
            .expect("valid frame")
    }

    fn be_frame() -> EthernetFrame {
        EthernetFrame::builder()
            .src(MacAddr::station(1))
            .dst(MacAddr::station(2))
            .class(TrafficClass::BestEffort)
            .size_bytes(64)
            .build()
            .expect("valid frame")
    }

    fn cqf_gate() -> GateCtrl {
        GateCtrl::cqf(QueueLayout::standard8(), 8, SLOT).expect("valid cqf config")
    }

    #[test]
    fn gate_entry_bit_operations() {
        let e = GateEntry::all_closed()
            .with_open(QueueId::new(3))
            .with_open(QueueId::new(7));
        assert!(e.is_open(QueueId::new(3)));
        assert!(e.is_open(QueueId::new(7)));
        assert!(!e.is_open(QueueId::new(0)));
        assert!(!e.with_closed(QueueId::new(3)).is_open(QueueId::new(3)));
        assert!(GateEntry::all_open().is_open(QueueId::new(63)));
    }

    #[test]
    fn gcl_cycles_through_entries() {
        let gcl = GateControlList::new(
            vec![
                GateEntry::open_for([QueueId::new(0)]),
                GateEntry::open_for([QueueId::new(1)]),
            ],
            SLOT,
        )
        .expect("valid gcl");
        assert_eq!(gcl.len(), 2);
        assert_eq!(gcl.cycle(), SLOT * 2);
        assert!(gcl.is_open(QueueId::new(0), SimTime::ZERO));
        assert!(gcl.is_open(QueueId::new(1), SimTime::ZERO + SLOT));
        // Period 2: slot 2 looks like slot 0 again.
        assert!(gcl.is_open(QueueId::new(0), SimTime::ZERO + SLOT * 2));
        assert_eq!(gcl.next_change(SimTime::ZERO), SimTime::ZERO + SLOT);
    }

    #[test]
    fn gcl_validation() {
        assert!(GateControlList::new(vec![], SLOT).is_err());
        assert!(GateControlList::new(vec![GateEntry::all_open()], SimDuration::ZERO).is_err());
    }

    #[test]
    fn cqf_steers_ts_frames_to_the_open_queue() {
        let mut gc = cqf_gate();
        let (qa, qb) = (QueueId::new(6), QueueId::new(7));
        // Slot 0: qa fills.
        let q0 = gc
            .enqueue(qa, ts_frame(0), SimTime::ZERO)
            .expect("gate open");
        assert_eq!(q0, qa);
        // Slot 1: qb fills, regardless of the nominal target.
        let q1 = gc
            .enqueue(qa, ts_frame(1), SimTime::ZERO + SLOT)
            .expect("gate open");
        assert_eq!(q1, qb);
    }

    #[test]
    fn cqf_output_gate_is_the_opposite_queue() {
        let mut gc = cqf_gate();
        let t0 = SimTime::ZERO;
        let q = gc.enqueue(QueueId::new(6), ts_frame(0), t0).expect("open");
        // While filling, the same queue must not be drainable.
        assert!(!gc.eligible(q, t0));
        // Next slot: it drains.
        assert!(gc.eligible(q, t0 + SLOT));
        assert_eq!(gc.pop(q).expect("frame queued").sequence(), 0);
        assert!(!gc.eligible(q, t0 + SLOT), "drained empty");
    }

    #[test]
    fn non_ts_queues_are_always_open_under_cqf() {
        let mut gc = cqf_gate();
        for slot in 0..4u64 {
            let now = SimTime::ZERO + SLOT * slot;
            let q = gc
                .enqueue(QueueId::new(0), be_frame(), now)
                .expect("BE gate always open");
            assert_eq!(q, QueueId::new(0));
            assert!(gc.eligible(QueueId::new(0), now));
            gc.pop(QueueId::new(0));
        }
    }

    #[test]
    fn queue_depth_overflow_drops_and_counts() {
        let mut gc = GateCtrl::cqf(QueueLayout::standard8(), 2, SLOT).expect("valid");
        let t0 = SimTime::ZERO;
        gc.enqueue(QueueId::new(6), ts_frame(0), t0).expect("fits");
        gc.enqueue(QueueId::new(6), ts_frame(1), t0).expect("fits");
        assert_eq!(
            gc.enqueue(QueueId::new(6), ts_frame(2), t0),
            Err(GateDrop::QueueOverflow)
        );
        assert_eq!(gc.overflow_drops(), 1);
        assert_eq!(gc.high_water(QueueId::new(6)), 2);
        assert_eq!(gc.total_buffered(), 2);
    }

    #[test]
    fn unknown_queue_is_rejected() {
        let mut gc = cqf_gate();
        assert_eq!(
            gc.enqueue(QueueId::new(99), be_frame(), SimTime::ZERO),
            Err(GateDrop::UnknownQueue)
        );
    }

    #[test]
    fn explicit_closed_gate_drops_non_ts() {
        // An out-of-spec GCL that closes BE queue 0 in every slot.
        let layout = QueueLayout::standard8();
        let closed_entry = GateEntry::all_open().with_closed(QueueId::new(0));
        let in_gcl = GateControlList::new(vec![closed_entry], SLOT).expect("valid");
        let out_gcl = GateControlList::always_open(SLOT);
        let mut gc = GateCtrl::new(layout, 8, in_gcl, out_gcl).expect("valid");
        assert_eq!(
            gc.enqueue(QueueId::new(0), be_frame(), SimTime::ZERO),
            Err(GateDrop::GateClosed)
        );
        assert_eq!(gc.gate_closed_drops(), 1);
    }

    #[test]
    fn cqf_in_and_out_gates_never_overlap_for_the_pair() {
        let gc = cqf_gate();
        let (qa, qb) = gc.layout().cqf_pair();
        for slot in 0..6u64 {
            let now = SimTime::ZERO + SLOT * slot + SimDuration::from_nanos(1);
            for q in [qa, qb] {
                let filling = gc.in_gcl().is_open(q, now);
                let draining = gc.out_gcl().is_open(q, now);
                assert!(
                    filling != draining,
                    "CQF invariant: a TS queue either fills or drains, never both (slot {slot}, {q})"
                );
            }
        }
    }

    #[test]
    fn next_gate_change_is_the_slot_boundary() {
        let gc = cqf_gate();
        let now = SimTime::from_micros(10);
        assert_eq!(gc.next_gate_change(now), SimTime::ZERO + SLOT);
    }

    #[test]
    fn next_open_matches_a_boundary_scan() {
        let gc = cqf_gate();
        let out = gc.out_gcl();
        for q in [QueueId::new(6), QueueId::new(7)] {
            for step in 0..8u64 {
                let now = SimTime::ZERO + SLOT * step + SimDuration::from_micros(3);
                let fast = out
                    .next_open(q, now)
                    .expect("cqf pair opens every other slot");
                // Reference: walk slot boundaries until the gate opens.
                let mut t = now;
                let slow = loop {
                    if out.is_open(q, t) {
                        break t;
                    }
                    t = out.next_change(t);
                };
                assert_eq!(fast, slow, "queue {q} at slot {step}");
            }
        }
    }

    #[test]
    fn always_open_lists_are_uniform_and_open_now() {
        let gcl = GateControlList::always_open(SLOT);
        assert!(gcl.is_uniform());
        let t = SimTime::from_micros(123);
        assert_eq!(gcl.next_open(QueueId::new(0), t), Some(t));
        assert!(!cqf_gate().out_gcl().is_uniform());
    }

    #[test]
    fn never_open_queue_has_no_next_open() {
        let e = GateEntry::all_open().with_closed(QueueId::new(5));
        let gcl =
            GateControlList::new(vec![e, e.with_closed(QueueId::new(4))], SLOT).expect("valid");
        assert_eq!(gcl.next_open(QueueId::new(5), SimTime::ZERO), None);
        assert!(!gcl.open_union().is_open(QueueId::new(5)));
        // q4 is closed only in entry 1: from an odd slot it opens at the
        // next boundary.
        let odd = SimTime::ZERO + SLOT + SimDuration::from_micros(1);
        assert_eq!(
            gcl.next_open(QueueId::new(4), odd),
            Some(SimTime::ZERO + SLOT * 2)
        );
    }

    #[test]
    fn occupancy_mask_tracks_push_and_pop() {
        let mut gc = cqf_gate();
        assert_eq!(gc.occupied_mask(), 0);
        gc.enqueue(QueueId::new(0), be_frame(), SimTime::ZERO)
            .expect("open");
        gc.enqueue(QueueId::new(0), be_frame(), SimTime::ZERO)
            .expect("open");
        assert_eq!(gc.occupied_mask(), 1);
        assert_eq!(gc.total_buffered(), 2);
        gc.pop(QueueId::new(0));
        assert_eq!(gc.occupied_mask(), 1, "one frame left");
        gc.pop(QueueId::new(0));
        assert_eq!(gc.occupied_mask(), 0);
        assert_eq!(gc.total_buffered(), 0);
    }

    #[test]
    fn eligible_mask_combines_occupancy_and_out_gates() {
        let mut gc = cqf_gate();
        let q = gc
            .enqueue(QueueId::new(6), ts_frame(0), SimTime::ZERO)
            .expect("open");
        // While filling, the out gate is closed: nothing eligible.
        assert_eq!(gc.eligible_mask(SimTime::ZERO), 0);
        // Next slot it drains.
        assert_eq!(gc.eligible_mask(SimTime::ZERO + SLOT), 1 << q.index());
        assert_eq!(gc.ts_mask(), (1 << 6) | (1 << 7));
    }
    #[test]
    fn gcl_rejects_empty_entries_and_zero_slot() {
        assert!(GateControlList::new(vec![], SLOT).is_err());
        assert!(GateControlList::new(vec![GateEntry::all_open()], SimDuration::ZERO).is_err());
    }

    #[test]
    fn entry_less_gcl_is_all_open_not_a_panic() {
        // The public constructors make this state unreachable; build it
        // directly to pin the defensive behavior of entry_at/cycle.
        let gcl = GateControlList::with_tables(vec![], SLOT);
        let entry = gcl.entry_at(SimTime::from_micros(500));
        for q in 0..8u8 {
            assert!(entry.is_open(QueueId::new(q)));
        }
        assert!(gcl.is_open(QueueId::new(0), SimTime::ZERO));
        assert_eq!(gcl.cycle(), SLOT);
    }
}
