//! The **Time Sync** template: simulated gPTP (IEEE 802.1AS).
//!
//! "The gPTP protocol is selected to implement the *Time Sync* template. It
//! includes three submodules: collection of clock time, calculation of
//! correction time and clock correction." (Section III.C) The paper's FPGA
//! prototype reaches < 50 ns precision; Gate Ctrl consumes the corrected
//! time to drive the GCLs.
//!
//! The model: every node owns a free-running oscillator with a fixed
//! frequency error (ppm) and an initial phase offset. A grandmaster
//! periodically emits Sync/Follow_Up; each slave timestamps the arrival
//! with bounded PHY timestamp noise, measures the link delay with a
//! peer-delay exchange, and runs a piecewise-linear servo: each sync steps
//! the offset and re-estimates the master/local rate ratio from
//! consecutive sync arrivals. Between syncs the residual error is the rate
//! estimation error times the sync interval — exactly the regime real gPTP
//! hardware operates in.

use tsn_types::{SimDuration, SimTime, TsnError, TsnResult};

/// Deterministic xorshift PRNG for timestamp noise (keeps the template
/// self-contained and reproducible without external dependencies).
#[derive(Debug, Clone, PartialEq, Eq)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in [-1, 1].
    fn next_signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// A free-running local oscillator: frequency error in parts-per-million
/// plus an initial phase offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockModel {
    drift_ppm: f64,
    initial_offset_ns: f64,
}

impl ClockModel {
    /// Creates a clock with the given frequency error and initial offset.
    /// Crystal oscillators are typically within ±100 ppm.
    #[must_use]
    pub fn new(drift_ppm: f64, initial_offset_ns: f64) -> Self {
        ClockModel {
            drift_ppm,
            initial_offset_ns,
        }
    }

    /// A perfect clock (the grandmaster reference).
    #[must_use]
    pub fn perfect() -> Self {
        ClockModel::new(0.0, 0.0)
    }

    /// The raw (uncorrected) local reading at true time `t`.
    #[must_use]
    pub fn raw_ns(&self, t: SimTime) -> f64 {
        t.as_nanos() as f64 * (1.0 + self.drift_ppm * 1e-6) + self.initial_offset_ns
    }

    /// Frequency error in ppm.
    #[must_use]
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }
}

/// Configuration of the sync protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncConfig {
    /// Interval between Sync messages (gPTP default is 125 ms; industrial
    /// profiles often use 31.25 ms).
    pub sync_interval: SimDuration,
    /// 1-sigma-ish bound of PHY timestamping noise, in ns (uniform in
    /// ±bound). FPGA MAC timestampers are typically within ±8 ns.
    pub timestamp_noise_ns: f64,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            sync_interval: SimDuration::from_millis(125),
            timestamp_noise_ns: 8.0,
        }
    }
}

/// One node's Time Sync instance: local clock + gPTP slave servo.
///
/// # Example
///
/// ```
/// use tsn_switch::time_sync::{ClockModel, SyncConfig, TimeSync};
/// use tsn_types::{SimDuration, SimTime};
///
/// let mut slave = TimeSync::new(ClockModel::new(40.0, 1_500_000.0), SyncConfig::default(), 7);
/// let delay = SimDuration::from_nanos(50);
/// slave.measure_pdelay(delay);
/// // Two sync rounds: offset step + rate acquisition.
/// for k in 0..2u64 {
///     let send = SimTime::from_millis(125 * k);
///     slave.process_sync(send.as_nanos() as f64, send + delay);
/// }
/// let err = slave.error_ns(SimTime::from_millis(300));
/// assert!(err.abs() < 100.0, "converged to within 100 ns, got {err}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSync {
    clock: ClockModel,
    config: SyncConfig,
    rng: XorShift64,
    /// Estimated one-way link delay to the master, ns.
    link_delay_ns: f64,
    /// Servo state: corrected(raw) = base_corrected + (raw − base_raw) × rate.
    base_raw: f64,
    base_corrected: f64,
    rate_ratio: f64,
    /// Recent sync observations `(master t1, local raw t2)`; the rate is
    /// estimated over the whole window, which divides timestamp-noise
    /// error by the window span.
    history: std::collections::VecDeque<(f64, f64)>,
    sync_count: u64,
}

/// Sync observations kept for rate estimation.
const RATE_WINDOW: usize = 8;

impl TimeSync {
    /// Creates an unsynchronized node. `seed` makes its timestamp noise
    /// reproducible.
    #[must_use]
    pub fn new(clock: ClockModel, config: SyncConfig, seed: u64) -> Self {
        // Before any sync, "corrected" time is just the raw clock.
        TimeSync {
            clock,
            config,
            rng: XorShift64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
            link_delay_ns: 0.0,
            base_raw: 0.0,
            base_corrected: 0.0,
            rate_ratio: 1.0,
            history: std::collections::VecDeque::with_capacity(RATE_WINDOW),
            sync_count: 0,
        }
    }

    fn noise(&mut self) -> f64 {
        self.rng.next_signed_unit() * self.config.timestamp_noise_ns
    }

    /// The raw local clock reading at true time `t`.
    #[must_use]
    pub fn raw_ns(&self, t: SimTime) -> f64 {
        self.clock.raw_ns(t)
    }

    /// The servo-corrected local time at true time `t`, in ns.
    #[must_use]
    pub fn corrected_ns(&self, t: SimTime) -> f64 {
        let raw = self.clock.raw_ns(t);
        if self.sync_count == 0 {
            return raw;
        }
        self.base_corrected + (raw - self.base_raw) * self.rate_ratio
    }

    /// The corrected time as a [`SimTime`] (clamped at zero).
    #[must_use]
    pub fn now(&self, t: SimTime) -> SimTime {
        SimTime::from_nanos(self.corrected_ns(t).max(0.0) as u64)
    }

    /// Synchronization error: corrected time minus true time, ns.
    #[must_use]
    pub fn error_ns(&self, t: SimTime) -> f64 {
        self.corrected_ns(t) - t.as_nanos() as f64
    }

    /// Runs one peer-delay measurement over a link with true one-way
    /// delay `true_delay`. Four timestamps, each with PHY noise, so the
    /// estimate carries a small bounded error.
    pub fn measure_pdelay(&mut self, true_delay: SimDuration) {
        let d = true_delay.as_nanos() as f64;
        // (t4 − t1 − turnaround) / 2 with noise on each timestamp.
        let t1 = self.noise();
        let t2 = d + self.noise();
        let t3 = d + self.noise(); // immediate turnaround in the model
        let t4 = 2.0 * d + self.noise();
        self.link_delay_ns = ((t4 - t1) - (t3 - t2)) / 2.0;
    }

    /// Processes one Sync/Follow_Up: the master's timestamp
    /// `master_send_ns` (its corrected time at transmission) and the true
    /// arrival instant at this node.
    ///
    /// Steps the offset so the corrected clock reads
    /// `master_send + link_delay` at the arrival, and re-estimates the
    /// rate ratio from consecutive syncs.
    pub fn process_sync(&mut self, master_send_ns: f64, true_arrival: SimTime) {
        let t2_raw = self.clock.raw_ns(true_arrival) + self.noise();
        let master_at_arrival = master_send_ns + self.link_delay_ns;

        if let Some(&(old_t1, old_t2_raw)) = self.history.front() {
            let d_master = master_send_ns - old_t1;
            let d_local = t2_raw - old_t2_raw;
            if d_local > 0.0 && d_master > 0.0 {
                self.rate_ratio = d_master / d_local;
            }
        }
        self.base_raw = t2_raw;
        self.base_corrected = master_at_arrival;
        if self.history.len() == RATE_WINDOW {
            self.history.pop_front();
        }
        self.history.push_back((master_send_ns, t2_raw));
        self.sync_count += 1;
    }

    /// Number of sync messages processed.
    #[must_use]
    pub fn sync_count(&self) -> u64 {
        self.sync_count
    }

    /// Estimated link delay to the master, ns.
    #[must_use]
    pub fn link_delay_ns(&self) -> f64 {
        self.link_delay_ns
    }

    /// Estimated master/local rate ratio.
    #[must_use]
    pub fn rate_ratio(&self) -> f64 {
        self.rate_ratio
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> SyncConfig {
        self.config
    }
}

/// A synchronization domain: a grandmaster plus a chain of slaves, each
/// syncing to its upstream neighbour (the topology of the paper's ring and
/// linear testbeds).
///
/// Calling [`SyncDomain::run_until`] advances the domain through all sync
/// rounds up to a given true time, propagating time hop by hop the way
/// 802.1AS does.
#[derive(Debug, Clone)]
pub struct SyncDomain {
    nodes: Vec<TimeSync>,
    link_delay: SimDuration,
    next_sync: SimTime,
    config: SyncConfig,
}

impl SyncDomain {
    /// Builds a chain of `clocks.len()` slaves behind a perfect
    /// grandmaster, all links having `link_delay`.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if `clocks` is empty.
    pub fn chain(
        clocks: Vec<ClockModel>,
        config: SyncConfig,
        link_delay: SimDuration,
    ) -> TsnResult<Self> {
        if clocks.is_empty() {
            return Err(TsnError::invalid_parameter(
                "clocks",
                "a sync domain needs at least one slave",
            ));
        }
        let nodes = clocks
            .into_iter()
            .enumerate()
            .map(|(i, clock)| {
                let mut node = TimeSync::new(clock, config, i as u64 + 1);
                node.measure_pdelay(link_delay);
                node
            })
            .collect();
        Ok(SyncDomain {
            nodes,
            link_delay,
            next_sync: SimTime::ZERO,
            config,
        })
    }

    /// Runs all pending sync rounds with send times `<= until`.
    pub fn run_until(&mut self, until: SimTime) {
        while self.next_sync <= until {
            self.sync_round(self.next_sync);
            self.next_sync += self.config.sync_interval;
        }
    }

    fn sync_round(&mut self, gm_send: SimTime) {
        // The grandmaster's clock is the time scale itself.
        let mut upstream_time = gm_send.as_nanos() as f64;
        let mut true_send = gm_send;
        for node in &mut self.nodes {
            let true_arrival = true_send + self.link_delay;
            node.process_sync(upstream_time, true_arrival);
            // This node relays sync downstream: it re-stamps with its own
            // corrected clock (the 802.1AS end-to-end transparent path
            // accumulates residence time; the model forwards immediately).
            upstream_time = node.corrected_ns(true_arrival);
            true_send = true_arrival;
        }
    }

    /// The slaves, grandmaster-adjacent first.
    #[must_use]
    pub fn nodes(&self) -> &[TimeSync] {
        &self.nodes
    }

    /// The largest absolute sync error across the domain at true time
    /// `t`, in ns.
    #[must_use]
    pub fn max_abs_error_ns(&self, t: SimTime) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.error_ns(t).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drifty(i: u64) -> ClockModel {
        // Alternating-sign drifts up to 80 ppm, ms-scale initial offsets.
        let sign = if i.is_multiple_of(2) { 1.0 } else { -1.0 };
        ClockModel::new(
            sign * (20.0 + 10.0 * i as f64),
            sign * 500_000.0 * (i as f64 + 1.0),
        )
    }

    #[test]
    fn unsynchronized_clock_is_wildly_off() {
        let node = TimeSync::new(drifty(0), SyncConfig::default(), 1);
        assert!(node.error_ns(SimTime::from_millis(100)).abs() > 100_000.0);
    }

    #[test]
    fn single_slave_converges_below_50ns() {
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(125),
            timestamp_noise_ns: 8.0,
        };
        let mut node = TimeSync::new(drifty(0), config, 42);
        node.measure_pdelay(SimDuration::from_nanos(50));
        let mut t = SimTime::ZERO;
        for _ in 0..8 {
            node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
            t += config.sync_interval;
        }
        // Probe the worst case: just before the next sync.
        let probe = t + config.sync_interval - SimDuration::from_nanos(1);
        let err = node.error_ns(probe).abs();
        assert!(
            err < 50.0,
            "paper-level precision (<50 ns), got {err:.1} ns"
        );
    }

    #[test]
    fn rate_ratio_tracks_the_true_drift() {
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(125),
            timestamp_noise_ns: 0.0,
        };
        let mut node = TimeSync::new(ClockModel::new(50.0, 0.0), config, 3);
        node.measure_pdelay(SimDuration::from_nanos(50));
        for k in 0..3u64 {
            let t = SimTime::from_millis(125 * k);
            node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
        }
        // True ratio = 1 / (1 + 50 ppm) ≈ 0.99995.
        assert!((node.rate_ratio() - 1.0 / 1.000_05).abs() < 1e-9);
    }

    #[test]
    fn pdelay_estimate_is_close_to_truth() {
        let mut node = TimeSync::new(ClockModel::perfect(), SyncConfig::default(), 5);
        node.measure_pdelay(SimDuration::from_nanos(50));
        assert!((node.link_delay_ns() - 50.0).abs() < 20.0);
    }

    #[test]
    fn noise_free_sync_is_essentially_exact() {
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(125),
            timestamp_noise_ns: 0.0,
        };
        let mut node = TimeSync::new(drifty(1), config, 9);
        node.measure_pdelay(SimDuration::from_nanos(50));
        for k in 0..4u64 {
            let t = SimTime::from_millis(125 * k);
            node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
        }
        let probe = SimTime::from_millis(560);
        assert!(node.error_ns(probe).abs() < 1.0);
    }

    #[test]
    fn six_hop_chain_stays_under_the_paper_bound() {
        // The paper's ring: 6 switches. Per-hop noise accumulates; the
        // prototype claims < 50 ns, we allow the same budget per domain.
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(31),
            timestamp_noise_ns: 4.0,
        };
        let clocks: Vec<ClockModel> = (0..6).map(drifty).collect();
        let mut domain =
            SyncDomain::chain(clocks, config, SimDuration::from_nanos(50)).expect("valid domain");
        domain.run_until(SimTime::from_millis(1000));
        let worst = domain.max_abs_error_ns(SimTime::from_millis(1000));
        assert!(
            worst < 50.0,
            "6-hop domain precision should be < 50 ns, got {worst:.1} ns"
        );
    }

    #[test]
    fn domain_requires_at_least_one_slave() {
        assert!(
            SyncDomain::chain(vec![], SyncConfig::default(), SimDuration::from_nanos(50)).is_err()
        );
    }

    #[test]
    fn corrected_time_is_monotonic_across_a_sync_step() {
        let config = SyncConfig::default();
        let mut node = TimeSync::new(drifty(2), config, 11);
        node.measure_pdelay(SimDuration::from_nanos(50));
        let mut last = 0.0f64;
        let mut ok = true;
        for k in 0..6u64 {
            let t = SimTime::from_millis(125 * k);
            node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
            for probe_ms in 0..12 {
                let probe = t + SimDuration::from_millis(probe_ms * 10);
                let c = node.corrected_ns(probe);
                if c < last {
                    ok = false;
                }
                last = c;
            }
        }
        // After the first correction the servo only steps by sub-us
        // amounts; time should not run backwards at ms probing granularity.
        assert!(ok, "corrected time went backwards at ms granularity");
    }
}
