//! The **Time Sync** template: simulated gPTP (IEEE 802.1AS).
//!
//! "The gPTP protocol is selected to implement the *Time Sync* template. It
//! includes three submodules: collection of clock time, calculation of
//! correction time and clock correction." (Section III.C) The paper's FPGA
//! prototype reaches < 50 ns precision; Gate Ctrl consumes the corrected
//! time to drive the GCLs.
//!
//! The model: every node owns a free-running oscillator with a fixed
//! frequency error (ppm) and an initial phase offset. A grandmaster
//! periodically emits Sync/Follow_Up; each slave timestamps the arrival
//! with bounded PHY timestamp noise, measures the link delay with a
//! peer-delay exchange, and runs a piecewise-linear servo: each sync steps
//! the offset and re-estimates the master/local rate ratio from
//! consecutive sync arrivals. Between syncs the residual error is the rate
//! estimation error times the sync interval — exactly the regime real gPTP
//! hardware operates in.

use tsn_types::rng::SplitMix64;
use tsn_types::{SimDuration, SimTime, TsnError, TsnResult};

/// Deterministic xorshift PRNG for timestamp noise (keeps the template
/// self-contained and reproducible without external dependencies).
#[derive(Debug, Clone, PartialEq, Eq)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in [-1, 1].
    fn next_signed_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// Fractional bits of the fixed-point clock representation: drift is kept
/// as 2^-63 ns per ns, so a sub-ns drift product stays exact out to any
/// representable [`SimTime`] (at `t = 10^15 ns` the quantization error is
/// `10^15 / 2^63 ≈ 10^-4 ns`, versus the 0.125 ns ulp of an f64 there).
const CLOCK_FP_SHIFT: u32 = 63;

/// A free-running local oscillator: frequency error in parts-per-million
/// plus an initial phase offset.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockModel {
    drift_ppm: f64,
    initial_offset_ns: f64,
    /// Drift as fixed-point ns-per-ns (`2^-63` units); derived from
    /// `drift_ppm` at construction so integer clock reads never round
    /// through a 53-bit mantissa.
    drift_fp: i128,
    /// Initial offset in `2^-63` ns units.
    offset_fp: i128,
}

impl ClockModel {
    /// Creates a clock with the given frequency error and initial offset.
    /// Crystal oscillators are typically within ±100 ppm.
    #[must_use]
    pub fn new(drift_ppm: f64, initial_offset_ns: f64) -> Self {
        let scale = (1u128 << CLOCK_FP_SHIFT) as f64;
        ClockModel {
            drift_ppm,
            initial_offset_ns,
            drift_fp: ((drift_ppm * 1e-6) * scale).round() as i128,
            offset_fp: (initial_offset_ns * scale).round() as i128,
        }
    }

    /// A perfect clock (the grandmaster reference).
    #[must_use]
    pub fn perfect() -> Self {
        ClockModel::new(0.0, 0.0)
    }

    /// The raw (uncorrected) local reading at true time `t`.
    ///
    /// This is the f64 form the gPTP servo consumes; over the bounded
    /// spans a servo differences (sync intervals, not absolute epochs)
    /// its rounding is harmless. Absolute reads at large `t` should use
    /// [`ClockModel::now`] / [`ClockModel::raw_offset_ns`], which evaluate
    /// in integer fixed-point.
    #[must_use]
    pub fn raw_ns(&self, t: SimTime) -> f64 {
        t.as_nanos() as f64 * (1.0 + self.drift_ppm * 1e-6) + self.initial_offset_ns
    }

    /// The raw clock's exact offset from true time at `t`, in `2^-63` ns
    /// fixed-point units: `t·drift + initial_offset`, evaluated in i128 so
    /// sub-ns drift products survive at any simulated epoch.
    #[must_use]
    pub fn offset_fp(&self, t: SimTime) -> i128 {
        i128::from(t.as_nanos()) * self.drift_fp + self.offset_fp
    }

    /// The raw clock's offset from true time at `t`, in ns. Exact to the
    /// fixed-point quantum (≈ `t / 2^63` ns), unlike the f64 evaluation
    /// in [`ClockModel::raw_ns`] whose 53-bit mantissa quantizes sub-ns
    /// offsets to 0.125 ns steps by `t = 10^15 ns`.
    #[must_use]
    pub fn raw_offset_ns(&self, t: SimTime) -> f64 {
        self.offset_fp(t) as f64 / (1u128 << CLOCK_FP_SHIFT) as f64
    }

    /// The raw local reading at true time `t` as an integer [`SimTime`]
    /// (floor of the exact fixed-point value, clamped at zero).
    #[must_use]
    pub fn now(&self, t: SimTime) -> SimTime {
        // Arithmetic shift right floors negative offsets correctly.
        let offset_ns = self.offset_fp(t) >> CLOCK_FP_SHIFT;
        let raw = i128::from(t.as_nanos()) + offset_ns;
        SimTime::from_nanos(u64::try_from(raw.max(0)).unwrap_or(u64::MAX))
    }

    /// Frequency error in ppm.
    #[must_use]
    pub fn drift_ppm(&self) -> f64 {
        self.drift_ppm
    }
}

/// Configuration of the sync protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncConfig {
    /// Interval between Sync messages (gPTP default is 125 ms; industrial
    /// profiles often use 31.25 ms).
    pub sync_interval: SimDuration,
    /// 1-sigma-ish bound of PHY timestamping noise, in ns (uniform in
    /// ±bound). FPGA MAC timestampers are typically within ±8 ns.
    pub timestamp_noise_ns: f64,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            sync_interval: SimDuration::from_millis(125),
            timestamp_noise_ns: 8.0,
        }
    }
}

/// One node's Time Sync instance: local clock + gPTP slave servo.
///
/// # Example
///
/// ```
/// use tsn_switch::time_sync::{ClockModel, SyncConfig, TimeSync};
/// use tsn_types::{SimDuration, SimTime};
///
/// let mut slave = TimeSync::new(ClockModel::new(40.0, 1_500_000.0), SyncConfig::default(), 7);
/// let delay = SimDuration::from_nanos(50);
/// slave.measure_pdelay(delay);
/// // Two sync rounds: offset step + rate acquisition.
/// for k in 0..2u64 {
///     let send = SimTime::from_millis(125 * k);
///     slave.process_sync(send.as_nanos() as f64, send + delay);
/// }
/// let err = slave.error_ns(SimTime::from_millis(300));
/// assert!(err.abs() < 100.0, "converged to within 100 ns, got {err}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSync {
    clock: ClockModel,
    config: SyncConfig,
    rng: XorShift64,
    /// Estimated one-way link delay to the master, ns.
    link_delay_ns: f64,
    /// Servo state: corrected(raw) = base_corrected + (raw − base_raw) × rate.
    base_raw: f64,
    base_corrected: f64,
    rate_ratio: f64,
    /// Recent sync observations `(master t1, local raw t2)`; the rate is
    /// estimated over the whole window, which divides timestamp-noise
    /// error by the window span.
    history: std::collections::VecDeque<(f64, f64)>,
    sync_count: u64,
}

/// Sync observations kept for rate estimation.
const RATE_WINDOW: usize = 8;

impl TimeSync {
    /// Creates an unsynchronized node. `seed` makes its timestamp noise
    /// reproducible.
    #[must_use]
    pub fn new(clock: ClockModel, config: SyncConfig, seed: u64) -> Self {
        // Before any sync, "corrected" time is just the raw clock.
        TimeSync {
            clock,
            config,
            rng: XorShift64::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1),
            link_delay_ns: 0.0,
            base_raw: 0.0,
            base_corrected: 0.0,
            rate_ratio: 1.0,
            history: std::collections::VecDeque::with_capacity(RATE_WINDOW),
            sync_count: 0,
        }
    }

    fn noise(&mut self) -> f64 {
        self.rng.next_signed_unit() * self.config.timestamp_noise_ns
    }

    /// The raw local clock reading at true time `t`.
    #[must_use]
    pub fn raw_ns(&self, t: SimTime) -> f64 {
        self.clock.raw_ns(t)
    }

    /// The servo-corrected local time at true time `t`, in ns.
    #[must_use]
    pub fn corrected_ns(&self, t: SimTime) -> f64 {
        let raw = self.clock.raw_ns(t);
        if self.sync_count == 0 {
            return raw;
        }
        self.base_corrected + (raw - self.base_raw) * self.rate_ratio
    }

    /// The corrected time as a [`SimTime`] (clamped at zero).
    #[must_use]
    pub fn now(&self, t: SimTime) -> SimTime {
        SimTime::from_nanos(self.corrected_ns(t).max(0.0) as u64)
    }

    /// Synchronization error: corrected time minus true time, ns.
    #[must_use]
    pub fn error_ns(&self, t: SimTime) -> f64 {
        self.corrected_ns(t) - t.as_nanos() as f64
    }

    /// Runs one peer-delay measurement over a link with true one-way
    /// delay `true_delay`. Four timestamps, each with PHY noise, so the
    /// estimate carries a small bounded error.
    pub fn measure_pdelay(&mut self, true_delay: SimDuration) {
        let d = true_delay.as_nanos() as f64;
        // (t4 − t1 − turnaround) / 2 with noise on each timestamp.
        let t1 = self.noise();
        let t2 = d + self.noise();
        let t3 = d + self.noise(); // immediate turnaround in the model
        let t4 = 2.0 * d + self.noise();
        self.link_delay_ns = ((t4 - t1) - (t3 - t2)) / 2.0;
    }

    /// Processes one Sync/Follow_Up: the master's timestamp
    /// `master_send_ns` (its corrected time at transmission) and the true
    /// arrival instant at this node.
    ///
    /// Steps the offset so the corrected clock reads
    /// `master_send + link_delay` at the arrival, and re-estimates the
    /// rate ratio from consecutive syncs.
    pub fn process_sync(&mut self, master_send_ns: f64, true_arrival: SimTime) {
        let t2_raw = self.clock.raw_ns(true_arrival) + self.noise();
        let master_at_arrival = master_send_ns + self.link_delay_ns;

        if let Some(&(old_t1, old_t2_raw)) = self.history.front() {
            let d_master = master_send_ns - old_t1;
            let d_local = t2_raw - old_t2_raw;
            if d_local > 0.0 && d_master > 0.0 {
                self.rate_ratio = d_master / d_local;
            }
        }
        self.base_raw = t2_raw;
        self.base_corrected = master_at_arrival;
        if self.history.len() == RATE_WINDOW {
            self.history.pop_front();
        }
        self.history.push_back((master_send_ns, t2_raw));
        self.sync_count += 1;
    }

    /// Number of sync messages processed.
    #[must_use]
    pub fn sync_count(&self) -> u64 {
        self.sync_count
    }

    /// Estimated link delay to the master, ns.
    #[must_use]
    pub fn link_delay_ns(&self) -> f64 {
        self.link_delay_ns
    }

    /// Estimated master/local rate ratio.
    #[must_use]
    pub fn rate_ratio(&self) -> f64 {
        self.rate_ratio
    }

    /// The protocol configuration.
    #[must_use]
    pub fn config(&self) -> SyncConfig {
        self.config
    }
}

/// Fault perturbation applied to a sync domain (driven by the simulator's
/// fault-injection layer): Sync messages can be lost — the affected hop
/// and everything downstream of it *hold over* on their last servo state
/// for that round — and relayed timestamps can carry extra jitter, the
/// path-delay-variation regime of software/virtualized TSN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncFaultProfile {
    /// Probability that a Sync/Follow_Up dies on any one hop's wire.
    pub message_loss_prob: f64,
    /// Extra uniform ±jitter (ns) on each hop's relayed master timestamp.
    pub extra_jitter_ns: f64,
}

impl SyncFaultProfile {
    /// `true` when the profile perturbs nothing.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.message_loss_prob <= 0.0 && self.extra_jitter_ns <= 0.0
    }
}

/// Runtime state of an active [`SyncFaultProfile`] on a domain.
#[derive(Debug, Clone)]
struct SyncFaultState {
    profile: SyncFaultProfile,
    rng: SplitMix64,
    syncs_lost: u64,
    offset_high_water_ns: f64,
}

/// A synchronization domain: a grandmaster plus a chain of slaves, each
/// syncing to its upstream neighbour (the topology of the paper's ring and
/// linear testbeds).
///
/// Calling [`SyncDomain::run_until`] advances the domain through all sync
/// rounds up to a given true time, propagating time hop by hop the way
/// 802.1AS does.
#[derive(Debug, Clone)]
pub struct SyncDomain {
    nodes: Vec<TimeSync>,
    link_delay: SimDuration,
    next_sync: SimTime,
    config: SyncConfig,
    /// Fault perturbation; `None` leaves the healthy path untouched (no
    /// extra PRNG draws, bit-identical trajectories).
    faults: Option<SyncFaultState>,
}

impl SyncDomain {
    /// Builds a chain of `clocks.len()` slaves behind a perfect
    /// grandmaster, all links having `link_delay`.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if `clocks` is empty.
    pub fn chain(
        clocks: Vec<ClockModel>,
        config: SyncConfig,
        link_delay: SimDuration,
    ) -> TsnResult<Self> {
        if clocks.is_empty() {
            return Err(TsnError::invalid_parameter(
                "clocks",
                "a sync domain needs at least one slave",
            ));
        }
        let nodes = clocks
            .into_iter()
            .enumerate()
            .map(|(i, clock)| {
                let mut node = TimeSync::new(clock, config, i as u64 + 1);
                node.measure_pdelay(link_delay);
                node
            })
            .collect();
        Ok(SyncDomain {
            nodes,
            link_delay,
            next_sync: SimTime::ZERO,
            config,
            faults: None,
        })
    }

    /// Arms fault perturbation on the domain: every subsequent sync round
    /// draws losses/jitter from a [`SplitMix64`] stream seeded with
    /// `seed`, so perturbed runs stay deterministic.
    pub fn set_faults(&mut self, profile: SyncFaultProfile, seed: u64) {
        self.faults = if profile.is_none() {
            None
        } else {
            Some(SyncFaultState {
                profile,
                rng: SplitMix64::seed_from_u64(seed),
                syncs_lost: 0,
                offset_high_water_ns: 0.0,
            })
        };
    }

    /// Sync receptions that never happened because the message was lost
    /// (each affected hop counts once per round).
    #[must_use]
    pub fn syncs_lost(&self) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.syncs_lost)
    }

    /// Largest absolute offset observed at any sync-round boundary (the
    /// instant errors peak: just before the correction). Only tracked
    /// while faults are armed; 0 otherwise.
    #[must_use]
    pub fn offset_high_water_ns(&self) -> f64 {
        self.faults.as_ref().map_or(0.0, |f| f.offset_high_water_ns)
    }

    /// Runs all pending sync rounds with send times `<= until`.
    pub fn run_until(&mut self, until: SimTime) {
        while self.next_sync <= until {
            self.sync_round(self.next_sync);
            self.next_sync += self.config.sync_interval;
        }
    }

    fn sync_round(&mut self, gm_send: SimTime) {
        if self.faults.is_some() {
            // Errors peak right before the correction lands: sample the
            // high-water mark here.
            let worst = self.max_abs_error_ns(gm_send);
            if let Some(f) = self.faults.as_mut() {
                f.offset_high_water_ns = f.offset_high_water_ns.max(worst);
            }
        }
        // The grandmaster's clock is the time scale itself.
        let mut upstream_time = gm_send.as_nanos() as f64;
        let mut true_send = gm_send;
        let chain_len = self.nodes.len();
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            let true_arrival = true_send + self.link_delay;
            let mut relayed = upstream_time;
            if let Some(f) = self.faults.as_mut() {
                if f.profile.message_loss_prob > 0.0
                    && f.rng.next_f64() < f.profile.message_loss_prob
                {
                    // The Sync dies on this hop's wire: this node and every
                    // node further down the chain hold over this round on
                    // their last servo state.
                    f.syncs_lost += (chain_len - idx) as u64;
                    return;
                }
                if f.profile.extra_jitter_ns > 0.0 {
                    relayed += (f.rng.next_f64() * 2.0 - 1.0) * f.profile.extra_jitter_ns;
                }
            }
            node.process_sync(relayed, true_arrival);
            // This node relays sync downstream: it re-stamps with its own
            // corrected clock (the 802.1AS end-to-end transparent path
            // accumulates residence time; the model forwards immediately).
            upstream_time = node.corrected_ns(true_arrival);
            true_send = true_arrival;
        }
    }

    /// The slaves, grandmaster-adjacent first.
    #[must_use]
    pub fn nodes(&self) -> &[TimeSync] {
        &self.nodes
    }

    /// The largest absolute sync error across the domain at true time
    /// `t`, in ns.
    #[must_use]
    pub fn max_abs_error_ns(&self, t: SimTime) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.error_ns(t).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drifty(i: u64) -> ClockModel {
        // Alternating-sign drifts up to 80 ppm, ms-scale initial offsets.
        let sign = if i.is_multiple_of(2) { 1.0 } else { -1.0 };
        ClockModel::new(
            sign * (20.0 + 10.0 * i as f64),
            sign * 500_000.0 * (i as f64 + 1.0),
        )
    }

    #[test]
    fn unsynchronized_clock_is_wildly_off() {
        let node = TimeSync::new(drifty(0), SyncConfig::default(), 1);
        assert!(node.error_ns(SimTime::from_millis(100)).abs() > 100_000.0);
    }

    #[test]
    fn single_slave_converges_below_50ns() {
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(125),
            timestamp_noise_ns: 8.0,
        };
        let mut node = TimeSync::new(drifty(0), config, 42);
        node.measure_pdelay(SimDuration::from_nanos(50));
        let mut t = SimTime::ZERO;
        for _ in 0..8 {
            node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
            t += config.sync_interval;
        }
        // Probe the worst case: just before the next sync.
        let probe = t + config.sync_interval - SimDuration::from_nanos(1);
        let err = node.error_ns(probe).abs();
        assert!(
            err < 50.0,
            "paper-level precision (<50 ns), got {err:.1} ns"
        );
    }

    #[test]
    fn rate_ratio_tracks_the_true_drift() {
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(125),
            timestamp_noise_ns: 0.0,
        };
        let mut node = TimeSync::new(ClockModel::new(50.0, 0.0), config, 3);
        node.measure_pdelay(SimDuration::from_nanos(50));
        for k in 0..3u64 {
            let t = SimTime::from_millis(125 * k);
            node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
        }
        // True ratio = 1 / (1 + 50 ppm) ≈ 0.99995.
        assert!((node.rate_ratio() - 1.0 / 1.000_05).abs() < 1e-9);
    }

    #[test]
    fn pdelay_estimate_is_close_to_truth() {
        let mut node = TimeSync::new(ClockModel::perfect(), SyncConfig::default(), 5);
        node.measure_pdelay(SimDuration::from_nanos(50));
        assert!((node.link_delay_ns() - 50.0).abs() < 20.0);
    }

    #[test]
    fn noise_free_sync_is_essentially_exact() {
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(125),
            timestamp_noise_ns: 0.0,
        };
        let mut node = TimeSync::new(drifty(1), config, 9);
        node.measure_pdelay(SimDuration::from_nanos(50));
        for k in 0..4u64 {
            let t = SimTime::from_millis(125 * k);
            node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
        }
        let probe = SimTime::from_millis(560);
        assert!(node.error_ns(probe).abs() < 1.0);
    }

    #[test]
    fn six_hop_chain_stays_under_the_paper_bound() {
        // The paper's ring: 6 switches. Per-hop noise accumulates; the
        // prototype claims < 50 ns, we allow the same budget per domain.
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(31),
            timestamp_noise_ns: 4.0,
        };
        let clocks: Vec<ClockModel> = (0..6).map(drifty).collect();
        let mut domain =
            SyncDomain::chain(clocks, config, SimDuration::from_nanos(50)).expect("valid domain");
        domain.run_until(SimTime::from_millis(1000));
        let worst = domain.max_abs_error_ns(SimTime::from_millis(1000));
        assert!(
            worst < 50.0,
            "6-hop domain precision should be < 50 ns, got {worst:.1} ns"
        );
    }

    #[test]
    fn fixed_point_clock_is_exact_at_large_sim_times() {
        // drift = 2^-10 ppm (exactly representable): the true offset at
        // t = 10^15 ns is 10^9 / 2^10 = 976562.5 ns. An f64 at that
        // magnitude has a 0.125 ns ulp; the fixed-point path must keep
        // the .5 fraction and floor the integer read deterministically.
        let clock = ClockModel::new(0.000_976_562_5, 0.0);
        let t = SimTime::from_nanos(1_000_000_000_000_000);
        assert!((clock.raw_offset_ns(t) - 976_562.5).abs() < 1e-3);
        assert_eq!(
            clock.now(t),
            SimTime::from_nanos(1_000_000_000_976_562),
            "integer read floors the exact fixed-point value"
        );
    }

    #[test]
    fn fixed_point_clock_keeps_sub_ns_drift_products() {
        // A 1.03e-9 ppm drift accumulates 1.03 ns over 10^15 ns. The f64
        // evaluation quantizes the result to a multiple of 0.125 ns
        // (1.0 or 1.125 — ≥ 0.03 ns of error); fixed-point keeps it.
        let drift_ppm = 1.03e-9;
        let clock = ClockModel::new(drift_ppm, 0.0);
        let t = SimTime::from_nanos(1_000_000_000_000_000);
        let f64_style = t.as_nanos() as f64 * (1.0 + drift_ppm * 1e-6) - t.as_nanos() as f64;
        assert!(
            (f64_style - 1.03).abs() > 0.02,
            "f64 math quantizes the sub-ns product (got {f64_style})"
        );
        assert!((clock.raw_offset_ns(t) - 1.03).abs() < 1e-4);
    }

    #[test]
    fn fixed_point_clock_handles_negative_drift_and_offset() {
        let clock = ClockModel::new(-40.0, -1_000.5);
        let t = SimTime::from_nanos(1_000_000_000); // 1 s
                                                    // Offset: -40e-6 * 1e9 - 1000.5 = -41_000.5 ns.
        assert!((clock.raw_offset_ns(t) - (-41_000.5)).abs() < 1e-6);
        assert_eq!(clock.now(t), SimTime::from_nanos(1_000_000_000 - 41_001));
        // Clamped at zero near the epoch.
        assert_eq!(clock.now(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn sync_loss_triggers_holdover_and_high_water_tracking() {
        let config = SyncConfig {
            sync_interval: SimDuration::from_millis(31),
            timestamp_noise_ns: 4.0,
        };
        let clocks: Vec<ClockModel> = (0..6).map(drifty).collect();
        let mut healthy =
            SyncDomain::chain(clocks.clone(), config, SimDuration::from_nanos(50)).expect("valid");
        let mut lossy =
            SyncDomain::chain(clocks, config, SimDuration::from_nanos(50)).expect("valid");
        lossy.set_faults(
            SyncFaultProfile {
                message_loss_prob: 0.5,
                extra_jitter_ns: 0.0,
            },
            7,
        );
        let end = SimTime::from_millis(2000);
        healthy.run_until(end);
        lossy.run_until(end);
        assert!(lossy.syncs_lost() > 0, "losses actually happened");
        assert!(
            lossy.offset_high_water_ns() > healthy.max_abs_error_ns(end),
            "holdover degrades precision: high-water {} vs healthy {}",
            lossy.offset_high_water_ns(),
            healthy.max_abs_error_ns(end)
        );
        // Holdover keeps running on the servo's last state — corrected
        // time still advances, it just drifts.
        assert!(lossy.max_abs_error_ns(end) < 1_000_000.0);
    }

    #[test]
    fn faulted_domains_are_deterministic_per_seed() {
        let config = SyncConfig::default();
        let profile = SyncFaultProfile {
            message_loss_prob: 0.3,
            extra_jitter_ns: 100.0,
        };
        let mk = |seed| {
            let clocks: Vec<ClockModel> = (0..4).map(drifty).collect();
            let mut d =
                SyncDomain::chain(clocks, config, SimDuration::from_nanos(50)).expect("valid");
            d.set_faults(profile, seed);
            d.run_until(SimTime::from_millis(3000));
            (
                d.syncs_lost(),
                d.offset_high_water_ns().to_bits(),
                d.max_abs_error_ns(SimTime::from_millis(3000)).to_bits(),
            )
        };
        assert_eq!(mk(9), mk(9), "same seed, same trajectory");
        assert_ne!(mk(9).0, mk(10).0, "different seeds diverge");
    }

    #[test]
    fn empty_fault_profile_disarms_tracking() {
        let mut d = SyncDomain::chain(
            vec![drifty(0)],
            SyncConfig::default(),
            SimDuration::from_nanos(50),
        )
        .expect("valid");
        d.set_faults(
            SyncFaultProfile {
                message_loss_prob: 0.0,
                extra_jitter_ns: 0.0,
            },
            1,
        );
        d.run_until(SimTime::from_millis(500));
        assert_eq!(d.syncs_lost(), 0);
        assert_eq!(d.offset_high_water_ns(), 0.0);
    }

    #[test]
    fn domain_requires_at_least_one_slave() {
        assert!(
            SyncDomain::chain(vec![], SyncConfig::default(), SimDuration::from_nanos(50)).is_err()
        );
    }

    #[test]
    fn corrected_time_is_monotonic_across_a_sync_step() {
        let config = SyncConfig::default();
        let mut node = TimeSync::new(drifty(2), config, 11);
        node.measure_pdelay(SimDuration::from_nanos(50));
        let mut last = 0.0f64;
        let mut ok = true;
        for k in 0..6u64 {
            let t = SimTime::from_millis(125 * k);
            node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
            for probe_ms in 0..12 {
                let probe = t + SimDuration::from_millis(probe_ms * 10);
                let c = node.corrected_ns(probe);
                if c < last {
                    ok = false;
                }
                last = c;
            }
        }
        // After the first correction the servo only steps by sub-us
        // amounts; time should not run backwards at ms probing granularity.
        assert!(ok, "corrected time went backwards at ms granularity");
    }
}
