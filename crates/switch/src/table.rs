//! A capacity-limited lookup table.
//!
//! Hardware tables have a fixed number of entries — that is the entire
//! point of the paper's customization model. [`CapTable`] behaves like a
//! map that refuses inserts beyond its configured capacity, so an
//! under-provisioned `class_size` or `unicast_size` fails *visibly* (the
//! same way the FPGA table would stop learning), and usage statistics are
//! tracked for reports.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use tsn_types::{TsnError, TsnResult};

/// Deterministic multiply-xor hasher (the `FxHash` construction from
/// rustc). Lookup tables sit on the per-frame hot path — one classify
/// plus one forwarding lookup per hop — and profiling the 100k-flow
/// plant showed SipHash itself as the largest single cost there. The
/// table's iteration order is never observable (no `CapTable` API
/// exposes it), so a weaker, faster hash cannot leak into reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] — zero-state, so every map hashes
/// identically across runs (part of the determinism story).
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A fixed-capacity key/value table with occupancy statistics.
///
/// # Example
///
/// ```
/// use tsn_switch::table::CapTable;
///
/// let mut t: CapTable<u32, &str> = CapTable::new("demo table", 2);
/// t.insert(1, "a")?;
/// t.insert(2, "b")?;
/// assert!(t.insert(3, "c").is_err(), "third entry exceeds capacity");
/// assert_eq!(t.get(&1), Some(&"a"));
/// assert_eq!(t.occupancy(), 2);
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CapTable<K, V> {
    name: &'static str,
    capacity: usize,
    entries: HashMap<K, V, FxBuild>,
    lookups: u64,
    misses: u64,
    rejected_inserts: u64,
}

impl<K: Eq + Hash, V> CapTable<K, V> {
    /// Creates an empty table with room for `capacity` entries. `name` is
    /// used in error messages (e.g. `"classification table"`).
    #[must_use]
    pub fn new(name: &'static str, capacity: usize) -> Self {
        CapTable {
            name,
            capacity,
            entries: HashMap::with_capacity_and_hasher(capacity.min(4096), FxBuild::default()),
            lookups: 0,
            misses: 0,
            rejected_inserts: 0,
        }
    }

    /// Inserts an entry. Overwriting an existing key is always allowed
    /// (it does not grow the table).
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::CapacityExceeded`] if the table is full and the
    /// key is new. The rejection is also counted in
    /// [`CapTable::rejected_inserts`].
    pub fn insert(&mut self, key: K, value: V) -> TsnResult<Option<V>> {
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            self.rejected_inserts += 1;
            return Err(TsnError::capacity(self.name, self.capacity));
        }
        Ok(self.entries.insert(key, value))
    }

    /// Looks up a key, counting the access for the miss-rate statistics.
    pub fn lookup(&mut self, key: &K) -> Option<&V> {
        self.lookups += 1;
        let hit = self.entries.get(key);
        if hit.is_none() {
            self.misses += 1;
        }
        hit
    }

    /// Looks up a key without touching statistics.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.entries.get(key)
    }

    /// Mutable access to an entry without touching statistics.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.entries.get_mut(key)
    }

    /// Removes an entry, returning it if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.entries.remove(key)
    }

    /// Removes all entries (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Re-provisions the table to `capacity` entries, keeping the current
    /// contents — the incremental-reconfiguration path, where a cloned,
    /// already-programmed table is adopted under a new resource
    /// configuration instead of being rebuilt entry by entry.
    ///
    /// Returns `false` (leaving the table untouched) when the current
    /// occupancy does not fit: a from-scratch build at that capacity
    /// would have rejected an insert, so the caller must fall back to the
    /// full replay to reproduce that rejection exactly.
    #[must_use]
    pub fn set_capacity(&mut self, capacity: usize) -> bool {
        if self.entries.len() > capacity {
            return false;
        }
        self.capacity = capacity;
        true
    }

    /// Current number of entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// `true` when no further new keys fit.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Total lookups performed via [`CapTable::lookup`].
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups that found no entry.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Inserts rejected because the table was full.
    #[must_use]
    pub fn rejected_inserts(&self) -> u64 {
        self.rejected_inserts
    }

    /// Occupancy as a fraction of capacity (0 when capacity is 0).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.entries.len() as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_enforced_for_new_keys_only() {
        let mut t: CapTable<u8, u8> = CapTable::new("t", 2);
        t.insert(1, 10).expect("fits");
        t.insert(2, 20).expect("fits");
        assert!(t.is_full());
        assert!(matches!(
            t.insert(3, 30),
            Err(TsnError::CapacityExceeded { capacity: 2, .. })
        ));
        // Overwrite of an existing key is fine even when full.
        assert_eq!(t.insert(1, 11).expect("overwrite allowed"), Some(10));
        assert_eq!(t.get(&1), Some(&11));
        assert_eq!(t.rejected_inserts(), 1);
    }

    #[test]
    fn lookup_statistics_count_hits_and_misses() {
        let mut t: CapTable<u8, u8> = CapTable::new("t", 4);
        t.insert(1, 1).expect("fits");
        assert!(t.lookup(&1).is_some());
        assert!(t.lookup(&9).is_none());
        assert!(t.lookup(&9).is_none());
        assert_eq!(t.lookups(), 3);
        assert_eq!(t.misses(), 2);
        // `get` does not count.
        let _ = t.get(&9);
        assert_eq!(t.lookups(), 3);
    }

    #[test]
    fn remove_and_clear_free_space() {
        let mut t: CapTable<u8, u8> = CapTable::new("t", 1);
        t.insert(1, 1).expect("fits");
        assert!(t.insert(2, 2).is_err());
        assert_eq!(t.remove(&1), Some(1));
        t.insert(2, 2).expect("fits after removal");
        t.clear();
        assert_eq!(t.occupancy(), 0);
        assert!(!t.is_full());
    }

    #[test]
    fn utilization_fraction() {
        let mut t: CapTable<u8, u8> = CapTable::new("t", 4);
        assert_eq!(t.utilization(), 0.0);
        t.insert(1, 1).expect("fits");
        assert_eq!(t.utilization(), 0.25);
        let z: CapTable<u8, u8> = CapTable::new("z", 0);
        assert_eq!(z.utilization(), 0.0);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut t: CapTable<u8, u8> = CapTable::new("t", 0);
        assert!(t.insert(1, 1).is_err());
    }
}
