//! The **Egress Sched** template: strict-priority selection plus
//! credit-based shapers (Fig. 5).
//!
//! "The scheduler selects a packet with a strict priority algorithm. The
//! CBS is implemented based on a token bucket. … The *idleSlope* and
//! *sendSlope* in the CBS Table of each port represent the increase rate
//! and decrease rate of the credits." (Sections III.B/III.C)
//!
//! Rate-constrained queues are mapped onto shapers through the CBS MAP
//! table; a shaped queue may only transmit while its credit is
//! non-negative (802.1Qav semantics).

use crate::gate_ctrl::GateCtrl;
use tsn_types::{DataRate, QueueId, SimTime, TsnError, TsnResult};

/// One credit-based shaper (one CBS-table entry).
///
/// Credits are tracked in bits: they rise at `idleSlope` while the shaped
/// queue has backlog (or while recovering from negative credit), fall by
/// the frame size minus the idle-slope contribution during transmission,
/// and reset to zero when the queue goes idle with positive credit.
#[derive(Debug, Clone, PartialEq)]
pub struct CreditBasedShaper {
    idle_slope: DataRate,
    credit_bits: f64,
    last_update: SimTime,
}

impl CreditBasedShaper {
    /// Creates a shaper with the given `idleSlope` (the bandwidth reserved
    /// for the queue).
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if the slope is zero.
    pub fn new(idle_slope: DataRate) -> TsnResult<Self> {
        if idle_slope.is_zero() {
            return Err(TsnError::invalid_parameter(
                "idle_slope",
                "must be non-zero",
            ));
        }
        Ok(CreditBasedShaper {
            idle_slope,
            credit_bits: 0.0,
            last_update: SimTime::ZERO,
        })
    }

    /// The configured `idleSlope`.
    #[must_use]
    pub fn idle_slope(&self) -> DataRate {
        self.idle_slope
    }

    /// Current credit in bits (may be negative right after a
    /// transmission).
    #[must_use]
    pub fn credit_bits(&self) -> f64 {
        self.credit_bits
    }

    /// Whether the shaped queue may start a transmission.
    #[must_use]
    pub fn eligible(&self) -> bool {
        self.credit_bits >= 0.0
    }

    /// Advances the shaper to `now`. `backlogged` says whether the shaped
    /// queue currently holds frames.
    ///
    /// * backlog, or negative credit → credit rises at `idleSlope`
    ///   (negative credit recovers even without backlog, capped at 0);
    /// * idle with positive credit → credit resets to 0 (the 802.1Qav
    ///   "credit is set to zero when the queue is empty" rule).
    pub fn sync(&mut self, now: SimTime, backlogged: bool) {
        if now <= self.last_update {
            return;
        }
        let dt_ns = (now - self.last_update).as_nanos() as f64;
        let gain = self.idle_slope.bits_per_sec() as f64 * dt_ns / 1e9;
        if backlogged {
            self.credit_bits += gain;
        } else if self.credit_bits < 0.0 {
            self.credit_bits = (self.credit_bits + gain).min(0.0);
        } else {
            self.credit_bits = 0.0;
        }
        self.last_update = now;
    }

    /// Charges one transmitted frame: over the transmission interval the
    /// credit falls by the frame's bits while still earning `idleSlope`
    /// (equivalently, falls at `sendSlope = idleSlope − portRate`).
    pub fn on_transmitted(&mut self, frame_bits: u64, tx_start: SimTime, tx_end: SimTime) {
        self.sync(tx_start, true);
        let dt_ns = tx_end.saturating_since(tx_start).as_nanos() as f64;
        let gain = self.idle_slope.bits_per_sec() as f64 * dt_ns / 1e9;
        self.credit_bits += gain - frame_bits as f64;
        self.last_update = tx_end;
    }
}

/// The egress-scheduler template for one port: strict priority over the
/// queues (higher queue id wins, matching the standard layout where the
/// TS pair occupies the top ids) with per-queue credit-based shaping.
///
/// Resource parameters: `cbs_map_size` queue→shaper mappings and
/// `cbs_size` shapers (Table II: `set_cbs_tbl`).
#[derive(Debug, Clone)]
pub struct EgressScheduler {
    /// CBS MAP table: queue index → shaper index.
    cbs_map: Vec<Option<usize>>,
    /// CBS table: the shapers.
    shapers: Vec<Option<CreditBasedShaper>>,
    map_capacity: usize,
    mapped: usize,
}

impl EgressScheduler {
    /// Creates a scheduler for a port with `queue_num` queues,
    /// `cbs_map_size` mapping slots and `cbs_size` shaper slots.
    #[must_use]
    pub fn new(queue_num: usize, cbs_map_size: usize, cbs_size: usize) -> Self {
        EgressScheduler {
            cbs_map: vec![None; queue_num],
            shapers: vec![None; cbs_size],
            map_capacity: cbs_map_size,
            mapped: 0,
        }
    }

    /// Installs a shaper in CBS-table slot `slot`.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::CapacityExceeded`] if `slot` is outside the CBS
    /// table.
    pub fn set_shaper(&mut self, slot: usize, shaper: CreditBasedShaper) -> TsnResult<()> {
        let capacity = self.shapers.len();
        let cell = self
            .shapers
            .get_mut(slot)
            .ok_or_else(|| TsnError::capacity("cbs table", capacity))?;
        *cell = Some(shaper);
        Ok(())
    }

    /// Maps a queue onto a CBS-table slot (one CBS MAP entry).
    ///
    /// # Errors
    ///
    /// * [`TsnError::CapacityExceeded`] if all `cbs_map_size` entries are
    ///   used or the queue index is out of range.
    /// * [`TsnError::InvalidParameter`] if `slot` is outside the CBS
    ///   table.
    pub fn map_queue(&mut self, queue: QueueId, slot: usize) -> TsnResult<()> {
        if slot >= self.shapers.len() {
            return Err(TsnError::invalid_parameter(
                "slot",
                format!("cbs table has {} slots", self.shapers.len()),
            ));
        }
        let map_capacity = self.map_capacity;
        let queue_count = self.cbs_map.len();
        let cell = self
            .cbs_map
            .get_mut(queue.as_usize())
            .ok_or_else(|| TsnError::capacity("queue set", queue_count))?;
        if cell.is_none() {
            if self.mapped >= map_capacity {
                return Err(TsnError::capacity("cbs map table", map_capacity));
            }
            self.mapped += 1;
        }
        *cell = Some(slot);
        Ok(())
    }

    /// Re-provisions the CBS table sizes in place, keeping the installed
    /// shapers and mappings — the incremental-reconfiguration path.
    ///
    /// Returns `false` (without mutating anything) when the installed
    /// state does not fit: more queues are mapped than `cbs_map_size`
    /// allows, or a shaper occupies a slot at or beyond `cbs_size`. A
    /// from-scratch build at those sizes would have rejected an install,
    /// so the caller must replay instead.
    #[must_use]
    pub fn reprovision(&mut self, cbs_map_size: usize, cbs_size: usize) -> bool {
        let slots_used = self
            .shapers
            .iter()
            .rposition(Option::is_some)
            .map_or(0, |i| i + 1);
        // A CBS MAP entry referencing a slot beyond the new table would
        // have failed `map_queue` at install time, not just lost its
        // shaper — so it forces the replay path too.
        let max_mapped_slot = self.cbs_map.iter().flatten().copied().max();
        if self.mapped > cbs_map_size
            || slots_used > cbs_size
            || max_mapped_slot.is_some_and(|s| s >= cbs_size)
        {
            return false;
        }
        self.map_capacity = cbs_map_size;
        self.shapers.resize(cbs_size, None);
        true
    }

    /// Selects the queue to transmit from at `now`: the highest-priority
    /// queue that is gate-eligible and (if shaped) has non-negative
    /// credit. Shapers of backlogged queues are advanced to `now` as a
    /// side effect.
    pub fn select(&mut self, gates: &GateCtrl, now: SimTime) -> Option<QueueId> {
        self.select_filtered(gates, now, |_| true)
    }

    /// As [`EgressScheduler::select`], restricted to queues accepted by
    /// `filter` — the hook frame preemption uses to serve the express
    /// (time-sensitive) and preemptable MACs separately (802.3br).
    pub fn select_filtered(
        &mut self,
        gates: &GateCtrl,
        now: SimTime,
        filter: impl Fn(QueueId) -> bool,
    ) -> Option<QueueId> {
        // Sync every shaper first so credits are current (skipped
        // entirely on the common unshaped port).
        if self.mapped > 0 {
            for q in 0..self.cbs_map.len() {
                if let Some(slot) = self.cbs_map[q] {
                    let backlogged = gates.queue_len(QueueId::new(q as u8)) > 0;
                    if let Some(shaper) = self.shapers.get_mut(slot).and_then(Option::as_mut) {
                        shaper.sync(now, backlogged);
                    }
                }
            }
        }
        // One AND yields every non-empty queue with an open gate; walk
        // the set bits highest-first (strict priority).
        let mut mask = gates.eligible_mask(now);
        while mask != 0 {
            let q = 63 - mask.leading_zeros();
            let queue = QueueId::new(q as u8);
            if filter(queue) && self.credit_ok(queue) {
                return Some(queue);
            }
            mask &= !(1u64 << q);
        }
        None
    }

    fn credit_ok(&self, queue: QueueId) -> bool {
        match self.cbs_map.get(queue.as_usize()).copied().flatten() {
            Some(slot) => self
                .shapers
                .get(slot)
                .and_then(Option::as_ref)
                .is_none_or(CreditBasedShaper::eligible),
            None => true,
        }
    }

    /// Records a completed transmission from `queue`, charging its shaper
    /// if it has one.
    pub fn on_transmitted(
        &mut self,
        queue: QueueId,
        frame_bits: u64,
        tx_start: SimTime,
        tx_end: SimTime,
    ) {
        if let Some(slot) = self.cbs_map.get(queue.as_usize()).copied().flatten() {
            if let Some(shaper) = self.shapers.get_mut(slot).and_then(Option::as_mut) {
                shaper.on_transmitted(frame_bits, tx_start, tx_end);
            }
        }
    }

    /// The earliest instant at which a currently credit-blocked,
    /// backlogged queue becomes eligible again, or `None` if no queue is
    /// credit-blocked. Used by event-driven simulators to avoid polling.
    #[must_use]
    pub fn next_credit_recovery(&self, gates: &GateCtrl, now: SimTime) -> Option<SimTime> {
        let mut earliest: Option<SimTime> = None;
        for q in 0..self.cbs_map.len() {
            let queue = QueueId::new(q as u8);
            if gates.queue_len(queue) == 0 {
                continue;
            }
            if let Some(ready) = self.queue_credit_recovery(queue, now) {
                earliest = Some(earliest.map_or(ready, |e: SimTime| e.min(ready)));
            }
        }
        earliest
    }

    /// The instant `queue`'s shaper recovers to non-negative credit, or
    /// `None` if the queue is unshaped or already eligible. The caller is
    /// responsible for knowing the queue is backlogged.
    #[must_use]
    pub fn queue_credit_recovery(&self, queue: QueueId, now: SimTime) -> Option<SimTime> {
        let slot = self.cbs_map.get(queue.as_usize()).copied().flatten()?;
        let shaper = self.shapers.get(slot).and_then(Option::as_ref)?;
        if shaper.eligible() {
            return None;
        }
        let deficit_bits = -shaper.credit_bits();
        let ns = (deficit_bits * 1e9 / shaper.idle_slope().bits_per_sec() as f64).ceil();
        Some(now + tsn_types::SimDuration::from_nanos(ns as u64 + 1))
    }

    /// Settles a shaper's idle period when its queue transitions from
    /// empty to backlogged: negative credit has recovered (capped at 0),
    /// positive credit has reset to 0 (802.1Qav). Calling this at enqueue
    /// time makes the credit trajectory independent of how often the
    /// scheduler happened to be polled while the queue sat empty.
    pub fn note_backlog_start(&mut self, queue: QueueId, now: SimTime) {
        if let Some(slot) = self.cbs_map.get(queue.as_usize()).copied().flatten() {
            if let Some(shaper) = self.shapers.get_mut(slot).and_then(Option::as_mut) {
                shaper.sync(now, false);
            }
        }
    }

    /// Read access to a shaper slot.
    #[must_use]
    pub fn shaper(&self, slot: usize) -> Option<&CreditBasedShaper> {
        self.shapers.get(slot).and_then(Option::as_ref)
    }

    /// Number of installed queue→shaper mappings.
    #[must_use]
    pub fn mapped_queues(&self) -> usize {
        self.mapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate_ctrl::{GateControlList, GateCtrl};
    use crate::layout::QueueLayout;
    use tsn_types::{EthernetFrame, MacAddr, SimDuration, TrafficClass};

    const SLOT: SimDuration = SimDuration::from_micros(65);

    fn frame(class: TrafficClass, size: u32) -> EthernetFrame {
        EthernetFrame::builder()
            .src(MacAddr::station(1))
            .dst(MacAddr::station(2))
            .class(class)
            .size_bytes(size)
            .build()
            .expect("valid frame")
    }

    fn open_gates() -> GateCtrl {
        GateCtrl::new(
            QueueLayout::standard8(),
            16,
            GateControlList::always_open(SLOT),
            GateControlList::always_open(SLOT),
        )
        .expect("valid gates")
    }

    #[test]
    fn strict_priority_prefers_higher_queues() {
        let mut gates = open_gates();
        let mut sched = EgressScheduler::new(8, 3, 3);
        gates
            .enqueue(
                QueueId::new(0),
                frame(TrafficClass::BestEffort, 64),
                SimTime::ZERO,
            )
            .expect("open");
        gates
            .enqueue(
                QueueId::new(3),
                frame(TrafficClass::RateConstrained, 64),
                SimTime::ZERO,
            )
            .expect("open");
        gates
            .enqueue(
                QueueId::new(6),
                frame(TrafficClass::TimeSensitive, 64),
                SimTime::ZERO,
            )
            .expect("open");
        assert_eq!(sched.select(&gates, SimTime::ZERO), Some(QueueId::new(6)));
        gates.pop(QueueId::new(6));
        assert_eq!(sched.select(&gates, SimTime::ZERO), Some(QueueId::new(3)));
        gates.pop(QueueId::new(3));
        assert_eq!(sched.select(&gates, SimTime::ZERO), Some(QueueId::new(0)));
        gates.pop(QueueId::new(0));
        assert_eq!(sched.select(&gates, SimTime::ZERO), None);
    }

    #[test]
    fn shaped_queue_blocks_on_negative_credit_and_recovers() {
        let mut gates = open_gates();
        let mut sched = EgressScheduler::new(8, 3, 3);
        sched
            .set_shaper(
                0,
                CreditBasedShaper::new(DataRate::mbps(100)).expect("valid"),
            )
            .expect("slot");
        sched.map_queue(QueueId::new(3), 0).expect("map");

        let t0 = SimTime::ZERO;
        for _ in 0..2 {
            gates
                .enqueue(
                    QueueId::new(3),
                    frame(TrafficClass::RateConstrained, 1024),
                    t0,
                )
                .expect("open");
        }
        // First frame transmits: credit starts at 0 which is eligible.
        assert_eq!(sched.select(&gates, t0), Some(QueueId::new(3)));
        let popped = gates.pop(QueueId::new(3)).expect("frame");
        let tx_end = t0 + SimDuration::from_nanos(u64::from(popped.size_bytes()) * 8);
        sched.on_transmitted(
            QueueId::new(3),
            u64::from(popped.size_bytes()) * 8,
            t0,
            tx_end,
        );
        // Immediately after, credit is deeply negative: blocked.
        assert_eq!(sched.select(&gates, tx_end), None);
        // 100 Mbps refills 8192 bits in ~82 us.
        let later = tx_end + SimDuration::from_micros(90);
        assert_eq!(sched.select(&gates, later), Some(QueueId::new(3)));
    }

    #[test]
    fn idle_queue_with_positive_credit_resets_to_zero() {
        let mut shaper = CreditBasedShaper::new(DataRate::mbps(100)).expect("valid");
        shaper.sync(SimTime::from_micros(100), true);
        assert!(shaper.credit_bits() > 0.0);
        shaper.sync(SimTime::from_micros(200), false);
        assert_eq!(shaper.credit_bits(), 0.0);
    }

    #[test]
    fn negative_credit_recovers_to_zero_without_backlog() {
        let mut shaper = CreditBasedShaper::new(DataRate::mbps(100)).expect("valid");
        shaper.on_transmitted(8192, SimTime::ZERO, SimTime::from_micros(8));
        assert!(shaper.credit_bits() < 0.0);
        // Without backlog the credit climbs back to 0 but not beyond.
        shaper.sync(SimTime::from_millis(1), false);
        assert_eq!(shaper.credit_bits(), 0.0);
    }

    #[test]
    fn unshaped_queues_ignore_credit() {
        let mut gates = open_gates();
        let mut sched = EgressScheduler::new(8, 3, 3);
        gates
            .enqueue(
                QueueId::new(0),
                frame(TrafficClass::BestEffort, 64),
                SimTime::ZERO,
            )
            .expect("open");
        assert_eq!(sched.select(&gates, SimTime::ZERO), Some(QueueId::new(0)));
    }

    #[test]
    fn cbs_map_capacity_is_enforced() {
        let mut sched = EgressScheduler::new(8, 2, 3);
        sched
            .set_shaper(
                0,
                CreditBasedShaper::new(DataRate::mbps(10)).expect("valid"),
            )
            .expect("slot");
        sched.map_queue(QueueId::new(3), 0).expect("entry 1");
        sched.map_queue(QueueId::new(4), 0).expect("entry 2");
        assert!(sched.map_queue(QueueId::new(5), 0).is_err(), "map full");
        // Remapping an existing entry is allowed.
        sched.map_queue(QueueId::new(3), 0).expect("remap");
        assert_eq!(sched.mapped_queues(), 2);
    }

    #[test]
    fn cbs_table_bounds_are_enforced() {
        let mut sched = EgressScheduler::new(8, 3, 1);
        assert!(sched
            .set_shaper(
                1,
                CreditBasedShaper::new(DataRate::mbps(10)).expect("valid")
            )
            .is_err());
        assert!(sched.map_queue(QueueId::new(3), 1).is_err());
        assert!(sched.map_queue(QueueId::new(99), 0).is_err());
    }

    #[test]
    fn shaper_validation() {
        assert!(CreditBasedShaper::new(DataRate::ZERO).is_err());
    }

    #[test]
    fn mapped_queue_without_installed_shaper_is_unshaped() {
        let mut gates = open_gates();
        let mut sched = EgressScheduler::new(8, 3, 3);
        sched
            .map_queue(QueueId::new(3), 2)
            .expect("map to empty slot");
        gates
            .enqueue(
                QueueId::new(3),
                frame(TrafficClass::RateConstrained, 64),
                SimTime::ZERO,
            )
            .expect("open");
        assert_eq!(sched.select(&gates, SimTime::ZERO), Some(QueueId::new(3)));
    }
}
