//! End-to-end acceptance of the tsn-verify harness: a deliberately
//! injected bug — an off-by-one queue depth in the derived resource
//! config — must be caught by the cross-layer consistency check,
//! greedily shrunk to a tiny scenario, persisted to a corpus, and
//! reproducible from the reported seed alone.

use tsn_verify::case::ScenarioCase;
use tsn_verify::corpus;
use tsn_verify::oracles;
use tsn_verify::runner::{Runner, Verdict};

/// The buggy customization pipeline: derive a configuration, then size
/// the gate-controller queues one entry short of the derived depth (the
/// classic "dropped the ITP safety margin" off-by-one), and run the same
/// config↔HDL consistency check `hdl-fixpoint` applies: the emitted
/// `gate_ctrl` must provision the *derived* queue depth.
fn buggy_depth_oracle(case: &ScenarioCase) -> Verdict {
    let (_topology, _flows, derived) = match oracles::prepare(case) {
        Ok(x) => x,
        Err(v) => return v,
    };
    let want_depth = derived.resources.queue_depth();
    let mut buggy = derived.resources.clone();
    // The injected bug.
    let off_by_one = want_depth - 1;
    if let Err(e) = buggy.set_queues(off_by_one, buggy.queue_num(), buggy.port_num()) {
        return Verdict::Fail(format!("buggy customization collapsed the config: {e}"));
    }
    let bundle = match tsn_hdl::generate(&buggy) {
        Ok(b) => b,
        Err(e) => return Verdict::Fail(format!("emission failed: {e}")),
    };
    for (name, source) in bundle.files() {
        let modules = match tsn_hdl::parse_modules(source) {
            Ok(m) => m,
            Err(e) => return Verdict::Fail(format!("{name}: parse failed: {e}")),
        };
        let Some(gate) = modules.iter().find(|m| m.name == "gate_ctrl") else {
            continue;
        };
        let got = gate
            .params
            .iter()
            .find(|(p, _)| p == "QUEUE_DEPTH")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        if got.parse::<u32>() != Ok(want_depth.max(1)) {
            return Verdict::Fail(format!(
                "gate_ctrl QUEUE_DEPTH = {got}, derived depth is {want_depth}"
            ));
        }
        return Verdict::Pass;
    }
    Verdict::Fail("emitted bundle lacks gate_ctrl".into())
}

#[test]
fn injected_depth_off_by_one_is_caught_shrunk_persisted_and_reproducible() {
    let dir = std::env::temp_dir().join(format!("tsn-verify-harness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut runner = Runner::new(16, 0xb06);
    runner.corpus_dir = Some(dir.clone());
    let report = runner.run("buggy-depth", &ScenarioCase::generate, buggy_depth_oracle);

    // Caught: the very first non-discarded case trips the check.
    let failure = report
        .failure
        .as_ref()
        .expect("the injected bug must be caught");
    assert!(
        failure.shrunk.message.contains("QUEUE_DEPTH"),
        "{}",
        failure.shrunk.message
    );

    // Shrunk to a tiny scenario: at most 2 switches and 4 flows.
    let minimal = &failure.shrunk.case;
    assert!(
        minimal.switches <= 2,
        "shrunk to {} switches: {minimal:?}",
        minimal.switches
    );
    assert!(
        minimal.flows <= 4,
        "shrunk to {} flows: {minimal:?}",
        minimal.flows
    );

    // Reproducible: rerunning with `--seed <reported> --cases 1` (what the
    // CLI prints) regenerates the exact original failing case.
    let reproduce = Runner::new(1, failure.seed);
    let rerun = reproduce.run("buggy-depth", &ScenarioCase::generate, buggy_depth_oracle);
    let again = rerun
        .failure
        .expect("reported seed must reproduce the failure");
    assert_eq!(
        format!("{:?}", again.original),
        format!("{:?}", failure.original)
    );

    // Persisted: the corpus now holds the shrunk case; with the bug still
    // present it replays as a regression, with the bug fixed (the real
    // hdl-fixpoint oracle) it replays green.
    let entries = corpus::load_dir(&dir).expect("corpus loads");
    assert_eq!(entries.len(), 1, "one shrunk case persisted");
    let entry = &entries[0].1;
    assert_eq!(entry.oracle, "buggy-depth");
    assert!(!entry.is_seed_pin());
    let err = Runner::replay(entry, &ScenarioCase::generate, buggy_depth_oracle)
        .expect_err("still-present bug must replay as a regression");
    assert!(err.contains("regression reappeared"), "{err}");
    let stats = Runner::replay(entry, &ScenarioCase::generate, |c: &ScenarioCase| {
        oracles::hdl_fixpoint(c)
    })
    .expect("fixed pipeline replays green");
    assert_eq!(stats.executed, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The machine-check pipeline must catch hand-planted defects in
/// otherwise-clean emitted Verilog: a width-mismatched wire, a
/// wrong-DEPTH parameter edit, and an undersized address width. Each
/// planted edit is the kind of one-token slip a manual RTL patch makes.
#[test]
fn planted_hdl_defects_are_caught_by_lint_and_cost() {
    let cfg = tsn_resource::ResourceConfig::new();
    let bundle = tsn_hdl::generate(&cfg).expect("default bundle emits");
    let clean = bundle.concatenated();

    // Sanity: the unedited bundle is lint-clean and cost-exact.
    let modules = tsn_hdl::parse_modules(&clean).expect("clean bundle parses");
    assert!(tsn_hdl::lint_modules(&modules).is_empty());
    tsn_hdl::check_agreement(&cfg, &modules).expect("clean bundle cost agrees");

    // Planted defect 1: narrow a grant bus from QUEUE_NUM (8) to 3 bits.
    let planted = clean.replace("wire [QUEUE_NUM-1:0] p0_grant;", "wire [2:0] p0_grant;");
    assert_ne!(planted, clean, "edit target must exist in the bundle");
    let modules = tsn_hdl::parse_modules(&planted).expect("still parses");
    let findings = tsn_hdl::lint_modules(&modules);
    assert!(
        findings
            .iter()
            .any(|f| f.rule == "width-mismatch" && f.message.contains("p0_grant")),
        "planted width mismatch not caught: {findings:?}"
    );

    // Planted defect 2: bump gate_ctrl's QUEUE_DEPTH off the config (12→13).
    let planted = clean.replace("parameter QUEUE_DEPTH = 12", "parameter QUEUE_DEPTH = 13");
    assert_ne!(planted, clean, "edit target must exist in the bundle");
    let modules = tsn_hdl::parse_modules(&planted).expect("still parses");
    let err = tsn_hdl::check_agreement(&cfg, &modules)
        .expect_err("wrong-depth edit must break cost agreement");
    assert!(err.contains("memory map"), "unexpected diagnostic: {err}");

    // Planted defect 3: shrink an address width below its depth.
    let planted = clean.replace("parameter QUEUE_AW = 4", "parameter QUEUE_AW = 2");
    assert_ne!(planted, clean, "edit target must exist in the bundle");
    let modules = tsn_hdl::parse_modules(&planted).expect("still parses");
    let findings = tsn_hdl::lint_modules(&modules);
    assert!(
        findings.iter().any(|f| f.rule == "addr-width"),
        "planted address-width violation not caught: {findings:?}"
    );
}
