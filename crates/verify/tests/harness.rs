//! End-to-end acceptance of the tsn-verify harness: a deliberately
//! injected bug — an off-by-one queue depth in the derived resource
//! config — must be caught by the cross-layer consistency check,
//! greedily shrunk to a tiny scenario, persisted to a corpus, and
//! reproducible from the reported seed alone.

use tsn_verify::case::ScenarioCase;
use tsn_verify::corpus;
use tsn_verify::oracles;
use tsn_verify::runner::{Runner, Verdict};

/// The buggy customization pipeline: derive a configuration, then size
/// the gate-controller queues one entry short of the derived depth (the
/// classic "dropped the ITP safety margin" off-by-one), and run the same
/// config↔HDL consistency check `hdl-fixpoint` applies: the emitted
/// `gate_ctrl` must provision the *derived* queue depth.
fn buggy_depth_oracle(case: &ScenarioCase) -> Verdict {
    let (_topology, _flows, derived) = match oracles::prepare(case) {
        Ok(x) => x,
        Err(v) => return v,
    };
    let want_depth = derived.resources.queue_depth();
    let mut buggy = derived.resources.clone();
    // The injected bug.
    let off_by_one = want_depth - 1;
    if let Err(e) = buggy.set_queues(off_by_one, buggy.queue_num(), buggy.port_num()) {
        return Verdict::Fail(format!("buggy customization collapsed the config: {e}"));
    }
    let bundle = match tsn_hdl::generate(&buggy) {
        Ok(b) => b,
        Err(e) => return Verdict::Fail(format!("emission failed: {e}")),
    };
    for (name, source) in bundle.files() {
        let modules = match tsn_hdl::parse_modules(source) {
            Ok(m) => m,
            Err(e) => return Verdict::Fail(format!("{name}: parse failed: {e}")),
        };
        let Some(gate) = modules.iter().find(|m| m.name == "gate_ctrl") else {
            continue;
        };
        let got = gate
            .params
            .iter()
            .find(|(p, _)| p == "QUEUE_DEPTH")
            .map(|(_, v)| v.clone())
            .unwrap_or_default();
        if got.parse::<u32>() != Ok(want_depth.max(1)) {
            return Verdict::Fail(format!(
                "gate_ctrl QUEUE_DEPTH = {got}, derived depth is {want_depth}"
            ));
        }
        return Verdict::Pass;
    }
    Verdict::Fail("emitted bundle lacks gate_ctrl".into())
}

#[test]
fn injected_depth_off_by_one_is_caught_shrunk_persisted_and_reproducible() {
    let dir = std::env::temp_dir().join(format!("tsn-verify-harness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut runner = Runner::new(16, 0xb06);
    runner.corpus_dir = Some(dir.clone());
    let report = runner.run("buggy-depth", &ScenarioCase::generate, buggy_depth_oracle);

    // Caught: the very first non-discarded case trips the check.
    let failure = report
        .failure
        .as_ref()
        .expect("the injected bug must be caught");
    assert!(
        failure.shrunk.message.contains("QUEUE_DEPTH"),
        "{}",
        failure.shrunk.message
    );

    // Shrunk to a tiny scenario: at most 2 switches and 4 flows.
    let minimal = &failure.shrunk.case;
    assert!(
        minimal.switches <= 2,
        "shrunk to {} switches: {minimal:?}",
        minimal.switches
    );
    assert!(
        minimal.flows <= 4,
        "shrunk to {} flows: {minimal:?}",
        minimal.flows
    );

    // Reproducible: rerunning with `--seed <reported> --cases 1` (what the
    // CLI prints) regenerates the exact original failing case.
    let reproduce = Runner::new(1, failure.seed);
    let rerun = reproduce.run("buggy-depth", &ScenarioCase::generate, buggy_depth_oracle);
    let again = rerun
        .failure
        .expect("reported seed must reproduce the failure");
    assert_eq!(
        format!("{:?}", again.original),
        format!("{:?}", failure.original)
    );

    // Persisted: the corpus now holds the shrunk case; with the bug still
    // present it replays as a regression, with the bug fixed (the real
    // hdl-fixpoint oracle) it replays green.
    let entries = corpus::load_dir(&dir).expect("corpus loads");
    assert_eq!(entries.len(), 1, "one shrunk case persisted");
    let entry = &entries[0].1;
    assert_eq!(entry.oracle, "buggy-depth");
    assert!(!entry.is_seed_pin());
    let err = Runner::replay(entry, &ScenarioCase::generate, buggy_depth_oracle)
        .expect_err("still-present bug must replay as a regression");
    assert!(err.contains("regression reappeared"), "{err}");
    let stats = Runner::replay(entry, &ScenarioCase::generate, |c: &ScenarioCase| {
        oracles::hdl_fixpoint(c)
    })
    .expect("fixed pipeline replays green");
    assert_eq!(stats.executed, 1);

    let _ = std::fs::remove_dir_all(&dir);
}
