//! Case generation: the [`Gen`] trait over [`SplitMix64`].
//!
//! A generator is a pure function from a PRNG stream to a case. Because
//! [`SplitMix64`] is seed-deterministic on every platform, a case is
//! fully identified by the `u64` that seeded its stream — that single
//! number is what the runner persists and what `verify --seed` replays.

use tsn_types::SplitMix64;

/// A deterministic case generator.
///
/// Implementations must draw *only* from `rng` (no ambient randomness,
/// clocks or global state), so the same seed always produces the same
/// case.
pub trait Gen {
    /// The case type this generator produces.
    type Output;

    /// Produces one case from the PRNG stream.
    fn generate(&self, rng: &mut SplitMix64) -> Self::Output;
}

/// Blanket impl so plain closures work as generators:
/// `|rng: &mut SplitMix64| -> C`.
impl<C, F> Gen for F
where
    F: Fn(&mut SplitMix64) -> C,
{
    type Output = C;

    fn generate(&self, rng: &mut SplitMix64) -> C {
        self(rng)
    }
}

/// An inclusive `u64` range, the building block of parameterized
/// generators ([`crate::props::ParamSpec`] in particular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Smallest value drawn — also the shrinking floor.
    pub lo: u64,
    /// Largest value drawn (inclusive).
    pub hi: u64,
}

impl Range {
    /// `lo..=hi` (requires `lo <= hi`).
    #[must_use]
    pub const fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "Range needs lo <= hi");
        Range { lo, hi }
    }

    /// Uniform draw from the range (the full-`u64` range included).
    pub fn draw(&self, rng: &mut SplitMix64) -> u64 {
        let span = self.hi - self.lo;
        if span == u64::MAX {
            rng.next_u64()
        } else {
            self.lo + rng.gen_range(span + 1)
        }
    }

    /// Whether `value` lies inside the range.
    #[must_use]
    pub fn contains(&self, value: u64) -> bool {
        (self.lo..=self.hi).contains(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_generators() {
        let gen = |rng: &mut SplitMix64| rng.gen_range(10);
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(1);
        assert_eq!(gen.generate(&mut a), gen.generate(&mut b));
    }

    #[test]
    fn range_draws_cover_bounds() {
        let r = Range::new(3, 5);
        let mut rng = SplitMix64::seed_from_u64(77);
        let mut seen = [false; 3];
        for _ in 0..64 {
            let v = r.draw(&mut rng);
            assert!(r.contains(v));
            seen[(v - 3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(Range::new(9, 9).draw(&mut rng), 9);
    }
}
