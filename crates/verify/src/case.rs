//! The shared random case the cross-layer oracles consume: a topology
//! preset, an IEC 60802-style flow set and simulation knobs, all encoded
//! as a handful of integers so one case shrinks component-wise and
//! round-trips through the corpus.

use tsn_builder::workloads::{self, FRAME_SIZES};
use tsn_sim::network::{SimConfig, SyncSetup};
use tsn_topology::{presets, Topology};
use tsn_types::{FlowSet, SimDuration, SplitMix64, TsnResult};

use crate::corpus::{field_u64, CaseCodec};
use crate::shrink::{shrink_u64, Shrink};

/// Largest switch count generated: keeps every hop count feasible under
/// the paper's 65 µs slot even for 1 ms deadlines (`L_max = (hop+1)·slot`).
pub const MAX_SWITCHES: u64 = 6;
/// Largest generated flow count.
pub const MAX_FLOWS: u64 = 24;
/// Generated simulation window, in milliseconds.
pub const DURATION_MS: (u64, u64) = (4, 12);

/// The topology preset family. `Linear` is the shrinking floor: it is
/// the only preset that exists at two switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoKind {
    /// `presets::linear` — a chain, valid from 1 switch.
    Linear,
    /// `presets::ring` — valid from 3 switches.
    Ring,
    /// `presets::star` — `switches` counts the children (plus a core).
    Star,
}

impl TopoKind {
    /// Smallest `switches` value this preset accepts (hosts need 2).
    #[must_use]
    pub fn min_switches(self) -> u64 {
        match self {
            TopoKind::Linear | TopoKind::Star => 2,
            TopoKind::Ring => 3,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            TopoKind::Linear => "linear",
            TopoKind::Ring => "ring",
            TopoKind::Star => "star",
        }
    }

    fn from_str(raw: &str) -> Result<Self, String> {
        match raw {
            "linear" => Ok(TopoKind::Linear),
            "ring" => Ok(TopoKind::Ring),
            "star" => Ok(TopoKind::Star),
            other => Err(format!("unknown topology kind {other:?}")),
        }
    }
}

/// One random sweep point: everything the oracles need to rebuild a
/// topology, a flow set and a simulation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioCase {
    /// Preset family.
    pub topo: TopoKind,
    /// Switch count (children count for [`TopoKind::Star`]).
    pub switches: u64,
    /// Host count, `2..=switches`.
    pub hosts: u64,
    /// TS flow count.
    pub flows: u64,
    /// Index into [`FRAME_SIZES`].
    pub frame_idx: u64,
    /// Seed of the workload generator (deadline draws).
    pub wl_seed: u64,
    /// Injection window in milliseconds.
    pub duration_ms: u64,
    /// Which resource fields the metamorphic oracle inflates
    /// (bit per field; 0 = none).
    pub inflate_mask: u64,
}

impl ScenarioCase {
    /// Draws a random case.
    #[must_use]
    pub fn generate(rng: &mut SplitMix64) -> Self {
        let topo = match rng.gen_range(3) {
            0 => TopoKind::Linear,
            1 => TopoKind::Ring,
            _ => TopoKind::Star,
        };
        let case = ScenarioCase {
            topo,
            switches: rng.gen_range_in(2, MAX_SWITCHES + 1),
            hosts: rng.gen_range_in(2, MAX_SWITCHES + 1),
            flows: rng.gen_range_in(1, MAX_FLOWS + 1),
            frame_idx: rng.gen_range(FRAME_SIZES.len() as u64),
            wl_seed: rng.next_u64(),
            duration_ms: rng.gen_range_in(DURATION_MS.0, DURATION_MS.1 + 1),
            inflate_mask: rng.gen_range(64),
        };
        case.normalized()
    }

    /// Clamps every field into its valid domain (presets need
    /// `hosts <= switches`, rings need 3 switches, …). Idempotent;
    /// applied after generation and after every shrink step.
    #[must_use]
    pub fn normalized(mut self) -> Self {
        self.switches = self.switches.clamp(self.topo.min_switches(), MAX_SWITCHES);
        self.hosts = self.hosts.clamp(2, self.switches);
        self.flows = self.flows.clamp(1, MAX_FLOWS);
        self.frame_idx = self.frame_idx.min(FRAME_SIZES.len() as u64 - 1);
        self.duration_ms = self.duration_ms.clamp(DURATION_MS.0, DURATION_MS.1);
        self.inflate_mask &= 0x3f;
        self
    }

    /// The case's frame size in bytes.
    #[must_use]
    pub fn frame_bytes(&self) -> u32 {
        FRAME_SIZES[self.frame_idx as usize]
    }

    /// Builds the topology preset.
    ///
    /// # Errors
    ///
    /// Propagates preset validation (none for normalized cases).
    pub fn topology(&self) -> TsnResult<Topology> {
        let (switches, hosts) = (self.switches as usize, self.hosts as usize);
        match self.topo {
            TopoKind::Linear => presets::linear(switches, hosts),
            TopoKind::Ring => presets::ring(switches, hosts),
            TopoKind::Star => presets::star(switches, hosts),
        }
    }

    /// Builds the IEC 60802-style TS flow set for `topology`.
    ///
    /// # Errors
    ///
    /// Propagates workload validation.
    pub fn flow_set(&self, topology: &Topology) -> TsnResult<FlowSet> {
        workloads::ts_flows_sized(
            topology,
            self.flows as u32,
            self.frame_bytes(),
            self.wl_seed,
        )
    }

    /// The simulation configuration every oracle starts from: a short
    /// perfectly-synchronized run (fault and sync effects are opted into
    /// per oracle).
    #[must_use]
    pub fn base_config(&self) -> SimConfig {
        let mut config = SimConfig::paper_defaults();
        config.duration = SimDuration::from_millis(self.duration_ms);
        config.drain = SimDuration::from_millis(4);
        config.sync = SyncSetup::Perfect;
        config
    }
}

impl Shrink for ScenarioCase {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let mut push = |candidate: ScenarioCase| {
            let candidate = candidate.normalized();
            if candidate != *self && !out.contains(&candidate) {
                out.push(candidate);
            }
        };
        if self.topo != TopoKind::Linear {
            let mut c = self.clone();
            c.topo = TopoKind::Linear;
            push(c);
        }
        for s in shrink_u64(self.switches, TopoKind::Linear.min_switches()) {
            let mut c = self.clone();
            c.switches = s;
            push(c);
        }
        for h in shrink_u64(self.hosts, 2) {
            let mut c = self.clone();
            c.hosts = h;
            push(c);
        }
        for f in shrink_u64(self.flows, 1) {
            let mut c = self.clone();
            c.flows = f;
            push(c);
        }
        for i in shrink_u64(self.frame_idx, 0) {
            let mut c = self.clone();
            c.frame_idx = i;
            push(c);
        }
        for s in shrink_u64(self.wl_seed, 0) {
            let mut c = self.clone();
            c.wl_seed = s;
            push(c);
        }
        for d in shrink_u64(self.duration_ms, DURATION_MS.0) {
            let mut c = self.clone();
            c.duration_ms = d;
            push(c);
        }
        for m in shrink_u64(self.inflate_mask, 0) {
            let mut c = self.clone();
            c.inflate_mask = m;
            push(c);
        }
        out
    }
}

impl CaseCodec for ScenarioCase {
    fn to_fields(&self) -> Vec<(String, String)> {
        vec![
            ("topo".to_owned(), self.topo.as_str().to_owned()),
            ("switches".to_owned(), self.switches.to_string()),
            ("hosts".to_owned(), self.hosts.to_string()),
            ("flows".to_owned(), self.flows.to_string()),
            ("frame_idx".to_owned(), self.frame_idx.to_string()),
            ("wl_seed".to_owned(), format!("0x{:x}", self.wl_seed)),
            ("duration_ms".to_owned(), self.duration_ms.to_string()),
            ("inflate_mask".to_owned(), self.inflate_mask.to_string()),
        ]
    }

    fn from_fields(fields: &[(String, String)]) -> Result<Self, String> {
        let topo_raw = fields
            .iter()
            .find(|(k, _)| k == "topo")
            .map(|(_, v)| v.as_str())
            .ok_or("missing field \"topo\"")?;
        let case = ScenarioCase {
            topo: TopoKind::from_str(topo_raw)?,
            switches: field_u64(fields, "switches")?,
            hosts: field_u64(fields, "hosts")?,
            flows: field_u64(fields, "flows")?,
            frame_idx: field_u64(fields, "frame_idx")?,
            wl_seed: field_u64(fields, "wl_seed")?,
            duration_ms: field_u64(fields, "duration_ms")?,
            inflate_mask: field_u64(fields, "inflate_mask")?,
        };
        if case != case.clone().normalized() {
            return Err(format!("corpus case is not normalized: {case:?}"));
        }
        Ok(case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_build_real_inputs() {
        let mut rng = SplitMix64::seed_from_u64(42);
        for _ in 0..64 {
            let case = ScenarioCase::generate(&mut rng);
            assert_eq!(case, case.clone().normalized(), "generation normalizes");
            let topo = case.topology().expect("preset builds");
            assert_eq!(topo.hosts().len() as u64, case.hosts);
            let flows = case.flow_set(&topo).expect("workload builds");
            assert_eq!(flows.ts_count() as u64, case.flows);
        }
    }

    #[test]
    fn shrink_candidates_stay_valid_and_smaller() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..32 {
            let case = ScenarioCase::generate(&mut rng);
            for candidate in case.shrink_candidates() {
                assert_ne!(candidate, case);
                assert_eq!(candidate, candidate.clone().normalized());
                candidate.topology().expect("candidate preset builds");
            }
        }
    }

    #[test]
    fn greedy_shrink_terminates_at_the_floor() {
        // A failure that any case triggers must shrink to the global
        // floor: linear, 2 switches, 2 hosts, 1 flow.
        let mut rng = SplitMix64::seed_from_u64(99);
        let case = ScenarioCase::generate(&mut rng);
        let shrunk = crate::shrink::shrink_to_minimal(case, "always".into(), 10_000, |_| {
            Some("always".into())
        });
        let c = shrunk.case;
        assert_eq!(c.topo, TopoKind::Linear);
        assert_eq!(c.switches, 2);
        assert_eq!(c.hosts, 2);
        assert_eq!(c.flows, 1);
        assert_eq!(c.frame_idx, 0);
        assert_eq!(c.wl_seed, 0);
        assert_eq!(c.duration_ms, DURATION_MS.0);
        assert_eq!(c.inflate_mask, 0);
        assert!(c.shrink_candidates().is_empty(), "floor has no candidates");
    }

    #[test]
    fn cases_round_trip_through_the_codec() {
        let mut rng = SplitMix64::seed_from_u64(5);
        for _ in 0..16 {
            let case = ScenarioCase::generate(&mut rng);
            let back = ScenarioCase::from_fields(&case.to_fields()).expect("decodes");
            assert_eq!(back, case);
        }
        assert!(ScenarioCase::from_fields(&[("topo".to_owned(), "moebius".to_owned())]).is_err());
    }
}
