//! `tsn-verify` — the randomized differential-testing harness.
//!
//! A self-contained property-testing engine (no external crates): case
//! generation over [`tsn_types::SplitMix64`] ([`gen`]), greedy
//! component-wise minimization ([`shrink`]), a runner that persists every
//! shrunk failure into the committed regression corpus ([`runner`],
//! [`corpus`]) — plus the six cross-layer oracles that differentially
//! test the builder, the simulator and the HDL emitter against each
//! other ([`oracles`]) and the ported data-structure properties
//! ([`props`]).
//!
//! Entry points:
//!
//! * `cargo run -p tsn-verify --bin verify` — the CLI (`--smoke` for the
//!   CI budgeted run, `--oracle`/`--seed`/`--cases` to reproduce a
//!   reported failure exactly).
//! * `verify/corpus/*.case` — the committed corpus, replayed by the CLI
//!   and by CI on every run.

pub mod case;
pub mod corpus;
pub mod gen;
pub mod oracles;
pub mod props;
pub mod runner;
pub mod shrink;

pub use case::{ScenarioCase, TopoKind};
pub use corpus::{CaseCodec, CorpusEntry};
pub use gen::{Gen, Range};
pub use runner::{CaseFailure, PropertyReport, ReplayStats, Runner, Verdict};
pub use shrink::{shrink_to_minimal, Shrink, Shrunk};
