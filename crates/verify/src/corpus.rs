//! The committed regression corpus.
//!
//! Every failure the runner finds is persisted as one plain-text file
//! under `verify/corpus/` holding the oracle name, the case seed and the
//! shrunk case, and the corpus is replayed on every CI run: a case that
//! failed once is a regression test forever after its fix. Seed-pin
//! entries (no `case.*` fields) replay `cases` generated inputs from a
//! fixed master seed instead — that is how the pre-shrinker property
//! seeds from `tests/properties.rs` are preserved.
//!
//! The format is deliberately trivial — `key = value` lines, `#`
//! comments — so entries diff cleanly in review and need no JSON layer.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Conversion between a case and the corpus' flat `key = value` fields.
pub trait CaseCodec: Sized {
    /// The case as ordered `(key, value)` pairs.
    fn to_fields(&self) -> Vec<(String, String)>;

    /// Rebuilds a case from its fields.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing or malformed field.
    fn from_fields(fields: &[(String, String)]) -> Result<Self, String>;
}

/// Looks up one field and parses it as `u64` (decimal or `0x…` hex).
///
/// # Errors
///
/// Names the missing or malformed key.
pub fn field_u64(fields: &[(String, String)], key: &str) -> Result<u64, String> {
    let raw = fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field {key:?}"))?;
    parse_u64(raw).ok_or_else(|| format!("field {key:?}: {raw:?} is not an integer"))
}

fn parse_u64(raw: &str) -> Option<u64> {
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// One corpus entry: a shrunk failing case (with `fields`) or a seed pin
/// (`fields` empty, replaying `cases` generated inputs from `seed`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The oracle or property this entry belongs to.
    pub oracle: String,
    /// The case seed (shrunk entries) or master seed (seed pins).
    pub seed: u64,
    /// Generated cases to replay for seed pins; 1 for shrunk entries.
    pub cases: u64,
    /// Free-text provenance (the original failure message, typically).
    pub note: String,
    /// The shrunk case as `case.*` fields; empty for seed pins.
    pub fields: Vec<(String, String)>,
}

impl CorpusEntry {
    /// A seed-pin entry replaying `cases` inputs from `seed`.
    #[must_use]
    pub fn seed_pin(oracle: &str, seed: u64, cases: u64, note: &str) -> Self {
        CorpusEntry {
            oracle: oracle.to_owned(),
            seed,
            cases,
            note: note.to_owned(),
            fields: Vec::new(),
        }
    }

    /// A shrunk-case entry.
    #[must_use]
    pub fn shrunk_case(oracle: &str, seed: u64, note: &str, case: &impl CaseCodec) -> Self {
        CorpusEntry {
            oracle: oracle.to_owned(),
            seed,
            cases: 1,
            note: note.to_owned(),
            fields: case.to_fields(),
        }
    }

    /// Whether this is a seed pin (replay through the generator) rather
    /// than an explicit shrunk case.
    #[must_use]
    pub fn is_seed_pin(&self) -> bool {
        self.fields.is_empty()
    }

    /// Renders the entry in corpus file format.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("oracle = {}\n", self.oracle));
        out.push_str(&format!("seed = 0x{:x}\n", self.seed));
        out.push_str(&format!("cases = {}\n", self.cases));
        if !self.note.is_empty() {
            for line in self.note.lines() {
                out.push_str(&format!("# {line}\n"));
            }
        }
        for (key, value) in &self.fields {
            out.push_str(&format!("case.{key} = {value}\n"));
        }
        out
    }

    /// Parses an entry from corpus file format.
    ///
    /// # Errors
    ///
    /// A message naming the offending line.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut oracle = None;
        let mut seed = None;
        let mut cases = 1;
        let mut note = String::new();
        let mut fields = Vec::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                if !note.is_empty() {
                    note.push('\n');
                }
                note.push_str(comment.trim());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", number + 1))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "oracle" => oracle = Some(value.to_owned()),
                "seed" => {
                    seed = Some(
                        parse_u64(value)
                            .ok_or_else(|| format!("line {}: bad seed {value:?}", number + 1))?,
                    );
                }
                "cases" => {
                    cases = parse_u64(value)
                        .ok_or_else(|| format!("line {}: bad cases {value:?}", number + 1))?;
                }
                _ => {
                    let field = key
                        .strip_prefix("case.")
                        .ok_or_else(|| format!("line {}: unknown key {key:?}", number + 1))?;
                    fields.push((field.to_owned(), value.to_owned()));
                }
            }
        }
        Ok(CorpusEntry {
            oracle: oracle.ok_or("missing `oracle`")?,
            seed: seed.ok_or("missing `seed`")?,
            cases,
            note,
            fields,
        })
    }

    /// The canonical file name for this entry.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.case", self.oracle, self.seed)
    }
}

/// Loads every `*.case` file under `dir`, sorted by file name so replay
/// order is stable across platforms. A missing directory is an empty
/// corpus, not an error.
///
/// # Errors
///
/// I/O failures and parse errors, prefixed with the offending path.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    if !dir.exists() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "case"))
        .collect();
    paths.sort();
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let entry = CorpusEntry::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        entries.push((path, entry));
    }
    Ok(entries)
}

/// Writes `entry` into `dir` (created if needed) under its canonical
/// name, returning the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn store(dir: &Path, entry: &CorpusEntry) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(entry.file_name());
    fs::write(&path, entry.render())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: u64,
        b: u64,
    }

    impl CaseCodec for Toy {
        fn to_fields(&self) -> Vec<(String, String)> {
            vec![
                ("a".to_owned(), self.a.to_string()),
                ("b".to_owned(), self.b.to_string()),
            ]
        }

        fn from_fields(fields: &[(String, String)]) -> Result<Self, String> {
            Ok(Toy {
                a: field_u64(fields, "a")?,
                b: field_u64(fields, "b")?,
            })
        }
    }

    #[test]
    fn entries_round_trip_through_text() {
        let entry = CorpusEntry::shrunk_case(
            "toy-oracle",
            0xdead_beef,
            "a + b overflowed\nsecond line",
            &Toy { a: 3, b: 4 },
        );
        let parsed = CorpusEntry::parse(&entry.render()).expect("round-trips");
        assert_eq!(parsed, entry);
        let toy = Toy::from_fields(&parsed.fields).expect("decodes");
        assert_eq!((toy.a, toy.b), (3, 4));

        let pin = CorpusEntry::seed_pin("toy-oracle", 0x1de, 256, "legacy seed");
        let parsed = CorpusEntry::parse(&pin.render()).expect("round-trips");
        assert!(parsed.is_seed_pin());
        assert_eq!(parsed.cases, 256);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(CorpusEntry::parse("oracle = x\nseed = zzz").is_err());
        assert!(CorpusEntry::parse("oracle = x\nnonsense").is_err());
        assert!(CorpusEntry::parse("seed = 1").is_err(), "oracle required");
        assert!(CorpusEntry::parse("oracle = x").is_err(), "seed required");
        assert!(CorpusEntry::parse("oracle = x\nseed = 1\nweird = 2").is_err());
    }

    #[test]
    fn store_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("tsn-verify-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let entry = CorpusEntry::shrunk_case("o1", 7, "note", &Toy { a: 1, b: 2 });
        let pin = CorpusEntry::seed_pin("o2", 9, 64, "");
        store(&dir, &entry).expect("writes");
        store(&dir, &pin).expect("writes");
        let loaded = load_dir(&dir).expect("loads");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].1, entry, "sorted by file name: o1 first");
        assert_eq!(loaded[1].1, pin);
        let _ = fs::remove_dir_all(&dir);
        assert!(load_dir(&dir).expect("missing dir is empty").is_empty());
    }
}
