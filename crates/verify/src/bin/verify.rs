//! The `verify` CLI: replay the committed corpus, then run every oracle
//! and ported property on fresh random cases, shrinking and persisting
//! any failure.
//!
//! ```text
//! verify [--smoke] [--oracle NAME] [--seed N] [--cases N] [--corpus DIR]
//! ```
//!
//! * `--smoke` — budget the live runs to `TSN_VERIFY_MS` milliseconds of
//!   wall clock (default 4000); cases that do not fit are skipped, never
//!   silently: the per-oracle table prints the skip counts.
//! * `--oracle NAME` — run (and replay) only one oracle or property.
//! * `--seed N` — master seed; case 0 uses it exactly, so
//!   `--oracle X --seed <failing-seed> --cases 1` reproduces a reported
//!   failure.
//! * `--cases N` — override the per-oracle case count.
//!
//! Exit codes: 0 all green, 1 property failures or corpus regressions,
//! 2 usage / corpus-format errors.

use std::fmt::Debug;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use tsn_types::SplitMix64;
use tsn_verify::case::ScenarioCase;
use tsn_verify::corpus::{self, CaseCodec, CorpusEntry};
use tsn_verify::oracles::{self, ORACLES};
use tsn_verify::props::{self, PROPERTIES};
use tsn_verify::runner::{PropertyReport, Runner, Verdict};
use tsn_verify::shrink::Shrink;

/// Live cases per cross-layer oracle (simulations; the expensive kind).
const ORACLE_CASES: u64 = 20;
/// Live cases per ported data-structure property (microseconds each).
const PROP_CASES: u64 = 128;
/// Smoke-mode reductions.
const SMOKE_ORACLE_CASES: u64 = 8;
const SMOKE_PROP_CASES: u64 = 64;
/// Default smoke budget (`TSN_VERIFY_MS` overrides).
const DEFAULT_BUDGET_MS: u64 = 4000;
/// Default master seed of the live runs.
const DEFAULT_SEED: u64 = 0x7e57;

struct Options {
    smoke: bool,
    only: Option<String>,
    seed: u64,
    cases: Option<u64>,
    corpus: PathBuf,
}

fn default_corpus_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("TSN_VERIFY_CORPUS") {
        return PathBuf::from(dir);
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../verify/corpus"))
}

fn parse_u64(raw: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    parsed.map_err(|_| format!("not an integer: {raw:?}"))
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        smoke: false,
        only: None,
        seed: DEFAULT_SEED,
        cases: None,
        corpus: default_corpus_dir(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--oracle" => options.only = Some(value("--oracle")?),
            "--seed" => options.seed = parse_u64(&value("--seed")?)?,
            "--cases" => options.cases = Some(parse_u64(&value("--cases")?)?),
            "--corpus" => options.corpus = PathBuf::from(value("--corpus")?),
            "--help" | "-h" => {
                println!("verify [--smoke] [--oracle NAME] [--seed N] [--cases N] [--corpus DIR]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(options)
}

fn known_name(name: &str) -> bool {
    oracles::oracle_by_name(name).is_some() || props::property_by_name(name).is_some()
}

/// Replays one corpus entry against whichever registry owns its oracle.
fn replay_entry(entry: &CorpusEntry) -> Result<(u64, u64), String> {
    if let Some(oracle) = oracles::oracle_by_name(&entry.oracle) {
        let stats = Runner::replay(entry, &ScenarioCase::generate, oracle)?;
        return Ok((stats.executed, stats.discarded));
    }
    if let Some(prop) = props::property_by_name(&entry.oracle) {
        let stats = Runner::replay(
            entry,
            &|rng: &mut SplitMix64| prop.spec.generate(rng),
            |case| (prop.oracle)(case),
        )?;
        return Ok((stats.executed, stats.discarded));
    }
    Err(format!(
        "{}: corpus entry names an unknown oracle",
        entry.oracle
    ))
}

fn print_report<C>(report: &PropertyReport<C>) -> bool
where
    C: Debug,
{
    let status = if report.passed() { "pass" } else { "FAIL" };
    println!(
        "  {:<22} {status}  executed {:>4}  discarded {:>3}  skipped {:>3}",
        report.name, report.executed, report.discarded, report.skipped
    );
    let Some(failure) = &report.failure else {
        return true;
    };
    println!("    seed: 0x{:x}", failure.seed);
    println!("    message: {}", failure.shrunk.message);
    println!("    original: {:?}", failure.original);
    println!(
        "    shrunk ({} steps, {} oracle calls): {:?}",
        failure.shrunk.steps, failure.shrunk.attempts, failure.shrunk.case
    );
    println!(
        "    reproduce: cargo run -q --release -p tsn-verify --bin verify -- \
         --oracle {} --seed 0x{:x} --cases 1",
        report.name, failure.seed
    );
    false
}

fn live_runner(options: &Options, cases: u64, deadline: Option<Instant>) -> Runner {
    let mut runner = Runner::new(options.cases.unwrap_or(cases), options.seed);
    runner.deadline = deadline;
    runner.corpus_dir = Some(options.corpus.clone());
    runner
}

fn run_live<C, G>(runner: &Runner, name: &str, gen: &G, oracle: impl FnMut(&C) -> Verdict) -> bool
where
    C: Shrink + CaseCodec + Clone + Debug,
    G: tsn_verify::Gen<Output = C>,
{
    let report = runner.run(name, gen, oracle);
    print_report(&report)
}

fn main() {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("verify: {message}");
            std::process::exit(2);
        }
    };
    if let Some(name) = &options.only {
        if !known_name(name) {
            eprintln!("verify: unknown oracle {name:?}");
            eprintln!(
                "known: {}",
                ORACLES
                    .iter()
                    .map(|(n, _)| *n)
                    .chain(PROPERTIES.iter().map(|p| p.name))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            std::process::exit(2);
        }
    }

    let mut failed = false;

    // Phase 1: the committed regression corpus, replayed in full (never
    // time-budgeted — these are the regression tests).
    match corpus::load_dir(&options.corpus) {
        Ok(entries) => {
            let mut replayed = 0u64;
            let mut executed = 0u64;
            let mut discarded = 0u64;
            println!(
                "corpus: {} ({} entries)",
                options.corpus.display(),
                entries.len()
            );
            for (path, entry) in &entries {
                if options.only.as_deref().is_some_and(|o| o != entry.oracle) {
                    continue;
                }
                replayed += 1;
                match replay_entry(entry) {
                    Ok((e, d)) => {
                        executed += e;
                        discarded += d;
                    }
                    Err(message) => {
                        failed = true;
                        println!("  FAIL {}: {message}", path.display());
                    }
                }
            }
            println!(
                "  replayed {replayed} entries: {executed} cases executed, \
                 {discarded} discarded"
            );
        }
        Err(message) => {
            eprintln!("verify: corpus unreadable: {message}");
            std::process::exit(2);
        }
    }

    // Phase 2: live randomized runs, shrinking + persisting failures.
    let deadline = options.smoke.then(|| {
        let budget_ms = std::env::var("TSN_VERIFY_MS")
            .ok()
            .and_then(|raw| raw.parse().ok())
            .unwrap_or(DEFAULT_BUDGET_MS);
        println!("smoke budget: {budget_ms} ms (TSN_VERIFY_MS)");
        Instant::now() + Duration::from_millis(budget_ms)
    });
    let (oracle_cases, prop_cases) = if options.smoke {
        (SMOKE_ORACLE_CASES, SMOKE_PROP_CASES)
    } else {
        (ORACLE_CASES, PROP_CASES)
    };

    println!("cross-layer oracles (seed 0x{:x}):", options.seed);
    let runner = live_runner(&options, oracle_cases, deadline);
    for (name, oracle) in ORACLES {
        if options.only.as_deref().is_some_and(|o| o != *name) {
            continue;
        }
        failed |= !run_live(&runner, name, &ScenarioCase::generate, *oracle);
    }

    println!("ported properties (seed 0x{:x}):", options.seed);
    let runner = live_runner(&options, prop_cases, deadline);
    for prop in PROPERTIES {
        if options.only.as_deref().is_some_and(|o| o != prop.name) {
            continue;
        }
        failed |= !run_live(
            &runner,
            prop.name,
            &|rng: &mut SplitMix64| prop.spec.generate(rng),
            |case| (prop.oracle)(case),
        );
    }

    if failed {
        println!(
            "verify: FAILED (shrunk cases persisted to {})",
            options.corpus.display()
        );
        std::process::exit(1);
    }
    println!("verify: all oracles green");
}
