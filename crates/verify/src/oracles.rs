//! The nine cross-layer differential oracles.
//!
//! Each oracle consumes a random [`ScenarioCase`] and cross-checks two
//! independent layers of the stack against each other, so neither layer's
//! own implementation is trusted as ground truth:
//!
//! 1. [`sim_vs_analytic`] — delivered CQF latencies vs. Eq. (1) bounds.
//! 2. [`qos_invariance`] — metamorphic: over-provisioning resources must
//!    not change a derived scenario's report at all.
//! 3. [`backend_equivalence`] — calendar-queue vs. binary-heap event
//!    cores on the same scenario.
//! 4. [`hdl_fixpoint`] — customize → emit → parse → re-emit must be
//!    byte-stable and parameter-consistent with the resource config.
//! 5. [`fault_monotonicity`] — longer link outages never reduce the
//!    deadline-failure count.
//! 6. [`shard_equivalence`] — the sharded conservative-parallel engine
//!    vs. the serial event loop on the same scenario (fault-free and
//!    faulted), for a case-derived shard count in `1..=4`.
//! 7. [`hdl_cost_agreement`] — BRAM/register cost elaborated from the
//!    *parsed* Verilog must agree bit-exactly with `tsn_resource`'s
//!    config-only accounting (and the emitted bundle must lint clean)
//!    for randomized `ResourceConfig`s.
//! 8. [`dse_optimality`] — every feasible answer of the design-space
//!    search must survive `tsn_dse::check_optimality`: its confirming
//!    simulation meets the QoS targets *and* stepping any monotone knob
//!    down one notch makes a bound or the simulation fail.
//! 9. [`reconfigure_equivalence`] — applying a random [`ConfigDelta`] to
//!    a resident [`NetworkTemplate`] must produce a report byte-identical
//!    (including the `Debug` rendering) to building the delta'd
//!    configuration from scratch — the incremental-reconfiguration path
//!    vs. the full-rebuild path.
//!
//! Verdict policy: anything that stops a case *before* a validated
//! configuration exists (preset/workload/planning infeasibility on random
//! inputs) is a [`Verdict::Discard`]; once derivation or planning
//! succeeded, every downstream error is a [`Verdict::Fail`].

use std::sync::Arc;
use tsn_builder::cqf::latency_bounds;
use tsn_builder::derive::{derive_parameters, DeriveOptions, DerivedConfig};
use tsn_builder::requirements::AppRequirements;
use tsn_hdl::ParsedModule;
use tsn_resource::config::EntryWidths;
use tsn_resource::ResourceConfig;
use tsn_sim::network::{ConfigDelta, Network, NetworkTemplate};
use tsn_sim::report::SimReport;
use tsn_sim::{EventQueueKind, FaultConfig, LinkFaultProfile, LinkOutage};
use tsn_topology::{LinkId, Topology};
use tsn_types::FlowMap;
use tsn_types::{
    FlowId, FlowSet, SimDuration, SimTime, SplitMix64, TsFlowSpec, TsnError, TsnResult,
};

use crate::case::ScenarioCase;
use crate::runner::Verdict;

/// An oracle: a named check over [`ScenarioCase`]s.
pub type Oracle = fn(&ScenarioCase) -> Verdict;

/// Every oracle, with its corpus/CLI name.
pub const ORACLES: &[(&str, Oracle)] = &[
    ("sim-vs-analytic", sim_vs_analytic),
    ("qos-invariance", qos_invariance),
    ("backend-equivalence", backend_equivalence),
    ("hdl-fixpoint", hdl_fixpoint),
    ("fault-monotonicity", fault_monotonicity),
    ("shard-equivalence", shard_equivalence),
    ("hdl-cost-agreement", hdl_cost_agreement),
    ("dse-optimality", dse_optimality),
    ("reconfigure-equivalence", reconfigure_equivalence),
];

/// Looks an oracle up by name.
#[must_use]
pub fn oracle_by_name(name: &str) -> Option<Oracle> {
    ORACLES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, oracle)| *oracle)
}

/// Builds topology, flows and the full TSN-Builder derivation for a case.
/// Any error here happens before a validated configuration exists, so it
/// is a discard, never a failure.
pub fn prepare(case: &ScenarioCase) -> Result<(Topology, FlowSet, DerivedConfig), Verdict> {
    let discard = |stage: &str, e: TsnError| Verdict::Discard(format!("{stage}: {e}"));
    let topology = case.topology().map_err(|e| discard("preset", e))?;
    let flows = case
        .flow_set(&topology)
        .map_err(|e| discard("workload", e))?;
    let requirements =
        AppRequirements::new(topology.clone(), flows.clone(), SimDuration::from_nanos(50))
            .map_err(|e| discard("requirements", e))?;
    let derived = derive_parameters(&requirements, &DeriveOptions::paper())
        .map_err(|e| discard("derivation", e))?;
    Ok((topology, flows, derived))
}

/// Runs the derived configuration and returns its report. Build or run
/// errors after a successful derivation are failures.
pub fn run_derived(
    case: &ScenarioCase,
    topology: &Topology,
    flows: &FlowSet,
    derived: &DerivedConfig,
    resources: &ResourceConfig,
    queue: EventQueueKind,
) -> Result<SimReport, Verdict> {
    let mut config = case.base_config();
    config.slot = derived.cqf.slot;
    config.resources = resources.clone();
    config.aggregate_switch_tbl = derived.aggregate_switch_tbl;
    config.event_queue = queue;
    let network = Network::build(
        topology.clone(),
        flows.clone(),
        &derived.itp.offsets,
        config,
    )
    .map_err(|e| Verdict::Fail(format!("post-derive network build failed: {e}")))?;
    Ok(network.run())
}

/// Oracle 1 — simulator vs. analytic model: on a successfully derived
/// scenario, every delivered TS frame's latency lies inside Eq. (1)'s
/// `[(hop−1)·slot, (hop+1)·slot]`, no TS frame is lost, and a derived
/// (fault-free) configuration never loses frames to capacity.
pub fn sim_vs_analytic(case: &ScenarioCase) -> Verdict {
    let (topology, flows, derived) = match prepare(case) {
        Ok(x) => x,
        Err(v) => return v,
    };
    let report = match run_derived(
        case,
        &topology,
        &flows,
        &derived,
        &derived.resources,
        EventQueueKind::Calendar,
    ) {
        Ok(r) => r,
        Err(v) => return v,
    };
    if report.ts_lost() != 0 {
        return Verdict::Fail(format!(
            "derived config lost {} TS frames (must be 0)",
            report.ts_lost()
        ));
    }
    if report.degradation.frames_lost_to_capacity != 0 {
        return Verdict::Fail(format!(
            "derived config reported {} capacity losses (must be 0)",
            report.degradation.frames_lost_to_capacity
        ));
    }
    for flow in flows.ts_flows() {
        let route = match topology.route(flow.src(), flow.dst()) {
            Ok(r) => r,
            Err(e) => {
                return Verdict::Fail(format!("{}: routing failed post-derive: {e}", flow.id()))
            }
        };
        let (lo, hi) = latency_bounds(route.switch_hops() as u64, derived.cqf.slot);
        let Some(record) = report.analyzer.flow(flow.id()) else {
            continue;
        };
        if record.latency.count() == 0 {
            continue;
        }
        let (min, max) = (record.latency.min(), record.latency.max());
        if min.is_some_and(|m| m < lo) {
            return Verdict::Fail(format!(
                "{}: latency {} under CQF lower bound {lo} (hops {}, slot {})",
                flow.id(),
                min.unwrap_or(SimDuration::ZERO),
                route.switch_hops(),
                derived.cqf.slot
            ));
        }
        if max.is_some_and(|m| m > hi) {
            return Verdict::Fail(format!(
                "{}: latency {} over CQF upper bound {hi} (hops {}, slot {})",
                flow.id(),
                max.unwrap_or(SimDuration::ZERO),
                route.switch_hops(),
                derived.cqf.slot
            ));
        }
    }
    Verdict::Pass
}

/// Which resource field each bit of `ScenarioCase::inflate_mask` inflates.
pub const INFLATABLE_FIELDS: &[&str] = &[
    "switch tables",
    "class table",
    "meter table",
    "queue depth",
    "buffer pool",
    "gate table",
];

/// Over-provisions `base` according to `mask` (one bit per entry of
/// [`INFLATABLE_FIELDS`]). Fields that govern *behaviour* (queue count,
/// port count, the GCL program) are deliberately not touched — only
/// capacities grow, so a correct simulator must not care.
///
/// # Errors
///
/// Propagates `ResourceConfig` validation (inflating a valid config must
/// never trip it; the metamorphic oracle treats an error as a failure).
pub fn inflate(base: &ResourceConfig, mask: u64) -> TsnResult<ResourceConfig> {
    let grow = |v: u32| v.saturating_mul(2).max(16);
    let mut unicast = base.unicast_size();
    let mut multicast = base.multicast_size();
    let mut class = base.class_size();
    let mut meter = base.meter_size();
    let mut depth = base.queue_depth();
    let mut buffers = base.buffer_num();
    let mut gate = base.gate_size();
    if mask & 0x01 != 0 {
        unicast = grow(unicast);
        multicast = multicast.saturating_add(16);
    }
    if mask & 0x02 != 0 {
        class = grow(class);
    }
    if mask & 0x04 != 0 {
        meter = grow(meter);
    }
    if mask & 0x08 != 0 {
        depth = depth.saturating_add(4);
    }
    if mask & 0x10 != 0 {
        buffers = grow(buffers);
    }
    if mask & 0x20 != 0 {
        gate = grow(gate);
    }
    let mut inflated = ResourceConfig::new();
    inflated
        .set_switch_tbl(unicast, multicast)?
        .set_class_tbl(class)?
        .set_meter_tbl(meter)?
        .set_gate_tbl(gate, base.queue_num(), base.port_num())?
        .set_cbs_tbl(base.cbs_map_size(), base.cbs_size(), base.port_num())?
        .set_queues(depth, base.queue_num(), base.port_num())?
        .set_buffers(buffers, base.port_num())?;
    Ok(inflated)
}

/// Oracle 2 — metamorphic QoS invariance: a derived configuration has
/// headroom everywhere (the derivation sized it to the workload), so
/// inflating pure *capacities* must leave the whole simulation report —
/// latency, jitter, loss, counters — byte-identical.
pub fn qos_invariance(case: &ScenarioCase) -> Verdict {
    let (topology, flows, derived) = match prepare(case) {
        Ok(x) => x,
        Err(v) => return v,
    };
    let inflated = match inflate(&derived.resources, case.inflate_mask) {
        Ok(r) => r,
        Err(e) => return Verdict::Fail(format!("inflating a derived config failed: {e}")),
    };
    if inflated == derived.resources {
        return Verdict::Pass;
    }
    let baseline = match run_derived(
        case,
        &topology,
        &flows,
        &derived,
        &derived.resources,
        EventQueueKind::Calendar,
    ) {
        Ok(r) => r,
        Err(v) => return v,
    };
    let grown = match run_derived(
        case,
        &topology,
        &flows,
        &derived,
        &inflated,
        EventQueueKind::Calendar,
    ) {
        Ok(r) => r,
        Err(v) => return v,
    };
    if baseline != grown {
        return Verdict::Fail(format!(
            "inflating capacities (mask 0x{:x}) changed the report: \
             baseline [{}] vs inflated [{}]",
            case.inflate_mask, baseline, grown
        ));
    }
    Verdict::Pass
}

/// Oracle 3 — event-core backend equivalence: the calendar queue and the
/// reference binary heap realize the same `(time, seq)` total order, so
/// the same scenario must produce byte-identical reports on both.
pub fn backend_equivalence(case: &ScenarioCase) -> Verdict {
    let (topology, flows, derived) = match prepare(case) {
        Ok(x) => x,
        Err(v) => return v,
    };
    let mut reports = Vec::new();
    for queue in [EventQueueKind::Calendar, EventQueueKind::BinaryHeap] {
        match run_derived(case, &topology, &flows, &derived, &derived.resources, queue) {
            Ok(r) => reports.push(r),
            Err(v) => return v,
        }
    }
    if reports[0] != reports[1] {
        return Verdict::Fail(format!(
            "event-queue backends disagree: calendar [{}] vs heap [{}]",
            reports[0], reports[1]
        ));
    }
    Verdict::Pass
}

fn module<'a>(modules: &'a [ParsedModule], name: &str) -> Option<&'a ParsedModule> {
    modules.iter().find(|m| m.name == name)
}

fn expect_param(m: &ParsedModule, param: &str, want: u32) -> Result<(), String> {
    let got = m
        .params
        .iter()
        .find(|(name, _)| name == param)
        .map(|(_, value)| value.as_str())
        .ok_or_else(|| format!("{}: parameter {param} missing", m.name))?;
    if got.parse::<u32>() != Ok(want) {
        return Err(format!(
            "{}: parameter {param} = {got}, expected {want}",
            m.name
        ));
    }
    Ok(())
}

/// Oracle 4 — HDL fixpoint: customizing a derived configuration into
/// Verilog must produce sources that lint clean ([`tsn_hdl::check_source`]),
/// parse back ([`tsn_hdl::parse_modules`]) with parameters matching the
/// resource config, and re-emit byte-identically.
pub fn hdl_fixpoint(case: &ScenarioCase) -> Verdict {
    let (_, _, derived) = match prepare(case) {
        Ok(x) => x,
        Err(v) => return v,
    };
    let r = &derived.resources;
    let bundle = match tsn_hdl::generate(r) {
        Ok(b) => b,
        Err(e) => return Verdict::Fail(format!("emission failed on a derived config: {e}")),
    };
    let mut modules = Vec::new();
    for (name, source) in bundle.files() {
        if let Err(e) = tsn_hdl::check_source(source) {
            return Verdict::Fail(format!("{name}: emitted source fails lint: {e}"));
        }
        match tsn_hdl::parse_modules(source) {
            Ok(parsed) => modules.extend(parsed),
            Err(e) => return Verdict::Fail(format!("{name}: emitted source fails to parse: {e}")),
        }
    }
    let checks: &[(&str, &str, u32)] = &[
        ("tsn_switch_top", "PORT_NUM", r.port_num().max(1)),
        ("tsn_switch_top", "QUEUE_NUM", r.queue_num()),
        ("gate_ctrl", "GCL_DEPTH", r.gate_size().max(1)),
        ("gate_ctrl", "QUEUE_NUM", r.queue_num().max(1)),
        ("gate_ctrl", "QUEUE_DEPTH", r.queue_depth().max(1)),
        ("egress_sched", "QUEUE_NUM", r.queue_num().max(1)),
        ("egress_sched", "CBS_DEPTH", r.cbs_size().max(1)),
        ("packet_switch", "UNICAST_DEPTH", r.unicast_size().max(1)),
        (
            "packet_switch",
            "MULTICAST_DEPTH",
            r.multicast_size().max(1),
        ),
        ("ingress_filter", "CLASS_DEPTH", r.class_size().max(1)),
        ("ingress_filter", "METER_DEPTH", r.meter_size().max(1)),
    ];
    for &(module_name, param, want) in checks {
        let Some(m) = module(&modules, module_name) else {
            return Verdict::Fail(format!("emitted bundle lacks module {module_name}"));
        };
        if let Err(e) = expect_param(m, param, want) {
            return Verdict::Fail(e);
        }
    }
    match tsn_hdl::generate(r) {
        Ok(again) if again.files() == bundle.files() => Verdict::Pass,
        Ok(_) => Verdict::Fail("re-emission is not byte-stable".into()),
        Err(e) => Verdict::Fail(format!("re-emission failed: {e}")),
    }
}

/// Fault-intensity levels the monotonicity oracle sweeps: level `k`
/// keeps the first inter-switch link down for `k × 3 ms` starting at
/// 1 ms, so each level's outage window strictly contains the previous
/// one's.
pub const FAULT_LEVELS: u64 = 4;

fn fault_flows(topology: &Topology, count: u64) -> TsnResult<FlowSet> {
    // 1 ms period/deadline so every outage window overlaps many frames
    // (the IEC 60802 10 ms period would let short windows fall between
    // injections and make every level trivially zero).
    let hosts = topology.hosts();
    let mut flows = FlowSet::new();
    for id in 0..count {
        let src = hosts[id as usize % hosts.len()];
        let dst = hosts[(id as usize + 1) % hosts.len()];
        flows.push(
            TsFlowSpec::new(
                FlowId::new(id as u32),
                src,
                dst,
                SimDuration::from_millis(1),
                SimDuration::from_millis(1),
                64,
            )?
            .into(),
        );
    }
    Ok(flows)
}

/// Oracle 5 — fault monotonicity: with a deterministic outage timeline
/// (no stochastic wire faults, so every level is exactly reproducible),
/// widening the outage window never decreases the deadline-failure count
/// (TS deadline misses + TS frames lost).
pub fn fault_monotonicity(case: &ScenarioCase) -> Verdict {
    let discard = |stage: &str, e: TsnError| Verdict::Discard(format!("{stage}: {e}"));
    let topology = match case.topology() {
        Ok(t) => t,
        Err(e) => return discard("preset", e),
    };
    let flows = match fault_flows(&topology, case.flows) {
        Ok(f) => f,
        Err(e) => return discard("workload", e),
    };
    let requirements =
        match AppRequirements::new(topology.clone(), flows.clone(), SimDuration::from_nanos(50)) {
            Ok(r) => r,
            Err(e) => return discard("requirements", e),
        };
    let derived = match derive_parameters(&requirements, &DeriveOptions::paper()) {
        Ok(d) => d,
        Err(e) => return discard("derivation", e),
    };

    let mut failures = Vec::new();
    for level in 0..FAULT_LEVELS {
        let mut config = case.base_config();
        config.slot = derived.cqf.slot;
        config.resources = derived.resources.clone();
        config.aggregate_switch_tbl = derived.aggregate_switch_tbl;
        if level > 0 {
            config.faults = FaultConfig {
                seed: case.wl_seed,
                outages: vec![LinkOutage {
                    link: LinkId::new(0),
                    from: SimTime::from_millis(1),
                    until: SimTime::from_millis(1 + 3 * level),
                }],
                ..FaultConfig::none()
            };
        }
        let report = match Network::build(
            topology.clone(),
            flows.clone(),
            &derived.itp.offsets,
            config,
        ) {
            Ok(network) => network.run(),
            Err(e) => return Verdict::Fail(format!("level {level}: network build failed: {e}")),
        };
        failures.push(report.ts_deadline_misses() + report.ts_lost());
    }
    for level in 1..failures.len() {
        if failures[level] < failures[level - 1] {
            return Verdict::Fail(format!(
                "widening the outage reduced deadline failures: {failures:?} \
                 (level {level} < level {})",
                level - 1
            ));
        }
    }
    Verdict::Pass
}

/// Oracle 6 — shard equivalence: the conservative-parallel engine
/// (`SimConfig::shards > 1`) must produce a report byte-identical to the
/// serial event loop on the same scenario, including the `Debug`
/// rendering (every f64 bit pattern, every counter, the scheduler
/// high-water). The shard count (`1..=4`) and whether a deterministic
/// outage plus stochastic wire faults are layered on are both derived
/// from the case's workload seed, so the random sweep covers fault-free
/// and faulted runs in every backend.
pub fn shard_equivalence(case: &ScenarioCase) -> Verdict {
    let (topology, flows, derived) = match prepare(case) {
        Ok(x) => x,
        Err(v) => return v,
    };
    let shards = 1 + (case.wl_seed % 4) as usize;
    let faulted = (case.wl_seed >> 2) & 1 == 1;
    let configure = |shards: usize| {
        let mut config = case.base_config();
        config.slot = derived.cqf.slot;
        config.resources = derived.resources.clone();
        config.aggregate_switch_tbl = derived.aggregate_switch_tbl;
        config.shards = shards;
        if faulted {
            config.faults = FaultConfig {
                seed: case.wl_seed,
                outages: vec![LinkOutage {
                    link: LinkId::new(0),
                    from: SimTime::from_millis(1),
                    until: SimTime::from_millis(3),
                }],
                wire: LinkFaultProfile {
                    loss_prob: 0.005,
                    corrupt_prob: 0.005,
                },
                ..FaultConfig::none()
            };
        }
        config
    };
    let mut reports = Vec::new();
    for n in [1, shards] {
        match Network::build(
            topology.clone(),
            flows.clone(),
            &derived.itp.offsets,
            configure(n),
        ) {
            Ok(network) => reports.push(network.run()),
            Err(e) => {
                return Verdict::Fail(format!(
                    "post-derive network build failed (shards={n}): {e}"
                ))
            }
        }
    }
    if reports[0] != reports[1] || format!("{:?}", reports[0]) != format!("{:?}", reports[1]) {
        return Verdict::Fail(format!(
            "sharded engine diverged from serial (shards={shards}, faulted={faulted}): \
             serial [{}] vs sharded [{}]",
            reports[0], reports[1]
        ));
    }
    Verdict::Pass
}

/// How many randomized resource configurations [`hdl_cost_agreement`]
/// derives and checks per case.
pub const HDL_COST_CONFIGS_PER_CASE: usize = 8;

/// Draws a random but always-valid [`ResourceConfig`] spanning the whole
/// customization domain of Table II: table depths from empty to beyond
/// the commercial baseline, 1–4 ports, 1–12 queues, optional zero-CBS
/// ports and (one config in four) non-paper entry widths.
fn random_resource_config(rng: &mut SplitMix64) -> TsnResult<ResourceConfig> {
    let ports = rng.gen_range_in(1, 5) as u32;
    let queues = rng.gen_range_in(1, 13) as u32;
    let mut unicast = rng.gen_range(4097) as u32;
    let multicast = if rng.gen_range(2) == 0 {
        0
    } else {
        rng.gen_range_in(1, 1025) as u32
    };
    if unicast == 0 && multicast == 0 {
        unicast = 1; // the switch table rejects the fully-empty pair
    }
    let (cbs_map, cbs) = if rng.gen_range(4) == 0 {
        (0, 0) // ports without credit-based shaping
    } else {
        (
            rng.gen_range_in(1, 17) as u32,
            rng.gen_range_in(1, 17) as u32,
        )
    };
    let mut cfg = ResourceConfig::new();
    cfg.set_switch_tbl(unicast, multicast)?
        .set_class_tbl(rng.gen_range_in(1, 4097) as u32)?
        .set_meter_tbl(rng.gen_range_in(1, 2049) as u32)?
        .set_gate_tbl(rng.gen_range_in(1, 513) as u32, queues, ports)?
        .set_cbs_tbl(cbs_map, cbs, ports)?
        .set_queues(rng.gen_range_in(1, 65) as u32, queues, ports)?
        .set_buffers(rng.gen_range_in(1, 257) as u32, ports)?;
    if rng.gen_range(4) == 0 {
        let mut width = |hi: u64| rng.gen_range_in(1, hi) as u32;
        cfg.set_widths(EntryWidths {
            switch_tbl_bits: width(129),
            class_tbl_bits: width(129),
            meter_tbl_bits: width(129),
            gate_tbl_bits: width(129),
            cbs_map_bits: width(129),
            cbs_tbl_bits: width(129),
            queue_meta_bits: width(129),
        });
    }
    Ok(cfg)
}

/// Oracle 7 — HDL cost agreement: for [`HDL_COST_CONFIGS_PER_CASE`]
/// randomized resource configurations per case, the emitted Verilog must
/// parse, lint clean ([`tsn_hdl::lint_modules`]), and elaborate
/// ([`tsn_hdl::check_agreement`]) to the exact memory map, BRAM18/36
/// blocks, table bits under every [`tsn_resource::AllocationPolicy`] and
/// register count that `tsn_resource::rtl` predicts from the config
/// alone. Every drawn config is valid by construction, so this oracle
/// never discards.
pub fn hdl_cost_agreement(case: &ScenarioCase) -> Verdict {
    // Decorrelate from the oracles that feed `wl_seed` straight into the
    // workload generator so the two sweeps explore independent corners.
    let mut rng = SplitMix64::seed_from_u64(case.wl_seed ^ 0x4844_4c43_4f53_5421);
    for i in 0..HDL_COST_CONFIGS_PER_CASE {
        let cfg = match random_resource_config(&mut rng) {
            Ok(c) => c,
            Err(e) => {
                return Verdict::Fail(format!(
                    "config {i}: generator left its own valid domain: {e}"
                ))
            }
        };
        let bundle = match tsn_hdl::generate(&cfg) {
            Ok(b) => b,
            Err(e) => return Verdict::Fail(format!("config {i}: emission failed: {e}")),
        };
        let modules = match tsn_hdl::parse_modules(&bundle.concatenated()) {
            Ok(m) => m,
            Err(e) => {
                return Verdict::Fail(format!("config {i}: emitted bundle fails to parse: {e}"))
            }
        };
        let findings = tsn_hdl::lint_modules(&modules);
        if !findings.is_empty() {
            return Verdict::Fail(format!(
                "config {i}: emitted bundle has {} lint finding(s), first: {}",
                findings.len(),
                findings[0]
            ));
        }
        if let Err(e) = tsn_hdl::check_agreement(&cfg, &modules) {
            return Verdict::Fail(format!(
                "config {i}: parsed-HDL cost disagrees with tsn-resource: {e}"
            ));
        }
    }
    Verdict::Pass
}

/// Derives a [`tsn_dse::QosQuery`] from a case: the case's topology and
/// workload knobs, QoS targets drawn from a seed-decorrelated stream
/// (deadlines across the feasible-to-tight range, an occasional jitter
/// target, mostly-lossless loss budgets).
#[must_use]
pub fn dse_query(case: &ScenarioCase) -> tsn_dse::QosQuery {
    let mut rng = SplitMix64::seed_from_u64(case.wl_seed ^ 0x6473_655f_7170_7321);
    let deadline_ms = [2u64, 4, 8][rng.gen_range(3) as usize];
    let jitter = (rng.gen_range(4) == 0).then(|| SimDuration::from_micros(130));
    tsn_dse::QosQuery {
        label: "verify".into(),
        topology: tsn_dse::TopologySpec::Named {
            kind: match case.topo {
                crate::case::TopoKind::Linear => "linear",
                crate::case::TopoKind::Ring => "ring",
                crate::case::TopoKind::Star => "star",
            }
            .into(),
            switches: case.switches as usize,
            hosts: case.hosts as usize,
        },
        ts_count: case.flows as u32,
        frame_bytes: case.frame_bytes(),
        period: SimDuration::from_millis(2),
        seed: case.wl_seed,
        deadline: SimDuration::from_millis(deadline_ms),
        jitter,
        max_lost: 0,
        duration: SimDuration::from_millis(case.duration_ms),
    }
}

/// Oracle 8 — DSE optimality: run the design-space search on a
/// case-derived query; an infeasible verdict (random QoS targets may
/// simply be unmeetable) is a discard, but a feasible answer must pass
/// both directions of [`tsn_dse::check_optimality`] — the returned
/// config's simulation meets every target, and decrementing any single
/// monotone knob by one step makes an analytic bound or the confirming
/// simulation fail. The check runs on a fresh engine, so a stale-cache
/// answer cannot hide behind its own memo.
pub fn dse_optimality(case: &ScenarioCase) -> Verdict {
    let query = dse_query(case);
    let engine = tsn_dse::DseEngine::new();
    let result = engine.answer(&query);
    match result.status {
        tsn_dse::QueryStatus::Infeasible { stage, reason } => {
            Verdict::Discard(format!("{stage}: {reason}"))
        }
        tsn_dse::QueryStatus::Feasible(outcome) => {
            match tsn_dse::check_optimality(&engine, &query, &outcome.config) {
                Ok(()) => Verdict::Pass,
                Err(e) => Verdict::Fail(e),
            }
        }
    }
}

/// Draws the random [`ConfigDelta`] (and nothing else) for
/// [`reconfigure_equivalence`]: an independent coin per delta-able knob,
/// so the sweep covers the empty delta, single-knob deltas and compound
/// ones. The stream is decorrelated from the workload seed.
fn random_delta(case: &ScenarioCase, derived: &DerivedConfig) -> TsnResult<ConfigDelta> {
    let mut rng = SplitMix64::seed_from_u64(case.wl_seed ^ 0x7265_6366_6771_7521);
    let mut delta = ConfigDelta::default();
    if rng.gen_range(2) == 0 {
        delta.resources = Some(inflate(&derived.resources, rng.gen_range(64))?);
    }
    if rng.gen_range(4) == 0 {
        delta.slot = derived.cqf.slot.checked_mul(2);
    }
    if rng.gen_range(4) == 0 {
        delta.aggregate_switch_tbl = Some(!derived.aggregate_switch_tbl);
    }
    if rng.gen_range(4) == 0 {
        let shifted: FlowMap<SimDuration> = derived
            .itp
            .offsets
            .iter()
            .map(|(id, off)| (id, *off + SimDuration::from_micros(1)))
            .collect();
        delta.offsets = Some(shifted);
    }
    Ok(delta)
}

/// Oracle 9 — reconfigure equivalence: build a resident
/// [`NetworkTemplate`] from the derived configuration, apply a random
/// [`ConfigDelta`] (resources / slot / aggregation / offsets, each with
/// an independent coin), and cross-check against a from-scratch
/// [`Network::build`] under the identical effective config. The two
/// paths must agree *exactly*: byte-identical `Debug`-rendered reports
/// when both succeed, the same error when both reject the delta, and
/// never one succeeding where the other fails.
pub fn reconfigure_equivalence(case: &ScenarioCase) -> Verdict {
    let (topology, flows, derived) = match prepare(case) {
        Ok(x) => x,
        Err(v) => return v,
    };
    let mut base = case.base_config();
    base.slot = derived.cqf.slot;
    base.resources = derived.resources.clone();
    base.aggregate_switch_tbl = derived.aggregate_switch_tbl;
    let template = match NetworkTemplate::new(
        topology.clone(),
        flows.clone(),
        &derived.itp.offsets,
        base.clone(),
    ) {
        Ok(t) => Arc::new(t),
        Err(e) => return Verdict::Fail(format!("post-derive template build failed: {e}")),
    };
    let delta = match random_delta(case, &derived) {
        Ok(d) => d,
        Err(e) => return Verdict::Fail(format!("inflating a derived config failed: {e}")),
    };

    let mut scratch_config = base;
    if let Some(resources) = &delta.resources {
        scratch_config.resources = resources.clone();
    }
    if let Some(slot) = delta.slot {
        scratch_config.slot = slot;
    }
    if let Some(aggregate) = delta.aggregate_switch_tbl {
        scratch_config.aggregate_switch_tbl = aggregate;
    }
    let offsets = delta
        .offsets
        .clone()
        .unwrap_or_else(|| derived.itp.offsets.clone());

    let incremental = template.reconfigure(&delta).map(Network::run);
    let scratch = Network::build(topology, flows, &offsets, scratch_config).map(Network::run);
    match (incremental, scratch) {
        (Ok(inc), Ok(scr)) => {
            if inc != scr || format!("{inc:?}") != format!("{scr:?}") {
                Verdict::Fail(format!(
                    "incremental reconfigure diverged from a from-scratch build \
                     (delta {delta:?}): incremental [{inc}] vs scratch [{scr}]"
                ))
            } else {
                Verdict::Pass
            }
        }
        (Err(inc), Err(scr)) => {
            if inc.to_string() == scr.to_string() {
                Verdict::Pass
            } else {
                Verdict::Fail(format!(
                    "paths reject the delta with different errors: \
                     incremental [{inc}] vs scratch [{scr}]"
                ))
            }
        }
        (Ok(_), Err(e)) => Verdict::Fail(format!(
            "from-scratch build rejected the delta ({e}) but reconfigure accepted it"
        )),
        (Err(e), Ok(_)) => Verdict::Fail(format!(
            "reconfigure rejected the delta ({e}) but a from-scratch build accepted it"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_lookup_knows_every_oracle() {
        for (name, _) in ORACLES {
            assert!(oracle_by_name(name).is_some());
        }
        assert!(oracle_by_name("nope").is_none());
        assert_eq!(ORACLES.len(), 9);
    }

    /// Planted defect: a deliberately over-provisioned "optimum" must be
    /// rejected by the optimality check the `dse-optimality` oracle runs
    /// — proof the oracle can actually catch a wasteful search result.
    #[test]
    fn dse_optimality_catches_an_over_provisioned_answer() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let (query, outcome) = loop {
            let case = ScenarioCase::generate(&mut rng);
            let query = dse_query(&case);
            let engine = tsn_dse::DseEngine::new();
            if let tsn_dse::QueryStatus::Feasible(outcome) = engine.answer(&query).status {
                break (query, outcome);
            }
        };
        let engine = tsn_dse::DseEngine::new();
        let padded = tsn_dse::Knob::QueueDepth
            .with_value(
                &outcome.config,
                tsn_dse::Knob::QueueDepth.value(&outcome.config) + 4,
            )
            .expect("padding a valid config stays valid");
        let e = tsn_dse::check_optimality(&engine, &query, &padded)
            .expect_err("an over-provisioned config must be rejected");
        assert!(e.contains("not locally minimal"), "{e}");
        assert!(e.contains("queue_depth"), "{e}");
        // And the genuine optimum still passes on the same fresh engine.
        tsn_dse::check_optimality(&engine, &query, &outcome.config)
            .expect("the searched optimum is locally minimal");
    }

    #[test]
    fn random_resource_configs_span_the_domain() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let mut saw_multicast_zero = false;
        let mut saw_cbs_zero = false;
        let mut saw_custom_widths = false;
        for _ in 0..64 {
            let cfg = random_resource_config(&mut rng).expect("always valid");
            saw_multicast_zero |= cfg.multicast_size() == 0;
            saw_cbs_zero |= cfg.cbs_size() == 0;
            saw_custom_widths |= cfg.widths() != EntryWidths::PAPER;
            assert!((1..=4).contains(&cfg.port_num()));
            assert!((1..=12).contains(&cfg.queue_num()));
        }
        assert!(saw_multicast_zero, "multicast=0 corner never drawn");
        assert!(saw_cbs_zero, "cbs=0 corner never drawn");
        assert!(saw_custom_widths, "custom-width corner never drawn");
    }

    #[test]
    fn inflate_grows_only_the_masked_fields() {
        let mut rng = SplitMix64::seed_from_u64(11);
        let case = loop {
            let c = ScenarioCase::generate(&mut rng);
            if prepare(&c).is_ok() {
                break c;
            }
        };
        let (_, _, derived) = prepare(&case).expect("derivable case");
        let base = &derived.resources;
        assert_eq!(&inflate(base, 0).expect("mask 0"), base);
        let all = inflate(base, 0x3f).expect("mask 0x3f");
        assert!(all.unicast_size() > base.unicast_size());
        assert!(all.class_size() > base.class_size());
        assert!(all.meter_size() > base.meter_size());
        assert!(all.queue_depth() > base.queue_depth());
        assert!(all.buffer_num() > base.buffer_num());
        assert!(all.gate_size() > base.gate_size());
        assert_eq!(
            all.queue_num(),
            base.queue_num(),
            "behavioural field untouched"
        );
        assert_eq!(
            all.port_num(),
            base.port_num(),
            "behavioural field untouched"
        );
    }

    #[test]
    fn every_oracle_passes_a_known_good_case() {
        let case = ScenarioCase {
            topo: crate::case::TopoKind::Ring,
            switches: 3,
            hosts: 2,
            flows: 6,
            frame_idx: 0,
            wl_seed: 7,
            duration_ms: 6,
            inflate_mask: 0x3f,
        }
        .normalized();
        for (name, oracle) in ORACLES {
            assert_eq!(oracle(&case), Verdict::Pass, "oracle {name}");
        }
    }
}
