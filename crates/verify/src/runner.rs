//! The property runner: generate → check → shrink → persist.
//!
//! [`Runner::run`] drives one property: it draws `cases` seeds from a
//! master PRNG, generates a case per seed, and asks the oracle for a
//! [`Verdict`]. On the first [`Verdict::Fail`] it greedily shrinks the
//! case ([`crate::shrink`]), optionally persists the minimal case to the
//! regression corpus ([`crate::corpus`]), and stops. A wall-clock budget
//! lets CI cap total runtime without changing semantics — fewer cases,
//! never different ones.

use std::fmt::Debug;
use std::path::PathBuf;
use std::time::Instant;

use tsn_types::SplitMix64;

use crate::corpus::{self, CaseCodec, CorpusEntry};
use crate::gen::Gen;
use crate::shrink::{shrink_to_minimal, Shrink, Shrunk};

/// What the oracle said about one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property held.
    Pass,
    /// The case never reached the property (e.g. derivation found the
    /// random inputs infeasible before a config existed to check).
    /// Tracked, but not a failure.
    Discard(String),
    /// The property was violated.
    Fail(String),
}

/// A failure, before and after shrinking.
#[derive(Debug, Clone)]
pub struct CaseFailure<C> {
    /// The seed whose generated case first failed.
    pub seed: u64,
    /// The case exactly as generated.
    pub original: C,
    /// The greedily minimized case and its failure message.
    pub shrunk: Shrunk<C>,
}

/// What one property run produced.
#[derive(Debug, Clone)]
pub struct PropertyReport<C> {
    /// The property name (also the corpus oracle key).
    pub name: String,
    /// Cases whose oracle actually ran to a pass/fail verdict.
    pub executed: u64,
    /// Cases discarded before the property applied.
    pub discarded: u64,
    /// Cases skipped because the wall-clock budget ran out.
    pub skipped: u64,
    /// The first failure, if any (the run stops there).
    pub failure: Option<CaseFailure<C>>,
}

impl<C> PropertyReport<C> {
    /// Whether the property held on every executed case.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Drives properties: case counts, seeding, budget and persistence.
#[derive(Debug, Clone)]
pub struct Runner {
    /// Cases per property.
    pub cases: u64,
    /// Master seed. Case 0 uses this seed *exactly* (so
    /// `--seed <failing> --cases 1` reproduces a reported failure);
    /// later cases draw their seeds from the master stream.
    pub seed: u64,
    /// Stop drawing new cases once this instant passes. Shrinking of an
    /// already-found failure still completes.
    pub deadline: Option<Instant>,
    /// Where to persist shrunk failures; `None` disables persistence.
    pub corpus_dir: Option<PathBuf>,
    /// Oracle invocations the shrinker may spend per failure.
    pub max_shrink_attempts: u64,
}

impl Runner {
    /// A runner with `cases` cases from `seed`, no deadline and no
    /// corpus persistence.
    #[must_use]
    pub fn new(cases: u64, seed: u64) -> Self {
        Runner {
            cases,
            seed,
            deadline: None,
            corpus_dir: None,
            max_shrink_attempts: 400,
        }
    }

    /// The per-case seeds this runner will use, in order.
    #[must_use]
    pub fn case_seeds(&self) -> Vec<u64> {
        let mut master = SplitMix64::seed_from_u64(self.seed);
        (0..self.cases)
            .map(|i| if i == 0 { self.seed } else { master.next_u64() })
            .collect()
    }

    /// Runs one property over `self.cases` generated cases, shrinking
    /// and persisting the first failure.
    pub fn run<C, G>(
        &self,
        name: &str,
        gen: &G,
        mut oracle: impl FnMut(&C) -> Verdict,
    ) -> PropertyReport<C>
    where
        C: Shrink + CaseCodec + Clone + Debug,
        G: Gen<Output = C>,
    {
        let mut report = PropertyReport {
            name: name.to_owned(),
            executed: 0,
            discarded: 0,
            skipped: 0,
            failure: None,
        };
        for seed in self.case_seeds() {
            if self.out_of_time() {
                report.skipped += 1;
                continue;
            }
            let case = gen.generate(&mut SplitMix64::seed_from_u64(seed));
            match oracle(&case) {
                Verdict::Pass => report.executed += 1,
                Verdict::Discard(_) => report.discarded += 1,
                Verdict::Fail(message) => {
                    report.executed += 1;
                    let shrunk =
                        shrink_to_minimal(case.clone(), message, self.max_shrink_attempts, |c| {
                            match oracle(c) {
                                Verdict::Fail(msg) => Some(msg),
                                Verdict::Pass | Verdict::Discard(_) => None,
                            }
                        });
                    self.persist(name, seed, &shrunk);
                    report.failure = Some(CaseFailure {
                        seed,
                        original: case,
                        shrunk,
                    });
                    break;
                }
            }
        }
        report
    }

    /// Replays one corpus entry against this property: a seed pin runs
    /// the generator for each replayed seed, a shrunk case is decoded
    /// and checked directly. Returns the first failure message.
    ///
    /// # Errors
    ///
    /// Decode errors and `Fail` verdicts, as human-readable messages.
    pub fn replay<C, G>(
        entry: &CorpusEntry,
        gen: &G,
        mut oracle: impl FnMut(&C) -> Verdict,
    ) -> Result<ReplayStats, String>
    where
        C: CaseCodec + Debug,
        G: Gen<Output = C>,
    {
        let mut stats = ReplayStats::default();
        if entry.is_seed_pin() {
            let mut master = SplitMix64::seed_from_u64(entry.seed);
            for i in 0..entry.cases {
                let seed = if i == 0 {
                    entry.seed
                } else {
                    master.next_u64()
                };
                let case = gen.generate(&mut SplitMix64::seed_from_u64(seed));
                match oracle(&case) {
                    Verdict::Pass => stats.executed += 1,
                    Verdict::Discard(_) => stats.discarded += 1,
                    Verdict::Fail(message) => {
                        return Err(format!(
                            "{}: replayed seed 0x{seed:x} (case {i} of pin 0x{:x}) failed: \
                             {message}\n  case: {case:?}",
                            entry.oracle, entry.seed
                        ));
                    }
                }
            }
        } else {
            let case = C::from_fields(&entry.fields)
                .map_err(|e| format!("{}: corpus decode failed: {e}", entry.oracle))?;
            match oracle(&case) {
                Verdict::Pass => stats.executed += 1,
                Verdict::Discard(reason) => {
                    return Err(format!(
                        "{}: corpus case was discarded ({reason}) — a persisted case must \
                         stay checkable\n  case: {case:?}",
                        entry.oracle
                    ));
                }
                Verdict::Fail(message) => {
                    return Err(format!(
                        "{}: corpus regression reappeared: {message}\n  case: {case:?}",
                        entry.oracle
                    ));
                }
            }
        }
        Ok(stats)
    }

    fn out_of_time(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    fn persist<C: CaseCodec>(&self, name: &str, seed: u64, shrunk: &Shrunk<C>) {
        let Some(dir) = &self.corpus_dir else {
            return;
        };
        let entry = CorpusEntry::shrunk_case(name, seed, &shrunk.message, &shrunk.case);
        match corpus::store(dir, &entry) {
            Ok(path) => eprintln!("verify: persisted shrunk case to {}", path.display()),
            Err(e) => eprintln!("verify: could not persist corpus entry: {e}"),
        }
    }
}

/// Counts from one corpus replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Cases that ran to a pass verdict.
    pub executed: u64,
    /// Cases discarded before the property applied.
    pub discarded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::field_u64;
    use crate::shrink::shrink_u64;

    #[derive(Debug, Clone, PartialEq)]
    struct Num(u64);

    impl Shrink for Num {
        fn shrink_candidates(&self) -> Vec<Self> {
            shrink_u64(self.0, 0).into_iter().map(Num).collect()
        }
    }

    impl CaseCodec for Num {
        fn to_fields(&self) -> Vec<(String, String)> {
            vec![("n".to_owned(), self.0.to_string())]
        }

        fn from_fields(fields: &[(String, String)]) -> Result<Self, String> {
            Ok(Num(field_u64(fields, "n")?))
        }
    }

    fn num_gen(rng: &mut SplitMix64) -> Num {
        Num(rng.gen_range(1000))
    }

    #[test]
    fn seeds_are_deterministic_and_case0_is_the_master_seed() {
        let runner = Runner::new(4, 0xfeed);
        let seeds = runner.case_seeds();
        assert_eq!(seeds.len(), 4);
        assert_eq!(seeds[0], 0xfeed);
        assert_eq!(seeds, runner.case_seeds());
        assert_eq!(
            Runner::new(1, seeds[2]).case_seeds(),
            vec![seeds[2]],
            "--seed <failing> --cases 1 reproduces exactly that case"
        );
    }

    #[test]
    fn passing_property_reports_all_cases_executed() {
        let report = Runner::new(32, 1).run("always-pass", &num_gen, |_| Verdict::Pass);
        assert!(report.passed());
        assert_eq!(report.executed, 32);
        assert_eq!(report.discarded, 0);
    }

    #[test]
    fn failure_is_shrunk_to_the_boundary_and_run_stops() {
        let mut calls = 0u64;
        let report = Runner::new(64, 2).run("ge-100", &num_gen, |n: &Num| {
            calls += 1;
            if n.0 >= 100 {
                Verdict::Fail(format!("{} >= 100", n.0))
            } else {
                Verdict::Pass
            }
        });
        let failure = report.failure.expect("large draws must fail");
        assert!(failure.original.0 >= 100);
        assert_eq!(
            failure.shrunk.case,
            Num(100),
            "greedy shrink finds the boundary"
        );
        assert!(failure.shrunk.message.contains("100 >= 100"));
        assert!(calls > report.executed, "shrinking re-ran the oracle");
    }

    #[test]
    fn discards_are_tracked_separately() {
        let report = Runner::new(50, 3).run("odd-only", &num_gen, |n: &Num| {
            if n.0.is_multiple_of(2) {
                Verdict::Discard("even".into())
            } else {
                Verdict::Pass
            }
        });
        assert!(report.passed());
        assert_eq!(report.executed + report.discarded, 50);
        assert!(report.discarded > 0);
    }

    #[test]
    fn expired_deadline_skips_cases_without_failing() {
        let mut runner = Runner::new(20, 4);
        runner.deadline = Some(Instant::now());
        let report = runner.run("budget", &num_gen, |_| Verdict::Pass);
        assert!(report.passed());
        assert_eq!(report.skipped, 20);
        assert_eq!(report.executed, 0);
    }

    #[test]
    fn shrunk_failures_are_persisted_and_replayable() {
        let dir = std::env::temp_dir().join(format!("tsn-verify-runner-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut runner = Runner::new(64, 5);
        runner.corpus_dir = Some(dir.clone());
        let oracle = |n: &Num| {
            if n.0 >= 7 {
                Verdict::Fail("too big".into())
            } else {
                Verdict::Pass
            }
        };
        let report = runner.run("persisted", &num_gen, oracle);
        assert!(!report.passed());
        let entries = corpus::load_dir(&dir).expect("loads");
        assert_eq!(entries.len(), 1);
        let entry = &entries[0].1;
        assert_eq!(entry.oracle, "persisted");
        assert!(!entry.is_seed_pin());
        // Still failing → replay reports the regression.
        let err = Runner::replay(entry, &num_gen, oracle).expect_err("regression");
        assert!(err.contains("regression reappeared"), "{err}");
        // "Fixed" oracle → replay passes.
        let stats = Runner::replay(entry, &num_gen, |_: &Num| Verdict::Pass).expect("fixed");
        assert_eq!(stats.executed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn seed_pin_replay_walks_the_master_stream() {
        let pin = CorpusEntry::seed_pin("pin", 0xfeed, 8, "");
        let mut seen = Vec::new();
        let stats = Runner::replay(&pin, &num_gen, |n: &Num| {
            seen.push(n.0);
            Verdict::Pass
        })
        .expect("passes");
        assert_eq!(stats.executed, 8);
        // Same cases the live runner would draw for --seed 0xfeed.
        let runner = Runner::new(8, 0xfeed);
        let expect: Vec<u64> = runner
            .case_seeds()
            .into_iter()
            .map(|s| num_gen(&mut SplitMix64::seed_from_u64(s)).0)
            .collect();
        assert_eq!(seen, expect);
    }
}
