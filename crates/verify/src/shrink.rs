//! Greedy component-wise shrinking.
//!
//! When an oracle rejects a case, the runner minimizes it before
//! reporting: [`Shrink::shrink_candidates`] proposes strictly-smaller
//! variants (one component reduced at a time), and [`shrink_to_minimal`]
//! greedily walks the first still-failing candidate until no candidate
//! fails — the classic QuickCheck loop, without the external crate.

/// Types that can propose smaller versions of themselves.
pub trait Shrink: Sized {
    /// Strictly-smaller candidate cases, most aggressive first. Must
    /// terminate: repeated application has to reach a fixpoint (every
    /// candidate smaller than `self` in a well-founded order).
    fn shrink_candidates(&self) -> Vec<Self>;
}

/// Shrink candidates for one unsigned component with a floor: the floor
/// itself (most aggressive), the halfway point, then the decrement.
#[must_use]
pub fn shrink_u64(value: u64, floor: u64) -> Vec<u64> {
    if value <= floor {
        return Vec::new();
    }
    let mut out = vec![floor];
    let mid = floor + (value - floor) / 2;
    if mid != floor && mid != value {
        out.push(mid);
    }
    if value - 1 != floor {
        out.push(value - 1);
    }
    out
}

/// What greedy minimization produced.
#[derive(Debug, Clone)]
pub struct Shrunk<C> {
    /// The minimal still-failing case.
    pub case: C,
    /// The failure message of the minimal case.
    pub message: String,
    /// Greedy steps accepted (0 = the original case was already minimal).
    pub steps: u64,
    /// Oracle invocations spent shrinking.
    pub attempts: u64,
}

/// Greedily minimizes `case` under `still_fails`: tries candidates in
/// order, restarts from the first one that still fails, and stops when
/// no candidate fails or `max_attempts` oracle calls were spent.
///
/// `still_fails` returns `Some(message)` when the candidate still
/// triggers the failure, `None` when it passes (or is discarded).
pub fn shrink_to_minimal<C: Shrink + Clone>(
    case: C,
    message: String,
    max_attempts: u64,
    mut still_fails: impl FnMut(&C) -> Option<String>,
) -> Shrunk<C> {
    let mut current = case;
    let mut current_message = message;
    let mut steps = 0;
    let mut attempts = 0;
    'outer: loop {
        for candidate in current.shrink_candidates() {
            if attempts >= max_attempts {
                break 'outer;
            }
            attempts += 1;
            if let Some(msg) = still_fails(&candidate) {
                current = candidate;
                current_message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    Shrunk {
        case: current,
        message: current_message,
        steps,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Pair(u64, u64);

    impl Shrink for Pair {
        fn shrink_candidates(&self) -> Vec<Self> {
            let mut out: Vec<Pair> = shrink_u64(self.0, 0)
                .into_iter()
                .map(|a| Pair(a, self.1))
                .collect();
            out.extend(shrink_u64(self.1, 0).into_iter().map(|b| Pair(self.0, b)));
            out
        }
    }

    #[test]
    fn shrink_u64_proposes_floor_mid_decrement() {
        assert_eq!(shrink_u64(10, 2), vec![2, 6, 9]);
        assert_eq!(shrink_u64(3, 2), vec![2]);
        assert!(shrink_u64(2, 2).is_empty());
        assert!(shrink_u64(1, 2).is_empty());
    }

    #[test]
    fn greedy_shrink_reaches_the_minimal_failing_pair() {
        // Failure: a + b >= 10. Minimal failing cases lie on the a+b=10
        // line; greedy from (100, 100) lands on one of them.
        let shrunk = shrink_to_minimal(Pair(100, 100), "seed".into(), 10_000, |p| {
            (p.0 + p.1 >= 10).then(|| format!("{}+{}", p.0, p.1))
        });
        assert_eq!(shrunk.case.0 + shrunk.case.1, 10);
        assert!(shrunk.steps > 0);
        // And it is a fixpoint: no candidate of the result still fails.
        assert!(shrunk
            .case
            .shrink_candidates()
            .iter()
            .all(|c| c.0 + c.1 < 10));
    }

    #[test]
    fn attempt_budget_is_respected() {
        // A never-accepting oracle probes candidates (6 for this pair)
        // until the attempt budget runs out.
        let mut calls = 0;
        let shrunk = shrink_to_minimal(Pair(1 << 40, 1 << 40), "seed".into(), 3, |_| {
            calls += 1;
            None
        });
        assert_eq!(calls, 3);
        assert_eq!(shrunk.attempts, 3);
        assert_eq!(shrunk.case, Pair(1 << 40, 1 << 40), "nothing accepted");
        assert_eq!(shrunk.steps, 0);
    }

    #[test]
    fn already_minimal_case_takes_zero_steps() {
        let shrunk = shrink_to_minimal(Pair(0, 0), "seed".into(), 100, |_| Some("fail".into()));
        assert_eq!(shrunk.steps, 0);
        assert_eq!(shrunk.case, Pair(0, 0));
        assert_eq!(shrunk.message, "seed");
    }
}
