//! The data-structure properties, ported from the seed repo's
//! `tests/properties.rs` onto the shrinking runner.
//!
//! Each property is a [`ParamSpec`] (named integer fields with generation
//! ranges that double as shrinking floors) plus an oracle over the drawn
//! [`ParamCase`]. The root integration test drives them through
//! [`crate::runner::Runner`], and the original master seeds live on as
//! seed-pin corpus entries (`legacy_seed`/`legacy_cases`), so the exact
//! input families the repo has always tested stay tested — now with
//! minimization when one fails.

use tsn_builder::latency_bounds;
use tsn_resource::{AllocationPolicy, ResourceConfig};
use tsn_sim::{hist_bucket, LatencyStats};
use tsn_switch::gate_ctrl::{GateControlList, GateEntry};
use tsn_switch::ingress_filter::TokenBucketMeter;
use tsn_switch::table::CapTable;
use tsn_topology::{partition_network, presets, RouteTreeCache, Topology};
use tsn_types::{DataRate, MacAddr, QueueId, SimDuration, SimTime, SplitMix64, TsnResult};

use crate::corpus::CaseCodec;
use crate::gen::Range;
use crate::runner::Verdict;
use crate::shrink::{shrink_u64, Shrink};

/// A property's input shape: named `u64` fields with inclusive ranges.
/// The range's `lo` is also the field's shrinking floor.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// `(field name, generation range)` pairs.
    pub fields: &'static [(&'static str, Range)],
}

impl ParamSpec {
    /// Draws one case.
    #[must_use]
    pub fn generate(&self, rng: &mut SplitMix64) -> ParamCase {
        ParamCase {
            fields: self
                .fields
                .iter()
                .map(|&(name, range)| (name.to_owned(), range.draw(rng)))
                .collect(),
            floors: self.fields.iter().map(|&(_, range)| range.lo).collect(),
        }
    }
}

/// One drawn case: named integer values. `floors` parallels `fields`
/// during live runs; corpus-decoded cases (which are never shrunk) carry
/// zero floors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamCase {
    /// `(field name, value)` pairs, in spec order.
    pub fields: Vec<(String, u64)>,
    /// Per-field shrinking floors.
    pub floors: Vec<u64>,
}

impl ParamCase {
    /// Looks a field's value up by name.
    ///
    /// # Panics
    ///
    /// When the field does not exist — an oracle/spec mismatch, which is
    /// a bug in the harness itself.
    #[must_use]
    pub fn value(&self, name: &str) -> u64 {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("property case has no field {name:?}"))
    }
}

impl Shrink for ParamCase {
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for (i, &(_, value)) in self.fields.iter().enumerate() {
            let floor = self.floors.get(i).copied().unwrap_or(0);
            for smaller in shrink_u64(value, floor) {
                let mut candidate = self.clone();
                candidate.fields[i].1 = smaller;
                out.push(candidate);
            }
        }
        out
    }
}

impl CaseCodec for ParamCase {
    fn to_fields(&self) -> Vec<(String, String)> {
        self.fields
            .iter()
            .map(|(name, value)| (name.clone(), format!("0x{value:x}")))
            .collect()
    }

    fn from_fields(fields: &[(String, String)]) -> Result<Self, String> {
        let mut out = Vec::with_capacity(fields.len());
        for (name, _) in fields {
            out.push((name.clone(), crate::corpus::field_u64(fields, name)?));
        }
        let floors = vec![0; out.len()];
        Ok(ParamCase {
            fields: out,
            floors,
        })
    }
}

/// One ported property: spec, oracle, and the seed-pin provenance that
/// preserves the pre-runner test family.
#[derive(Debug, Clone, Copy)]
pub struct PortedProperty {
    /// Runner/corpus name.
    pub name: &'static str,
    /// The master seed `tests/properties.rs` historically used.
    pub legacy_seed: u64,
    /// The case count it historically ran.
    pub legacy_cases: u64,
    /// Input shape.
    pub spec: ParamSpec,
    /// The property itself.
    pub oracle: fn(&ParamCase) -> Verdict,
}

/// Every ported property.
pub const PROPERTIES: &[PortedProperty] = &[
    PortedProperty {
        name: "policy-ordering",
        legacy_seed: 0x01de,
        legacy_cases: 256,
        spec: CONFIG_SPEC,
        oracle: policy_ordering,
    },
    PortedProperty {
        name: "accounting-monotone",
        legacy_seed: 0x303,
        legacy_cases: 128,
        spec: ParamSpec {
            fields: &[
                ("uni", Range::new(1, 4095)),
                ("multi", Range::new(0, 1023)),
                ("class", Range::new(1, 4095)),
                ("meter", Range::new(1, 4095)),
                ("gate", Range::new(1, 63)),
                ("queues", Range::new(2, 15)),
                ("cbs", Range::new(0, 7)),
                ("depth", Range::new(1, 255)),
                ("buffers", Range::new(1, 511)),
                ("ports", Range::new(1, 7)),
                ("extra_depth", Range::new(1, 63)),
                ("extra_buffers", Range::new(1, 127)),
            ],
        },
        oracle: accounting_monotone,
    },
    PortedProperty {
        name: "latency-bounds",
        legacy_seed: 0x1a7e,
        legacy_cases: 256,
        spec: ParamSpec {
            fields: &[
                ("hop", Range::new(0, 63)),
                ("slot_us", Range::new(1, 9_999)),
            ],
        },
        oracle: latency_bounds_props,
    },
    PortedProperty {
        name: "mac-roundtrip",
        legacy_seed: 0xacac,
        legacy_cases: 256,
        spec: ParamSpec {
            fields: &[("raw", Range::new(0, (1 << 48) - 1))],
        },
        oracle: mac_roundtrip,
    },
    PortedProperty {
        name: "slot-arithmetic",
        legacy_seed: 0x5107a,
        legacy_cases: 512,
        spec: ParamSpec {
            fields: &[
                ("t_ns", Range::new(0, u64::MAX / 4)),
                ("slot_us", Range::new(1, 99_999)),
            ],
        },
        oracle: slot_arithmetic,
    },
    PortedProperty {
        name: "duration-lcm",
        legacy_seed: 0x1c,
        legacy_cases: 256,
        spec: ParamSpec {
            fields: &[
                ("a_us", Range::new(1, 99_999)),
                ("b_us", Range::new(1, 99_999)),
            ],
        },
        oracle: duration_lcm,
    },
    PortedProperty {
        name: "cap-table",
        legacy_seed: 0xcab1e,
        legacy_cases: 64,
        spec: ParamSpec {
            fields: &[
                ("cap", Range::new(0, 31)),
                ("ops", Range::new(0, 199)),
                ("seed", Range::new(0, u64::MAX)),
            ],
        },
        oracle: cap_table,
    },
    PortedProperty {
        name: "meter-rate",
        legacy_seed: 0xb0cce7,
        legacy_cases: 64,
        spec: ParamSpec {
            fields: &[
                ("rate_mbps", Range::new(1, 999)),
                ("burst", Range::new(64, 16_383)),
                ("frames", Range::new(1, 99)),
                ("seed", Range::new(0, u64::MAX)),
            ],
        },
        oracle: meter_rate,
    },
    PortedProperty {
        name: "gcl-periodic",
        legacy_seed: 0x9c1,
        legacy_cases: 256,
        spec: ParamSpec {
            fields: &[
                ("entries", Range::new(1, 7)),
                ("slot_us", Range::new(1, 999)),
                ("seed", Range::new(0, u64::MAX)),
            ],
        },
        oracle: gcl_periodic,
    },
    PortedProperty {
        name: "latency-merge",
        legacy_seed: 0x5ad5,
        legacy_cases: 128,
        spec: ParamSpec {
            fields: &[
                ("shards", Range::new(1, 6)),
                ("samples", Range::new(1, 64)),
                ("seed", Range::new(0, u64::MAX)),
            ],
        },
        oracle: latency_merge,
    },
    // The three properties below are new with the scale work (fat-tree /
    // multi-ring builders and the histogram quantile sketch), not ports:
    // their seeds are fresh picks, not legacy master seeds.
    PortedProperty {
        name: "fat-tree-shape",
        legacy_seed: 0xfa7,
        legacy_cases: 64,
        spec: ParamSpec {
            fields: &[
                ("half", Range::new(1, 4)),
                ("hpe_raw", Range::new(0, 7)),
                ("shards", Range::new(1, 6)),
                ("seed", Range::new(0, u64::MAX)),
            ],
        },
        oracle: fat_tree_shape,
    },
    PortedProperty {
        name: "multi-ring-shape",
        legacy_seed: 0x21465,
        legacy_cases: 64,
        spec: ParamSpec {
            fields: &[
                ("rings", Range::new(1, 6)),
                ("ring_size", Range::new(3, 10)),
                ("hpr_raw", Range::new(0, 15)),
                ("shards", Range::new(1, 6)),
                ("seed", Range::new(0, u64::MAX)),
            ],
        },
        oracle: multi_ring_shape,
    },
    PortedProperty {
        name: "quantile-rank-error",
        legacy_seed: 0x9a11,
        legacy_cases: 128,
        spec: ParamSpec {
            fields: &[
                ("samples", Range::new(1, 512)),
                ("max_ns", Range::new(2, 50_000_000)),
                ("q_permille", Range::new(1, 1000)),
                ("seed", Range::new(0, u64::MAX)),
            ],
        },
        oracle: quantile_rank_error,
    },
];

/// Looks a ported property up by name.
#[must_use]
pub fn property_by_name(name: &str) -> Option<&'static PortedProperty> {
    PROPERTIES.iter().find(|p| p.name == name)
}

const CONFIG_SPEC: ParamSpec = ParamSpec {
    fields: &[
        ("uni", Range::new(1, 4095)),
        ("multi", Range::new(0, 1023)),
        ("class", Range::new(1, 4095)),
        ("meter", Range::new(1, 4095)),
        ("gate", Range::new(1, 63)),
        ("queues", Range::new(2, 15)),
        ("cbs", Range::new(0, 7)),
        ("depth", Range::new(1, 255)),
        ("buffers", Range::new(1, 511)),
        ("ports", Range::new(1, 7)),
    ],
};

fn build_config(case: &ParamCase) -> TsnResult<ResourceConfig> {
    let cbs = case.value("cbs") as u32;
    let ports = case.value("ports") as u32;
    let queues = case.value("queues") as u32;
    let mut cfg = ResourceConfig::new();
    cfg.set_switch_tbl(case.value("uni") as u32, case.value("multi") as u32)?
        .set_class_tbl(case.value("class") as u32)?
        .set_meter_tbl(case.value("meter") as u32)?
        .set_gate_tbl(case.value("gate") as u32, queues, ports)?
        .set_cbs_tbl(cbs, cbs, ports)?
        .set_queues(case.value("depth") as u32, queues, ports)?
        .set_buffers(case.value("buffers") as u32, ports)?;
    Ok(cfg)
}

/// Exact-bits is a lower bound and BRAM36 an upper bound on the paper's
/// accounting, for every in-domain configuration.
fn policy_ordering(case: &ParamCase) -> Verdict {
    let cfg = match build_config(case) {
        Ok(c) => c,
        Err(e) => return Verdict::Fail(format!("in-domain config rejected: {e}")),
    };
    let exact = cfg.total_bits(AllocationPolicy::ExactBits);
    let paper = cfg.total_bits(AllocationPolicy::PaperAccounting);
    let coarse = cfg.total_bits(AllocationPolicy::Bram36);
    if exact > coarse {
        return Verdict::Fail(format!("exact {exact} > bram36 {coarse}"));
    }
    if exact > paper {
        return Verdict::Fail(format!("exact {exact} > paper {paper}"));
    }
    if paper == 0 {
        return Verdict::Fail("paper accounting collapsed to 0 bits".into());
    }
    Verdict::Pass
}

/// Growing any single resource never shrinks the total.
fn accounting_monotone(case: &ParamCase) -> Verdict {
    let cfg = match build_config(case) {
        Ok(c) => c,
        Err(e) => return Verdict::Fail(format!("in-domain config rejected: {e}")),
    };
    let extra_depth = case.value("extra_depth") as u32;
    let extra_buffers = case.value("extra_buffers") as u32;
    for policy in AllocationPolicy::ALL {
        let base = cfg.total_bits(policy);
        let mut deeper = cfg.clone();
        if let Err(e) = deeper.set_queues(
            cfg.queue_depth().saturating_add(extra_depth),
            cfg.queue_num(),
            cfg.port_num(),
        ) {
            return Verdict::Fail(format!("deepening queues rejected: {e}"));
        }
        if deeper.total_bits(policy) < base {
            return Verdict::Fail(format!(
                "{policy:?}: +{extra_depth} depth shrank total {base} -> {}",
                deeper.total_bits(policy)
            ));
        }
        let mut fatter = cfg.clone();
        if let Err(e) = fatter.set_buffers(
            cfg.buffer_num().saturating_add(extra_buffers),
            cfg.port_num(),
        ) {
            return Verdict::Fail(format!("growing buffers rejected: {e}"));
        }
        if fatter.total_bits(policy) < base {
            return Verdict::Fail(format!(
                "{policy:?}: +{extra_buffers} buffers shrank total {base} -> {}",
                fatter.total_bits(policy)
            ));
        }
    }
    Verdict::Pass
}

/// Eq. (1): ordered, monotone in hops, linear in the slot.
fn latency_bounds_props(case: &ParamCase) -> Verdict {
    let hop = case.value("hop");
    let slot = SimDuration::from_micros(case.value("slot_us"));
    let (lo, hi) = latency_bounds(hop, slot);
    if lo > hi {
        return Verdict::Fail(format!("bounds inverted: {lo} > {hi}"));
    }
    let width = slot * if hop == 0 { 1 } else { 2 };
    if hi - lo != width {
        return Verdict::Fail(format!("band width {} != {width}", hi - lo));
    }
    let (lo2, hi2) = latency_bounds(hop + 1, slot);
    if lo2 < lo || hi2 < hi {
        return Verdict::Fail("bounds not monotone in hop count".into());
    }
    let (_, hi_double) = latency_bounds(hop, slot * 2);
    if hi_double != hi * 2 {
        return Verdict::Fail(format!("doubling the slot: {hi_double} != 2×{hi}"));
    }
    Verdict::Pass
}

/// MAC addresses round-trip through integers and canonical text.
fn mac_roundtrip(case: &ParamCase) -> Verdict {
    let raw = case.value("raw");
    let mac = MacAddr::from_u64(raw);
    if mac.to_u64() != raw {
        return Verdict::Fail(format!("u64 roundtrip: 0x{raw:x} -> 0x{:x}", mac.to_u64()));
    }
    match mac.to_string().parse::<MacAddr>() {
        Ok(parsed) if parsed == mac => Verdict::Pass,
        Ok(parsed) => Verdict::Fail(format!("text roundtrip: {mac} -> {parsed}")),
        Err(e) => Verdict::Fail(format!("canonical text {mac:?} failed to parse: {e}")),
    }
}

/// `slot_index` is consistent with `next_slot_boundary` and `align_up`.
fn slot_arithmetic(case: &ParamCase) -> Verdict {
    let t = SimTime::from_nanos(case.value("t_ns"));
    let slot = SimDuration::from_micros(case.value("slot_us"));
    let boundary = t.next_slot_boundary(slot);
    if boundary <= t {
        return Verdict::Fail(format!("boundary {boundary} not after {t}"));
    }
    if boundary.slot_index(slot) != t.slot_index(slot) + 1 {
        return Verdict::Fail("boundary does not advance the slot index by 1".into());
    }
    let aligned = t.align_up(slot);
    if aligned < t || aligned - t >= slot {
        return Verdict::Fail(format!("align_up({t}) = {aligned} out of [t, t+slot)"));
    }
    if aligned.offset_in_slot(slot) != SimDuration::ZERO {
        return Verdict::Fail(format!("align_up({t}) = {aligned} not slot-aligned"));
    }
    Verdict::Pass
}

/// LCM of durations is divisible by both operands.
fn duration_lcm(case: &ParamCase) -> Verdict {
    let a = SimDuration::from_micros(case.value("a_us"));
    let b = SimDuration::from_micros(case.value("b_us"));
    let l = a.lcm(b);
    if !l.is_multiple_of(a) || !l.is_multiple_of(b) {
        return Verdict::Fail(format!("lcm({a}, {b}) = {l} not a common multiple"));
    }
    if l < a.max(b) {
        return Verdict::Fail(format!("lcm({a}, {b}) = {l} below max operand"));
    }
    Verdict::Pass
}

/// A capacity-limited table never exceeds its capacity under any
/// insert/remove sequence.
fn cap_table(case: &ParamCase) -> Verdict {
    let cap = case.value("cap") as usize;
    let ops = case.value("ops");
    let mut rng = SplitMix64::seed_from_u64(case.value("seed"));
    let mut table: CapTable<u16, u16> = CapTable::new("prop table", cap);
    for op in 0..ops {
        let key = rng.gen_range(64) as u16;
        if rng.next_u64() & 1 == 0 {
            let _ = table.insert(key, key);
        } else {
            table.remove(&key);
        }
        if table.occupancy() > cap {
            return Verdict::Fail(format!(
                "occupancy {} over capacity {cap} after op {op}",
                table.occupancy()
            ));
        }
    }
    Verdict::Pass
}

/// Token-bucket long-run throughput never exceeds `rate × time + burst`.
fn meter_rate(case: &ParamCase) -> Verdict {
    let rate = DataRate::mbps(case.value("rate_mbps"));
    let burst_bytes = case.value("burst") as u32;
    let mut rng = SplitMix64::seed_from_u64(case.value("seed"));
    let mut meter = match TokenBucketMeter::new(rate, burst_bytes) {
        Ok(m) => m,
        Err(e) => return Verdict::Fail(format!("in-domain meter rejected: {e}")),
    };
    let mut passed_bits = 0u64;
    let mut now_ns = 0u64;
    for _ in 0..case.value("frames") {
        let bytes = rng.gen_range_in(64, 1522) as u32;
        now_ns += rng.gen_range(1_000_000);
        if meter.police(SimTime::from_nanos(now_ns), bytes) {
            passed_bits += u64::from(bytes) * 8;
        }
    }
    let budget = u128::from(rate.bits_per_sec()) * u128::from(now_ns) / 1_000_000_000
        + u128::from(burst_bytes) * 8;
    if u128::from(passed_bits) > budget {
        return Verdict::Fail(format!("passed {passed_bits} bits > budget {budget}"));
    }
    Verdict::Pass
}

/// GCL state repeats with its cycle.
fn gcl_periodic(case: &ParamCase) -> Verdict {
    let mut rng = SplitMix64::seed_from_u64(case.value("seed"));
    let slot = SimDuration::from_micros(case.value("slot_us"));
    let entries: Vec<GateEntry> = (0..case.value("entries"))
        .map(|_| {
            let mask = rng.gen_range(256);
            let mut e = GateEntry::all_closed();
            for q in 0..8 {
                if mask & (1 << q) != 0 {
                    e = e.with_open(QueueId::new(q));
                }
            }
            e
        })
        .collect();
    let gcl = match GateControlList::new(entries, slot) {
        Ok(g) => g,
        Err(e) => return Verdict::Fail(format!("in-domain GCL rejected: {e}")),
    };
    let t = SimTime::from_nanos(rng.gen_range(1_000_000_000));
    let q = QueueId::new(rng.gen_range(8) as u8);
    if gcl.is_open(q, t) != gcl.is_open(q, t + gcl.cycle()) {
        return Verdict::Fail(format!("gate state at {t} differs one cycle later"));
    }
    Verdict::Pass
}

/// Sharded `LatencyStats::merge` matches the single-pass stream for any
/// shard assignment and any merge order, to tight f64 tolerance (count,
/// min and max exactly).
fn latency_merge(case: &ParamCase) -> Verdict {
    let shard_count = case.value("shards") as usize;
    let mut rng = SplitMix64::seed_from_u64(case.value("seed"));
    let samples: Vec<u64> = (0..case.value("samples"))
        .map(|_| rng.gen_range_in(1, 50_000_000))
        .collect();

    let mut whole = LatencyStats::new();
    for &ns in &samples {
        whole.record(SimDuration::from_nanos(ns));
    }
    let mut shards = vec![LatencyStats::new(); shard_count];
    for (i, &ns) in samples.iter().enumerate() {
        shards[i % shard_count].record(SimDuration::from_nanos(ns));
    }
    // Merge in a seed-derived order so the property covers arbitrary
    // shard orders, not just 0..n.
    let mut order: Vec<usize> = (0..shard_count).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(i as u64 + 1) as usize);
    }
    let mut merged = LatencyStats::new();
    for &i in &order {
        merged.merge(&shards[i]);
    }

    if merged.count() != whole.count() {
        return Verdict::Fail(format!(
            "count {} != single-pass {}",
            merged.count(),
            whole.count()
        ));
    }
    if merged.min() != whole.min() || merged.max() != whole.max() {
        return Verdict::Fail("min/max differ from single-pass".into());
    }
    let tol = |a: f64, b: f64| (a - b).abs() <= 1e-6 * b.abs().max(1.0);
    if !tol(merged.mean_ns(), whole.mean_ns()) {
        return Verdict::Fail(format!(
            "mean {} != single-pass {} (order {order:?})",
            merged.mean_ns(),
            whole.mean_ns()
        ));
    }
    if !tol(merged.std_ns(), whole.std_ns()) {
        return Verdict::Fail(format!(
            "std {} != single-pass {} (order {order:?})",
            merged.std_ns(),
            whole.std_ns()
        ));
    }
    Verdict::Pass
}

/// Shared topology checks for the builder-shape properties: a sampled
/// host pair routes identically through the per-call BFS and the bounded
/// [`RouteTreeCache`] with at most `max_switch_hops` switches on the
/// path, and [`partition_network`] keeps every host on its switch's
/// shard with no shard left empty.
fn topology_shape_checks(
    topology: &Topology,
    max_switch_hops: usize,
    shards: usize,
    rng: &mut SplitMix64,
) -> Verdict {
    let hosts = topology.hosts();
    if hosts.len() >= 2 {
        let src = hosts[rng.gen_range(hosts.len() as u64) as usize];
        let mut dst = src;
        while dst == src {
            dst = hosts[rng.gen_range(hosts.len() as u64) as usize];
        }
        let direct = match topology.route(src, dst) {
            Ok(r) => r,
            Err(e) => return Verdict::Fail(format!("no route {src} -> {dst}: {e}")),
        };
        if direct.switch_hops() < 1 || direct.switch_hops() > max_switch_hops {
            return Verdict::Fail(format!(
                "route {src} -> {dst} crosses {} switches, outside [1, {max_switch_hops}]",
                direct.switch_hops()
            ));
        }
        let mut cache = RouteTreeCache::new();
        match cache.route(topology, src, dst) {
            Ok(cached) if cached.switch_hops() == direct.switch_hops() => {}
            Ok(cached) => {
                return Verdict::Fail(format!(
                    "cached route crosses {} switches, direct BFS {}",
                    cached.switch_hops(),
                    direct.switch_hops()
                ));
            }
            Err(e) => return Verdict::Fail(format!("cache route {src} -> {dst}: {e}")),
        }
    }

    let partition = partition_network(topology, shards);
    if partition.shards() < 1 || partition.shards() > shards.max(1) {
        return Verdict::Fail(format!(
            "{} shards used for a request of {shards}",
            partition.shards()
        ));
    }
    let mut owned = vec![0usize; partition.shards()];
    for node in topology.nodes() {
        let shard = partition.shard_of(node.id());
        if shard >= partition.shards() {
            return Verdict::Fail(format!(
                "node {} assigned to shard {shard} of {}",
                node.id(),
                partition.shards()
            ));
        }
        if node.is_switch() {
            owned[shard] += 1;
        }
    }
    for &host in hosts {
        let Some(switch) = topology.switch_of_host(host) else {
            return Verdict::Fail(format!("host {host} has no switch"));
        };
        if partition.shard_of(host) != partition.shard_of(switch) {
            return Verdict::Fail(format!(
                "host {host} on shard {} away from its switch's shard {}",
                partition.shard_of(host),
                partition.shard_of(switch)
            ));
        }
    }
    if let Some(empty) = owned.iter().position(|&n| n == 0) {
        return Verdict::Fail(format!("shard {empty} owns no switch"));
    }
    Verdict::Pass
}

/// The fat-tree builder produces the Clos arithmetic — `(k/2)²` cores,
/// `k` pods of `k` switches, `hosts_per_edge` hosts per edge switch and
/// the matching link count — with every host pair at most 5 switch hops
/// apart (edge-agg-core-agg-edge) and a partition-compatible shape.
fn fat_tree_shape(case: &ParamCase) -> Verdict {
    let half = case.value("half") as usize;
    let k = 2 * half;
    let hpe = 1 + (case.value("hpe_raw") as usize) % half;
    let topology = match presets::fat_tree_with_hosts(k, hpe) {
        Ok(t) => t,
        Err(e) => return Verdict::Fail(format!("in-domain fat-tree rejected: {e}")),
    };
    let switches = topology.switches().len();
    if switches != half * half + 2 * k * half {
        return Verdict::Fail(format!(
            "k={k}: {switches} switches != (k/2)² cores + k pods × k"
        ));
    }
    let hosts = topology.hosts().len();
    if hosts != hpe * k * half {
        return Verdict::Fail(format!(
            "k={k}, hosts_per_edge={hpe}: {hosts} hosts != hpe × k²/2"
        ));
    }
    let links = topology.links().len();
    if links != hosts + 4 * half * half * half {
        return Verdict::Fail(format!(
            "k={k}: {links} links != {hosts} host links + k³/2 fabric links"
        ));
    }
    let mut rng = SplitMix64::seed_from_u64(case.value("seed"));
    topology_shape_checks(&topology, 5, case.value("shards") as usize, &mut rng)
}

/// The multi-ring builder produces `rings × ring_size` switches,
/// `rings × hosts_per_ring` hosts, cycle-plus-backbone links, and routes
/// bounded by two half-ring walks plus half the backbone.
fn multi_ring_shape(case: &ParamCase) -> Verdict {
    let rings = case.value("rings") as usize;
    let ring_size = case.value("ring_size") as usize;
    let hpr = 1 + (case.value("hpr_raw") as usize) % ring_size;
    let topology = match presets::multi_ring(rings, ring_size, hpr) {
        Ok(t) => t,
        Err(e) => return Verdict::Fail(format!("in-domain multi-ring rejected: {e}")),
    };
    let switches = topology.switches().len();
    if switches != rings * ring_size {
        return Verdict::Fail(format!("{switches} switches != rings × ring_size"));
    }
    let hosts = topology.hosts().len();
    if hosts != rings * hpr {
        return Verdict::Fail(format!("{hosts} hosts != rings × hosts_per_ring"));
    }
    let backbone = match rings {
        1 => 0,
        2 => 1,
        n => n,
    };
    let links = topology.links().len();
    if links != hosts + rings * ring_size + backbone {
        return Verdict::Fail(format!(
            "{links} links != {hosts} host + {} cell + {backbone} backbone",
            rings * ring_size
        ));
    }
    // Worst case: half a ring to the gateway, half the backbone ring,
    // half a ring to the destination switch.
    let max_hops = 2 * (ring_size / 2) + rings / 2 + 1;
    let mut rng = SplitMix64::seed_from_u64(case.value("seed"));
    topology_shape_checks(&topology, max_hops, case.value("shards") as usize, &mut rng)
}

/// The log2 histogram sketch lands every quantile in the same bucket as
/// the exact rank-`⌈q·n⌉` order statistic (≤ 1 bucket of rank error),
/// clamped inside the observed `[min, max]`, with monotone tails.
fn quantile_rank_error(case: &ParamCase) -> Verdict {
    let n = case.value("samples");
    let max_ns = case.value("max_ns");
    let mut rng = SplitMix64::seed_from_u64(case.value("seed"));
    let mut samples: Vec<u64> = (0..n).map(|_| rng.gen_range_in(1, max_ns)).collect();
    let mut stats = LatencyStats::new();
    for &ns in &samples {
        stats.record(SimDuration::from_nanos(ns));
    }
    samples.sort_unstable();

    let q = case.value("q_permille") as f64 / 1000.0;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    let exact = samples[(rank - 1) as usize];
    let Some(est) = stats.quantile(q) else {
        return Verdict::Fail("non-empty stats returned no quantile".into());
    };
    let est = est.as_nanos();
    if est < samples[0] || est > samples[n as usize - 1] {
        return Verdict::Fail(format!(
            "q={q}: estimate {est} outside the observed [{}, {}]",
            samples[0],
            samples[n as usize - 1]
        ));
    }
    if hist_bucket(est).abs_diff(hist_bucket(exact)) > 1 {
        return Verdict::Fail(format!(
            "q={q}: estimate {est} (bucket {}) vs exact rank-{rank} sample {exact} (bucket {})",
            hist_bucket(est),
            hist_bucket(exact)
        ));
    }
    let (p50, p99, p999) = (stats.p50(), stats.p99(), stats.p999());
    if p50 > p99 || p99 > p999 {
        return Verdict::Fail(format!("tails not monotone: {p50:?} {p99:?} {p999:?}"));
    }
    Verdict::Pass
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_property_passes_its_legacy_family() {
        // Mirrors what CI replays from the corpus seed pins, so a
        // property regression is caught even without the corpus files.
        for prop in PROPERTIES {
            let runner = crate::runner::Runner::new(prop.legacy_cases.min(64), prop.legacy_seed);
            let report = runner.run(
                prop.name,
                &|rng: &mut SplitMix64| prop.spec.generate(rng),
                |case| (prop.oracle)(case),
            );
            assert!(
                report.passed(),
                "{}: {:?}",
                prop.name,
                report.failure.map(|f| f.shrunk.message)
            );
            assert_eq!(report.discarded, 0, "{} discards nothing", prop.name);
        }
    }

    #[test]
    fn param_cases_round_trip_and_shrink_within_floors() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for prop in PROPERTIES {
            let case = prop.spec.generate(&mut rng);
            let back = ParamCase::from_fields(&case.to_fields()).expect("decodes");
            assert_eq!(back.fields, case.fields, "{}", prop.name);
            for candidate in case.shrink_candidates() {
                for (i, &(_, v)) in candidate.fields.iter().enumerate() {
                    assert!(v >= case.floors[i], "{}: shrank below floor", prop.name);
                }
            }
        }
    }

    #[test]
    fn property_lookup_finds_all() {
        for prop in PROPERTIES {
            assert!(property_by_name(prop.name).is_some());
        }
        assert!(property_by_name("nope").is_none());
    }
}
