//! Regenerators for every table and figure of the TSN-Builder paper.
//!
//! One binary per artifact (run with `cargo run -p tsn-experiments --release --bin <name>`):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — queue/buffer configurations and their BRAM totals |
//! | `fig2` | Fig. 2 — TS latency vs BE/RC background for both Table I cases |
//! | `table3` | Table III — BRAM usage: commercial vs star/linear/ring |
//! | `fig7a` | Fig. 7(a) — latency vs hop count |
//! | `fig7b` | Fig. 7(b) — latency vs packet size |
//! | `fig7c` | Fig. 7(c) — latency vs slot length |
//! | `fig7d` | Fig. 7(d) — latency vs RC+BE background load |
//! | `sync_precision` | §IV.A — gPTP precision across the 6-switch chain |
//! | `itp_ablation` | §V — injection planning strategies vs queue depth |
//!
//! Each binary prints a paper-style table and writes `results/<name>.json`.
//! The multi-point binaries run their sweep in parallel through
//! [`tsn_builder::scenario`]; set `TSN_SWEEP_WORKERS=1` to force a serial
//! run (the reports are identical either way).

pub mod json;
pub mod util;
