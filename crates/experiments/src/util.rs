//! Shared plumbing for the experiment regenerators.

use crate::json::{Json, ToJson};
use std::path::PathBuf;
use tsn_builder::ScenarioOutcome;
use tsn_sim::network::{Network, SimConfig, SyncSetup};
use tsn_sim::sweep::SweepError;
use tsn_sim::SimReport;
use tsn_topology::{LinkDirection, Topology};
use tsn_types::{DataRate, FlowMap, FlowSet, NodeId, SimDuration, TrafficClass, TsnResult};

/// One measured point of a latency figure.
#[derive(Debug, Clone)]
pub struct QosPoint {
    /// X-axis label (hops, bytes, slot µs, background Mbps, …).
    pub x: u64,
    /// Mean TS latency, µs.
    pub mean_us: f64,
    /// Jitter (mean per-flow latency std-dev), µs.
    pub jitter_us: f64,
    /// Minimum TS latency, µs.
    pub min_us: f64,
    /// Maximum TS latency, µs.
    pub max_us: f64,
    /// Median TS latency (streaming log2-histogram estimate), µs.
    pub p50_us: f64,
    /// 99th-percentile TS latency (streaming log2-histogram estimate), µs.
    pub p99_us: f64,
    /// 99.9th-percentile TS latency (streaming log2-histogram estimate),
    /// µs.
    pub p999_us: f64,
    /// TS frames lost.
    pub loss: u64,
    /// TS frames injected.
    pub injected: u64,
}

impl QosPoint {
    /// Extracts the TS QoS numbers from a finished run.
    #[must_use]
    pub fn from_report(x: u64, report: &SimReport) -> Self {
        let ts = report.ts_latency();
        QosPoint {
            x,
            mean_us: ts.mean_us(),
            jitter_us: report
                .analyzer
                .class_mean_flow_jitter_ns(TrafficClass::TimeSensitive)
                / 1000.0,
            min_us: ts.min().map_or(0.0, |d| d.as_micros_f64()),
            max_us: ts.max().map_or(0.0, |d| d.as_micros_f64()),
            p50_us: ts.p50().map_or(0.0, |d| d.as_micros_f64()),
            p99_us: ts.p99().map_or(0.0, |d| d.as_micros_f64()),
            p999_us: ts.p999().map_or(0.0, |d| d.as_micros_f64()),
            loss: report.ts_lost(),
            injected: report.ts_injected(),
        }
    }
}

impl ToJson for QosPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("x", self.x.to_json()),
            ("mean_us", self.mean_us.to_json()),
            ("jitter_us", self.jitter_us.to_json()),
            ("min_us", self.min_us.to_json()),
            ("max_us", self.max_us.to_json()),
            ("p50_us", self.p50_us.to_json()),
            ("p99_us", self.p99_us.to_json()),
            ("p999_us", self.p999_us.to_json()),
            ("loss", self.loss.to_json()),
            ("injected", self.injected.to_json()),
        ])
    }
}

/// Prints a QoS series as an aligned table.
pub fn print_series(title: &str, x_label: &str, points: &[QosPoint]) {
    println!("\n== {title} ==");
    println!(
        "{x_label:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "avg(us)", "jitter(us)", "min(us)", "max(us)", "p50(us)", "p99(us)", "loss", "injected"
    );
    for p in points {
        println!(
            "{:>12} {:>12.1} {:>12.2} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8} {:>10}",
            p.x, p.mean_us, p.jitter_us, p.min_us, p.max_us, p.p50_us, p.p99_us, p.loss, p.injected
        );
    }
}

/// Writes an experiment's JSON record to `results/<name>.json`, so
/// EXPERIMENTS.md entries are reproducible.
pub fn dump_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if std::fs::write(&path, value.to_json().pretty()).is_ok() {
        println!("[results written to {}]", path.display());
    }
}

/// Unwraps a sweep's results, panicking with the failing scenario's label
/// and error on the first bad entry (a failed build is a broken
/// experiment, not a user error). Results keep their input order.
#[must_use]
pub fn expect_outcomes(
    what: &str,
    results: Vec<Result<ScenarioOutcome, SweepError>>,
) -> Vec<ScenarioOutcome> {
    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("{what}: scenario #{i} failed: {e}")))
        .collect()
}

/// A unidirectional ring of `switches` switches with one *tester* host on
/// switch 0 and one *analyzer* host on each switch named in
/// `analyzer_switches` (switch 0 may also carry an analyzer — that is the
/// 1-hop case of Fig. 7(a)).
///
/// Returns `(topology, tester, analyzers)` with `analyzers[i]` attached
/// to `analyzer_switches[i]`.
///
/// # Errors
///
/// Propagates topology-construction errors.
pub fn ring_with_analyzers(
    switches: usize,
    analyzer_switches: &[usize],
) -> TsnResult<(Topology, NodeId, Vec<NodeId>)> {
    let mut topo = Topology::new();
    let sw: Vec<NodeId> = (0..switches)
        .map(|i| topo.add_switch(format!("sw{i}")))
        .collect();
    for i in 0..switches {
        topo.connect_with(
            sw[i],
            sw[(i + 1) % switches],
            DataRate::gbps(1),
            SimDuration::from_nanos(50),
            LinkDirection::AToB,
        )?;
    }
    let tester = topo.add_host("tester");
    topo.connect(tester, sw[0], DataRate::gbps(1))?;
    let mut analyzers = Vec::with_capacity(analyzer_switches.len());
    for (i, &s) in analyzer_switches.iter().enumerate() {
        let analyzer = topo.add_host(format!("analyzer{i}"));
        topo.connect(analyzer, sw[s], DataRate::gbps(1))?;
        analyzers.push(analyzer);
    }
    Ok((topo, tester, analyzers))
}

/// Builds and runs a network with explicit offsets, panicking with a
/// readable message on failure (a failed build is a broken experiment,
/// not a user error).
#[must_use]
pub fn run_network(
    topology: Topology,
    flows: FlowSet,
    offsets: &FlowMap<SimDuration>,
    config: SimConfig,
) -> SimReport {
    Network::build(topology, flows, offsets, config)
        .expect("experiment network must build")
        .run()
}

/// The default measurement config used by the figures: 100 ms of
/// traffic, gPTP sync. The intra-run shard count comes from
/// [`sim_shards`], so every figure binary honors `--shards` /
/// `TSN_SIM_SHARDS` without per-binary plumbing.
#[must_use]
pub fn figure_config(slot: SimDuration, resources: tsn_resource::ResourceConfig) -> SimConfig {
    let mut config = SimConfig::paper_defaults();
    config.slot = slot;
    config.resources = resources;
    config.duration = SimDuration::from_millis(100);
    config.sync = SyncSetup::default();
    config.shards = sim_shards();
    config
}

/// The intra-run shard count for an experiment binary: a `--shards N` /
/// `--shards=N` command-line flag wins, otherwise the `TSN_SIM_SHARDS`
/// environment variable, otherwise 1 (serial). Reports are byte-identical
/// for any value, so this only changes how the simulator spends cores.
#[must_use]
pub fn sim_shards() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--shards" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                if n >= 1 {
                    return n;
                }
            }
        } else if let Some(v) = arg.strip_prefix("--shards=") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    tsn_sim::sweep::shards_from_env()
}
