//! Extension experiment: frame preemption (802.1Qbu/802.3br) under the
//! Fig. 7(d) workload.
//!
//! Without preemption a TS frame can wait behind one full MTU frame per
//! hop (~12 µs at 1 Gbps); with preemption the wait shrinks to one
//! minimum fragment (~0.7 µs). The TS *mean* barely moves (CQF already
//! hides the blocking inside the slot), but max latency and jitter tighten
//! — the future-work knob the paper's platform would add next.

use serde::Serialize;
use tsn_builder::{cqf, itp, workloads, AppRequirements, CqfPlan};
use tsn_experiments::util::{dump_json, figure_config, print_series, ring_with_analyzers, QosPoint};
use tsn_resource::ResourceConfig;
use tsn_sim::network::Network;
use tsn_types::{BeFlowSpec, DataRate, FlowId, RcFlowSpec, SimDuration};

#[derive(Serialize)]
struct Series {
    preemption: bool,
    points: Vec<QosPoint>,
    total_preemptions: u64,
}

fn sweep(preemption: bool) -> Series {
    let slot = cqf::PAPER_SLOT;
    let mut points = Vec::new();
    let mut total_preemptions = 0;
    for mbps in (0..=400).step_by(100) {
        let (topo, tester, analyzers) = ring_with_analyzers(6, &[2]).expect("topology builds");
        let mut flows = workloads::ts_flows_fixed_path(
            512,
            tester,
            analyzers[0],
            64,
            SimDuration::from_millis(8),
        )
        .expect("workload builds");
        if mbps > 0 {
            flows.push(
                RcFlowSpec::new(FlowId::new(5000), tester, analyzers[0], DataRate::mbps(mbps), 1500)
                    .expect("valid rc")
                    .into(),
            );
            flows.push(
                BeFlowSpec::new(FlowId::new(5001), tester, analyzers[0], DataRate::mbps(mbps), 1500)
                    .expect("valid be")
                    .into(),
            );
        }
        let requirements =
            AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
                .expect("valid requirements");
        let plan = CqfPlan::with_slot(&requirements, slot, DataRate::gbps(1)).expect("feasible");
        let offsets = itp::plan(&requirements, &plan, itp::Strategy::GreedyLeastLoaded)
            .expect("itp plans")
            .offsets;
        let mut config = figure_config(slot, ResourceConfig::new());
        config.frame_preemption = preemption;
        let report = Network::build(topo, flows, &offsets, config)
            .expect("network builds")
            .run();
        total_preemptions += report.preemptions;
        points.push(QosPoint::from_report(mbps, &report));
    }
    Series {
        preemption,
        points,
        total_preemptions,
    }
}

fn main() {
    let off = sweep(false);
    let on = sweep(true);
    print_series(
        "Fig. 7(d) workload, store-and-forward (no preemption)",
        "bg Mbps",
        &off.points,
    );
    print_series(
        &format!(
            "Fig. 7(d) workload, 802.3br preemption ({} preemptions)",
            on.total_preemptions
        ),
        "bg Mbps",
        &on.points,
    );
    println!("\nworst-case TS latency and jitter, with vs without preemption:");
    for (a, b) in off.points.iter().zip(on.points.iter()) {
        println!(
            "  bg {:>4} Mbps: max {:>7.1} -> {:>7.1} us | jitter {:>5.2} -> {:>5.2} us",
            a.x, a.max_us, b.max_us, a.jitter_us, b.jitter_us
        );
    }
    dump_json("preemption", &vec![off, on]);
}
