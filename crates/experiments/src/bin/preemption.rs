//! Extension experiment: frame preemption (802.1Qbu/802.3br) under the
//! Fig. 7(d) workload.
//!
//! Without preemption a TS frame can wait behind one full MTU frame per
//! hop (~12 µs at 1 Gbps); with preemption the wait shrinks to one
//! minimum fragment (~0.7 µs). The TS *mean* barely moves (CQF already
//! hides the blocking inside the slot), but max latency and jitter tighten
//! — the future-work knob the paper's platform would add next.
//!
//! All ten runs (2 modes × 5 loads) go through one parallel sweep; the
//! on/off pairs share each load's topology and flows, so every CQF/ITP
//! plan is computed once.

use tsn_builder::{cqf, workloads, Scenario, SweepPlanner};
use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::{
    dump_json, expect_outcomes, figure_config, print_series, ring_with_analyzers, QosPoint,
};
use tsn_resource::ResourceConfig;
use tsn_sim::sweep::workers_from_env;
use tsn_types::{BeFlowSpec, DataRate, FlowId, RcFlowSpec, SimDuration};

const LOADS_MBPS: [u64; 5] = [0, 100, 200, 300, 400];

struct Series {
    preemption: bool,
    points: Vec<QosPoint>,
    total_preemptions: u64,
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::obj([
            ("preemption", self.preemption.to_json()),
            ("points", self.points.to_json()),
            ("total_preemptions", self.total_preemptions.to_json()),
        ])
    }
}

fn point_scenario(preemption: bool, mbps: u64) -> Scenario {
    let slot = cqf::PAPER_SLOT;
    let (topo, tester, analyzers) = ring_with_analyzers(6, &[2]).expect("topology builds");
    let mut flows =
        workloads::ts_flows_fixed_path(512, tester, analyzers[0], 64, SimDuration::from_millis(8))
            .expect("workload builds");
    if mbps > 0 {
        flows.push(
            RcFlowSpec::new(
                FlowId::new(5000),
                tester,
                analyzers[0],
                DataRate::mbps(mbps),
                1500,
            )
            .expect("valid rc")
            .into(),
        );
        flows.push(
            BeFlowSpec::new(
                FlowId::new(5001),
                tester,
                analyzers[0],
                DataRate::mbps(mbps),
                1500,
            )
            .expect("valid be")
            .into(),
        );
    }
    let mut config = figure_config(slot, ResourceConfig::new());
    config.frame_preemption = preemption;
    Scenario::explicit(
        format!("preemption={preemption}/bg={mbps}"),
        topo,
        flows,
        config,
    )
}

fn main() {
    let mut scenarios = Vec::new();
    for preemption in [false, true] {
        for &mbps in &LOADS_MBPS {
            scenarios.push(point_scenario(preemption, mbps));
        }
    }
    let planner = SweepPlanner::new();
    let outcomes = expect_outcomes("preemption", planner.run(&scenarios, workers_from_env()));
    println!(
        "[{} scenarios, {} plans computed, {} served from cache]",
        scenarios.len(),
        planner.planning_misses(),
        planner.planning_hits()
    );

    let mut series = Vec::new();
    let mut cursor = outcomes.into_iter();
    for preemption in [false, true] {
        let mut points = Vec::new();
        let mut total_preemptions = 0;
        for &mbps in &LOADS_MBPS {
            let outcome = cursor.next().expect("one outcome per scenario");
            total_preemptions += outcome.report.preemptions;
            points.push(QosPoint::from_report(mbps, &outcome.report));
        }
        series.push(Series {
            preemption,
            points,
            total_preemptions,
        });
    }
    let (off, on) = (&series[0], &series[1]);

    print_series(
        "Fig. 7(d) workload, store-and-forward (no preemption)",
        "bg Mbps",
        &off.points,
    );
    print_series(
        &format!(
            "Fig. 7(d) workload, 802.3br preemption ({} preemptions)",
            on.total_preemptions
        ),
        "bg Mbps",
        &on.points,
    );
    println!("\nworst-case TS latency and jitter, with vs without preemption:");
    for (a, b) in off.points.iter().zip(on.points.iter()) {
        println!(
            "  bg {:>4} Mbps: max {:>7.1} -> {:>7.1} us | jitter {:>5.2} -> {:>5.2} us",
            a.x, a.max_us, b.max_us, a.jitter_us, b.jitter_us
        );
    }
    dump_json("preemption", &series);
}
