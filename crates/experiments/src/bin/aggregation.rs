//! Ablation (§III.C guideline 1): table aggregation by transmission path.
//!
//! "The number of entries for each table is equal to the number of
//! application flows in the worst case. For optimal configurations, some
//! table entries could be aggregated according to the transmission
//! path." — one aggregated any-VLAN entry per *destination* replaces one
//! exact entry per *flow* in the switch table; QoS must be unchanged.

use serde::Serialize;
use tsn_builder::{workloads, DeriveOptions, TsnBuilder};
use tsn_experiments::util::dump_json;
use tsn_resource::AllocationPolicy;
use tsn_sim::network::SyncSetup;
use tsn_topology::presets;
use tsn_types::SimDuration;

#[derive(Serialize)]
struct AggRow {
    mode: String,
    unicast_size: u32,
    switch_tbl_kb: f64,
    total_kb: f64,
    ts_lost: u64,
    mean_us: f64,
}

fn run(aggregate: bool) -> AggRow {
    let topo = presets::ring(6, 3).expect("topology builds");
    let flows = workloads::iec60802_ts_flows(&topo, 1024, 42).expect("workload builds");
    let mut options = DeriveOptions::automatic();
    options.slot = Some(tsn_builder::PAPER_SLOT);
    options.aggregate_switch_tbl = aggregate;
    let customization = TsnBuilder::new(topo, flows, SimDuration::from_nanos(50))
        .expect("valid requirements")
        .derive(&options)
        .expect("derivation succeeds");
    let report = customization.usage_report(AllocationPolicy::PaperAccounting);
    let sim = customization
        .synthesize_network(SimDuration::from_millis(60), SyncSetup::Perfect)
        .expect("network builds")
        .run();
    AggRow {
        mode: if aggregate { "aggregated (per destination)" } else { "exact (per flow)" }.into(),
        unicast_size: customization.derived().resources.unicast_size(),
        switch_tbl_kb: report.row("Switch Tbl").expect("row").kb(),
        total_kb: report.total_kb(),
        ts_lost: sim.ts_lost(),
        mean_us: sim.ts_latency().mean_us(),
    }
}

fn main() {
    println!("Switch-table aggregation ablation — 1024 TS flows, 3 destinations, ring(6)\n");
    println!(
        "{:<30} {:>12} {:>14} {:>10} {:>8} {:>10}",
        "mode", "entries", "switch BRAM", "total", "TS loss", "avg(us)"
    );
    let rows = vec![run(false), run(true)];
    for r in &rows {
        println!(
            "{:<30} {:>12} {:>12}Kb {:>8}Kb {:>8} {:>10.1}",
            r.mode, r.unicast_size, r.switch_tbl_kb, r.total_kb, r.ts_lost, r.mean_us
        );
    }
    println!(
        "\nswitch-table BRAM saved by aggregation: {}Kb, identical QoS: {}",
        rows[0].switch_tbl_kb - rows[1].switch_tbl_kb,
        rows[0].ts_lost == 0
            && rows[1].ts_lost == 0
            && (rows[0].mean_us - rows[1].mean_us).abs() < 1.0
    );
    dump_json("aggregation", &rows);
}
