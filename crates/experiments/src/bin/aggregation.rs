//! Ablation (§III.C guideline 1): table aggregation by transmission path.
//!
//! "The number of entries for each table is equal to the number of
//! application flows in the worst case. For optimal configurations, some
//! table entries could be aggregated according to the transmission
//! path." — one aggregated any-VLAN entry per *destination* replaces one
//! exact entry per *flow* in the switch table; QoS must be unchanged.
//!
//! Both modes derive and simulate in parallel through the scenario sweep.

use tsn_builder::{run_scenarios, workloads, DeriveOptions, Scenario};
use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::{dump_json, expect_outcomes, sim_shards};
use tsn_resource::{AllocationPolicy, UsageReport};
use tsn_sim::network::{SimConfig, SyncSetup};
use tsn_sim::sweep::workers_from_env;
use tsn_topology::presets;
use tsn_types::SimDuration;

struct AggRow {
    mode: String,
    unicast_size: u32,
    switch_tbl_kb: f64,
    total_kb: f64,
    ts_lost: u64,
    mean_us: f64,
}

impl ToJson for AggRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("mode", self.mode.to_json()),
            ("unicast_size", self.unicast_size.to_json()),
            ("switch_tbl_kb", self.switch_tbl_kb.to_json()),
            ("total_kb", self.total_kb.to_json()),
            ("ts_lost", self.ts_lost.to_json()),
            ("mean_us", self.mean_us.to_json()),
        ])
    }
}

fn scenario(aggregate: bool) -> Scenario {
    let topo = presets::ring(6, 3).expect("topology builds");
    let flows = workloads::iec60802_ts_flows(&topo, 1024, 42).expect("workload builds");
    let mut options = DeriveOptions::automatic();
    options.slot = Some(tsn_builder::PAPER_SLOT);
    options.aggregate_switch_tbl = aggregate;
    let mut config = SimConfig::paper_defaults();
    config.duration = SimDuration::from_millis(60);
    config.sync = SyncSetup::Perfect;
    config.shards = sim_shards();
    Scenario::derived(
        if aggregate {
            "aggregated (per destination)"
        } else {
            "exact (per flow)"
        },
        topo,
        flows,
        options,
        config,
    )
}

fn main() {
    println!("Switch-table aggregation ablation — 1024 TS flows, 3 destinations, ring(6)\n");
    println!(
        "{:<30} {:>12} {:>14} {:>10} {:>8} {:>10}",
        "mode", "entries", "switch BRAM", "total", "TS loss", "avg(us)"
    );
    let scenarios = vec![scenario(false), scenario(true)];
    let outcomes = expect_outcomes("aggregation", run_scenarios(&scenarios, workers_from_env()));
    let rows: Vec<AggRow> = outcomes
        .iter()
        .map(|outcome| {
            let report = UsageReport::of(&outcome.resources, AllocationPolicy::PaperAccounting);
            AggRow {
                mode: outcome.label.clone(),
                unicast_size: outcome.resources.unicast_size(),
                switch_tbl_kb: report.row("Switch Tbl").expect("row").kb(),
                total_kb: report.total_kb(),
                ts_lost: outcome.report.ts_lost(),
                mean_us: outcome.report.ts_latency().mean_us(),
            }
        })
        .collect();
    for r in &rows {
        println!(
            "{:<30} {:>12} {:>12}Kb {:>8}Kb {:>8} {:>10.1}",
            r.mode, r.unicast_size, r.switch_tbl_kb, r.total_kb, r.ts_lost, r.mean_us
        );
    }
    println!(
        "\nswitch-table BRAM saved by aggregation: {}Kb, identical QoS: {}",
        rows[0].switch_tbl_kb - rows[1].switch_tbl_kb,
        rows[0].ts_lost == 0
            && rows[1].ts_lost == 0
            && (rows[0].mean_us - rows[1].mean_us).abs() < 1.0
    );
    dump_json("aggregation", &rows);
}
