//! Extension experiment: network-wide BRAM under three provisioning
//! granularities.
//!
//! The paper's Table III prices *one switch*; a deployment buys N of
//! them. Three ways to provision a whole network:
//!
//! 1. COTS — every switch is a BCM53154;
//! 2. uniform customization (the paper) — every switch gets the
//!    worst-case column of its scenario;
//! 3. per-switch customization (this repo's extension) — each switch is
//!    sized by its *own* enabled-port count.

use serde::Serialize;
use tsn_builder::{workloads, AppRequirements, DeriveOptions, PerSwitchConfig};
use tsn_experiments::util::dump_json;
use tsn_resource::{baseline, AllocationPolicy};
use tsn_topology::presets;
use tsn_types::SimDuration;

#[derive(Serialize)]
struct NetworkRow {
    scenario: String,
    switches: usize,
    cots_kb: f64,
    uniform_kb: f64,
    per_switch_kb: f64,
    saving_vs_cots_pct: f64,
    extra_saving_vs_uniform_pct: f64,
}

fn measure(name: &str, topology: tsn_topology::Topology) -> NetworkRow {
    let flows = workloads::iec60802_ts_flows(&topology, 1024, 42).expect("workload builds");
    let requirements = AppRequirements::new(topology, flows, SimDuration::from_nanos(50))
        .expect("valid requirements");
    let cfg = PerSwitchConfig::derive(&requirements, &DeriveOptions::paper()).expect("derives");
    let policy = AllocationPolicy::PaperAccounting;
    let kb = |bits: u64| bits as f64 / 1024.0;
    let cots = baseline::bcm53154().total_bits(policy) * cfg.switch_count() as u64;
    let per_switch = cfg.network_total_bits(policy);
    NetworkRow {
        scenario: name.to_owned(),
        switches: cfg.switch_count(),
        cots_kb: kb(cots),
        uniform_kb: kb(cfg.uniform_total_bits(policy)),
        per_switch_kb: kb(per_switch),
        saving_vs_cots_pct: (1.0 - per_switch as f64 / cots as f64) * 100.0,
        extra_saving_vs_uniform_pct: cfg.saving_vs_uniform(policy),
    }
}

fn main() {
    println!("Network-wide BRAM: COTS vs uniform customization vs per-switch customization\n");
    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "scenario", "switches", "COTS", "uniform", "per-switch", "vs COTS", "vs uniform"
    );
    let rows = vec![
        measure("star(3)", presets::star(3, 3).expect("builds")),
        measure("linear(6)", presets::linear(6, 2).expect("builds")),
        measure("ring(6)", presets::ring(6, 3).expect("builds")),
    ];
    for r in &rows {
        println!(
            "{:<16} {:>9} {:>10}Kb {:>10}Kb {:>10}Kb {:>11.2}% {:>13.2}%",
            r.scenario,
            r.switches,
            r.cots_kb,
            r.uniform_kb,
            r.per_switch_kb,
            r.saving_vs_cots_pct,
            r.extra_saving_vs_uniform_pct
        );
    }
    println!(
        "\nTake-away: heterogeneous sizing buys extra savings exactly where the paper's \
         uniform column over-provisions (star children, linear edge switches); \
         symmetric rings gain nothing, as expected."
    );
    dump_json("network_totals", &rows);
}
