//! Extension experiment: network-wide BRAM under three provisioning
//! granularities.
//!
//! The paper's Table III prices *one switch*; a deployment buys N of
//! them. Three ways to provision a whole network:
//!
//! 1. COTS — every switch is a BCM53154;
//! 2. uniform customization (the paper) — every switch gets the
//!    worst-case column of its scenario;
//! 3. per-switch customization (this repo's extension) — each switch is
//!    sized by its *own* enabled-port count.
//!
//! The three scenarios derive in parallel through the sweep runner.

use tsn_builder::{workloads, AppRequirements, DeriveOptions, PerSwitchConfig};
use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::dump_json;
use tsn_resource::{baseline, AllocationPolicy};
use tsn_sim::sweep::{run_sweep, workers_from_env};
use tsn_topology::presets;
use tsn_types::SimDuration;

struct NetworkRow {
    scenario: String,
    switches: usize,
    cots_kb: f64,
    uniform_kb: f64,
    per_switch_kb: f64,
    saving_vs_cots_pct: f64,
    extra_saving_vs_uniform_pct: f64,
}

impl ToJson for NetworkRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("switches", self.switches.to_json()),
            ("cots_kb", self.cots_kb.to_json()),
            ("uniform_kb", self.uniform_kb.to_json()),
            ("per_switch_kb", self.per_switch_kb.to_json()),
            ("saving_vs_cots_pct", self.saving_vs_cots_pct.to_json()),
            (
                "extra_saving_vs_uniform_pct",
                self.extra_saving_vs_uniform_pct.to_json(),
            ),
        ])
    }
}

fn measure(name: &str, topology: tsn_topology::Topology) -> tsn_types::TsnResult<NetworkRow> {
    let flows = workloads::iec60802_ts_flows(&topology, 1024, 42)?;
    let requirements = AppRequirements::new(topology, flows, SimDuration::from_nanos(50))?;
    let cfg = PerSwitchConfig::derive(&requirements, &DeriveOptions::paper())?;
    let policy = AllocationPolicy::PaperAccounting;
    let kb = |bits: u64| bits as f64 / 1024.0;
    let cots = baseline::bcm53154().total_bits(policy) * cfg.switch_count() as u64;
    let per_switch = cfg.network_total_bits(policy);
    Ok(NetworkRow {
        scenario: name.to_owned(),
        switches: cfg.switch_count(),
        cots_kb: kb(cots),
        uniform_kb: kb(cfg.uniform_total_bits(policy)),
        per_switch_kb: kb(per_switch),
        saving_vs_cots_pct: (1.0 - per_switch as f64 / cots as f64) * 100.0,
        extra_saving_vs_uniform_pct: cfg.saving_vs_uniform(policy),
    })
}

fn main() {
    println!("Network-wide BRAM: COTS vs uniform customization vs per-switch customization\n");
    println!(
        "{:<16} {:>9} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "scenario", "switches", "COTS", "uniform", "per-switch", "vs COTS", "vs uniform"
    );
    let inputs = [
        ("star(3)", presets::star(3, 3).expect("builds")),
        ("linear(6)", presets::linear(6, 2).expect("builds")),
        ("ring(6)", presets::ring(6, 3).expect("builds")),
    ];
    let rows: Vec<NetworkRow> = run_sweep(&inputs, workers_from_env(), |_idx, (name, topology)| {
        measure(name, topology.clone())
    })
    .into_iter()
    .map(|r| r.expect("derivation succeeds"))
    .collect();
    for r in &rows {
        println!(
            "{:<16} {:>9} {:>10}Kb {:>10}Kb {:>10}Kb {:>11.2}% {:>13.2}%",
            r.scenario,
            r.switches,
            r.cots_kb,
            r.uniform_kb,
            r.per_switch_kb,
            r.saving_vs_cots_pct,
            r.extra_saving_vs_uniform_pct
        );
    }
    println!(
        "\nTake-away: heterogeneous sizing buys extra savings exactly where the paper's \
         uniform column over-provisions (star children, linear edge switches); \
         symmetric rings gain nothing, as expected."
    );
    dump_json("network_totals", &rows);
}
