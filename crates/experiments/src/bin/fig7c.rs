//! Fig. 7(c): end-to-end TS latency under different time slots.
//!
//! The paper: "The average latency and jitter are increased manyfold
//! according to the upper and lower bound in Eq. (1)." Latency must scale
//! linearly with the slot length.
//!
//! Each slot gets its own TSN-Builder derivation (larger slots
//! concentrate more frames per phase, so ITP re-derives the queue depth
//! and buffer count — the customization loop in action); the four
//! derive-and-simulate scenarios run in parallel through the sweep.

use tsn_builder::{run_scenarios, workloads, DeriveOptions, Scenario};
use tsn_experiments::util::{
    dump_json, expect_outcomes, figure_config, print_series, ring_with_analyzers, QosPoint,
};
use tsn_resource::ResourceConfig;
use tsn_sim::sweep::workers_from_env;
use tsn_types::SimDuration;

const SLOTS_US: [u64; 4] = [33, 65, 130, 195];

fn main() {
    let scenarios: Vec<Scenario> = SLOTS_US
        .iter()
        .map(|&slot_us| {
            let slot = SimDuration::from_micros(slot_us);
            let (topo, tester, analyzers) = ring_with_analyzers(6, &[2]).expect("topology builds");
            let flows = workloads::ts_flows_fixed_path(
                1024,
                tester,
                analyzers[0],
                64,
                SimDuration::from_millis(8),
            )
            .expect("workload builds");
            let mut options = DeriveOptions::automatic();
            options.slot = Some(slot);
            // The derivation replaces the config's slot and resources.
            Scenario::derived(
                format!("slot={slot_us}us"),
                topo,
                flows,
                options,
                figure_config(slot, ResourceConfig::new()),
            )
        })
        .collect();

    let outcomes = expect_outcomes("fig7c", run_scenarios(&scenarios, workers_from_env()));
    let mut points = Vec::new();
    let mut depths = Vec::new();
    for (outcome, &slot_us) in outcomes.iter().zip(&SLOTS_US) {
        points.push(QosPoint::from_report(slot_us, &outcome.report));
        depths.push((
            slot_us,
            outcome.resources.queue_depth(),
            outcome.resources.buffer_num(),
        ));
    }

    print_series(
        "Fig. 7(c) — latency vs slot size (3 hops)",
        "slot us",
        &points,
    );

    println!("\nper-slot derived resources (ITP re-sizing):");
    for (slot_us, depth, buffers) in &depths {
        println!("  slot {slot_us}us -> queue_depth {depth}, buffers {buffers}");
    }
    println!("\nlinearity check (mean latency / slot):");
    for p in &points {
        println!(
            "  slot {}us: mean/slot = {:.2}",
            p.x,
            p.mean_us / p.x as f64
        );
    }
    let loss: u64 = points.iter().map(|p| p.loss).sum();
    println!("total TS loss across the sweep: {loss}");
    dump_json("fig7c", &points);
}
