//! Fig. 7(c): end-to-end TS latency under different time slots.
//!
//! The paper: "The average latency and jitter are increased manyfold
//! according to the upper and lower bound in Eq. (1)." Latency must scale
//! linearly with the slot length.
//!
//! Each slot gets its own TSN-Builder derivation (larger slots
//! concentrate more frames per phase, so ITP re-derives the queue depth
//! and buffer count — the customization loop in action).

use tsn_builder::{itp, workloads, AppRequirements, CqfPlan, DeriveOptions};
use tsn_experiments::util::{dump_json, figure_config, print_series, ring_with_analyzers, run_network, QosPoint};
use tsn_types::{DataRate, SimDuration};

fn main() {
    let mut points = Vec::new();
    let mut depths = Vec::new();
    for slot_us in [33u64, 65, 130, 195] {
        let slot = SimDuration::from_micros(slot_us);
        let (topo, tester, analyzers) = ring_with_analyzers(6, &[2]).expect("topology builds");
        let flows = workloads::ts_flows_fixed_path(
            1024,
            tester,
            analyzers[0],
            64,
            SimDuration::from_millis(8),
        )
        .expect("workload builds");
        let requirements =
            AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
                .expect("valid requirements");
        let plan = CqfPlan::with_slot(&requirements, slot, DataRate::gbps(1)).expect("feasible");
        let planned = itp::plan(&requirements, &plan, itp::Strategy::GreedyLeastLoaded)
            .expect("itp plans");

        let mut options = DeriveOptions::automatic();
        options.slot = Some(slot);
        let derived = tsn_builder::derive_parameters(&requirements, &options).expect("derives");
        depths.push((slot_us, derived.resources.queue_depth(), derived.resources.buffer_num()));

        let report = run_network(
            topo,
            flows,
            &planned.offsets,
            figure_config(slot, derived.resources),
        );
        points.push(QosPoint::from_report(slot_us, &report));
    }

    print_series("Fig. 7(c) — latency vs slot size (3 hops)", "slot us", &points);

    println!("\nper-slot derived resources (ITP re-sizing):");
    for (slot_us, depth, buffers) in &depths {
        println!("  slot {slot_us}us -> queue_depth {depth}, buffers {buffers}");
    }
    println!("\nlinearity check (mean latency / slot):");
    for p in &points {
        println!("  slot {}us: mean/slot = {:.2}", p.x, p.mean_us / p.x as f64);
    }
    let loss: u64 = points.iter().map(|p| p.loss).sum();
    println!("total TS loss across the sweep: {loss}");
    dump_json("fig7c", &points);
}
