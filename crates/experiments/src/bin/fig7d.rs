//! Fig. 7(d): end-to-end TS latency under different background flows.
//!
//! RC and BE background is injected simultaneously at equal bandwidth
//! (the paper sweeps the load); "there is no affection on the latency and
//! jitter of critical TS flows" and packet loss stays zero.
//!
//! The five load points run in parallel through the scenario sweep.

use tsn_builder::{cqf, run_scenarios, workloads, Scenario};
use tsn_experiments::util::{
    dump_json, expect_outcomes, figure_config, print_series, ring_with_analyzers, QosPoint,
};
use tsn_resource::ResourceConfig;
use tsn_sim::sweep::workers_from_env;
use tsn_types::{BeFlowSpec, DataRate, FlowId, RcFlowSpec, SimDuration};

const LOADS_MBPS: [u64; 5] = [0, 100, 200, 300, 400];

fn main() {
    let slot = cqf::PAPER_SLOT;
    let scenarios: Vec<Scenario> = LOADS_MBPS
        .iter()
        .map(|&mbps| {
            let (topo, tester, analyzers) = ring_with_analyzers(6, &[2]).expect("topology builds");
            // 1023 TS + 1 RC stream = 1024 classification entries, the
            // paper's table budget (BE takes the PCP fallback).
            let mut flows = workloads::ts_flows_fixed_path(
                1023,
                tester,
                analyzers[0],
                64,
                SimDuration::from_millis(8),
            )
            .expect("workload builds");
            if mbps > 0 {
                // RC and BE at the same bandwidth, sharing the TS path.
                flows.push(
                    RcFlowSpec::new(
                        FlowId::new(5000),
                        tester,
                        analyzers[0],
                        DataRate::mbps(mbps),
                        workloads::BACKGROUND_FRAME_BYTES,
                    )
                    .expect("valid rc")
                    .into(),
                );
                flows.push(
                    BeFlowSpec::new(
                        FlowId::new(5001),
                        tester,
                        analyzers[0],
                        DataRate::mbps(mbps),
                        workloads::BACKGROUND_FRAME_BYTES,
                    )
                    .expect("valid be")
                    .into(),
                );
            }
            Scenario::explicit(
                format!("bg={mbps}Mbps"),
                topo,
                flows,
                figure_config(slot, ResourceConfig::new()),
            )
        })
        .collect();

    let outcomes = expect_outcomes("fig7d", run_scenarios(&scenarios, workers_from_env()));
    let points: Vec<QosPoint> = outcomes
        .iter()
        .zip(&LOADS_MBPS)
        .map(|(o, &mbps)| QosPoint::from_report(mbps, &o.report))
        .collect();

    print_series(
        "Fig. 7(d) — latency vs background load (RC+BE, each at x Mbps, 3 hops)",
        "bg Mbps",
        &points,
    );

    let means: Vec<f64> = points.iter().map(|p| p.mean_us).collect();
    let spread = means.iter().cloned().fold(f64::MIN, f64::max)
        - means.iter().cloned().fold(f64::MAX, f64::min);
    let loss: u64 = points.iter().map(|p| p.loss).sum();
    println!(
        "\nTS mean-latency spread over the load sweep: {spread:.2}us, TS loss {loss} \
         (paper: no effect, loss 0)"
    );
    dump_json("fig7d", &points);
}
