//! Ablation (§V "Selection of resource parameters"): how much of the
//! queue/buffer saving comes from injection-time planning?
//!
//! Compares the three offset strategies on the paper's 1024-flow ring
//! workload: the peak slot occupancy each produces is the `queue_depth`
//! (and, times 8 queues, the `buffer_num`) that must be provisioned —
//! plus the BRAM each provisioning costs.

use serde::Serialize;
use tsn_builder::{cqf::PAPER_SLOT, itp, workloads, AppRequirements, CqfPlan};
use tsn_experiments::util::dump_json;
use tsn_resource::{AllocationPolicy, ResourceConfig};
use tsn_topology::presets;
use tsn_types::{DataRate, SimDuration};

#[derive(Serialize)]
struct AblationRow {
    strategy: String,
    max_occupancy: u32,
    queue_depth: u32,
    buffer_num: u32,
    queue_buffer_kb: f64,
}

fn main() {
    let topo = presets::ring(6, 3).expect("topology builds");
    let flows = workloads::iec60802_ts_flows(&topo, 1024, 42).expect("workload builds");
    let requirements =
        AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).expect("valid requirements");
    let plan = CqfPlan::with_slot(&requirements, PAPER_SLOT, DataRate::gbps(1)).expect("feasible");

    println!("ITP ablation — 1024 TS flows, ring(6), slot 65us\n");
    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>14}",
        "strategy", "peak occupancy", "queue depth", "buffers", "queue+buf BRAM"
    );
    let mut rows = Vec::new();
    for strategy in [
        itp::Strategy::AllZero,
        itp::Strategy::UniformSpread,
        itp::Strategy::GreedyLeastLoaded,
    ] {
        let result = itp::plan(&requirements, &plan, strategy).expect("itp plans");
        let depth = result.recommended_queue_depth();
        let buffers = depth * 8;
        let mut resources = ResourceConfig::new();
        resources
            .set_queues(depth, 8, 1)
            .expect("valid")
            .set_buffers(buffers, 1)
            .expect("valid");
        let policy = AllocationPolicy::PaperAccounting;
        let kb = (resources.queue_bits(policy) + resources.buffer_bits(policy)) as f64 / 1024.0;
        println!(
            "{:<20} {:>14} {:>12} {:>12} {:>12}Kb",
            format!("{strategy:?}"),
            result.max_occupancy,
            depth,
            buffers,
            kb
        );
        rows.push(AblationRow {
            strategy: format!("{strategy:?}"),
            max_occupancy: result.max_occupancy,
            queue_depth: depth,
            buffer_num: buffers,
            queue_buffer_kb: kb,
        });
    }
    let naive = rows[0].queue_buffer_kb;
    let greedy = rows[2].queue_buffer_kb;
    println!(
        "\ngreedy ITP vs no planning: {:.1}% less queue+buffer BRAM \
         (the mechanism behind Table I's 540Kb saving)",
        (1.0 - greedy / naive) * 100.0
    );
    dump_json("itp_ablation", &rows);
}
