//! Ablation (§V "Selection of resource parameters"): how much of the
//! queue/buffer saving comes from injection-time planning?
//!
//! Compares the three offset strategies on the paper's 1024-flow ring
//! workload: the peak slot occupancy each produces is the `queue_depth`
//! (and, times 8 queues, the `buffer_num`) that must be provisioned —
//! plus the BRAM each provisioning costs. The three plans run in
//! parallel through the sweep runner.

use tsn_builder::{cqf::PAPER_SLOT, itp, workloads, AppRequirements, CqfPlan};
use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::dump_json;
use tsn_resource::{AllocationPolicy, ResourceConfig};
use tsn_sim::sweep::{run_sweep, workers_from_env};
use tsn_topology::presets;
use tsn_types::{DataRate, SimDuration};

struct AblationRow {
    strategy: String,
    max_occupancy: u32,
    queue_depth: u32,
    buffer_num: u32,
    queue_buffer_kb: f64,
}

impl ToJson for AblationRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("strategy", self.strategy.to_json()),
            ("max_occupancy", self.max_occupancy.to_json()),
            ("queue_depth", self.queue_depth.to_json()),
            ("buffer_num", self.buffer_num.to_json()),
            ("queue_buffer_kb", self.queue_buffer_kb.to_json()),
        ])
    }
}

fn main() {
    let topo = presets::ring(6, 3).expect("topology builds");
    let flows = workloads::iec60802_ts_flows(&topo, 1024, 42).expect("workload builds");
    let requirements =
        AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).expect("valid requirements");
    let plan = CqfPlan::with_slot(&requirements, PAPER_SLOT, DataRate::gbps(1)).expect("feasible");

    println!("ITP ablation — 1024 TS flows, ring(6), slot 65us\n");
    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>14}",
        "strategy", "peak occupancy", "queue depth", "buffers", "queue+buf BRAM"
    );
    let strategies = [
        itp::Strategy::AllZero,
        itp::Strategy::UniformSpread,
        itp::Strategy::GreedyLeastLoaded,
    ];
    let rows: Vec<AblationRow> = run_sweep(&strategies, workers_from_env(), |_idx, &strategy| {
        let result = itp::plan(&requirements, &plan, strategy)?;
        let depth = result.recommended_queue_depth();
        let buffers = depth * 8;
        let mut resources = ResourceConfig::new();
        resources.set_queues(depth, 8, 1)?.set_buffers(buffers, 1)?;
        let policy = AllocationPolicy::PaperAccounting;
        let kb = (resources.queue_bits(policy) + resources.buffer_bits(policy)) as f64 / 1024.0;
        Ok(AblationRow {
            strategy: format!("{strategy:?}"),
            max_occupancy: result.max_occupancy,
            queue_depth: depth,
            buffer_num: buffers,
            queue_buffer_kb: kb,
        })
    })
    .into_iter()
    .map(|r| r.expect("itp plans"))
    .collect();
    for row in &rows {
        println!(
            "{:<20} {:>14} {:>12} {:>12} {:>12}Kb",
            row.strategy, row.max_occupancy, row.queue_depth, row.buffer_num, row.queue_buffer_kb
        );
    }
    let naive = rows[0].queue_buffer_kb;
    let greedy = rows[2].queue_buffer_kb;
    println!(
        "\ngreedy ITP vs no planning: {:.1}% less queue+buffer BRAM \
         (the mechanism behind Table I's 540Kb saving)",
        (1.0 - greedy / naive) * 100.0
    );
    dump_json("itp_ablation", &rows);
}
