//! `customize` — the TSN-Builder command line: scenario file in,
//! customized switch out.
//!
//! ```text
//! cargo run --release -p tsn-experiments --bin customize -- scenarios/ring_demo.json
//! cargo run --release -p tsn-experiments --bin customize -- --sample   # write a template
//! ```
//!
//! The scenario file captures exactly what Section II.A says is known in
//! advance — topology, flows, precision — and the tool answers with the
//! Table II parameters, the Table III-style BRAM report, a simulation of
//! the scenario, and (optionally) the Verilog bundle.

use serde::{Deserialize, Serialize};
use std::path::Path;
use tsn_builder::{workloads, DeriveOptions, GateMode, TsnBuilder};
use tsn_resource::AllocationPolicy;
use tsn_sim::network::SyncSetup;
use tsn_topology::presets;
use tsn_types::{DataRate, SimDuration};

#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct ScenarioFile {
    topology: TopologySpec,
    flows: FlowsSpec,
    #[serde(default)]
    options: OptionsSpec,
    #[serde(default)]
    run: RunSpec,
}

#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct TopologySpec {
    /// `ring`, `linear` or `star`.
    kind: String,
    switches: usize,
    hosts: usize,
}

#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct FlowsSpec {
    ts_count: u32,
    #[serde(default = "default_frame_bytes")]
    frame_bytes: u32,
    #[serde(default = "default_seed")]
    seed: u64,
    #[serde(default)]
    rc_mbps: u64,
    #[serde(default)]
    be_mbps: u64,
}

fn default_frame_bytes() -> u32 {
    64
}

fn default_seed() -> u64 {
    42
}

#[derive(Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct OptionsSpec {
    /// CQF slot in µs; omitted = choose the largest feasible slot.
    slot_us: Option<u64>,
    /// Pin the queue depth (omitted = ITP-derived).
    queue_depth: Option<u32>,
    /// `cqf` (default) or `tas`.
    gate_mode: Option<String>,
    /// Aggregate the switch table per destination.
    #[serde(default)]
    aggregate_switch_tbl: bool,
    /// Enable 802.3br frame preemption in the simulation.
    #[serde(default)]
    frame_preemption: bool,
}

#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct RunSpec {
    #[serde(default = "default_duration_ms")]
    duration_ms: u64,
    #[serde(default = "default_true")]
    simulate: bool,
    /// Directory to write the Verilog bundle into (omitted = no HDL).
    emit_hdl: Option<String>,
}

fn default_duration_ms() -> u64 {
    100
}

fn default_true() -> bool {
    true
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            duration_ms: default_duration_ms(),
            simulate: true,
            emit_hdl: None,
        }
    }
}

fn sample() -> ScenarioFile {
    ScenarioFile {
        topology: TopologySpec {
            kind: "ring".into(),
            switches: 6,
            hosts: 3,
        },
        flows: FlowsSpec {
            ts_count: 256,
            frame_bytes: 64,
            seed: 42,
            rc_mbps: 100,
            be_mbps: 300,
        },
        options: OptionsSpec {
            slot_us: Some(65),
            queue_depth: None,
            gate_mode: Some("cqf".into()),
            aggregate_switch_tbl: false,
            frame_preemption: false,
        },
        run: RunSpec::default(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--sample") => {
            let path = Path::new("scenarios/sample.json");
            std::fs::create_dir_all("scenarios").expect("can create scenarios/");
            std::fs::write(
                path,
                serde_json::to_string_pretty(&sample()).expect("sample serializes"),
            )
            .expect("can write the sample");
            println!("wrote {}", path.display());
        }
        Some(path) => run_scenario(path),
        None => {
            eprintln!("usage: customize <scenario.json> | customize --sample");
            std::process::exit(2);
        }
    }
}

fn run_scenario(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let scenario: ScenarioFile =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad scenario file: {e}"));

    let topology = match scenario.topology.kind.as_str() {
        "ring" => presets::ring(scenario.topology.switches, scenario.topology.hosts),
        "linear" => presets::linear(scenario.topology.switches, scenario.topology.hosts),
        "star" => presets::star(scenario.topology.switches, scenario.topology.hosts),
        other => panic!("unknown topology kind {other:?} (ring|linear|star)"),
    }
    .unwrap_or_else(|e| panic!("topology: {e}"));

    let mut flows = workloads::ts_flows_sized(
        &topology,
        scenario.flows.ts_count,
        scenario.flows.frame_bytes,
        scenario.flows.seed,
    )
    .unwrap_or_else(|e| panic!("flows: {e}"));
    flows.extend(
        workloads::background_flows(
            &topology,
            DataRate::mbps(scenario.flows.rc_mbps),
            DataRate::mbps(scenario.flows.be_mbps),
            1_000_000,
        )
        .unwrap_or_else(|e| panic!("background: {e}")),
    );

    let mut options = DeriveOptions::automatic();
    options.slot = scenario.options.slot_us.map(SimDuration::from_micros);
    options.queue_depth_override = scenario.options.queue_depth;
    options.aggregate_switch_tbl = scenario.options.aggregate_switch_tbl;
    options.gate_mode = match scenario.options.gate_mode.as_deref() {
        None | Some("cqf") => GateMode::Cqf,
        Some("tas") => GateMode::Tas,
        Some(other) => panic!("unknown gate_mode {other:?} (cqf|tas)"),
    };

    let customization = TsnBuilder::new(topology, flows, SimDuration::from_nanos(50))
        .unwrap_or_else(|e| panic!("requirements: {e}"))
        .derive(&options)
        .unwrap_or_else(|e| panic!("derivation: {e}"));

    let derived = customization.derived();
    println!("== derived customization ==");
    println!(
        "slot {} | gate_size {} | queue depth {} | buffers {} | {} TSN port(s) | peak occupancy {}",
        derived.cqf.slot,
        derived.resources.gate_size(),
        derived.resources.queue_depth(),
        derived.resources.buffer_num(),
        derived.resources.port_num(),
        derived.itp.max_occupancy,
    );
    println!("\n{}", customization.usage_report(AllocationPolicy::PaperAccounting));
    println!(
        "\n{}",
        tsn_resource::ResourceView::of(
            &customization.derived().resources,
            AllocationPolicy::PaperAccounting
        )
    );
    println!(
        "\nsavings vs BCM53154: {:.2}%",
        customization.savings_vs_cots(AllocationPolicy::PaperAccounting)
    );

    if scenario.run.simulate {
        let preemption = scenario.options.frame_preemption;
        let report = customization
            .synthesize_network_configured(
                SimDuration::from_millis(scenario.run.duration_ms),
                SyncSetup::default(),
                |config| config.frame_preemption = preemption,
            )
            .unwrap_or_else(|e| panic!("synthesis: {e}"))
            .run();
        if preemption {
            println!("(frame preemption on: {} preemptions)", report.preemptions);
        }
        println!("\n== simulation ({}ms) ==\n{report}", scenario.run.duration_ms);
        if report.ts_lost() > 0 {
            eprintln!("warning: the scenario lost TS frames — resources are under-provisioned");
            std::process::exit(1);
        }
    }

    if let Some(dir) = scenario.run.emit_hdl {
        let bundle = customization
            .generate_hdl()
            .unwrap_or_else(|e| panic!("hdl: {e}"));
        std::fs::create_dir_all(&dir).expect("can create the HDL directory");
        for (name, src) in bundle.files() {
            std::fs::write(Path::new(&dir).join(name), src).expect("can write HDL");
        }
        println!("\nwrote {} Verilog files to {dir}/", bundle.files().len());
    }
}
