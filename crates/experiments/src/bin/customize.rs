//! `customize` — the TSN-Builder command line: scenario file in,
//! customized switch out.
//!
//! ```text
//! cargo run --release -p tsn-experiments --bin customize -- scenarios/ring_demo.json
//! cargo run --release -p tsn-experiments --bin customize -- a.json b.json c.json
//! cargo run --release -p tsn-experiments --bin customize -- --sample   # write a template
//! ```
//!
//! The scenario file captures exactly what Section II.A says is known in
//! advance — topology, flows, precision — and the tool answers with the
//! Table II parameters, the Table III-style BRAM report, a simulation of
//! the scenario, and (optionally) the Verilog bundle. Several scenario
//! files run as one parallel sweep (`TSN_SWEEP_WORKERS` overrides the
//! worker count); reports print in argument order.

use std::fmt::Write as _;
use std::path::Path;
use tsn_builder::{workloads, DeriveOptions, GateMode, TsnBuilder};
use tsn_experiments::json::{self, Json};
use tsn_experiments::util::sim_shards;
use tsn_resource::AllocationPolicy;
use tsn_sim::network::SyncSetup;
use tsn_sim::sweep::{run_sweep, workers_from_env};
use tsn_topology::presets;
use tsn_types::{DataRate, SimDuration, TsnError};

#[derive(Debug)]
struct ScenarioFile {
    topology: TopologySpec,
    flows: FlowsSpec,
    options: OptionsSpec,
    run: RunSpec,
}

#[derive(Debug)]
struct TopologySpec {
    /// `ring`, `linear` or `star`.
    kind: String,
    switches: usize,
    hosts: usize,
}

#[derive(Debug)]
struct FlowsSpec {
    ts_count: u32,
    frame_bytes: u32,
    seed: u64,
    rc_mbps: u64,
    be_mbps: u64,
}

#[derive(Debug, Default)]
struct OptionsSpec {
    /// CQF slot in µs; omitted = choose the largest feasible slot.
    slot_us: Option<u64>,
    /// Pin the queue depth (omitted = ITP-derived).
    queue_depth: Option<u32>,
    /// `cqf` (default) or `tas`.
    gate_mode: Option<String>,
    /// Aggregate the switch table per destination.
    aggregate_switch_tbl: bool,
    /// Enable 802.3br frame preemption in the simulation.
    frame_preemption: bool,
}

#[derive(Debug)]
struct RunSpec {
    duration_ms: u64,
    simulate: bool,
    /// Directory to write the Verilog bundle into (omitted = no HDL).
    emit_hdl: Option<String>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            duration_ms: 100,
            simulate: true,
            emit_hdl: None,
        }
    }
}

/// Rejects members outside `allowed` — the hand-rolled equivalent of
/// serde's `deny_unknown_fields`, so a typo fails loudly instead of
/// silently using a default.
fn check_fields(what: &str, value: &Json, allowed: &[&str]) -> Result<(), String> {
    for key in value.keys() {
        if !allowed.contains(&key) {
            return Err(format!(
                "{what}: unknown field {key:?} (allowed: {allowed:?})"
            ));
        }
    }
    Ok(())
}

fn req_u64(what: &str, value: &Json, key: &str) -> Result<u64, String> {
    value
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: {key:?} must be a non-negative integer"))
}

fn opt_u64(what: &str, value: &Json, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{what}: {key:?} must be a non-negative integer")),
    }
}

fn opt_bool(what: &str, value: &Json, key: &str) -> Result<Option<bool>, String> {
    match value.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("{what}: {key:?} must be a boolean")),
    }
}

fn parse_scenario(text: &str) -> Result<ScenarioFile, String> {
    let root = json::parse(text)?;
    check_fields("scenario", &root, &["topology", "flows", "options", "run"])?;

    let topo = root
        .get("topology")
        .ok_or("scenario: missing \"topology\"")?;
    check_fields("topology", topo, &["kind", "switches", "hosts"])?;
    let topology = TopologySpec {
        kind: topo
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("topology: \"kind\" must be a string")?
            .to_owned(),
        switches: req_u64("topology", topo, "switches")? as usize,
        hosts: req_u64("topology", topo, "hosts")? as usize,
    };

    let fl = root.get("flows").ok_or("scenario: missing \"flows\"")?;
    check_fields(
        "flows",
        fl,
        &["ts_count", "frame_bytes", "seed", "rc_mbps", "be_mbps"],
    )?;
    let flows = FlowsSpec {
        ts_count: req_u64("flows", fl, "ts_count")? as u32,
        frame_bytes: opt_u64("flows", fl, "frame_bytes")?.unwrap_or(64) as u32,
        seed: opt_u64("flows", fl, "seed")?.unwrap_or(42),
        rc_mbps: opt_u64("flows", fl, "rc_mbps")?.unwrap_or(0),
        be_mbps: opt_u64("flows", fl, "be_mbps")?.unwrap_or(0),
    };

    let mut options = OptionsSpec::default();
    if let Some(opts) = root.get("options") {
        check_fields(
            "options",
            opts,
            &[
                "slot_us",
                "queue_depth",
                "gate_mode",
                "aggregate_switch_tbl",
                "frame_preemption",
            ],
        )?;
        options.slot_us = opt_u64("options", opts, "slot_us")?;
        options.queue_depth = opt_u64("options", opts, "queue_depth")?.map(|d| d as u32);
        options.gate_mode = match opts.get("gate_mode") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("options: \"gate_mode\" must be a string")?
                    .to_owned(),
            ),
        };
        options.aggregate_switch_tbl =
            opt_bool("options", opts, "aggregate_switch_tbl")?.unwrap_or(false);
        options.frame_preemption = opt_bool("options", opts, "frame_preemption")?.unwrap_or(false);
    }

    let mut run = RunSpec::default();
    if let Some(r) = root.get("run") {
        check_fields("run", r, &["duration_ms", "simulate", "emit_hdl"])?;
        run.duration_ms = opt_u64("run", r, "duration_ms")?.unwrap_or(100);
        run.simulate = opt_bool("run", r, "simulate")?.unwrap_or(true);
        run.emit_hdl = match r.get("emit_hdl") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or("run: \"emit_hdl\" must be a string")?
                    .to_owned(),
            ),
        };
    }

    Ok(ScenarioFile {
        topology,
        flows,
        options,
        run,
    })
}

fn sample_json() -> Json {
    Json::obj([
        (
            "topology",
            Json::obj([
                ("kind", Json::Str("ring".into())),
                ("switches", Json::Num(6.0)),
                ("hosts", Json::Num(3.0)),
            ]),
        ),
        (
            "flows",
            Json::obj([
                ("ts_count", Json::Num(256.0)),
                ("frame_bytes", Json::Num(64.0)),
                ("seed", Json::Num(42.0)),
                ("rc_mbps", Json::Num(100.0)),
                ("be_mbps", Json::Num(300.0)),
            ]),
        ),
        (
            "options",
            Json::obj([
                ("slot_us", Json::Num(65.0)),
                ("queue_depth", Json::Null),
                ("gate_mode", Json::Str("cqf".into())),
                ("aggregate_switch_tbl", Json::Bool(false)),
                ("frame_preemption", Json::Bool(false)),
            ]),
        ),
        (
            "run",
            Json::obj([
                ("duration_ms", Json::Num(100.0)),
                ("simulate", Json::Bool(true)),
                ("emit_hdl", Json::Null),
            ]),
        ),
    ])
}

fn main() {
    // `--shards N` / `--shards=N` is consumed by `sim_shards()` (it scans
    // the raw argv); strip it here so it is never mistaken for a scenario
    // path.
    let mut args: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        if arg == "--shards" {
            let _ = raw.next();
        } else if !arg.starts_with("--shards=") {
            args.push(arg);
        }
    }
    match args.first().map(String::as_str) {
        Some("--sample") => {
            let path = Path::new("scenarios/sample.json");
            std::fs::create_dir_all("scenarios").expect("can create scenarios/");
            std::fs::write(path, sample_json().pretty()).expect("can write the sample");
            println!("wrote {}", path.display());
        }
        Some(_) => {
            // Every path on the command line is one sweep entry; reports
            // print in argument order once all scenarios finish.
            let results = run_sweep(&args, workers_from_env(), |_idx, path| {
                run_scenario(path).map_err(|e| TsnError::invalid_parameter("scenario", e))
            });
            let mut failed = false;
            for (path, result) in args.iter().zip(results) {
                match result {
                    Ok((text, lost_frames)) => {
                        if args.len() > 1 {
                            println!("==== {path} ====");
                        }
                        print!("{text}");
                        if lost_frames {
                            eprintln!(
                                "warning: {path} lost TS frames — resources are under-provisioned"
                            );
                            failed = true;
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        failed = true;
                    }
                }
            }
            if failed {
                std::process::exit(1);
            }
        }
        None => {
            eprintln!("usage: customize [--shards N] <scenario.json>... | customize --sample");
            std::process::exit(2);
        }
    }
}

/// Runs one scenario file; returns its printed report and whether the
/// simulation lost TS frames.
fn run_scenario(path: &str) -> Result<(String, bool), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let scenario = parse_scenario(&text).map_err(|e| format!("bad scenario file: {e}"))?;

    let topology = match scenario.topology.kind.as_str() {
        "ring" => presets::ring(scenario.topology.switches, scenario.topology.hosts),
        "linear" => presets::linear(scenario.topology.switches, scenario.topology.hosts),
        "star" => presets::star(scenario.topology.switches, scenario.topology.hosts),
        other => {
            return Err(format!(
                "unknown topology kind {other:?} (ring|linear|star)"
            ))
        }
    }
    .map_err(|e| format!("topology: {e}"))?;

    let mut flows = workloads::ts_flows_sized(
        &topology,
        scenario.flows.ts_count,
        scenario.flows.frame_bytes,
        scenario.flows.seed,
    )
    .map_err(|e| format!("flows: {e}"))?;
    flows.extend(
        workloads::background_flows(
            &topology,
            DataRate::mbps(scenario.flows.rc_mbps),
            DataRate::mbps(scenario.flows.be_mbps),
            1_000_000,
        )
        .map_err(|e| format!("background: {e}"))?,
    );

    let mut options = DeriveOptions::automatic();
    options.slot = scenario.options.slot_us.map(SimDuration::from_micros);
    options.queue_depth_override = scenario.options.queue_depth;
    options.aggregate_switch_tbl = scenario.options.aggregate_switch_tbl;
    options.gate_mode = match scenario.options.gate_mode.as_deref() {
        None | Some("cqf") => GateMode::Cqf,
        Some("tas") => GateMode::Tas,
        Some(other) => return Err(format!("unknown gate_mode {other:?} (cqf|tas)")),
    };

    let customization = TsnBuilder::new(topology, flows, SimDuration::from_nanos(50))
        .map_err(|e| format!("requirements: {e}"))?
        .derive(&options)
        .map_err(|e| format!("derivation: {e}"))?;

    let mut out = String::new();
    let derived = customization.derived();
    writeln!(out, "== derived customization ==").expect("string write");
    writeln!(
        out,
        "slot {} | gate_size {} | queue depth {} | buffers {} | {} TSN port(s) | peak occupancy {}",
        derived.cqf.slot,
        derived.resources.gate_size(),
        derived.resources.queue_depth(),
        derived.resources.buffer_num(),
        derived.resources.port_num(),
        derived.itp.max_occupancy,
    )
    .expect("string write");
    writeln!(
        out,
        "\n{}",
        customization.usage_report(AllocationPolicy::PaperAccounting)
    )
    .expect("string write");
    writeln!(
        out,
        "\n{}",
        tsn_resource::ResourceView::of(
            &customization.derived().resources,
            AllocationPolicy::PaperAccounting
        )
    )
    .expect("string write");
    writeln!(
        out,
        "\nsavings vs BCM53154: {:.2}%",
        customization.savings_vs_cots(AllocationPolicy::PaperAccounting)
    )
    .expect("string write");

    let mut lost_frames = false;
    if scenario.run.simulate {
        let preemption = scenario.options.frame_preemption;
        let report = customization
            .synthesize_network_configured(
                SimDuration::from_millis(scenario.run.duration_ms),
                SyncSetup::default(),
                |config| {
                    config.frame_preemption = preemption;
                    config.shards = sim_shards();
                },
            )
            .map_err(|e| format!("synthesis: {e}"))?
            .run();
        if preemption {
            writeln!(
                out,
                "(frame preemption on: {} preemptions)",
                report.preemptions
            )
            .expect("string write");
        }
        writeln!(
            out,
            "\n== simulation ({}ms) ==\n{report}",
            scenario.run.duration_ms
        )
        .expect("string write");
        lost_frames = report.ts_lost() > 0;
    }

    if let Some(dir) = scenario.run.emit_hdl {
        let bundle = customization
            .generate_hdl()
            .map_err(|e| format!("hdl: {e}"))?;
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
        for (name, src) in bundle.files() {
            std::fs::write(Path::new(&dir).join(name), src)
                .map_err(|e| format!("cannot write HDL: {e}"))?;
        }
        writeln!(
            out,
            "\nwrote {} Verilog files to {dir}/",
            bundle.files().len()
        )
        .expect("string write");
    }
    Ok((out, lost_frames))
}
