//! Table III: comparison of resource usage under different scenarios.
//!
//! Prints the commercial (BCM53154) column and the three customized
//! columns (star 3 ports, linear 2 ports, ring 1 port) with their BRAM
//! totals and reduction percentages, then cross-checks that the full
//! TSN-Builder derivation pipeline (requirements → parameters) lands on
//! the same columns. The three derivations run in parallel through the
//! sweep runner.

use tsn_builder::{workloads, DeriveOptions, TsnBuilder};
use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::dump_json;
use tsn_resource::{baseline, AllocationPolicy, ResourceConfig, UsageReport};
use tsn_sim::sweep::{run_sweep, workers_from_env};
use tsn_topology::presets;
use tsn_types::SimDuration;

struct Column {
    scenario: String,
    ports: u32,
    total_kb: f64,
    reduction_pct: f64,
    rows: Vec<(String, String, f64)>,
}

impl ToJson for Column {
    fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", self.scenario.to_json()),
            ("ports", self.ports.to_json()),
            ("total_kb", self.total_kb.to_json()),
            ("reduction_pct", self.reduction_pct.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

fn customized(ports: u32) -> ResourceConfig {
    let mut cfg = ResourceConfig::new();
    cfg.set_switch_tbl(1024, 0)
        .expect("valid")
        .set_class_tbl(1024)
        .expect("valid")
        .set_meter_tbl(1024)
        .expect("valid")
        .set_gate_tbl(2, 8, ports)
        .expect("valid")
        .set_cbs_tbl(3, 3, ports)
        .expect("valid")
        .set_queues(12, 8, ports)
        .expect("valid")
        .set_buffers(96, ports)
        .expect("valid");
    cfg
}

fn column(scenario: &str, config: &ResourceConfig, cots: &UsageReport) -> Column {
    let report = UsageReport::of(config, AllocationPolicy::PaperAccounting);
    Column {
        scenario: scenario.to_owned(),
        ports: config.port_num(),
        total_kb: report.total_kb(),
        reduction_pct: report.reduction_vs(cots),
        rows: report
            .rows()
            .iter()
            .map(|r| (r.name.clone(), r.parameters.clone(), r.kb()))
            .collect(),
    }
}

fn main() {
    let cots_config = baseline::bcm53154();
    let cots = UsageReport::of(&cots_config, AllocationPolicy::PaperAccounting);

    let columns = vec![
        column("Commercial (4 ports)", &cots_config, &cots),
        column("Star (3 ports)", &customized(3), &cots),
        column("Linear (2 ports)", &customized(2), &cots),
        column("Ring (1 port)", &customized(1), &cots),
    ];

    println!("TABLE III — COMPARISON OF RESOURCE USAGE UNDER DIFFERENT SCENARIOS");
    println!(
        "{:<12} {:<24} {:<24} {:<24} {:<24}",
        "Resource",
        columns[0].scenario,
        columns[1].scenario,
        columns[2].scenario,
        columns[3].scenario
    );
    for i in 0..columns[0].rows.len() {
        print!("{:<12}", columns[0].rows[i].0);
        for col in &columns {
            let (_, params, kb) = &col.rows[i];
            print!(" {:<24}", format!("{params} -> {kb}Kb"));
        }
        println!();
    }
    print!("{:<12}", "Total");
    for col in &columns {
        if col.reduction_pct.abs() < f64::EPSILON {
            print!(" {:<24}", format!("{}Kb", col.total_kb));
        } else {
            print!(
                " {:<24}",
                format!("{}Kb (-{:.2}%)", col.total_kb, col.reduction_pct)
            );
        }
    }
    println!();

    println!("\nPaper reference: 10818Kb | 5778Kb (-46.59%) | 3942Kb (-63.56%) | 2106Kb (-80.53%)");

    // Cross-check: the derivation pipeline reproduces the same columns
    // from raw requirements; the three pipelines run concurrently.
    println!("\nDerivation cross-check (requirements -> parameters):");
    let cross_checks = [
        ("star", presets::star(3, 3).expect("builds"), 3u32, 5778.0),
        ("linear", presets::linear(6, 2).expect("builds"), 2, 3942.0),
        ("ring", presets::ring(6, 3).expect("builds"), 1, 2106.0),
    ];
    let derived = run_sweep(
        &cross_checks,
        workers_from_env(),
        |_idx, (_, topology, _, _)| {
            let flows = workloads::iec60802_ts_flows(topology, 1024, 42)?;
            let customization =
                TsnBuilder::new(topology.clone(), flows, SimDuration::from_nanos(50))?
                    .derive(&DeriveOptions::paper())?;
            let report = customization.usage_report(AllocationPolicy::PaperAccounting);
            Ok((
                customization.derived().resources.port_num(),
                report.total_kb(),
            ))
        },
    );
    for (result, (name, _, expect_ports, expect_total)) in derived.into_iter().zip(&cross_checks) {
        let (derived_ports, total_kb) = result.expect("derivation succeeds");
        println!(
            "  {name:<7} derived port_num={derived_ports} total={total_kb}Kb (expected {expect_total}Kb, {expect_ports} ports) {}",
            if derived_ports == *expect_ports && total_kb == *expect_total {
                "OK"
            } else {
                "MISMATCH"
            }
        );
    }

    dump_json("table3", &columns);
}
