//! §IV.A: "The synchronization precision on FPGA is less than 50ns."
//!
//! Runs the gPTP domain over the 6-switch chain with drifting oscillators
//! and PHY timestamp noise, and reports the worst absolute error over a
//! one-second window, sampled between sync rounds (the worst case). The
//! four (interval, noise) configurations run in parallel through the
//! sweep runner.

use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::dump_json;
use tsn_sim::sweep::{run_sweep, workers_from_env};
use tsn_switch::time_sync::{ClockModel, SyncConfig, SyncDomain};
use tsn_types::{SimDuration, SimTime};

struct SyncResult {
    sync_interval_ms: u64,
    timestamp_noise_ns: f64,
    worst_error_ns: f64,
    per_hop_error_ns: Vec<f64>,
}

impl ToJson for SyncResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("sync_interval_ms", self.sync_interval_ms.to_json()),
            ("timestamp_noise_ns", self.timestamp_noise_ns.to_json()),
            ("worst_error_ns", self.worst_error_ns.to_json()),
            ("per_hop_error_ns", self.per_hop_error_ns.to_json()),
        ])
    }
}

fn run(interval_ms: u64, noise_ns: f64) -> tsn_types::TsnResult<SyncResult> {
    let config = SyncConfig {
        sync_interval: SimDuration::from_millis(interval_ms),
        timestamp_noise_ns: noise_ns,
    };
    let clocks: Vec<ClockModel> = (0..6)
        .map(|i| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            ClockModel::new(
                sign * (15.0 + 11.0 * i as f64),
                sign * 250_000.0 * (i + 1) as f64,
            )
        })
        .collect();
    let mut domain = SyncDomain::chain(clocks, config, SimDuration::from_nanos(50))?;
    // Converge for one second, then measure for another second at 1 ms
    // granularity.
    domain.run_until(SimTime::from_millis(1000));
    let mut worst = 0.0f64;
    let mut per_hop = vec![0.0f64; 6];
    for ms in 1000..2000 {
        let t = SimTime::from_millis(ms);
        domain.run_until(t);
        for (i, node) in domain.nodes().iter().enumerate() {
            let e = node.error_ns(t).abs();
            per_hop[i] = per_hop[i].max(e);
            worst = worst.max(e);
        }
    }
    Ok(SyncResult {
        sync_interval_ms: interval_ms,
        timestamp_noise_ns: noise_ns,
        worst_error_ns: worst,
        per_hop_error_ns: per_hop,
    })
}

fn main() {
    println!("gPTP precision across the 6-switch chain (paper claim: < 50ns)\n");
    println!(
        "{:>12} {:>10} {:>12}  per-hop worst (ns)",
        "interval", "noise", "worst(ns)"
    );
    let configs = [(31u64, 4.0f64), (125, 4.0), (31, 8.0), (125, 8.0)];
    let results: Vec<SyncResult> = run_sweep(
        &configs,
        workers_from_env(),
        |_idx, &(interval_ms, noise_ns)| run(interval_ms, noise_ns),
    )
    .into_iter()
    .map(|r| r.expect("sync domain runs"))
    .collect();
    for r in &results {
        println!(
            "{:>10}ms {:>8}ns {:>12.1}  {}",
            r.sync_interval_ms,
            r.timestamp_noise_ns,
            r.worst_error_ns,
            r.per_hop_error_ns
                .iter()
                .map(|e| format!("{e:.0}"))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    let best = results
        .iter()
        .map(|r| r.worst_error_ns)
        .fold(f64::MAX, f64::min);
    println!(
        "\nbest configuration worst-case error: {best:.1}ns ({})",
        if best < 50.0 {
            "meets the paper's <50ns"
        } else {
            "misses 50ns"
        }
    );
    dump_json("sync_precision", &results);
}
