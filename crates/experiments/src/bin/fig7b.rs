//! Fig. 7(b): end-to-end TS latency under different packet sizes.
//!
//! The paper: "The latency increases slightly as the packet size
//! increases … the time for outputting the packet is positively
//! correlated with the packet size."

use tsn_builder::{cqf, itp, workloads, AppRequirements, CqfPlan};
use tsn_experiments::util::{dump_json, figure_config, print_series, ring_with_analyzers, run_network, QosPoint};
use tsn_resource::ResourceConfig;
use tsn_types::{DataRate, SimDuration};

fn main() {
    let slot = cqf::PAPER_SLOT;
    let mut points = Vec::new();
    for &bytes in &workloads::FRAME_SIZES {
        let (topo, tester, analyzers) = ring_with_analyzers(6, &[2]).expect("topology builds");
        // 3 hops; fewer flows for the big sizes so one slot (65 us = 5 MTU
        // frames) is never structurally overloaded per phase.
        let flows = workloads::ts_flows_fixed_path(
            256,
            tester,
            analyzers[0],
            bytes,
            SimDuration::from_millis(8),
        )
        .expect("workload builds");
        let requirements =
            AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
                .expect("valid requirements");
        let plan = CqfPlan::with_slot(&requirements, slot, DataRate::gbps(1)).expect("feasible");
        let offsets = itp::plan(&requirements, &plan, itp::Strategy::GreedyLeastLoaded)
            .expect("itp plans")
            .offsets;
        let report = run_network(
            topo,
            flows,
            &offsets,
            figure_config(slot, ResourceConfig::new()),
        );
        points.push(QosPoint::from_report(u64::from(bytes), &report));
    }

    print_series("Fig. 7(b) — latency vs packet size (3 hops, slot 65us)", "bytes", &points);

    let first = points.first().expect("sweep ran").mean_us;
    let last = points.last().expect("sweep ran").mean_us;
    println!(
        "\n64B -> 1500B mean latency growth: {:.1}us (paper: slight increase; \
         one extra MTU serialization per hop is ~12us)",
        last - first
    );
    let loss: u64 = points.iter().map(|p| p.loss).sum();
    println!("total TS loss across the sweep: {loss}");
    dump_json("fig7b", &points);
}
