//! Fig. 7(b): end-to-end TS latency under different packet sizes.
//!
//! The paper: "The latency increases slightly as the packet size
//! increases … the time for outputting the packet is positively
//! correlated with the packet size."
//!
//! One scenario per frame size, run in parallel through the scenario
//! sweep.

use tsn_builder::{cqf, run_scenarios, workloads, Scenario};
use tsn_experiments::util::{
    dump_json, expect_outcomes, figure_config, print_series, ring_with_analyzers, QosPoint,
};
use tsn_resource::ResourceConfig;
use tsn_sim::sweep::workers_from_env;
use tsn_types::SimDuration;

fn main() {
    let slot = cqf::PAPER_SLOT;
    let scenarios: Vec<Scenario> = workloads::FRAME_SIZES
        .iter()
        .map(|&bytes| {
            let (topo, tester, analyzers) = ring_with_analyzers(6, &[2]).expect("topology builds");
            // 3 hops; fewer flows for the big sizes so one slot (65 us = 5 MTU
            // frames) is never structurally overloaded per phase.
            let flows = workloads::ts_flows_fixed_path(
                256,
                tester,
                analyzers[0],
                bytes,
                SimDuration::from_millis(8),
            )
            .expect("workload builds");
            Scenario::explicit(
                format!("{bytes}B"),
                topo,
                flows,
                figure_config(slot, ResourceConfig::new()),
            )
        })
        .collect();

    let outcomes = expect_outcomes("fig7b", run_scenarios(&scenarios, workers_from_env()));
    let points: Vec<QosPoint> = outcomes
        .iter()
        .zip(&workloads::FRAME_SIZES)
        .map(|(o, &bytes)| QosPoint::from_report(u64::from(bytes), &o.report))
        .collect();

    print_series(
        "Fig. 7(b) — latency vs packet size (3 hops, slot 65us)",
        "bytes",
        &points,
    );

    let first = points.first().expect("sweep ran").mean_us;
    let last = points.last().expect("sweep ran").mean_us;
    println!(
        "\n64B -> 1500B mean latency growth: {:.1}us (paper: slight increase; \
         one extra MTU serialization per hop is ~12us)",
        last - first
    );
    let loss: u64 = points.iter().map(|p| p.loss).sum();
    println!("total TS loss across the sweep: {loss}");
    dump_json("fig7b", &points);
}
