//! Table I (+ §II.A motivation): two queue/buffer configurations at the
//! same QoS.
//!
//! Three chained switches with one enabled TSN port each; 1024 TS flows
//! of 64 B at 10 ms period injected by the tester. Case 1 provisions
//! depth 16 / 128 buffers, Case 2 depth 12 / 96 buffers — 540 Kb less
//! BRAM. Both must show identical latency/jitter and zero loss.

use serde::Serialize;
use tsn_builder::{cqf::PAPER_SLOT, itp, AppRequirements, CqfPlan};
use tsn_experiments::util::{dump_json, figure_config, ring_with_analyzers, run_network, QosPoint};
use tsn_resource::{baseline, AllocationPolicy, ResourceConfig};
use tsn_types::{DataRate, SimDuration, TsnResult};

#[derive(Serialize)]
struct CaseResult {
    name: String,
    queue_depth: u32,
    buffer_num: u32,
    queue_buffer_kb: f64,
    qos: QosPoint,
}

fn measure(name: &str, resources: ResourceConfig) -> TsnResult<CaseResult> {
    // Three switches in a chain (ring of 3, traffic one way), tester on
    // sw0, analyzer on sw2 — "three TSN switches with one enabled port
    // connected with each other".
    let (topo, tester, analyzers) = ring_with_analyzers(3, &[2])?;
    let flows = tsn_builder::workloads::ts_flows_fixed_path(
        1024,
        tester,
        analyzers[0],
        64,
        SimDuration::from_millis(8),
    )?;
    let requirements = AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))?;
    let plan = CqfPlan::with_slot(&requirements, PAPER_SLOT, DataRate::gbps(1))?;
    let offsets = itp::plan(&requirements, &plan, itp::Strategy::GreedyLeastLoaded)?.offsets;

    let policy = AllocationPolicy::PaperAccounting;
    let queue_buffer_kb =
        (resources.queue_bits(policy) + resources.buffer_bits(policy)) as f64 / 1024.0;
    let report = run_network(topo, flows, &offsets, figure_config(PAPER_SLOT, resources.clone()));
    Ok(CaseResult {
        name: name.to_owned(),
        queue_depth: resources.queue_depth(),
        buffer_num: resources.buffer_num(),
        queue_buffer_kb,
        qos: QosPoint::from_report(u64::from(resources.queue_depth()), &report),
    })
}

fn main() {
    let cases = vec![
        measure("Case 1", baseline::table1_case1()).expect("case 1 runs"),
        measure("Case 2", baseline::table1_case2()).expect("case 2 runs"),
    ];

    println!("TABLE I — CONFIGURATION OF QUEUE AND PACKET BUFFER");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "", "PktNum/Queue", "PacketBufNum", "Q+B BRAM", "avg(us)", "jitter(us)", "max(us)", "loss"
    );
    for c in &cases {
        println!(
            "{:<8} {:>14} {:>14} {:>11}Kb {:>12.1} {:>12.2} {:>12.1} {:>8}",
            c.name, c.queue_depth, c.buffer_num, c.queue_buffer_kb, c.qos.mean_us, c.qos.jitter_us,
            c.qos.max_us, c.qos.loss
        );
    }
    let saved = cases[0].queue_buffer_kb - cases[1].queue_buffer_kb;
    println!("\nBRAM saved by Case 2: {saved}Kb (paper: 540Kb)");
    let delta = (cases[0].qos.mean_us - cases[1].qos.mean_us).abs();
    println!(
        "QoS delta between cases: {delta:.2}us mean latency ({}) — paper: identical QoS",
        if delta < 5.0 { "same" } else { "DIFFERENT" }
    );
    dump_json("table1", &cases);
}
