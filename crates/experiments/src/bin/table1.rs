//! Table I (+ §II.A motivation): two queue/buffer configurations at the
//! same QoS.
//!
//! Three chained switches with one enabled TSN port each; 1024 TS flows
//! of 64 B at 10 ms period injected by the tester. Case 1 provisions
//! depth 16 / 128 buffers, Case 2 depth 12 / 96 buffers — 540 Kb less
//! BRAM. Both must show identical latency/jitter and zero loss.
//!
//! Both cases run in parallel; they share the same topology, flows and
//! slot, so the planner computes the CQF/ITP plan once.

use tsn_builder::{cqf::PAPER_SLOT, workloads, Scenario, SweepPlanner};
use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::{
    dump_json, expect_outcomes, figure_config, ring_with_analyzers, QosPoint,
};
use tsn_resource::{baseline, AllocationPolicy, ResourceConfig};
use tsn_sim::sweep::workers_from_env;
use tsn_types::SimDuration;

struct CaseResult {
    name: String,
    queue_depth: u32,
    buffer_num: u32,
    queue_buffer_kb: f64,
    qos: QosPoint,
}

impl ToJson for CaseResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", self.name.to_json()),
            ("queue_depth", self.queue_depth.to_json()),
            ("buffer_num", self.buffer_num.to_json()),
            ("queue_buffer_kb", self.queue_buffer_kb.to_json()),
            ("qos", self.qos.to_json()),
        ])
    }
}

fn case_scenario(name: &str, resources: &ResourceConfig) -> Scenario {
    // Three switches in a chain (ring of 3, traffic one way), tester on
    // sw0, analyzer on sw2 — "three TSN switches with one enabled port
    // connected with each other".
    let (topo, tester, analyzers) = ring_with_analyzers(3, &[2]).expect("topology builds");
    let flows =
        workloads::ts_flows_fixed_path(1024, tester, analyzers[0], 64, SimDuration::from_millis(8))
            .expect("workload builds");
    Scenario::explicit(
        name,
        topo,
        flows,
        figure_config(PAPER_SLOT, resources.clone()),
    )
}

fn main() {
    let configs = [
        ("Case 1", baseline::table1_case1()),
        ("Case 2", baseline::table1_case2()),
    ];
    let scenarios: Vec<Scenario> = configs
        .iter()
        .map(|(name, resources)| case_scenario(name, resources))
        .collect();
    let planner = SweepPlanner::new();
    let outcomes = expect_outcomes("table1", planner.run(&scenarios, workers_from_env()));
    assert!(
        planner.planning_hits() > 0,
        "the two cases share one planning input"
    );

    let policy = AllocationPolicy::PaperAccounting;
    let cases: Vec<CaseResult> = outcomes
        .iter()
        .map(|outcome| {
            let resources = &outcome.resources;
            CaseResult {
                name: outcome.label.clone(),
                queue_depth: resources.queue_depth(),
                buffer_num: resources.buffer_num(),
                queue_buffer_kb: (resources.queue_bits(policy) + resources.buffer_bits(policy))
                    as f64
                    / 1024.0,
                qos: QosPoint::from_report(u64::from(resources.queue_depth()), &outcome.report),
            }
        })
        .collect();

    println!("TABLE I — CONFIGURATION OF QUEUE AND PACKET BUFFER");
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "", "PktNum/Queue", "PacketBufNum", "Q+B BRAM", "avg(us)", "jitter(us)", "max(us)", "loss"
    );
    for c in &cases {
        println!(
            "{:<8} {:>14} {:>14} {:>11}Kb {:>12.1} {:>12.2} {:>12.1} {:>8}",
            c.name,
            c.queue_depth,
            c.buffer_num,
            c.queue_buffer_kb,
            c.qos.mean_us,
            c.qos.jitter_us,
            c.qos.max_us,
            c.qos.loss
        );
    }
    let saved = cases[0].queue_buffer_kb - cases[1].queue_buffer_kb;
    println!("\nBRAM saved by Case 2: {saved}Kb (paper: 540Kb)");
    let delta = (cases[0].qos.mean_us - cases[1].qos.mean_us).abs();
    println!(
        "QoS delta between cases: {delta:.2}us mean latency ({}) — paper: identical QoS",
        if delta < 5.0 { "same" } else { "DIFFERENT" }
    );
    dump_json("table1", &cases);
}
