//! Fig. 2: TS latency under (a) best-effort and (b) rate-constrained
//! background traffic, for both Table I resource cases.
//!
//! The paper's claim: "the latency and jitter of TS flows with the
//! highest priority are very stable despite the interference of other
//! flows" — the four series must all be flat over 0–900 Mbps.
//!
//! All 40 points (2 cases × 2 classes × 10 loads) run as one parallel
//! sweep; the two resource cases share each load point's topology, flows
//! and slot, so the planner computes every CQF/ITP plan once and serves
//! the second case from cache.

use tsn_builder::{cqf::PAPER_SLOT, workloads, Scenario, SweepPlanner};
use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::{
    dump_json, expect_outcomes, figure_config, print_series, ring_with_analyzers, QosPoint,
};
use tsn_resource::{baseline, ResourceConfig};
use tsn_sim::sweep::workers_from_env;
use tsn_types::{DataRate, SimDuration, TrafficClass};

struct Series {
    case: String,
    background: String,
    points: Vec<QosPoint>,
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::obj([
            ("case", self.case.to_json()),
            ("background", self.background.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

fn point_scenario(
    case: &str,
    resources: &ResourceConfig,
    class: TrafficClass,
    mbps: u64,
) -> Scenario {
    let (topo, tester, analyzers) = ring_with_analyzers(3, &[2]).expect("topology builds");
    // 1023 TS + at most 1 RC filter entry = the 1024-entry table.
    let ts =
        workloads::ts_flows_fixed_path(1023, tester, analyzers[0], 64, SimDuration::from_millis(8))
            .expect("workload builds");
    let (rc, be) = match class {
        TrafficClass::RateConstrained => (DataRate::mbps(mbps), DataRate::ZERO),
        _ => (DataRate::ZERO, DataRate::mbps(mbps)),
    };
    let bg = workloads::background_flows(&topo, rc, be, 5000)
        .expect("workload builds")
        .into_iter()
        // Background shares the tester/analyzer path.
        .map(|f| match f {
            tsn_types::FlowSpec::Rc(r) => tsn_types::RcFlowSpec::new(
                r.id(),
                tester,
                analyzers[0],
                r.reserved_rate(),
                r.frame_bytes(),
            )
            .expect("valid")
            .into(),
            tsn_types::FlowSpec::Be(b) => tsn_types::BeFlowSpec::new(
                b.id(),
                tester,
                analyzers[0],
                b.offered_rate(),
                b.frame_bytes(),
            )
            .expect("valid")
            .into(),
            other => other,
        })
        .collect();
    let flows = workloads::merge(ts, bg);
    Scenario::explicit(
        format!("{case}/{}/bg={mbps}", class.label()),
        topo,
        flows,
        figure_config(PAPER_SLOT, resources.clone()),
    )
}

fn main() {
    let cases = [
        ("Case 1", baseline::table1_case1()),
        ("Case 2", baseline::table1_case2()),
    ];
    let classes = [TrafficClass::BestEffort, TrafficClass::RateConstrained];
    let loads: Vec<u64> = (0..=900).step_by(100).collect();

    let mut scenarios = Vec::new();
    for (case, resources) in &cases {
        for &class in &classes {
            for &mbps in &loads {
                scenarios.push(point_scenario(case, resources, class, mbps));
            }
        }
    }

    let planner = SweepPlanner::new();
    let outcomes = expect_outcomes("fig2", planner.run(&scenarios, workers_from_env()));
    println!(
        "[{} scenarios, {} plans computed, {} served from cache]",
        scenarios.len(),
        planner.planning_misses(),
        planner.planning_hits()
    );

    let mut all = Vec::new();
    let mut cursor = outcomes.into_iter();
    for (case, _) in &cases {
        for class in classes {
            let points: Vec<QosPoint> = loads
                .iter()
                .map(|&mbps| {
                    let outcome = cursor.next().expect("one outcome per scenario");
                    QosPoint::from_report(mbps, &outcome.report)
                })
                .collect();
            print_series(
                &format!("Fig. 2 — {case}, {} as background", class.label()),
                "bg Mbps",
                &points,
            );
            all.push(Series {
                case: (*case).to_owned(),
                background: format!("{} background", class.label()),
                points,
            });
        }
    }

    // Flatness check across each series.
    println!();
    for series in &all {
        let means: Vec<f64> = series.points.iter().map(|p| p.mean_us).collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        let loss: u64 = series.points.iter().map(|p| p.loss).sum();
        println!(
            "{} / {}: mean-latency spread over the sweep = {spread:.2}us, total TS loss = {loss} ({})",
            series.case,
            series.background,
            if spread < 15.0 && loss == 0 {
                "stable, as in the paper"
            } else {
                "UNSTABLE"
            }
        );
    }
    dump_json("fig2", &all);
}
