//! Fig. 2: TS latency under (a) best-effort and (b) rate-constrained
//! background traffic, for both Table I resource cases.
//!
//! The paper's claim: "the latency and jitter of TS flows with the
//! highest priority are very stable despite the interference of other
//! flows" — the four series must all be flat over 0–900 Mbps.

use serde::Serialize;
use std::collections::HashMap;
use tsn_builder::{cqf::PAPER_SLOT, itp, workloads, AppRequirements, CqfPlan};
use tsn_experiments::util::{dump_json, figure_config, ring_with_analyzers, run_network, print_series, QosPoint};
use tsn_resource::{baseline, ResourceConfig};
use tsn_types::{DataRate, FlowId, SimDuration, TrafficClass};

#[derive(Serialize)]
struct Series {
    case: String,
    background: String,
    points: Vec<QosPoint>,
}

fn sweep(case: &str, resources: &ResourceConfig, class: TrafficClass) -> Series {
    let mut points = Vec::new();
    for mbps in (0..=900).step_by(100) {
        let (topo, tester, analyzers) =
            ring_with_analyzers(3, &[2]).expect("topology builds");
        // 1023 TS + at most 1 RC filter entry = the 1024-entry table.
        let ts = workloads::ts_flows_fixed_path(
            1023,
            tester,
            analyzers[0],
            64,
            SimDuration::from_millis(8),
        )
        .expect("workload builds");
        let (rc, be) = match class {
            TrafficClass::RateConstrained => (DataRate::mbps(mbps), DataRate::ZERO),
            _ => (DataRate::ZERO, DataRate::mbps(mbps)),
        };
        let mut bg = workloads::background_flows(&topo, rc, be, 5000).expect("workload builds");
        // Background shares the tester/analyzer path.
        bg = bg
            .into_iter()
            .map(|f| match f {
                tsn_types::FlowSpec::Rc(r) => tsn_types::RcFlowSpec::new(
                    r.id(), tester, analyzers[0], r.reserved_rate(), r.frame_bytes(),
                )
                .expect("valid")
                .into(),
                tsn_types::FlowSpec::Be(b) => tsn_types::BeFlowSpec::new(
                    b.id(), tester, analyzers[0], b.offered_rate(), b.frame_bytes(),
                )
                .expect("valid")
                .into(),
                other => other,
            })
            .collect();
        let flows = workloads::merge(ts, bg);

        let requirements =
            AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
                .expect("valid requirements");
        let plan = CqfPlan::with_slot(&requirements, PAPER_SLOT, DataRate::gbps(1))
            .expect("slot feasible");
        let offsets: HashMap<FlowId, SimDuration> =
            itp::plan(&requirements, &plan, itp::Strategy::GreedyLeastLoaded)
                .expect("itp plans")
                .offsets;
        let report = run_network(topo, flows, &offsets, figure_config(PAPER_SLOT, resources.clone()));
        points.push(QosPoint::from_report(mbps, &report));
    }
    Series {
        case: case.to_owned(),
        background: format!("{} background", class.label()),
        points,
    }
}

fn main() {
    let mut all = Vec::new();
    for (case, resources) in [
        ("Case 1", baseline::table1_case1()),
        ("Case 2", baseline::table1_case2()),
    ] {
        for class in [TrafficClass::BestEffort, TrafficClass::RateConstrained] {
            let series = sweep(case, &resources, class);
            print_series(
                &format!("Fig. 2 — {case}, {} as background", class.label()),
                "bg Mbps",
                &series.points,
            );
            all.push(series);
        }
    }

    // Flatness check across each series.
    println!();
    for series in &all {
        let means: Vec<f64> = series.points.iter().map(|p| p.mean_us).collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        let loss: u64 = series.points.iter().map(|p| p.loss).sum();
        println!(
            "{} / {}: mean-latency spread over the sweep = {spread:.2}us, total TS loss = {loss} ({})",
            series.case,
            series.background,
            if spread < 15.0 && loss == 0 { "stable, as in the paper" } else { "UNSTABLE" }
        );
    }
    dump_json("fig2", &all);
}
