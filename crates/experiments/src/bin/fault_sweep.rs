//! Extension experiment: QoS vs. fault intensity.
//!
//! The paper's templates exist so a customized switch keeps its
//! guarantees when the network is *not* healthy. This sweep puts a
//! redundant diamond (a short primary path and a longer backup) under a
//! fault grid of increasing intensity — scheduled outages and flaps on
//! the primary links, lossy/corrupting wires on the backup, perturbed
//! oscillators with gPTP message loss — and plots how deadline misses,
//! fault losses and sync error grow with intensity. All three fault
//! families of `tsn_sim::fault` are exercised at every non-zero level.
//!
//! The whole `intensity × seed` grid runs through the parallel scenario
//! sweep (PR-1 worker pool); per-seed reports are deterministic, so the
//! emitted table is too. `--smoke` shrinks the horizon and seed count
//! for CI, keeping all intensity levels and the monotonicity check.

use tsn_builder::{Scenario, SweepPlanner};
use tsn_experiments::json::{Json, ToJson};
use tsn_experiments::util::{dump_json, expect_outcomes, sim_shards};
use tsn_sim::network::{SimConfig, SyncSetup};
use tsn_sim::sweep::workers_from_env;
use tsn_sim::{FaultConfig, LinkFaultProfile, LinkFlap, LinkOutage};
use tsn_switch::time_sync::SyncConfig;
use tsn_topology::{LinkId, Topology};
use tsn_types::{
    BeFlowSpec, DataRate, FlowId, FlowSet, RcFlowSpec, SimDuration, SimTime, TsFlowSpec,
};

/// Fault-intensity levels of the sweep. Level 0 is the healthy control
/// run; every later level scales all three fault families up together.
const LEVELS: [u32; 4] = [0, 1, 2, 3];

/// A diamond with a short primary path (`s0–s1–s3`) and a three-switch
/// backup (`s0–s2a–s2b–s2c–s3`), so killing a primary link forces a
/// detour that is two store-and-forward hops longer — long enough to
/// cost deadlines, not just reroutes. Link creation order: 0 = s0–s1,
/// 1 = s1–s3, 2 = s0–s2a, 3 = s2a–s2b, 4 = s2b–s2c, 5 = s2c–s3, then
/// the host links.
fn diamond() -> (Topology, FlowSet) {
    let mut topo = Topology::new();
    let s0 = topo.add_switch("s0");
    let s1 = topo.add_switch("s1");
    let s2a = topo.add_switch("s2a");
    let s2b = topo.add_switch("s2b");
    let s2c = topo.add_switch("s2c");
    let s3 = topo.add_switch("s3");
    let rate = DataRate::gbps(1);
    topo.connect(s0, s1, rate).expect("link");
    topo.connect(s1, s3, rate).expect("link");
    topo.connect(s0, s2a, rate).expect("link");
    topo.connect(s2a, s2b, rate).expect("link");
    topo.connect(s2b, s2c, rate).expect("link");
    topo.connect(s2c, s3, rate).expect("link");
    let ha = topo.add_host("ha");
    let hb = topo.add_host("hb");
    topo.connect(ha, s0, rate).expect("link");
    topo.connect(hb, s3, rate).expect("link");

    let mut flows = FlowSet::new();
    for id in 0..8u32 {
        let (src, dst) = if id % 2 == 0 { (ha, hb) } else { (hb, ha) };
        flows.push(
            TsFlowSpec::new(
                FlowId::new(id),
                src,
                dst,
                SimDuration::from_millis(1),
                // Just above the primary path's CQF bound (L_max 260 µs
                // at the paper slot), so planning is feasible on the
                // short path but the longer backup path cannot always
                // make it — detours turn into attributable misses.
                SimDuration::from_micros(280),
                64 + (id % 4) * 100,
            )
            .expect("valid ts flow")
            .into(),
        );
    }
    flows.push(
        RcFlowSpec::new(FlowId::new(100), ha, hb, DataRate::mbps(150), 512)
            .expect("valid rc flow")
            .into(),
    );
    flows.push(
        BeFlowSpec::new(FlowId::new(101), hb, ha, DataRate::mbps(200), 1024)
            .expect("valid be flow")
            .into(),
    );
    (topo, flows)
}

/// The fault mix at one intensity level: longer primary-path outages,
/// more flap downtime, noisier wires (worst on the backup the detours
/// must use), faster-drifting clocks and lossier gPTP — all scaling
/// together with `level`.
fn faults_at(level: u32, seed: u64, horizon: SimDuration) -> FaultConfig {
    if level == 0 {
        return FaultConfig::none();
    }
    let l = f64::from(level);
    // The outage grows with intensity but always heals well before the
    // horizon, so recovery (reroute back to primary) is exercised too.
    let outage_len = SimDuration::from_micros(2_000 * u64::from(level));
    let flap_start = SimTime::ZERO + horizon / 2;
    FaultConfig {
        seed,
        outages: vec![LinkOutage {
            link: LinkId::new(0), // s0–s1: primary path
            from: SimTime::from_millis(4),
            until: SimTime::from_millis(4) + outage_len,
        }],
        flaps: vec![LinkFlap {
            link: LinkId::new(1), // s1–s3: primary path
            first_down: flap_start,
            mean_down: SimDuration::from_micros(500 * u64::from(level)),
            mean_up: SimDuration::from_millis(4),
        }],
        wire: LinkFaultProfile {
            loss_prob: 0.002 * l,
            corrupt_prob: 0.002 * l,
        },
        per_link_wire: vec![(
            LinkId::new(2), // s0–s2a: the backup path is the noisy one
            LinkFaultProfile {
                loss_prob: 0.012 * l,
                corrupt_prob: 0.012 * l,
            },
        )],
        drift_scale: 1.0 + l,
        sync_loss_prob: 0.08 * l,
        sync_jitter_ns: 25.0 * l,
    }
}

fn scenario(level: u32, seed: u64, duration: SimDuration) -> Scenario {
    let mut config = SimConfig::paper_defaults();
    config.duration = duration;
    config.drain = duration / 2;
    config.shards = sim_shards();
    // The diamond's switches have two switch-facing ports; the paper's
    // single-ring default provisions only one TSN port.
    config
        .resources
        .set_queues(12, 8, 2)
        .expect("valid queue geometry");
    // A short sync cadence and warmup so perturbed gPTP rounds actually
    // fire inside the (bench-friendly) horizon.
    config.sync = SyncSetup::Gptp {
        config: SyncConfig {
            sync_interval: SimDuration::from_millis(2),
            timestamp_noise_ns: 8.0,
        },
        warmup: SimDuration::from_millis(6),
    };
    let (topo, flows) = diamond();
    Scenario::explicit(
        format!("intensity={level}/seed={seed}"),
        topo,
        flows,
        config,
    )
    .with_faults(faults_at(level, seed, duration))
}

/// One intensity level's aggregate across its seeds.
struct LevelPoint {
    level: u32,
    /// TS frames delivered past their deadline (split by route state).
    misses_detour: u64,
    misses_primary: u64,
    /// TS frames injected / destroyed by faults / lost in total.
    injected: u64,
    lost: u64,
    lost_to_faults: u64,
    corrupted: u64,
    fcs_drops: u64,
    reroutes: u64,
    syncs_lost: u64,
    sync_high_water_ns: f64,
}

impl LevelPoint {
    /// Frames that failed their deadline outright: delivered late or
    /// never delivered at all (a destroyed frame misses by definition).
    fn deadline_failures(&self) -> u64 {
        self.misses_detour + self.misses_primary + self.lost
    }
}

impl ToJson for LevelPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("intensity", self.level.to_json()),
            ("deadline_failures", self.deadline_failures().to_json()),
            ("misses_on_detour", self.misses_detour.to_json()),
            ("misses_on_primary", self.misses_primary.to_json()),
            ("ts_injected", self.injected.to_json()),
            ("ts_lost", self.lost.to_json()),
            ("frames_lost_to_faults", self.lost_to_faults.to_json()),
            ("frames_corrupted", self.corrupted.to_json()),
            ("fcs_drops", self.fcs_drops.to_json()),
            ("reroutes", self.reroutes.to_json()),
            ("syncs_lost", self.syncs_lost.to_json()),
            (
                "sync_offset_high_water_ns",
                self.sync_high_water_ns.to_json(),
            ),
        ])
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (duration, seeds): (SimDuration, &[u64]) = if smoke {
        (SimDuration::from_millis(16), &[42])
    } else {
        (SimDuration::from_millis(40), &[42, 43, 44])
    };

    let mut scenarios = Vec::new();
    for &level in &LEVELS {
        for &seed in seeds {
            scenarios.push(scenario(level, seed, duration));
        }
    }
    let planner = SweepPlanner::new();
    let outcomes = expect_outcomes("fault_sweep", planner.run(&scenarios, workers_from_env()));
    println!(
        "[{} scenarios ({} intensity levels x {} seeds), {} plans computed, {} served from cache]",
        scenarios.len(),
        LEVELS.len(),
        seeds.len(),
        planner.planning_misses(),
        planner.planning_hits()
    );

    let mut points = Vec::new();
    let mut cursor = outcomes.into_iter();
    for &level in &LEVELS {
        let mut p = LevelPoint {
            level,
            misses_detour: 0,
            misses_primary: 0,
            injected: 0,
            lost: 0,
            lost_to_faults: 0,
            corrupted: 0,
            fcs_drops: 0,
            reroutes: 0,
            syncs_lost: 0,
            sync_high_water_ns: 0.0,
        };
        for _ in seeds {
            let outcome = cursor.next().expect("one outcome per scenario");
            let r = &outcome.report;
            let d = &r.degradation;
            p.misses_detour += d.misses_on_detour();
            p.misses_primary += d.misses_on_primary();
            p.injected += r.ts_injected();
            p.lost += r.ts_lost();
            p.lost_to_faults += d.frames_lost_to_faults();
            p.corrupted += d.frames_corrupted;
            p.fcs_drops += d.fcs_drops;
            p.reroutes += d.reroutes;
            p.syncs_lost += d.syncs_lost;
            let hw = if d.faults_enabled {
                d.sync_offset_high_water_ns
            } else {
                r.sync_worst_error_ns
            };
            p.sync_high_water_ns = p.sync_high_water_ns.max(hw);
        }
        points.push(p);
    }

    println!(
        "\n== QoS vs. fault intensity (diamond, {} seeds/level) ==",
        seeds.len()
    );
    println!(
        "{:>9} {:>9} {:>14} {:>8} {:>11} {:>9} {:>9} {:>9} {:>10} {:>13}",
        "intensity",
        "dl-fail",
        "miss(det/pri)",
        "ts-lost",
        "fault-lost",
        "corrupt",
        "fcs-drop",
        "reroutes",
        "syncs-lost",
        "sync-hw(ns)"
    );
    for p in &points {
        println!(
            "{:>9} {:>9} {:>8}/{:<5} {:>8} {:>11} {:>9} {:>9} {:>9} {:>10} {:>13.1}",
            p.level,
            p.deadline_failures(),
            p.misses_detour,
            p.misses_primary,
            p.lost,
            p.lost_to_faults,
            p.corrupted,
            p.fcs_drops,
            p.reroutes,
            p.syncs_lost,
            p.sync_high_water_ns,
        );
    }

    // The curve the subsystem exists to produce: deadline failures must
    // grow monotonically with fault intensity, and every fault family
    // must have fired at the top level. A violation is a broken fault
    // model, so fail loudly (CI runs this in smoke mode).
    for pair in points.windows(2) {
        assert!(
            pair[1].deadline_failures() >= pair[0].deadline_failures(),
            "deadline failures must be monotone in fault intensity: \
             level {} -> {} went {} -> {}",
            pair[0].level,
            pair[1].level,
            pair[0].deadline_failures(),
            pair[1].deadline_failures(),
        );
    }
    let (floor, top) = (&points[0], points.last().expect("levels exist"));
    assert!(
        top.deadline_failures() > floor.deadline_failures(),
        "faults at the top level must actually cost deadlines"
    );
    assert!(top.reroutes > 0, "link faults never triggered a failover");
    assert!(
        top.fcs_drops > 0,
        "corruption was never caught by an FCS check"
    );
    assert!(top.syncs_lost > 0, "sync faults never fired");
    println!(
        "\nmonotone: deadline failures non-decreasing across all {} levels",
        LEVELS.len()
    );

    dump_json("fault_sweep", &Json::arr(points));
}
