//! Fig. 7(a): end-to-end TS latency under different hop counts.
//!
//! Ring of 6 switches, slot 65 µs. The flow set traverses 1–4 switches;
//! the paper observes latency growing by about one slot per hop with
//! near-constant jitter, bounded by Eq. (1).

use tsn_builder::{cqf, itp, workloads, AppRequirements, CqfPlan};
use tsn_experiments::util::{dump_json, figure_config, print_series, ring_with_analyzers, run_network, QosPoint};
use tsn_resource::ResourceConfig;
use tsn_types::{DataRate, SimDuration};

fn main() {
    let slot = cqf::PAPER_SLOT;
    let mut points = Vec::new();
    for hops in 1..=4u64 {
        // Analyzer on switch (hops-1): the flow crosses `hops` switches.
        let (topo, tester, analyzers) =
            ring_with_analyzers(6, &[(hops - 1) as usize]).expect("topology builds");
        let flows = workloads::ts_flows_fixed_path(
            1024,
            tester,
            analyzers[0],
            64,
            SimDuration::from_millis(8),
        )
        .expect("workload builds");
        let requirements =
            AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
                .expect("valid requirements");
        let plan = CqfPlan::with_slot(&requirements, slot, DataRate::gbps(1)).expect("feasible");
        let offsets = itp::plan(&requirements, &plan, itp::Strategy::GreedyLeastLoaded)
            .expect("itp plans")
            .offsets;
        let report = run_network(
            topo,
            flows,
            &offsets,
            figure_config(slot, ResourceConfig::new()),
        );
        points.push(QosPoint::from_report(hops, &report));
    }

    print_series("Fig. 7(a) — latency vs hops (slot 65us)", "hops", &points);

    println!("\nEq. (1) check (gated hops g = hop-1 in this model; see DESIGN.md):");
    for p in &points {
        let (lo, hi) = cqf::latency_bounds(p.x, slot);
        println!(
            "  hops={}: measured [{:.1}, {:.1}]us vs paper bounds [{}, {}] -> {}",
            p.x,
            p.min_us,
            p.max_us,
            lo,
            hi,
            if p.max_us <= hi.as_micros_f64() { "within L_max" } else { "VIOLATION" }
        );
    }
    let jitters: Vec<f64> = points.iter().map(|p| p.jitter_us).collect();
    let jspread = jitters.iter().cloned().fold(f64::MIN, f64::max)
        - jitters.iter().cloned().fold(f64::MAX, f64::min);
    println!("jitter spread across hop counts: {jspread:.2}us (paper: nearly unchanged)");
    dump_json("fig7a", &points);
}
