//! Fig. 7(a): end-to-end TS latency under different hop counts.
//!
//! Ring of 6 switches, slot 65 µs. The flow set traverses 1–4 switches;
//! the paper observes latency growing by about one slot per hop with
//! near-constant jitter, bounded by Eq. (1).
//!
//! The four hop counts run in parallel through the scenario sweep
//! (`TSN_SWEEP_WORKERS` overrides the worker count).

use tsn_builder::{cqf, run_scenarios, workloads, Scenario};
use tsn_experiments::util::{
    dump_json, expect_outcomes, figure_config, print_series, ring_with_analyzers, QosPoint,
};
use tsn_resource::ResourceConfig;
use tsn_sim::sweep::workers_from_env;
use tsn_types::SimDuration;

fn main() {
    let slot = cqf::PAPER_SLOT;
    let scenarios: Vec<Scenario> = (1..=4u64)
        .map(|hops| {
            // Analyzer on switch (hops-1): the flow crosses `hops` switches.
            let (topo, tester, analyzers) =
                ring_with_analyzers(6, &[(hops - 1) as usize]).expect("topology builds");
            let flows = workloads::ts_flows_fixed_path(
                1024,
                tester,
                analyzers[0],
                64,
                SimDuration::from_millis(8),
            )
            .expect("workload builds");
            Scenario::explicit(
                format!("hops={hops}"),
                topo,
                flows,
                figure_config(slot, ResourceConfig::new()),
            )
        })
        .collect();

    let outcomes = expect_outcomes("fig7a", run_scenarios(&scenarios, workers_from_env()));
    let points: Vec<QosPoint> = outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| QosPoint::from_report(i as u64 + 1, &o.report))
        .collect();

    print_series("Fig. 7(a) — latency vs hops (slot 65us)", "hops", &points);

    println!("\nEq. (1) check (gated hops g = hop-1 in this model; see DESIGN.md):");
    for p in &points {
        let (lo, hi) = cqf::latency_bounds(p.x, slot);
        println!(
            "  hops={}: measured [{:.1}, {:.1}]us vs paper bounds [{}, {}] -> {}",
            p.x,
            p.min_us,
            p.max_us,
            lo,
            hi,
            if p.max_us <= hi.as_micros_f64() {
                "within L_max"
            } else {
                "VIOLATION"
            }
        );
    }
    let jitters: Vec<f64> = points.iter().map(|p| p.jitter_us).collect();
    let jspread = jitters.iter().cloned().fold(f64::MIN, f64::max)
        - jitters.iter().cloned().fold(f64::MAX, f64::min);
    println!("jitter spread across hop counts: {jspread:.2}us (paper: nearly unchanged)");
    dump_json("fig7a", &points);
}
