//! Minimal JSON support for the experiment regenerators: a value tree,
//! a pretty printer for `results/<name>.json`, and a small strict parser
//! for the `customize` scenario files.
//!
//! Local on purpose — the workspace builds offline, so the usual
//! serde/serde_json stack is not available. Only what the experiments
//! need is implemented: objects keep insertion order, numbers are `f64`
//! (integers up to 2^53 round-trip exactly), and the parser rejects
//! anything outside the JSON grammar instead of guessing.

/// A JSON value. Object members keep their insertion order, so emitted
/// files are stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are printed without a fraction).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each item.
    pub fn arr<T: ToJson>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(|v| v.to_json()).collect())
    }

    /// Member lookup on an object; `None` on other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object's member names, for unknown-field checks.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Obj(members) => members.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf; null is the honest fallback.
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] tree; what [`crate::util::dump_json`]
/// accepts.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}
to_json_int!(u8, u16, u32, u64, usize, i32, i64);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Parses a JSON text.
///
/// # Errors
///
/// A human-readable message naming the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?} at byte {key_at}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_the_printer_and_parser() {
        let value = Json::obj([
            ("name", Json::Str("ring \"demo\"\n".into())),
            ("count", Json::Num(1024.0)),
            ("ratio", Json::Num(2.5)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::arr([1u64, 2, 3])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::obj([("x", Json::Num(-7.0))])),
        ]);
        let text = value.pretty();
        let parsed = parse(&text).expect("own output parses");
        assert_eq!(parsed, value);
    }

    #[test]
    fn integers_print_without_a_fraction() {
        assert_eq!(Json::Num(65.0).pretty(), "65\n");
        assert_eq!(Json::Num(0.5).pretty(), "0.5\n");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parser_rejects_duplicate_keys() {
        let err = parse(r#"{"a": 1, "a": 2}"#).expect_err("duplicates rejected");
        assert!(err.contains("duplicate key \"a\""), "{err}");
        // Nested objects are checked too; sibling objects may repeat keys.
        assert!(parse(r#"{"o": {"x": 1, "x": 2}}"#).is_err());
        assert!(parse(r#"{"o": {"x": 1}, "p": {"x": 2}}"#).is_ok());
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(parse("{} {}").is_err());
        assert!(parse("[1] x").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn accessors_read_typed_members() {
        let v = parse(r#"{"a": 3, "b": "x", "c": true, "d": 1.5}"#).expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            v.get("d").and_then(Json::as_u64),
            None,
            "1.5 is not integral"
        );
        assert_eq!(v.keys(), vec!["a", "b", "c", "d"]);
    }
}
