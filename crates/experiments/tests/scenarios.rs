//! Every committed `scenarios/*.json` must go through the hand-rolled
//! strict JSON layer — and the strictness itself is pinned here: the
//! same documents with trailing garbage or a duplicated key must be
//! rejected, so no committed scenario silently depends on lenient
//! parsing.

use tsn_experiments::json::{parse, Json};

fn committed_scenarios() -> Vec<(String, String)> {
    let dir = format!("{}/../../scenarios", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {dir}: {e}"))
        .filter_map(Result::ok)
        .filter(|entry| entry.path().extension().is_some_and(|x| x == "json"))
        .map(|entry| {
            let path = entry.path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
            (name, text)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 5,
        "expected the committed scenario set, found {files:?}"
    );
    files
}

#[test]
fn every_committed_scenario_parses_strictly() {
    for (name, text) in committed_scenarios() {
        let root = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            matches!(root, Json::Obj(_)),
            "{name}: scenario roots are objects"
        );
    }
}

#[test]
fn trailing_garbage_after_any_scenario_is_rejected() {
    for (name, text) in committed_scenarios() {
        let garbled = format!("{text} trailing");
        assert!(
            parse(&garbled).is_err(),
            "{name}: trailing garbage was accepted"
        );
    }
}

#[test]
fn duplicating_a_scenario_key_is_rejected() {
    for (name, text) in committed_scenarios() {
        // Duplicate the root object's first member verbatim. Every
        // committed scenario is pretty-printed with one member per line,
        // so line 1 (after the opening brace) is a complete member.
        let mut lines: Vec<&str> = text.lines().collect();
        let first_member = lines[1].trim_end_matches(',').to_owned();
        let duplicated = format!("{first_member},");
        lines.insert(1, &duplicated);
        let garbled = lines.join("\n");
        assert!(
            parse(&garbled).is_err(),
            "{name}: duplicated key {first_member:?} was accepted"
        );
    }
}
