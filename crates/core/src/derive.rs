//! Parameter derivation — Section III.C's resource-configuration
//! guidelines, mechanized.
//!
//! | guideline | rule | implementation |
//! |---|---|---|
//! | (1) switch/class/meter tables | entries = flow count (worst case) | rounded up to a power of two, floor 16 |
//! | (2) In/Out gate tables | entries = slots per cycle; CQF ⇒ 2 | from [`crate::cqf::CqfPlan`] |
//! | (3) CBS map/CBS tables | entries = RC queues in use | min(RC queue count, distinct RC queues used) |
//! | (4) queues/buffers | depth = peak slot occupancy (ITP); buffers = depth × queues | from [`crate::itp`] |
//! | (5) enabled ports | max TS egress ports towards other switches | [`tsn_topology::EnabledPorts`] |

use crate::cqf::CqfPlan;
use crate::itp::{self, ItpResult, Strategy};
use crate::requirements::AppRequirements;
use crate::tas::TasSchedule;
use tsn_resource::ResourceConfig;
use tsn_topology::EnabledPorts;
use tsn_types::{DataRate, SimDuration, TsnResult};

/// Which gate-control program the switches run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateMode {
    /// Cyclic Queuing and Forwarding: two GCL entries, the paper's
    /// evaluation mode.
    Cqf,
    /// Synthesized 802.1Qbv windows: `gate_size` = slots per hyperperiod,
    /// TS gates closed outside the scheduled windows (see
    /// [`crate::tas`]).
    Tas,
}

/// Knobs of the derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeriveOptions {
    /// Slot to use; `None` lets [`CqfPlan::choose_slot`] pick the largest
    /// feasible one.
    pub slot: Option<SimDuration>,
    /// Link rate of the target network.
    pub link_rate: DataRate,
    /// Injection-planning strategy.
    pub strategy: Strategy,
    /// Queues per port (the paper's prototype uses 8).
    pub queue_num: u32,
    /// Override the ITP-derived queue depth (the paper pins 12, computed
    /// by the full optimizer of reference \[24\]).
    pub queue_depth_override: Option<u32>,
    /// Override the derived table size (the paper prints exactly 1024).
    pub table_size_override: Option<u32>,
    /// Override the CBS map/table entry count (the paper provisions all
    /// three RC queues per port regardless of the tested flow mix).
    pub cbs_override: Option<u32>,
    /// Gate-control program (CQF in the paper's evaluation).
    pub gate_mode: GateMode,
    /// Size the switch table per *destination* instead of per flow and
    /// install aggregated any-VLAN entries (guideline 1: "some table
    /// entries could be aggregated according to the transmission path").
    pub aggregate_switch_tbl: bool,
}

impl DeriveOptions {
    /// The paper's evaluation settings: 65 µs slot, 1 Gbps links, greedy
    /// ITP, 8 queues, depth 12, tables of 1024.
    #[must_use]
    pub fn paper() -> Self {
        DeriveOptions {
            slot: Some(crate::cqf::PAPER_SLOT),
            link_rate: DataRate::gbps(1),
            strategy: Strategy::GreedyLeastLoaded,
            queue_num: 8,
            queue_depth_override: Some(12),
            table_size_override: Some(1024),
            cbs_override: Some(3),
            gate_mode: GateMode::Cqf,
            aggregate_switch_tbl: false,
        }
    }

    /// Fully automatic derivation (no overrides).
    #[must_use]
    pub fn automatic() -> Self {
        DeriveOptions {
            slot: None,
            link_rate: DataRate::gbps(1),
            strategy: Strategy::GreedyLeastLoaded,
            queue_num: 8,
            queue_depth_override: None,
            table_size_override: None,
            cbs_override: None,
            gate_mode: GateMode::Cqf,
            aggregate_switch_tbl: false,
        }
    }
}

impl Default for DeriveOptions {
    fn default() -> Self {
        DeriveOptions::paper()
    }
}

/// The derived customization: everything the synthesis stage needs.
#[derive(Debug, Clone)]
pub struct DerivedConfig {
    /// The Table II parameters.
    pub resources: ResourceConfig,
    /// The CQF plan (slot, phases, bounds).
    pub cqf: CqfPlan,
    /// The injection plan.
    pub itp: ItpResult,
    /// Per-switch enabled-port analysis.
    pub enabled_ports: EnabledPorts,
    /// The synthesized 802.1Qbv schedule, when
    /// [`GateMode::Tas`] was requested.
    pub tas: Option<TasSchedule>,
    /// Whether the switch table uses aggregated per-destination entries.
    pub aggregate_switch_tbl: bool,
}

/// Runs the full derivation pipeline for a scenario.
///
/// # Errors
///
/// Propagates CQF infeasibility, routing failures and parameter
/// validation errors.
///
/// # Example
///
/// ```
/// use tsn_builder::derive::{derive_parameters, DeriveOptions};
/// use tsn_builder::requirements::AppRequirements;
/// use tsn_topology::presets;
/// use tsn_types::{FlowId, FlowSet, SimDuration, TsFlowSpec};
///
/// let topo = presets::ring(6, 3)?;
/// let hosts = topo.hosts();
/// let mut flows = FlowSet::new();
/// for id in 0..64 {
///     flows.push(TsFlowSpec::new(
///         FlowId::new(id), hosts[0], hosts[1],
///         SimDuration::from_millis(10), SimDuration::from_millis(8), 64,
///     )?.into());
/// }
/// let req = AppRequirements::new(topo, flows, SimDuration::from_nanos(50))?;
/// let derived = derive_parameters(&req, &DeriveOptions::paper())?;
/// assert_eq!(derived.resources.port_num(), 1); // ring: one TSN port
/// assert_eq!(derived.resources.queue_depth(), 12);
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
pub fn derive_parameters(
    requirements: &AppRequirements,
    options: &DeriveOptions,
) -> TsnResult<DerivedConfig> {
    // Guideline (2): slot + gate size from the CQF plan.
    let cqf = match options.slot {
        Some(slot) => CqfPlan::with_slot(requirements, slot, options.link_rate)?,
        None => CqfPlan::choose_slot(requirements, options.link_rate)?,
    };

    // Guideline (4): injection planning fixes the queue depth.
    let itp = itp::plan(requirements, &cqf, options.strategy)?;

    derive_with_plans(requirements, options, cqf, itp)
}

/// As [`derive_parameters`], but with the CQF and injection plans
/// supplied by the caller — the incremental re-derive entry point for
/// searchers that reuse memoized plans across many candidate
/// configurations of the same scenario (see `tsn-dse`).
///
/// # Errors
///
/// Propagates routing failures and parameter validation errors.
pub fn derive_with_plans(
    requirements: &AppRequirements,
    options: &DeriveOptions,
    cqf: CqfPlan,
    itp: ItpResult,
) -> TsnResult<DerivedConfig> {
    let queue_depth = options
        .queue_depth_override
        .unwrap_or_else(|| itp.recommended_queue_depth())
        .max(1);

    // Guideline (5): enabled ports from the TS routes.
    let enabled_ports = EnabledPorts::from_flows(requirements.topology(), requirements.flows())?;
    let port_num = (enabled_ports.max_per_switch() as u32).max(1);

    // Guideline (1): shared tables sized by the flow count — or, with
    // aggregation, the switch table by the destination count.
    let flow_count = requirements.flows().len() as u32;
    let table_size = options
        .table_size_override
        .unwrap_or_else(|| flow_count.max(16).next_power_of_two());
    let switch_size = if options.aggregate_switch_tbl {
        let dsts: std::collections::BTreeSet<_> =
            requirements.flows().iter().map(|f| f.dst()).collect();
        (dsts.len() as u32).max(16).next_power_of_two()
    } else {
        table_size
    };

    // Guideline (2), TAS variant: synthesize the windows; the gate table
    // must hold one entry per slot of the hyperperiod.
    let tas = match options.gate_mode {
        GateMode::Cqf => None,
        GateMode::Tas => Some(TasSchedule::synthesize(
            requirements,
            &cqf,
            &itp,
            &tsn_switch::QueueLayout::standard8(),
        )?),
    };
    let gate_size = tas.as_ref().map_or(cqf.gate_size, TasSchedule::gate_size);

    // Guideline (3): CBS entries = RC queues in use (the paper's layout
    // has three RC queues per port).
    let rc_queue_count = options.cbs_override.unwrap_or_else(|| {
        if requirements.flows().rc_count() == 0 {
            0
        } else {
            requirements.flows().rc_count().clamp(1, 3) as u32
        }
    });

    let mut resources = ResourceConfig::new();
    resources
        .set_switch_tbl(switch_size, 0)?
        .set_class_tbl(table_size)?
        .set_meter_tbl(table_size)?
        .set_gate_tbl(gate_size, options.queue_num, port_num)?
        .set_cbs_tbl(rc_queue_count, rc_queue_count, port_num)?
        .set_queues(queue_depth, options.queue_num, port_num)?
        .set_buffers(queue_depth * options.queue_num, port_num)?;

    Ok(DerivedConfig {
        resources,
        cqf,
        itp,
        enabled_ports,
        tas,
        aggregate_switch_tbl: options.aggregate_switch_tbl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_topology::presets;
    use tsn_types::{FlowId, FlowSet, RcFlowSpec, TsFlowSpec};

    fn requirements(
        topology: tsn_topology::Topology,
        ts_flows: u32,
        rc_flows: u32,
    ) -> AppRequirements {
        let hosts = topology.hosts();
        let mut flows = FlowSet::new();
        for id in 0..ts_flows {
            flows.push(
                TsFlowSpec::new(
                    FlowId::new(id),
                    hosts[(id as usize) % hosts.len()],
                    hosts[(id as usize + 1) % hosts.len()],
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(8),
                    64,
                )
                .expect("valid flow")
                .into(),
            );
        }
        for k in 0..rc_flows {
            flows.push(
                RcFlowSpec::new(
                    FlowId::new(ts_flows + k),
                    hosts[0],
                    hosts[1 % hosts.len()],
                    DataRate::mbps(50),
                    1024,
                )
                .expect("valid flow")
                .into(),
            );
        }
        AppRequirements::new(topology, flows, SimDuration::from_nanos(50)).expect("valid scenario")
    }

    #[test]
    fn paper_options_reproduce_table_iii_parameters() {
        for (topology, expected_ports) in [
            (presets::star(3, 3).expect("builds"), 3u32),
            (presets::linear(6, 2).expect("builds"), 2),
            (presets::ring(6, 3).expect("builds"), 1),
        ] {
            let req = requirements(topology, 64, 0);
            let derived = derive_parameters(&req, &DeriveOptions::paper()).expect("derives");
            let r = &derived.resources;
            assert_eq!(r.port_num(), expected_ports);
            assert_eq!(r.unicast_size(), 1024);
            assert_eq!(r.class_size(), 1024);
            assert_eq!(r.meter_size(), 1024);
            assert_eq!(r.gate_size(), 2);
            assert_eq!(r.queue_depth(), 12);
            assert_eq!(r.queue_num(), 8);
            assert_eq!(r.buffer_num(), 96, "depth 12 × 8 queues");
        }
    }

    #[test]
    fn automatic_tables_scale_with_flow_count() {
        let req = requirements(presets::ring(6, 3).expect("builds"), 100, 0);
        let derived = derive_parameters(&req, &DeriveOptions::automatic()).expect("derives");
        assert_eq!(derived.resources.class_size(), 128, "next pow2 of 100");
        // Depth follows ITP, not the override.
        assert_eq!(
            derived.resources.queue_depth(),
            derived.itp.recommended_queue_depth()
        );
        assert_eq!(
            derived.resources.buffer_num(),
            derived.resources.queue_depth() * 8
        );
    }

    #[test]
    fn cbs_entries_follow_rc_usage() {
        let mut options = DeriveOptions::automatic();
        options.slot = Some(crate::cqf::PAPER_SLOT);

        let no_rc = requirements(presets::ring(6, 3).expect("builds"), 8, 0);
        let derived = derive_parameters(&no_rc, &options).expect("derives");
        assert_eq!(derived.resources.cbs_size(), 0, "no RC flows, no shapers");

        let with_rc = requirements(presets::ring(6, 3).expect("builds"), 8, 2);
        let derived = derive_parameters(&with_rc, &options).expect("derives");
        assert_eq!(derived.resources.cbs_size(), 2);

        let many_rc = requirements(presets::ring(6, 3).expect("builds"), 8, 9);
        let derived = derive_parameters(&many_rc, &options).expect("derives");
        assert_eq!(derived.resources.cbs_size(), 3, "capped at the 3 RC queues");

        let paper = derive_parameters(&no_rc, &DeriveOptions::paper()).expect("derives");
        assert_eq!(
            paper.resources.cbs_size(),
            3,
            "paper provisions all RC queues"
        );
    }

    #[test]
    fn derive_with_plans_matches_the_full_pipeline() {
        let req = requirements(presets::ring(6, 3).expect("builds"), 24, 0);
        let options = DeriveOptions::automatic();
        let full = derive_parameters(&req, &options).expect("derives");
        let incremental = derive_with_plans(&req, &options, full.cqf.clone(), full.itp.clone())
            .expect("re-derives");
        assert_eq!(full.resources, incremental.resources);
        assert_eq!(full.cqf, incremental.cqf);
        assert_eq!(full.itp, incremental.itp);
    }

    #[test]
    fn infeasible_slot_propagates() {
        let req = requirements(presets::ring(6, 3).expect("builds"), 4, 0);
        let mut options = DeriveOptions::paper();
        options.slot = Some(SimDuration::from_millis(100));
        assert!(derive_parameters(&req, &options).is_err());
    }

    #[test]
    fn derived_resources_beat_the_commercial_baseline() {
        use tsn_resource::{baseline, AllocationPolicy, UsageReport};
        let req = requirements(presets::ring(6, 3).expect("builds"), 64, 3);
        let derived = derive_parameters(&req, &DeriveOptions::paper()).expect("derives");
        let custom = UsageReport::of(&derived.resources, AllocationPolicy::PaperAccounting);
        let cots = UsageReport::of(&baseline::bcm53154(), AllocationPolicy::PaperAccounting);
        assert!(
            custom.reduction_vs(&cots) > 50.0,
            "ring customization should save well over half the BRAM"
        );
    }
}
