//! 802.1Qbv Time-Aware Shaper schedule synthesis — the general gating
//! mode beyond CQF.
//!
//! The paper's guideline (2): *"The number of entries for each
//! \[gate\] table equals the number of time slots within a scheduling
//! cycle"* — that is the full-TAS case, of which CQF (gate_size = 2) is
//! the cyclic special case used in the evaluation. This module
//! implements the general case in the style of GCL-synthesis work
//! (ref \[20\]): given the ITP injection plan, it computes exactly which
//! slots each port's TS queues must open in, and closes them everywhere
//! else.
//!
//! Compared to CQF, a synthesized TAS schedule:
//!
//! * needs `gate_size = phases` entries per GCL instead of 2 (the
//!   resource trade-off the customization API exposes);
//! * **protects** the TS queues: a TS-marked frame arriving outside its
//!   scheduled slot meets a closed ingress gate and is dropped — the
//!   per-stream protection flavour of 802.1Qci.

use crate::cqf::CqfPlan;
use crate::itp::ItpResult;
use crate::requirements::AppRequirements;
use std::collections::HashMap;
use tsn_switch::gate_ctrl::{GateControlList, GateEntry};
use tsn_switch::layout::QueueLayout;
use tsn_types::{NodeId, PortId, QueueId, SimDuration, TsnError, TsnResult};

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A synthesized per-port 802.1Qbv schedule.
#[derive(Debug, Clone)]
pub struct TasSchedule {
    slot: SimDuration,
    phases: u64,
    gcls: HashMap<(NodeId, PortId), (GateControlList, GateControlList)>,
}

impl TasSchedule {
    /// Synthesizes the schedule for a scenario: each TS flow occupies an
    /// ingress window at its (ITP-planned) arrival slot and an egress
    /// window one slot later, on every switch egress port along its
    /// route. The CQF queue pair alternates by slot parity, so the
    /// per-hop timing (and Eq. (1)) is identical to CQF — only the
    /// *unused* slots are now closed.
    ///
    /// # Errors
    ///
    /// Propagates routing errors; [`TsnError::ScheduleInfeasible`] if the
    /// scenario has no TS flows to schedule.
    pub fn synthesize(
        requirements: &AppRequirements,
        plan: &CqfPlan,
        itp: &ItpResult,
        layout: &QueueLayout,
    ) -> TsnResult<Self> {
        if requirements.flows().ts_count() == 0 {
            return Err(TsnError::ScheduleInfeasible(
                "a TAS schedule needs at least one TS flow".to_owned(),
            ));
        }
        let (qa, qb) = layout.cqf_pair();
        let pair = [qa, qb];
        let slot_ns = plan.slot.as_nanos();

        // Slot-aligned talkers advance exactly ceil(period/slot) slots per
        // period, so each flow's windows repeat with that *effective*
        // period; the GCL length is the LCM of all effective periods,
        // rounded even so the queue-pair parity survives the wrap.
        let mut phases: u64 = 1;
        for flow in requirements.flows().ts_flows() {
            let per = flow.period().as_nanos().div_ceil(slot_ns).max(1);
            phases = phases / gcd(phases, per) * per;
            if phases > 1 << 20 {
                return Err(TsnError::ScheduleInfeasible(format!(
                    "TAS hyperperiod exceeds 2^20 slots at slot {}",
                    plan.slot
                )));
            }
        }
        if phases % 2 == 1 {
            phases *= 2;
        }

        // Base entries: non-TS queues always open, TS pair closed.
        let base_entry = {
            let mut e = GateEntry::all_closed();
            for q in 0..layout.queue_num() {
                let q = QueueId::new(q as u8);
                if q != qa && q != qb {
                    e = e.with_open(q);
                }
            }
            e
        };

        let mut in_entries: HashMap<(NodeId, PortId), Vec<GateEntry>> = HashMap::new();
        let mut out_entries: HashMap<(NodeId, PortId), Vec<GateEntry>> = HashMap::new();

        for flow in requirements.flows().ts_flows() {
            let route = requirements.topology().route(flow.src(), flow.dst())?;
            let offset = itp
                .offsets
                .get(flow.id())
                .copied()
                .unwrap_or(SimDuration::ZERO);
            let effective_period_slots = flow.period().as_nanos().div_ceil(slot_ns).max(1);
            let repeats = (phases / effective_period_slots).max(1);
            for n in 0..repeats {
                let base_phase = offset.as_nanos() / slot_ns + n * effective_period_slots;
                for (k, hop) in route.switch_hops_iter().enumerate() {
                    let Some(egress) = hop.egress else { continue };
                    let arrival = (base_phase + k as u64) % phases;
                    let departure = (arrival + 1) % phases;
                    let queue = pair[(arrival % 2) as usize];
                    let key = (hop.node, egress);
                    let ins = in_entries
                        .entry(key)
                        .or_insert_with(|| vec![base_entry; phases as usize]);
                    ins[arrival as usize] = ins[arrival as usize].with_open(queue);
                    let outs = out_entries
                        .entry(key)
                        .or_insert_with(|| vec![base_entry; phases as usize]);
                    outs[departure as usize] = outs[departure as usize].with_open(queue);
                }
            }
        }

        let mut gcls = HashMap::new();
        for (key, ins) in in_entries {
            let outs = out_entries
                .remove(&key)
                .expect("in/out windows are created together");
            gcls.insert(
                key,
                (
                    GateControlList::new(ins, plan.slot)?,
                    GateControlList::new(outs, plan.slot)?,
                ),
            );
        }
        Ok(TasSchedule {
            slot: plan.slot,
            phases,
            gcls,
        })
    }

    /// Entries per gate control list (`gate_size` in the customization
    /// API).
    #[must_use]
    pub fn gate_size(&self) -> u32 {
        self.phases as u32
    }

    /// The slot length.
    #[must_use]
    pub fn slot(&self) -> SimDuration {
        self.slot
    }

    /// The per-port GCL programs, keyed by `(switch, egress port)`.
    #[must_use]
    pub fn gcls(&self) -> &HashMap<(NodeId, PortId), (GateControlList, GateControlList)> {
        &self.gcls
    }

    /// Number of ports carrying a synthesized program.
    #[must_use]
    pub fn port_count(&self) -> usize {
        self.gcls.len()
    }

    /// Fraction of (port, slot, TS-queue) ingress windows that are open —
    /// a measure of how much tighter TAS gating is than CQF (which keeps
    /// one TS ingress open in *every* slot).
    #[must_use]
    pub fn ingress_open_fraction(&self, layout: &QueueLayout) -> f64 {
        let (qa, qb) = layout.cqf_pair();
        let mut open = 0u64;
        let mut total = 0u64;
        for (in_gcl, _) in self.gcls.values() {
            for phase in 0..self.phases {
                let t = tsn_types::SimTime::ZERO + self.slot * phase;
                for q in [qa, qb] {
                    total += 1;
                    if in_gcl.is_open(q, t) {
                        open += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            open as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cqf::PAPER_SLOT, itp, DeriveOptions};
    use tsn_topology::presets;
    use tsn_types::{DataRate, FlowId, FlowSet, SimTime, TsFlowSpec};

    fn scenario(flows_n: u32) -> (AppRequirements, CqfPlan, ItpResult) {
        let topo = presets::ring(6, 3).expect("topology builds");
        let hosts = topo.hosts();
        let mut flows = FlowSet::new();
        for id in 0..flows_n {
            flows.push(
                TsFlowSpec::new(
                    FlowId::new(id),
                    hosts[0],
                    hosts[1],
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(8),
                    64,
                )
                .expect("valid flow")
                .into(),
            );
        }
        let req =
            AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).expect("valid scenario");
        let plan = CqfPlan::with_slot(&req, PAPER_SLOT, DataRate::gbps(1)).expect("feasible");
        let planned = itp::plan(&req, &plan, itp::Strategy::GreedyLeastLoaded).expect("plans");
        (req, plan, planned)
    }

    #[test]
    fn synthesizes_programs_for_every_ts_egress() {
        let (req, plan, planned) = scenario(16);
        let schedule = TasSchedule::synthesize(&req, &plan, &planned, &QueueLayout::standard8())
            .expect("synthesizes");
        // host0 -> host1 crosses sw0 (ring egress) and sw1 (host egress).
        assert_eq!(schedule.port_count(), 2);
        assert_eq!(schedule.gate_size(), 154, "ceil(10ms/65us) rounded even");
    }

    #[test]
    fn windows_open_exactly_one_slot_after_arrival() {
        let (req, plan, planned) = scenario(4);
        let layout = QueueLayout::standard8();
        let schedule =
            TasSchedule::synthesize(&req, &plan, &planned, &layout).expect("synthesizes");
        let (qa, qb) = layout.cqf_pair();
        for (in_gcl, out_gcl) in schedule.gcls().values() {
            for phase in 0..schedule.gate_size() as u64 {
                let t = SimTime::ZERO + PAPER_SLOT * phase;
                let next = SimTime::ZERO + PAPER_SLOT * ((phase + 1) % 154);
                for q in [qa, qb] {
                    if in_gcl.is_open(q, t) {
                        assert!(
                            out_gcl.is_open(q, next),
                            "an ingress window at phase {phase} needs an egress window next"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tas_gating_is_sparser_than_cqf() {
        let (req, plan, planned) = scenario(8);
        let layout = QueueLayout::standard8();
        let schedule =
            TasSchedule::synthesize(&req, &plan, &planned, &layout).expect("synthesizes");
        let fraction = schedule.ingress_open_fraction(&layout);
        // CQF keeps one of the two pair gates open in every slot -> 0.5.
        assert!(
            fraction < 0.25,
            "8 flows over 154 phases should leave most windows closed, got {fraction}"
        );
        assert!(fraction > 0.0);
    }

    #[test]
    fn schedule_is_deterministic() {
        let (req, plan, planned) = scenario(32);
        let layout = QueueLayout::standard8();
        let a = TasSchedule::synthesize(&req, &plan, &planned, &layout).expect("synthesizes");
        let b = TasSchedule::synthesize(&req, &plan, &planned, &layout).expect("synthesizes");
        assert_eq!(a.gcls().len(), b.gcls().len());
        for (key, (in_a, out_a)) in a.gcls() {
            let (in_b, out_b) = &b.gcls()[key];
            assert_eq!(in_a, in_b);
            assert_eq!(out_a, out_b);
        }
        let _ = DeriveOptions::paper();
    }
}
