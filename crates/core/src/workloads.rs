//! Workload generators matching the paper's evaluation setup
//! (Section IV.A).
//!
//! "We generate 1024 periodic TS flows and the period of each TS flow is
//! 10 ms. The deadline of each TS flow is randomly selected from the set
//! {1 ms, 2 ms, 4 ms, 8 ms}. The packet size … is selected from the set
//! {64 B, 128 B, 256 B, 512 B, 1024 B, 1500 B}. … Since the RC/BE flows
//! are background flows here, the packet size of each RC/BE flow is set
//! as 1024 B." Flow features follow IEC 60802's production-cell/line
//! profile.

use tsn_topology::Topology;
use tsn_types::{
    BeFlowSpec, DataRate, FlowId, FlowSet, RcFlowSpec, SimDuration, SplitMix64, TsFlowSpec,
    TsnError, TsnResult,
};

/// The paper's TS period (10 ms).
pub const TS_PERIOD: SimDuration = SimDuration::from_millis(10);
/// The paper's deadline set.
pub const DEADLINES_MS: [u64; 4] = [1, 2, 4, 8];
/// The paper's packet-size sweep (Fig. 7(b)).
pub const FRAME_SIZES: [u32; 6] = [64, 128, 256, 512, 1024, 1500];
/// Background frame size for RC/BE flows.
pub const BACKGROUND_FRAME_BYTES: u32 = 1024;

fn hosts_of(topology: &Topology) -> TsnResult<Vec<tsn_types::NodeId>> {
    let hosts = topology.hosts();
    if hosts.len() < 2 {
        return Err(TsnError::invalid_parameter(
            "topology",
            "workloads need at least two hosts",
        ));
    }
    Ok(hosts.to_vec())
}

/// IEC 60802-style TS flows: `count` flows of 64 B at 10 ms period with
/// deadlines drawn uniformly from {1, 2, 4, 8} ms, talker/listener pairs
/// striped over consecutive hosts. Deterministic for a given `seed`.
///
/// # Errors
///
/// Returns [`TsnError::InvalidParameter`] for topologies with fewer than
/// two hosts.
pub fn iec60802_ts_flows(topology: &Topology, count: u32, seed: u64) -> TsnResult<FlowSet> {
    ts_flows_sized(topology, count, 64, seed)
}

/// As [`iec60802_ts_flows`] but with an explicit frame size (the Fig. 7(b)
/// sweep).
///
/// # Errors
///
/// As [`iec60802_ts_flows`]; frame sizes outside 64..=1522 are rejected.
pub fn ts_flows_sized(
    topology: &Topology,
    count: u32,
    frame_bytes: u32,
    seed: u64,
) -> TsnResult<FlowSet> {
    let hosts = hosts_of(topology)?;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut flows = FlowSet::new();
    for id in 0..count {
        let src = hosts[id as usize % hosts.len()];
        let dst = hosts[(id as usize + 1) % hosts.len()];
        let deadline_ms = DEADLINES_MS[rng.gen_range(DEADLINES_MS.len() as u64) as usize];
        flows.push(
            TsFlowSpec::new(
                FlowId::new(id),
                src,
                dst,
                TS_PERIOD,
                SimDuration::from_millis(deadline_ms),
                frame_bytes,
            )?
            .into(),
        );
    }
    Ok(flows)
}

/// TS flows with one *uniform* QoS target — `count` flows of
/// `frame_bytes` at `period`, all sharing the same `deadline`, with
/// talker/listener pairs drawn seed-deterministically from the host set.
/// This is the requirements→query plumbing for design-space search
/// (`tsn-dse`), where a batch query states a single deadline target for
/// the whole flow set rather than the paper's per-flow random draw.
///
/// # Errors
///
/// Returns [`TsnError::InvalidParameter`] for topologies with fewer than
/// two hosts or a zero flow count; frame sizes outside 64..=1522 are
/// rejected by flow-spec validation.
pub fn uniform_ts_flows(
    topology: &Topology,
    count: u32,
    frame_bytes: u32,
    period: SimDuration,
    deadline: SimDuration,
    seed: u64,
) -> TsnResult<FlowSet> {
    if count == 0 {
        return Err(TsnError::invalid_parameter(
            "ts_count",
            "a query needs at least one TS flow",
        ));
    }
    let hosts = hosts_of(topology)?;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut flows = FlowSet::new();
    for id in 0..count {
        let src = hosts[rng.gen_range(hosts.len() as u64) as usize];
        // Draw a distinct listener: offset in 1..len keeps src != dst.
        let offset = 1 + rng.gen_range(hosts.len() as u64 - 1) as usize;
        let dst = hosts[(hosts.iter().position(|&h| h == src).unwrap_or(0) + offset) % hosts.len()];
        flows.push(
            TsFlowSpec::new(FlowId::new(id), src, dst, period, deadline, frame_bytes)?.into(),
        );
    }
    Ok(flows)
}

/// TS flows that all follow one explicit path (the Fig. 7(a) hop sweep):
/// every flow runs `src → dst` with the given size and a deadline wide
/// enough for any slot the sweep uses.
///
/// # Errors
///
/// Propagates flow-spec validation.
pub fn ts_flows_fixed_path(
    count: u32,
    src: tsn_types::NodeId,
    dst: tsn_types::NodeId,
    frame_bytes: u32,
    deadline: SimDuration,
) -> TsnResult<FlowSet> {
    let mut flows = FlowSet::new();
    for id in 0..count {
        flows.push(
            TsFlowSpec::new(FlowId::new(id), src, dst, TS_PERIOD, deadline, frame_bytes)?.into(),
        );
    }
    Ok(flows)
}

/// Adds RC and BE background flows of `rc_rate` / `be_rate` each between
/// consecutive host pairs, ids starting at `base_id`. Either rate may be
/// zero to skip that class.
///
/// # Errors
///
/// As [`iec60802_ts_flows`].
pub fn background_flows(
    topology: &Topology,
    rc_rate: DataRate,
    be_rate: DataRate,
    base_id: u32,
) -> TsnResult<FlowSet> {
    let hosts = hosts_of(topology)?;
    let mut flows = FlowSet::new();
    let mut id = base_id;
    let (src, dst) = (hosts[0], hosts[1]);
    if !rc_rate.is_zero() {
        flows.push(
            RcFlowSpec::new(FlowId::new(id), src, dst, rc_rate, BACKGROUND_FRAME_BYTES)?.into(),
        );
        id += 1;
    }
    if !be_rate.is_zero() {
        flows.push(
            BeFlowSpec::new(FlowId::new(id), src, dst, be_rate, BACKGROUND_FRAME_BYTES)?.into(),
        );
    }
    Ok(flows)
}

/// Merges two flow sets (ids must already be distinct).
#[must_use]
pub fn merge(mut a: FlowSet, b: FlowSet) -> FlowSet {
    a.extend(b);
    a
}

/// Splits one logical multicast TS stream into per-listener unicast
/// flows, the strategy the paper adopts: "We only create a unicast table
/// in our TSN switch because the multicast flows can be split into
/// multiple unicast flows" (Section IV.B).
///
/// Each listener gets its own [`FlowId`] starting at `base_id`, sharing
/// the talker, period, deadline and frame size.
///
/// # Errors
///
/// Returns [`TsnError::InvalidParameter`] for an empty listener list, and
/// propagates flow-spec validation.
pub fn split_multicast(
    src: tsn_types::NodeId,
    listeners: &[tsn_types::NodeId],
    base_id: u32,
    period: SimDuration,
    deadline: SimDuration,
    frame_bytes: u32,
) -> TsnResult<FlowSet> {
    if listeners.is_empty() {
        return Err(TsnError::invalid_parameter(
            "listeners",
            "a multicast stream needs at least one listener",
        ));
    }
    let mut flows = FlowSet::new();
    for (k, &dst) in listeners.iter().enumerate() {
        flows.push(
            TsFlowSpec::new(
                FlowId::new(base_id + k as u32),
                src,
                dst,
                period,
                deadline,
                frame_bytes,
            )?
            .into(),
        );
    }
    Ok(flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_topology::presets;

    #[test]
    fn iec60802_flows_match_the_paper_profile() {
        let topo = presets::ring(6, 3).expect("builds");
        let flows = iec60802_ts_flows(&topo, 1024, 1).expect("workload builds");
        assert_eq!(flows.ts_count(), 1024);
        for flow in flows.ts_flows() {
            assert_eq!(flow.period(), TS_PERIOD);
            assert_eq!(flow.frame_bytes(), 64);
            let ms = flow.deadline().as_millis();
            assert!(DEADLINES_MS.contains(&ms), "deadline {ms} ms in the set");
        }
        // All four deadlines actually occur at this scale.
        for target in DEADLINES_MS {
            assert!(
                flows.ts_flows().any(|f| f.deadline().as_millis() == target),
                "deadline {target} ms should be drawn at n=1024"
            );
        }
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        let topo = presets::ring(6, 3).expect("builds");
        let a = iec60802_ts_flows(&topo, 64, 9).expect("workload builds");
        let b = iec60802_ts_flows(&topo, 64, 9).expect("workload builds");
        assert_eq!(a, b);
        let c = iec60802_ts_flows(&topo, 64, 10).expect("workload builds");
        assert_ne!(a, c, "different seed, different deadlines");
    }

    #[test]
    fn uniform_flows_share_one_deadline_and_are_deterministic() {
        let topo = presets::ring(5, 3).expect("builds");
        let deadline = SimDuration::from_millis(4);
        let a = uniform_ts_flows(&topo, 32, 128, TS_PERIOD, deadline, 11).expect("builds");
        assert_eq!(a.ts_count(), 32);
        for flow in a.ts_flows() {
            assert_eq!(flow.deadline(), deadline);
            assert_eq!(flow.frame_bytes(), 128);
            assert_ne!(flow.src(), flow.dst(), "talker and listener differ");
        }
        let b = uniform_ts_flows(&topo, 32, 128, TS_PERIOD, deadline, 11).expect("builds");
        assert_eq!(a, b, "seed-deterministic");
        let c = uniform_ts_flows(&topo, 32, 128, TS_PERIOD, deadline, 12).expect("builds");
        assert_ne!(a, c, "different seed, different pairs");
        assert!(
            uniform_ts_flows(&topo, 0, 128, TS_PERIOD, deadline, 11).is_err(),
            "zero-flow queries are structured errors"
        );
    }

    #[test]
    fn fixed_path_flows_share_endpoints() {
        let topo = presets::ring(6, 6).expect("builds");
        let hosts = topo.hosts();
        let flows = ts_flows_fixed_path(16, hosts[0], hosts[3], 256, SimDuration::from_millis(8))
            .expect("workload builds");
        assert!(flows
            .ts_flows()
            .all(|f| f.src() == hosts[0] && f.dst() == hosts[3]));
        assert!(flows.ts_flows().all(|f| f.frame_bytes() == 256));
    }

    #[test]
    fn background_rates_and_classes() {
        let topo = presets::ring(6, 3).expect("builds");
        let both = background_flows(&topo, DataRate::mbps(100), DataRate::mbps(300), 5000)
            .expect("workload builds");
        assert_eq!(both.rc_count(), 1);
        assert_eq!(both.be_count(), 1);
        let rc_only = background_flows(&topo, DataRate::mbps(100), DataRate::ZERO, 5000)
            .expect("workload builds");
        assert_eq!(rc_only.len(), 1);
        let none =
            background_flows(&topo, DataRate::ZERO, DataRate::ZERO, 5000).expect("workload builds");
        assert!(none.is_empty());
    }

    #[test]
    fn merge_concatenates() {
        let topo = presets::ring(6, 3).expect("builds");
        let ts = iec60802_ts_flows(&topo, 8, 1).expect("workload builds");
        let bg = background_flows(&topo, DataRate::mbps(10), DataRate::mbps(10), 100)
            .expect("workload builds");
        let all = merge(ts, bg);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn multicast_splits_into_per_listener_unicast() {
        let topo = presets::ring(6, 3).expect("builds");
        let hosts = topo.hosts();
        let flows = split_multicast(
            hosts[0],
            &hosts[1..],
            500,
            TS_PERIOD,
            SimDuration::from_millis(4),
            128,
        )
        .expect("splits");
        assert_eq!(flows.ts_count(), 2);
        let ids: Vec<u32> = flows.iter().map(|f| f.id().index()).collect();
        assert_eq!(ids, vec![500, 501]);
        assert!(flows.ts_flows().all(|f| f.src() == hosts[0]));
        assert!(split_multicast(
            hosts[0],
            &[],
            0,
            TS_PERIOD,
            SimDuration::from_millis(4),
            128
        )
        .is_err());
    }

    #[test]
    fn too_few_hosts_is_rejected() {
        let mut topo = Topology::new();
        let s = topo.add_switch("s");
        let h = topo.add_host("h");
        topo.connect(h, s, DataRate::gbps(1)).expect("link");
        assert!(iec60802_ts_flows(&topo, 4, 0).is_err());
    }
}
