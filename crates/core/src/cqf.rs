//! Cyclic Queuing and Forwarding planning (802.1Qch) — Eq. (1) and slot
//! sizing.
//!
//! The evaluation statically configures the gate control lists to run CQF:
//! two TS queues alternate, a packet received in slot *i* leaves in slot
//! *i+1*, and the end-to-end latency obeys
//!
//! ```text
//! L_max = (hop + 1) × slot        L_min = (hop − 1) × slot
//! ```
//!
//! This module picks a feasible slot for a scenario and exposes the
//! bounds.

use crate::requirements::AppRequirements;
use tsn_types::{DataRate, SimDuration, TsnError, TsnResult};

/// The paper's slot length (65 µs).
pub const PAPER_SLOT: SimDuration = SimDuration::from_micros(65);

/// Eq. (1): the CQF end-to-end latency bounds for a flow crossing `hop`
/// switches with slot length `slot`. `L_min` saturates at zero for
/// `hop = 0`.
///
/// # Example
///
/// ```
/// use tsn_builder::cqf::latency_bounds;
/// use tsn_types::SimDuration;
///
/// let slot = SimDuration::from_micros(65);
/// let (lo, hi) = latency_bounds(4, slot);
/// assert_eq!(lo, SimDuration::from_micros(195)); // (4-1)*65
/// assert_eq!(hi, SimDuration::from_micros(325)); // (4+1)*65
/// ```
#[must_use]
pub fn latency_bounds(hop: u64, slot: SimDuration) -> (SimDuration, SimDuration) {
    let lo = slot * hop.saturating_sub(1);
    let hi = slot * (hop + 1);
    (lo, hi)
}

/// A planned CQF configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CqfPlan {
    /// Slot length.
    pub slot: SimDuration,
    /// Number of slot phases in one hyperperiod (`scheduling cycle /
    /// slot`, rounded up when the cycle is not slot-aligned).
    pub phases: u64,
    /// The scheduling cycle (LCM of all TS periods).
    pub cycle: SimDuration,
    /// Gate-table entries needed (always 2 for CQF).
    pub gate_size: u32,
    /// Worst-case `L_max` over the scenario's TS flows.
    pub worst_latency: SimDuration,
}

impl CqfPlan {
    /// Plans CQF for a scenario with an explicitly chosen slot.
    ///
    /// Feasibility checks:
    /// * every TS flow must satisfy its deadline under `L_max`,
    /// * one slot must fit at least one largest frame at the given link
    ///   rate (otherwise a frame cannot cross a slot boundary cleanly).
    ///
    /// # Errors
    ///
    /// [`TsnError::ScheduleInfeasible`] naming the violated constraint,
    /// or routing errors while measuring hop counts.
    pub fn with_slot(
        requirements: &AppRequirements,
        slot: SimDuration,
        link_rate: DataRate,
    ) -> TsnResult<Self> {
        if slot.is_zero() {
            return Err(TsnError::invalid_parameter("slot", "must be non-zero"));
        }
        let max_frame = requirements.flows().max_frame_bytes().unwrap_or(64);
        let frame_time = link_rate.serialization_time(max_frame + 20);
        if frame_time > slot {
            return Err(TsnError::ScheduleInfeasible(format!(
                "slot {slot} is shorter than one {max_frame}B frame ({frame_time})"
            )));
        }
        let mut worst = SimDuration::ZERO;
        for flow in requirements.flows().ts_flows() {
            let route = requirements.topology().route(flow.src(), flow.dst())?;
            let (_, l_max) = latency_bounds(route.switch_hops() as u64, slot);
            if l_max > flow.deadline() {
                return Err(TsnError::ScheduleInfeasible(format!(
                    "{}: L_max {} exceeds deadline {} at slot {}",
                    flow.id(),
                    l_max,
                    flow.deadline(),
                    slot
                )));
            }
            worst = worst.max(l_max);
        }
        let cycle = requirements
            .flows()
            .scheduling_cycle()
            .unwrap_or(SimDuration::from_millis(10));
        let phases = cycle.as_nanos().div_ceil(slot.as_nanos());
        Ok(CqfPlan {
            slot,
            phases: phases.max(1),
            cycle,
            gate_size: 2,
            worst_latency: worst,
        })
    }

    /// Plans CQF choosing the largest feasible slot: the biggest value
    /// (rounded down to whole microseconds) such that every flow meets
    /// its deadline under `L_max = (hop+1)·slot`.
    ///
    /// A larger slot means fewer gate events and more queueing slack per
    /// slot; the deadline is the binding constraint.
    ///
    /// # Errors
    ///
    /// [`TsnError::ScheduleInfeasible`] if even the smallest workable
    /// slot (one max-frame serialization time) misses a deadline.
    pub fn choose_slot(requirements: &AppRequirements, link_rate: DataRate) -> TsnResult<Self> {
        let mut tightest = SimDuration::from_secs(3600);
        for flow in requirements.flows().ts_flows() {
            let route = requirements.topology().route(flow.src(), flow.dst())?;
            let hop = route.switch_hops() as u64 + 1;
            tightest = tightest.min(flow.deadline() / hop);
        }
        // Round down to whole microseconds (hardware slot registers are
        // coarse); keep at least 1 µs.
        let micros = tightest.as_nanos() / 1_000;
        if micros == 0 {
            return Err(TsnError::ScheduleInfeasible(
                "deadlines are too tight for any microsecond-granular slot".to_owned(),
            ));
        }
        CqfPlan::with_slot(requirements, SimDuration::from_micros(micros), link_rate)
    }

    /// How many largest-frame transmissions fit into one slot at
    /// `link_rate` — the hard ceiling on per-port per-slot TS load.
    #[must_use]
    pub fn frames_per_slot(&self, frame_bytes: u32, link_rate: DataRate) -> u64 {
        let per_frame = link_rate.serialization_time(frame_bytes + 20);
        if per_frame.is_zero() {
            return u64::MAX;
        }
        self.slot.as_nanos() / per_frame.as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_topology::presets;
    use tsn_types::{FlowId, FlowSet, TsFlowSpec};

    fn scenario(deadline_ms: u64) -> AppRequirements {
        let topo = presets::ring(6, 3).expect("builds");
        let hosts = topo.hosts();
        let mut flows = FlowSet::new();
        for id in 0..4u32 {
            flows.push(
                TsFlowSpec::new(
                    FlowId::new(id),
                    hosts[0],
                    hosts[1],
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(deadline_ms),
                    64,
                )
                .expect("valid flow")
                .into(),
            );
        }
        AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).expect("valid scenario")
    }

    #[test]
    fn latency_bounds_match_eq1() {
        let slot = SimDuration::from_micros(65);
        assert_eq!(
            latency_bounds(1, slot),
            (SimDuration::ZERO, SimDuration::from_micros(130))
        );
        assert_eq!(
            latency_bounds(3, slot),
            (SimDuration::from_micros(130), SimDuration::from_micros(260))
        );
        let (lo, hi) = latency_bounds(0, slot);
        assert_eq!(lo, SimDuration::ZERO);
        assert_eq!(hi, slot);
    }

    #[test]
    fn paper_slot_is_feasible_for_the_paper_scenario() {
        let req = scenario(1);
        let plan =
            CqfPlan::with_slot(&req, PAPER_SLOT, DataRate::gbps(1)).expect("65us slot feasible");
        assert_eq!(plan.gate_size, 2);
        assert_eq!(plan.cycle, SimDuration::from_millis(10));
        // ceil(10ms / 65us) = 154.
        assert_eq!(plan.phases, 154);
    }

    #[test]
    fn tight_deadline_rejects_large_slots() {
        // hop = 2 here, deadline 1 ms: slot must be <= 333 us.
        let req = scenario(1);
        assert!(CqfPlan::with_slot(&req, SimDuration::from_millis(1), DataRate::gbps(1)).is_err());
    }

    #[test]
    fn slot_must_fit_a_frame() {
        let req = scenario(8);
        // 64+20 bytes at 1 Gbps = 672 ns; a 500 ns slot cannot carry it.
        assert!(CqfPlan::with_slot(&req, SimDuration::from_nanos(500), DataRate::gbps(1)).is_err());
    }

    #[test]
    fn choose_slot_takes_the_deadline_bound() {
        let req = scenario(1);
        let plan = CqfPlan::choose_slot(&req, DataRate::gbps(1)).expect("feasible");
        // hop = 2 -> slot = floor(1ms / 3) = 333 us.
        assert_eq!(plan.slot, SimDuration::from_micros(333));
        // And the worst L_max is within every deadline.
        assert!(plan.worst_latency <= SimDuration::from_millis(1));
    }

    #[test]
    fn frames_per_slot_counts_serializations() {
        let req = scenario(8);
        let plan = CqfPlan::with_slot(&req, PAPER_SLOT, DataRate::gbps(1)).expect("feasible");
        // 65 us / 672 ns = 96 minimum-size frames.
        assert_eq!(plan.frames_per_slot(64, DataRate::gbps(1)), 96);
        // 65 us / 12.352 us = 5 MTU frames.
        assert_eq!(plan.frames_per_slot(1522, DataRate::gbps(1)), 5);
    }
}
