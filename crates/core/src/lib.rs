//! **TSN-Builder** — a template-based model for the rapid customization of
//! resource-efficient Time-Sensitive Networking switches (reproduction of
//! Yan et al., DAC 2020).
//!
//! The COTS TSN switch ships a fixed, worst-case resource partitioning;
//! TSN-Builder turns the flow around: starting from the *application*
//! (topology + flows + sync precision), it derives exactly the table
//! sizes, queue depths, buffer counts and port counts the scenario needs,
//! injects them into five reusable function templates, and emits both a
//! runnable switch (via `tsn-sim`) and parameterized Verilog (via
//! `tsn-hdl`). On the paper's scenarios this saves 46.59 % / 63.56 % /
//! 80.53 % of on-chip memory versus the Broadcom BCM53154 baseline at
//! identical QoS.
//!
//! Pipeline (Fig. 1 of the paper):
//!
//! 1. [`requirements::AppRequirements`] — capture the scenario;
//! 2. [`cqf::CqfPlan`] — pick the CQF slot, check Eq. (1) deadlines;
//! 3. [`itp`] — plan injection offsets, fixing the queue depth;
//! 4. [`derive::derive_parameters`] — apply the Section III.C guidelines
//!    to produce a [`tsn_resource::ResourceConfig`];
//! 5. [`builder::Customization`] — synthesize a network or Verilog, and
//!    report BRAM usage against the COTS baseline.
//!
//! # Quickstart
//!
//! ```
//! use tsn_builder::{TsnBuilder, DeriveOptions, workloads};
//! use tsn_topology::presets;
//! use tsn_types::SimDuration;
//!
//! // The paper's ring scenario, scaled down.
//! let topo = presets::ring(6, 3)?;
//! let flows = workloads::iec60802_ts_flows(&topo, 64, 7)?;
//! let customization = TsnBuilder::new(topo, flows, SimDuration::from_nanos(50))?
//!     .derive(&DeriveOptions::paper())?;
//! // 80.53 % less BRAM than the commercial switch:
//! let saving = customization.savings_vs_cots(Default::default());
//! assert!((saving - 80.53).abs() < 0.01);
//! # Ok::<(), tsn_types::TsnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cqf;
pub mod derive;
pub mod itp;
pub mod per_switch;
pub mod plant;
pub mod requirements;
pub mod scenario;
pub mod tas;
pub mod workloads;

pub use builder::{Customization, TsnBuilder};
pub use cqf::{latency_bounds, CqfPlan, PAPER_SLOT};
pub use derive::{derive_parameters, DeriveOptions, DerivedConfig, GateMode};
pub use itp::{ItpResult, Strategy};
pub use per_switch::PerSwitchConfig;
pub use plant::{large_plant, LargePlant, PlantDims};
pub use requirements::AppRequirements;
pub use scenario::{run_scenarios, ResourcePlan, Scenario, ScenarioOutcome, SweepPlanner};
pub use tas::TasSchedule;

// Re-export the workspace layers under one roof for downstream users.
pub use tsn_resource as resource;
pub use tsn_sim as sim;
pub use tsn_switch as switch;
pub use tsn_topology as topology;
pub use tsn_types as types;
