//! Per-switch (heterogeneous) customization — sizing *each* switch by its
//! own enabled-port count instead of the network-wide worst case.
//!
//! The paper provisions every switch of a scenario with the same column
//! of Table III: `port_num` is the *maximum* enabled-port count over the
//! topology (star → 3 even for the child switches, which enable only 1).
//! Its own enabled-port analysis (guideline 5) supports finer grain: the
//! core of a star needs 3 gate-table/CBS/queue/buffer sets, its children
//! only 1. This module derives one [`ResourceConfig`] per switch and sums
//! the network-wide BRAM, quantifying the additional saving.

use crate::derive::{derive_parameters, DeriveOptions, DerivedConfig};
use crate::requirements::AppRequirements;
use std::collections::BTreeMap;
use tsn_resource::{AllocationPolicy, ResourceConfig, UsageReport};
use tsn_types::{NodeId, TsnResult};

/// One heterogeneous network customization: a uniform base plus
/// per-switch port scaling.
#[derive(Debug, Clone)]
pub struct PerSwitchConfig {
    /// The uniform (worst-case) derivation this refines.
    pub uniform: DerivedConfig,
    /// Per-switch resource configurations, keyed by node. Switches that
    /// carry no TS traffic still get a 1-port TSN configuration (they
    /// need forwarding state but no deterministic egress provisioning
    /// beyond the minimum).
    pub per_switch: BTreeMap<NodeId, ResourceConfig>,
}

impl PerSwitchConfig {
    /// Derives per-switch configurations for a scenario.
    ///
    /// # Errors
    ///
    /// Propagates the uniform derivation's errors, plus parameter
    /// validation when scaling ports.
    pub fn derive(requirements: &AppRequirements, options: &DeriveOptions) -> TsnResult<Self> {
        let uniform = derive_parameters(requirements, options)?;
        let mut per_switch = BTreeMap::new();
        for &switch in requirements.topology().switches() {
            let ports = (uniform.enabled_ports.ports_of(switch) as u32).max(1);
            let base = &uniform.resources;
            let mut resources = base.clone();
            resources
                .set_gate_tbl(base.gate_size(), base.queue_num(), ports)?
                .set_cbs_tbl(base.cbs_map_size(), base.cbs_size(), ports)?
                .set_queues(base.queue_depth(), base.queue_num(), ports)?
                .set_buffers(base.buffer_num(), ports)?;
            per_switch.insert(switch, resources);
        }
        Ok(PerSwitchConfig {
            uniform,
            per_switch,
        })
    }

    /// Total network BRAM bits under `policy` with per-switch sizing.
    #[must_use]
    pub fn network_total_bits(&self, policy: AllocationPolicy) -> u64 {
        self.per_switch.values().map(|r| r.total_bits(policy)).sum()
    }

    /// Total network BRAM bits if every switch used the uniform
    /// (worst-case) configuration — the paper's provisioning.
    #[must_use]
    pub fn uniform_total_bits(&self, policy: AllocationPolicy) -> u64 {
        self.uniform.resources.total_bits(policy) * self.per_switch.len() as u64
    }

    /// Extra saving of per-switch sizing over uniform sizing, percent.
    #[must_use]
    pub fn saving_vs_uniform(&self, policy: AllocationPolicy) -> f64 {
        let uniform = self.uniform_total_bits(policy);
        if uniform == 0 {
            return 0.0;
        }
        (1.0 - self.network_total_bits(policy) as f64 / uniform as f64) * 100.0
    }

    /// A Table III-style report for one switch.
    #[must_use]
    pub fn report_for(&self, switch: NodeId, policy: AllocationPolicy) -> Option<UsageReport> {
        self.per_switch
            .get(&switch)
            .map(|r| UsageReport::of(r, policy))
    }

    /// Number of switches in the network.
    #[must_use]
    pub fn switch_count(&self) -> usize {
        self.per_switch.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use tsn_topology::presets;
    use tsn_types::SimDuration;

    fn scenario(topology: tsn_topology::Topology) -> AppRequirements {
        let flows = workloads::iec60802_ts_flows(&topology, 64, 9).expect("workload builds");
        AppRequirements::new(topology, flows, SimDuration::from_nanos(50))
            .expect("valid requirements")
    }

    #[test]
    fn star_core_gets_three_ports_children_one() {
        let req = scenario(presets::star(3, 3).expect("builds"));
        let cfg = PerSwitchConfig::derive(&req, &DeriveOptions::paper()).expect("derives");
        assert_eq!(cfg.switch_count(), 4);
        let port_counts: Vec<u32> = cfg
            .per_switch
            .values()
            .map(ResourceConfig::port_num)
            .collect();
        // Core first (node 0), then children.
        assert_eq!(port_counts, vec![3, 1, 1, 1]);
    }

    #[test]
    fn per_switch_beats_uniform_on_the_star() {
        let req = scenario(presets::star(3, 3).expect("builds"));
        let cfg = PerSwitchConfig::derive(&req, &DeriveOptions::paper()).expect("derives");
        let policy = AllocationPolicy::PaperAccounting;
        let saving = cfg.saving_vs_uniform(policy);
        assert!(
            saving > 25.0,
            "children shrink from 3 ports to 1: expected >25% network saving, got {saving:.1}%"
        );
        assert!(cfg.network_total_bits(policy) < cfg.uniform_total_bits(policy));
    }

    #[test]
    fn ring_gains_nothing_every_switch_is_identical() {
        let req = scenario(presets::ring(6, 3).expect("builds"));
        let cfg = PerSwitchConfig::derive(&req, &DeriveOptions::paper()).expect("derives");
        let policy = AllocationPolicy::PaperAccounting;
        // Every ring switch enables exactly one port: per-switch == uniform.
        assert_eq!(cfg.saving_vs_uniform(policy), 0.0);
        for resources in cfg.per_switch.values() {
            assert_eq!(resources.port_num(), 1);
        }
    }

    #[test]
    fn per_switch_reports_match_table_iii_rows() {
        let req = scenario(presets::star(3, 3).expect("builds"));
        let cfg = PerSwitchConfig::derive(&req, &DeriveOptions::paper()).expect("derives");
        let core = req.topology().switches()[0];
        let report = cfg
            .report_for(core, AllocationPolicy::PaperAccounting)
            .expect("core exists");
        assert_eq!(report.total_kb(), 5778.0, "the core is the star column");
        let child = req.topology().switches()[1];
        let child_report = cfg
            .report_for(child, AllocationPolicy::PaperAccounting)
            .expect("child exists");
        assert_eq!(
            child_report.total_kb(),
            2106.0,
            "children are the ring column"
        );
    }
}
