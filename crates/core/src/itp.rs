//! Injection Time Planning — the queue/buffer optimizer of reference
//! \[24\] ("Injection Time Planning: Making CQF Practical in Time-Sensitive
//! Networking"), in its greedy least-loaded form.
//!
//! Under CQF, all TS frames that arrive at a port within the same slot
//! occupy the same queue simultaneously, so the *peak per-slot occupancy*
//! is exactly the `queue_depth` the hardware must provision. ITP chooses
//! each flow's injection offset (which slot of its period it fires in) to
//! flatten that peak — this is what lets the paper shrink depth 16 → 12
//! and buffers 128 → 96 at equal QoS.

use crate::cqf::CqfPlan;
use crate::requirements::AppRequirements;
use std::collections::HashMap;
use tsn_types::{FlowMap, NodeId, PortId, SimDuration, TsnResult};

/// Offset-selection strategy (the ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The ITP greedy: each flow takes the offset that minimizes the
    /// worst occupancy along its own path.
    GreedyLeastLoaded,
    /// No planning: every flow injects at phase 0 (the worst case a
    /// naive deployment produces).
    AllZero,
    /// Round-robin phase spreading without load feedback.
    UniformSpread,
}

/// The planning result.
#[derive(Debug, Clone, PartialEq)]
pub struct ItpResult {
    /// Chosen injection offset per TS flow (dense `FlowId`-indexed).
    pub offsets: FlowMap<SimDuration>,
    /// Peak simultaneous TS frames in any (port, slot phase) cell — the
    /// minimum safe `queue_depth`.
    pub max_occupancy: u32,
    /// Number of distinct (port, phase) cells carrying load.
    pub loaded_cells: usize,
    /// The strategy that produced this plan.
    pub strategy: Strategy,
}

impl ItpResult {
    /// The queue depth to provision: the observed peak plus one slot of
    /// slack (guards against sub-slot arrival skew at slot boundaries).
    #[must_use]
    pub fn recommended_queue_depth(&self) -> u32 {
        self.max_occupancy + 1
    }
}

/// Plans injection offsets for every TS flow of `requirements` under the
/// CQF `plan`.
///
/// # Errors
///
/// Propagates routing errors.
///
/// # Example
///
/// ```
/// use tsn_builder::{cqf::CqfPlan, itp, requirements::AppRequirements};
/// use tsn_topology::presets;
/// use tsn_types::{DataRate, FlowId, FlowSet, SimDuration, TsFlowSpec};
///
/// let topo = presets::ring(6, 3)?;
/// let hosts = topo.hosts();
/// let mut flows = FlowSet::new();
/// for id in 0..32 {
///     flows.push(TsFlowSpec::new(
///         FlowId::new(id), hosts[0], hosts[1],
///         SimDuration::from_millis(10), SimDuration::from_millis(8), 64,
///     )?.into());
/// }
/// let req = AppRequirements::new(topo, flows, SimDuration::from_nanos(50))?;
/// let plan = CqfPlan::with_slot(&req, SimDuration::from_micros(65), DataRate::gbps(1))?;
/// let greedy = itp::plan(&req, &plan, itp::Strategy::GreedyLeastLoaded)?;
/// let naive = itp::plan(&req, &plan, itp::Strategy::AllZero)?;
/// assert!(greedy.max_occupancy < naive.max_occupancy);
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
pub fn plan(
    requirements: &AppRequirements,
    plan: &CqfPlan,
    strategy: Strategy,
) -> TsnResult<ItpResult> {
    let slot_ns = plan.slot.as_nanos();

    // Slot-aligned talkers advance exactly ceil(period/slot) slots per
    // period (see `Generator::aligned_to`); the occupancy pattern repeats
    // with the LCM of those *effective* periods. Using the same
    // arithmetic here keeps the plan exact, not approximate.
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    let mut hyper: u64 = 1;
    for flow in requirements.flows().ts_flows() {
        let per = flow.period().as_nanos().div_ceil(slot_ns).max(1);
        hyper = (hyper / gcd(hyper, per)).saturating_mul(per);
        hyper = hyper.min(1 << 22); // bound pathological period mixes
    }

    // occupancy[(node, port, phase)] = TS frames resident in that slot.
    let mut occupancy: HashMap<(NodeId, PortId, u64), u32> = HashMap::new();
    let mut offsets = FlowMap::new();
    let mut spread_cursor: u64 = 0;

    // Deterministic order: flows sorted by id.
    let mut ts: Vec<_> = requirements.flows().ts_flows().collect();
    ts.sort_by_key(|f| f.id());

    // One BFS per distinct talker, shared across its flows — at 100k+
    // flows the per-flow BFS was the planner's real quadratic cost.
    let mut route_trees = tsn_topology::RouteTreeCache::new();
    for flow in ts {
        let route = route_trees.route(requirements.topology(), flow.src(), flow.dst())?;
        // The egress cells this flow occupies, relative to its injection
        // phase: hop k is reached k slots later.
        let cells: Vec<(NodeId, PortId, u64)> = route
            .switch_hops_iter()
            .enumerate()
            .filter_map(|(k, hop)| hop.egress.map(|e| (hop.node, e, k as u64)))
            .collect();
        let per_slots = flow.period().as_nanos().div_ceil(slot_ns).max(1);
        let candidate_phases = per_slots;
        let repeats = (hyper / per_slots).max(1);

        let phase_cost = |o: u64, occupancy: &HashMap<(NodeId, PortId, u64), u32>| -> u32 {
            let mut worst = 0;
            for n in 0..repeats {
                let base_phase = o + n * per_slots;
                for &(node, port, k) in &cells {
                    let phase = (base_phase + k) % hyper;
                    worst = worst.max(occupancy.get(&(node, port, phase)).copied().unwrap_or(0));
                }
            }
            worst
        };

        let chosen = match strategy {
            Strategy::AllZero => 0,
            Strategy::UniformSpread => {
                let o = spread_cursor % candidate_phases;
                spread_cursor += 1;
                o
            }
            Strategy::GreedyLeastLoaded => (0..candidate_phases)
                .min_by_key(|&o| (phase_cost(o, &occupancy), o))
                .unwrap_or(0),
        };

        for n in 0..repeats {
            let base_phase = chosen + n * per_slots;
            for &(node, port, k) in &cells {
                let phase = (base_phase + k) % hyper;
                *occupancy.entry((node, port, phase)).or_insert(0) += 1;
            }
        }
        offsets.insert(flow.id(), SimDuration::from_nanos(chosen * slot_ns));
    }

    let max_occupancy = occupancy.values().copied().max().unwrap_or(0);
    Ok(ItpResult {
        offsets,
        max_occupancy,
        loaded_cells: occupancy.len(),
        strategy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_topology::presets;
    use tsn_types::{DataRate, FlowId, FlowSet, TsFlowSpec};

    fn scenario(flow_count: u32) -> (AppRequirements, CqfPlan) {
        let topo = presets::ring(6, 3).expect("builds");
        let hosts = topo.hosts();
        let mut flows = FlowSet::new();
        for id in 0..flow_count {
            flows.push(
                TsFlowSpec::new(
                    FlowId::new(id),
                    hosts[(id as usize) % 2],
                    hosts[(id as usize) % 2 + 1],
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(8),
                    64,
                )
                .expect("valid flow")
                .into(),
            );
        }
        let req =
            AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).expect("valid scenario");
        let plan = CqfPlan::with_slot(&req, SimDuration::from_micros(65), DataRate::gbps(1))
            .expect("feasible");
        (req, plan)
    }

    #[test]
    fn greedy_flattens_the_peak() {
        let (req, cqf) = scenario(64);
        let naive = plan(&req, &cqf, Strategy::AllZero).expect("plans");
        let greedy = plan(&req, &cqf, Strategy::GreedyLeastLoaded).expect("plans");
        // All-zero stacks every flow into the same phase.
        assert!(naive.max_occupancy >= 32);
        assert!(
            greedy.max_occupancy <= 2,
            "64 flows over 153 phases should spread to ~1 per cell, got {}",
            greedy.max_occupancy
        );
        assert!(greedy.loaded_cells > naive.loaded_cells);
    }

    #[test]
    fn uniform_spread_sits_between() {
        let (req, cqf) = scenario(64);
        let naive = plan(&req, &cqf, Strategy::AllZero).expect("plans");
        let spread = plan(&req, &cqf, Strategy::UniformSpread).expect("plans");
        let greedy = plan(&req, &cqf, Strategy::GreedyLeastLoaded).expect("plans");
        assert!(spread.max_occupancy <= naive.max_occupancy);
        assert!(greedy.max_occupancy <= spread.max_occupancy);
    }

    #[test]
    fn offsets_are_within_the_period() {
        let (req, cqf) = scenario(32);
        let result = plan(&req, &cqf, Strategy::GreedyLeastLoaded).expect("plans");
        assert_eq!(result.offsets.len(), 32);
        for offset in result.offsets.values() {
            assert!(*offset < SimDuration::from_millis(10));
        }
    }

    #[test]
    fn recommended_depth_adds_slack() {
        let (req, cqf) = scenario(16);
        let result = plan(&req, &cqf, Strategy::GreedyLeastLoaded).expect("plans");
        assert_eq!(result.recommended_queue_depth(), result.max_occupancy + 1);
    }

    #[test]
    fn paper_scale_fits_depth_12() {
        // 1024 flows, 10 ms period, 65 us slot: the paper provisions
        // depth 12; greedy ITP must stay at or below that.
        let (req, cqf) = scenario(1024);
        let result = plan(&req, &cqf, Strategy::GreedyLeastLoaded).expect("plans");
        assert!(
            result.recommended_queue_depth() <= 12,
            "greedy ITP should meet the paper's depth budget, got {}",
            result.recommended_queue_depth()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (req, cqf) = scenario(64);
        let a = plan(&req, &cqf, Strategy::GreedyLeastLoaded).expect("plans");
        let b = plan(&req, &cqf, Strategy::GreedyLeastLoaded).expect("plans");
        assert_eq!(a, b);
    }
}
