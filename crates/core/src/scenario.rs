//! Scenario descriptors and the parallel scenario sweep.
//!
//! The paper's customization loop (Fig. 1) — and every evaluation table
//! and figure — is a sweep over `(topology × workload × resources)`
//! points. This module gives that loop a first-class API: describe each
//! point as a [`Scenario`], hand the list to [`run_scenarios`], and get
//! per-scenario [`ScenarioOutcome`]s back **in input order**, computed on
//! a bounded worker pool ([`tsn_sim::sweep`]) with shared planning work
//! (CQF slot feasibility, ITP injection plans, derived resource
//! configurations) memoized behind concurrent caches: two sweep points
//! that plan the same flows at the same slot plan them once.
//!
//! # Example
//!
//! ```
//! use tsn_builder::scenario::{run_scenarios, Scenario};
//! use tsn_builder::workloads;
//! use tsn_sim::network::{SimConfig, SyncSetup};
//! use tsn_topology::presets;
//! use tsn_types::SimDuration;
//!
//! let mut scenarios = Vec::new();
//! for hops in 1..=2u64 {
//!     let topo = presets::ring(3, 2)?;
//!     let flows = workloads::iec60802_ts_flows(&topo, 8, 7)?;
//!     let mut config = SimConfig::paper_defaults();
//!     config.duration = SimDuration::from_millis(20);
//!     config.sync = SyncSetup::Perfect;
//!     scenarios.push(Scenario::explicit(format!("hops={hops}"), topo, flows, config));
//! }
//! let outcomes = run_scenarios(&scenarios, 2);
//! assert_eq!(outcomes.len(), 2);
//! for outcome in outcomes {
//!     assert_eq!(outcome?.report.ts_lost(), 0);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cqf::CqfPlan;
use crate::derive::{derive_parameters, DeriveOptions, DerivedConfig};
use crate::itp::{self, ItpResult, Strategy};
use crate::requirements::AppRequirements;
use std::hash::{DefaultHasher, Hasher};
use std::sync::Arc;
use tsn_resource::ResourceConfig;
use tsn_sim::network::{ConfigDelta, Network, NetworkTemplate, SimConfig};
use tsn_sim::report::SimReport;
use tsn_sim::sweep::{run_sweep, PlanCache, SweepError};
use tsn_topology::Topology;
use tsn_types::{DataRate, SimDuration, TsnResult};

/// How a scenario gets its `ResourceConfig` (and CQF slot).
#[derive(Debug, Clone)]
pub enum ResourcePlan {
    /// Use `config.slot` and `config.resources` exactly as given; only
    /// the ITP injection offsets are planned.
    Explicit,
    /// Run the full TSN-Builder derivation (`derive_parameters`) with
    /// these options; the derived slot, resources, aggregation mode and
    /// injection offsets replace whatever the `SimConfig` carries.
    Derive(DeriveOptions),
}

/// One sweep point: a complete, self-contained simulation input.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display label carried into the outcome (e.g. `"hops=3"`).
    pub label: String,
    /// The network.
    pub topology: Topology,
    /// The workload.
    pub flows: FlowSet,
    /// Required synchronization precision (validation input).
    pub sync_precision: SimDuration,
    /// Link rate used for CQF slot feasibility under [`ResourcePlan::Explicit`].
    pub link_rate: DataRate,
    /// Injection-offset strategy under [`ResourcePlan::Explicit`].
    pub strategy: Strategy,
    /// Resource selection mode.
    pub plan: ResourcePlan,
    /// Simulation parameters (duration, sync, preemption, …).
    pub config: SimConfig,
}

use tsn_types::FlowSet;

impl Scenario {
    /// A scenario that simulates exactly `config` (slot + resources as
    /// given), planning only the ITP offsets.
    #[must_use]
    pub fn explicit(
        label: impl Into<String>,
        topology: Topology,
        flows: FlowSet,
        config: SimConfig,
    ) -> Self {
        Scenario {
            label: label.into(),
            topology,
            flows,
            sync_precision: SimDuration::from_nanos(50),
            link_rate: DataRate::gbps(1),
            strategy: Strategy::GreedyLeastLoaded,
            plan: ResourcePlan::Explicit,
            config,
        }
    }

    /// A scenario that derives its resources via TSN-Builder first.
    #[must_use]
    pub fn derived(
        label: impl Into<String>,
        topology: Topology,
        flows: FlowSet,
        options: DeriveOptions,
        config: SimConfig,
    ) -> Self {
        Scenario {
            label: label.into(),
            topology,
            flows,
            sync_precision: SimDuration::from_nanos(50),
            link_rate: DataRate::gbps(1),
            strategy: Strategy::GreedyLeastLoaded,
            plan: ResourcePlan::Derive(options),
            config,
        }
    }

    /// Overrides the injection-offset strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the required synchronization precision.
    #[must_use]
    pub fn with_sync_precision(mut self, precision: SimDuration) -> Self {
        self.sync_precision = precision;
        self
    }

    /// Arms fault injection ([`tsn_sim::FaultConfig`]) for this scenario.
    /// The default is [`tsn_sim::FaultConfig::none()`], which leaves the
    /// simulation bit-for-bit identical to a build without the fault
    /// subsystem.
    #[must_use]
    pub fn with_faults(mut self, faults: tsn_sim::FaultConfig) -> Self {
        self.config.faults = faults;
        self
    }
}

/// What one scenario produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's label.
    pub label: String,
    /// The resources the simulation actually ran with (derived or
    /// explicit).
    pub resources: ResourceConfig,
    /// The full derivation, when [`ResourcePlan::Derive`] was used.
    pub derived: Option<DerivedConfig>,
    /// The injection plan the talkers used.
    pub itp: ItpResult,
    /// The simulation report.
    pub report: SimReport,
}

/// In-process fingerprint of a value's structure, used as a memo key.
/// Debug output is deterministic and complete for the plain-data types
/// fingerprinted here (topology, flow set, derive options).
fn fingerprint(value: &impl std::fmt::Debug) -> u64 {
    let mut hasher = DefaultHasher::new();
    hasher.write(format!("{value:?}").as_bytes());
    hasher.finish()
}

type CqfKey = (u64, u64, SimDuration, DataRate);
type ItpKey = (u64, u64, SimDuration, DataRate, Strategy);
type DeriveKey = (u64, u64, u64);
type TemplateKey = (u64, u64, u64);

/// The shared planning caches for one sweep (or one long-lived session).
///
/// Keys are structural fingerprints of `(topology, flows, …)`; values are
/// the full planning results, cloned out to each scenario that hits. Use
/// one planner per sweep ([`run_scenarios`] does) or keep one across
/// sweeps to share plans between them.
#[derive(Debug, Default)]
pub struct SweepPlanner {
    cqf: PlanCache<CqfKey, TsnResult<CqfPlan>>,
    itp: PlanCache<ItpKey, TsnResult<ItpResult>>,
    derived: PlanCache<DeriveKey, TsnResult<DerivedConfig>>,
    /// Resident [`NetworkTemplate`]s, keyed on everything a
    /// [`ConfigDelta`] *cannot* change: sweep points that differ only in
    /// resources / slot / aggregation / offsets share one template and
    /// reconfigure instead of rebuilding the world.
    templates: PlanCache<TemplateKey, TsnResult<Arc<NetworkTemplate>>>,
}

impl SweepPlanner {
    /// A planner with empty caches.
    #[must_use]
    pub fn new() -> Self {
        SweepPlanner::default()
    }

    /// Total planning-cache hits (CQF + ITP + derivation).
    #[must_use]
    pub fn planning_hits(&self) -> u64 {
        self.cqf.hits() + self.itp.hits() + self.derived.hits()
    }

    /// Total planning-cache misses, i.e. plans actually computed.
    #[must_use]
    pub fn planning_misses(&self) -> u64 {
        self.cqf.misses() + self.itp.misses() + self.derived.misses()
    }

    /// Scenarios served by an already-resident [`NetworkTemplate`]
    /// (incremental reconfiguration instead of a from-scratch build).
    #[must_use]
    pub fn template_hits(&self) -> u64 {
        self.templates.hits()
    }

    /// Templates actually built (route computation + sync warmup).
    #[must_use]
    pub fn template_misses(&self) -> u64 {
        self.templates.misses()
    }

    /// Plans and runs one scenario (synchronously, on the caller's
    /// thread), sharing any cached planning work.
    ///
    /// # Errors
    ///
    /// Propagates validation, planning and network-assembly errors.
    pub fn run_one(&self, scenario: &Scenario) -> TsnResult<ScenarioOutcome> {
        let requirements = AppRequirements::new(
            scenario.topology.clone(),
            scenario.flows.clone(),
            scenario.sync_precision,
        )?;
        let topo_fp = fingerprint(&scenario.topology);
        let flows_fp = fingerprint(&scenario.flows);

        match &scenario.plan {
            ResourcePlan::Derive(options) => {
                let key = (topo_fp, flows_fp, fingerprint(options));
                let derived = self
                    .derived
                    .get_or_compute(key, || derive_parameters(&requirements, options))?;
                let mut config = scenario.config.clone();
                config.slot = derived.cqf.slot;
                config.resources = derived.resources.clone();
                config.aggregate_switch_tbl = derived.aggregate_switch_tbl;
                let network = match &derived.tas {
                    None => Network::build(
                        scenario.topology.clone(),
                        scenario.flows.clone(),
                        &derived.itp.offsets,
                        config,
                    ),
                    Some(schedule) => Network::build_with_schedule(
                        scenario.topology.clone(),
                        scenario.flows.clone(),
                        &derived.itp.offsets,
                        config,
                        &tsn_sim::GclSchedule::from_map(schedule.gcls()),
                    ),
                }?;
                Ok(ScenarioOutcome {
                    label: scenario.label.clone(),
                    resources: derived.resources.clone(),
                    itp: derived.itp.clone(),
                    derived: Some(derived),
                    report: network.run(),
                })
            }
            ResourcePlan::Explicit => {
                let slot = scenario.config.slot;
                let cqf_key = (topo_fp, flows_fp, slot, scenario.link_rate);
                let plan = self.cqf.get_or_compute(cqf_key, || {
                    CqfPlan::with_slot(&requirements, slot, scenario.link_rate)
                })?;
                let itp_key = (
                    topo_fp,
                    flows_fp,
                    slot,
                    scenario.link_rate,
                    scenario.strategy,
                );
                let planned = self.itp.get_or_compute(itp_key, || {
                    itp::plan(&requirements, &plan, scenario.strategy)
                })?;
                // Split the config into a template base (everything a
                // ConfigDelta cannot change, with the delta-able knobs
                // pinned to paper defaults) and the delta that restores
                // this scenario's knobs. Points that differ only in the
                // knobs share one resident template.
                let defaults = SimConfig::paper_defaults();
                let mut base = scenario.config.clone();
                let delta = ConfigDelta {
                    resources: Some(std::mem::replace(
                        &mut base.resources,
                        defaults.resources.clone(),
                    )),
                    per_switch_resources: Some(std::mem::replace(
                        &mut base.per_switch_resources,
                        defaults.per_switch_resources.clone(),
                    )),
                    slot: Some(std::mem::replace(&mut base.slot, defaults.slot)),
                    aggregate_switch_tbl: Some(std::mem::replace(
                        &mut base.aggregate_switch_tbl,
                        defaults.aggregate_switch_tbl,
                    )),
                    offsets: Some(planned.offsets.clone()),
                };
                let template_key = (topo_fp, flows_fp, fingerprint(&base));
                let template = self.templates.get_or_compute(template_key, || {
                    NetworkTemplate::new(
                        scenario.topology.clone(),
                        scenario.flows.clone(),
                        &planned.offsets,
                        base.clone(),
                    )
                    .map(Arc::new)
                })?;
                let report = template.reconfigure(&delta)?.run();
                Ok(ScenarioOutcome {
                    label: scenario.label.clone(),
                    resources: scenario.config.resources.clone(),
                    derived: None,
                    itp: planned,
                    report,
                })
            }
        }
    }

    /// Runs every scenario across at most `workers` threads; results are
    /// in input order and a failing or panicking scenario only loses its
    /// own slot.
    pub fn run(
        &self,
        scenarios: &[Scenario],
        workers: usize,
    ) -> Vec<Result<ScenarioOutcome, SweepError>> {
        run_sweep(scenarios, workers, |_idx, scenario| self.run_one(scenario))
    }
}

/// Runs a scenario sweep with a fresh [`SweepPlanner`]. See the module
/// docs for an example.
pub fn run_scenarios(
    scenarios: &[Scenario],
    workers: usize,
) -> Vec<Result<ScenarioOutcome, SweepError>> {
    SweepPlanner::new().run(scenarios, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use tsn_sim::network::SyncSetup;
    use tsn_topology::presets;

    fn small_config() -> SimConfig {
        let mut config = SimConfig::paper_defaults();
        config.duration = SimDuration::from_millis(20);
        config.sync = SyncSetup::Perfect;
        config
    }

    fn sweep_inputs(n: u64) -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                let topo = presets::ring(3, 2).expect("builds");
                let flows =
                    workloads::iec60802_ts_flows(&topo, 8 + (i % 3) as u32, 7).expect("workload");
                Scenario::explicit(format!("s{i}"), topo, flows, small_config())
            })
            .collect()
    }

    #[test]
    fn worker_count_does_not_change_reports() {
        let scenarios = sweep_inputs(6);
        let serial: Vec<SimReport> = scenarios
            .iter()
            .map(|s| {
                SweepPlanner::new()
                    .run_one(s)
                    .expect("scenario runs")
                    .report
            })
            .collect();
        for workers in [1, 4] {
            let swept = run_scenarios(&scenarios, workers);
            assert_eq!(swept.len(), serial.len());
            for (got, want) in swept.into_iter().zip(&serial) {
                let got = got.expect("scenario runs");
                assert_eq!(
                    &got.report, want,
                    "sweep with {workers} workers must reproduce the serial loop"
                );
            }
        }
    }

    #[test]
    fn two_builds_of_the_same_scenario_are_identical() {
        let scenarios = sweep_inputs(1);
        let a = SweepPlanner::new().run_one(&scenarios[0]).expect("runs");
        let b = SweepPlanner::new().run_one(&scenarios[0]).expect("runs");
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn duplicate_planning_inputs_hit_the_cache() {
        // 6 scenarios over 2 distinct (topology, flows, slot) planning
        // inputs: 2 misses per cache, the rest hits.
        let topo = presets::ring(3, 2).expect("builds");
        let flows_a = workloads::iec60802_ts_flows(&topo, 8, 7).expect("workload");
        let flows_b = workloads::iec60802_ts_flows(&topo, 12, 7).expect("workload");
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                let flows = if i % 2 == 0 { &flows_a } else { &flows_b };
                Scenario::explicit(format!("s{i}"), topo.clone(), flows.clone(), small_config())
            })
            .collect();
        let planner = SweepPlanner::new();
        let results = planner.run(&scenarios, 3);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(planner.planning_misses(), 4, "2 CQF plans + 2 ITP plans");
        assert_eq!(planner.planning_hits(), 8, "4 CQF hits + 4 ITP hits");
    }

    #[test]
    fn derivation_is_cached_by_flows_and_options() {
        let topo = presets::ring(6, 3).expect("builds");
        let flows = workloads::iec60802_ts_flows(&topo, 64, 7).expect("workload");
        let mut options = DeriveOptions::automatic();
        options.slot = Some(crate::cqf::PAPER_SLOT);
        let scenarios: Vec<Scenario> = (0..3)
            .map(|i| {
                Scenario::derived(
                    format!("d{i}"),
                    topo.clone(),
                    flows.clone(),
                    options.clone(),
                    small_config(),
                )
            })
            .collect();
        let planner = SweepPlanner::new();
        let results = planner.run(&scenarios, 3);
        for result in &results {
            let outcome = result.as_ref().expect("scenario runs");
            assert!(outcome.derived.is_some());
            assert_eq!(outcome.report.ts_lost(), 0);
        }
        assert_eq!(
            planner.derived.misses(),
            1,
            "one derivation for 3 scenarios"
        );
        assert_eq!(planner.derived.hits(), 2);
    }

    #[test]
    fn resource_only_sweeps_share_one_template() {
        // Two resource cases over the same (topology, flows, slot):
        // Fig. 2's shape. One template, second point served by
        // reconfigure — and both reports byte-identical to a
        // from-scratch Network::build.
        let topo = presets::ring(3, 2).expect("builds");
        let flows = workloads::iec60802_ts_flows(&topo, 8, 7).expect("workload");
        let mut lean = small_config();
        lean.resources = tsn_resource::ResourceConfig::new();
        let fat = small_config();
        let scenarios = vec![
            Scenario::explicit("lean", topo.clone(), flows.clone(), lean),
            Scenario::explicit("fat", topo.clone(), flows.clone(), fat),
        ];
        let planner = SweepPlanner::new();
        let outcomes = planner.run(&scenarios, 2);
        assert_eq!(planner.template_misses(), 1, "one shared template");
        assert_eq!(planner.template_hits(), 1);
        for (scenario, outcome) in scenarios.iter().zip(outcomes) {
            let outcome = outcome.expect("scenario runs");
            let scratch = Network::build(
                scenario.topology.clone(),
                scenario.flows.clone(),
                &outcome.itp.offsets,
                scenario.config.clone(),
            )
            .expect("builds")
            .run();
            assert_eq!(
                format!("{:?}", outcome.report),
                format!("{scratch:?}"),
                "reconfigured sweep point must match a from-scratch build"
            );
        }
    }

    #[test]
    fn with_faults_arms_degradation_reporting() {
        let mut scenarios = sweep_inputs(1);
        let faults = tsn_sim::FaultConfig {
            seed: 5,
            wire: tsn_sim::LinkFaultProfile {
                loss_prob: 0.05,
                corrupt_prob: 0.05,
            },
            ..tsn_sim::FaultConfig::none()
        };
        let scenario = scenarios.remove(0).with_faults(faults);
        let outcome = SweepPlanner::new().run_one(&scenario).expect("runs");
        assert!(outcome.report.degradation.faults_enabled);
        assert!(
            outcome.report.degradation.frames_lost_to_faults() > 0,
            "5% wire faults over 20ms of traffic must claim at least one frame"
        );
    }

    #[test]
    fn a_bad_scenario_only_loses_its_own_slot() {
        let mut scenarios = sweep_inputs(3);
        // Middle scenario: flows whose endpoints are switches — invalid.
        let topo = presets::ring(3, 2).expect("builds");
        let sw = topo.switches()[0];
        let host = topo.hosts()[0];
        let mut flows = FlowSet::new();
        flows.push(
            tsn_types::TsFlowSpec::new(
                tsn_types::FlowId::new(0),
                host,
                sw,
                SimDuration::from_millis(10),
                SimDuration::from_millis(2),
                64,
            )
            .expect("spec valid in isolation")
            .into(),
        );
        scenarios[1] = Scenario::explicit("bad", topo, flows, small_config());
        let results = run_scenarios(&scenarios, 3);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(SweepError::Failed(_))));
        assert!(results[2].is_ok());
    }
}
