//! The TSN-Builder façade: requirements in, customized switch out
//! (Fig. 1).
//!
//! ```text
//! AppRequirements ──derive──▶ Customization ──synthesize──▶ simulated network
//!                                         └──generate_hdl──▶ Verilog bundle
//!                                         └──usage_report──▶ Table III column
//! ```

use crate::derive::{derive_parameters, DeriveOptions, DerivedConfig};
use crate::requirements::AppRequirements;
use tsn_hdl::templates::HdlBundle;
use tsn_resource::{AllocationPolicy, UsageReport};
use tsn_sim::network::{Network, SimConfig, SyncSetup};
use tsn_types::{SimDuration, TsnResult};

/// The entry point of the library.
///
/// # Example
///
/// ```
/// use tsn_builder::{TsnBuilder, DeriveOptions};
/// use tsn_builder::workloads;
/// use tsn_topology::presets;
/// use tsn_types::SimDuration;
///
/// let topo = presets::ring(6, 3)?;
/// let flows = workloads::iec60802_ts_flows(&topo, 64, 7)?;
/// let customization = TsnBuilder::new(topo, flows, SimDuration::from_nanos(50))?
///     .derive(&DeriveOptions::paper())?;
/// // A Table III-style column for this scenario:
/// let report = customization.usage_report(Default::default());
/// assert!(report.total_kb() < 10_818.0);
/// // And the synthesis stage still emits Verilog:
/// let hdl = customization.generate_hdl()?;
/// assert!(hdl.file("tsn_switch_top.v").is_some());
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TsnBuilder {
    requirements: AppRequirements,
}

impl TsnBuilder {
    /// Starts a customization from a topology, a flow set and the
    /// required sync precision.
    ///
    /// # Errors
    ///
    /// Propagates [`AppRequirements::new`] validation.
    pub fn new(
        topology: tsn_topology::Topology,
        flows: tsn_types::FlowSet,
        sync_precision: SimDuration,
    ) -> TsnResult<Self> {
        Ok(TsnBuilder {
            requirements: AppRequirements::new(topology, flows, sync_precision)?,
        })
    }

    /// Wraps existing requirements.
    #[must_use]
    pub fn from_requirements(requirements: AppRequirements) -> Self {
        TsnBuilder { requirements }
    }

    /// The requirements being customized.
    #[must_use]
    pub fn requirements(&self) -> &AppRequirements {
        &self.requirements
    }

    /// Runs the derivation pipeline (Section III.C) and returns the
    /// complete customization.
    ///
    /// # Errors
    ///
    /// Propagates CQF/ITP/parameter errors.
    pub fn derive(self, options: &DeriveOptions) -> TsnResult<Customization> {
        let derived = derive_parameters(&self.requirements, options)?;
        Ok(Customization {
            requirements: self.requirements,
            derived,
        })
    }
}

/// A finished customization: the derived parameters bound to their
/// scenario, ready for synthesis.
#[derive(Debug, Clone)]
pub struct Customization {
    requirements: AppRequirements,
    derived: DerivedConfig,
}

impl Customization {
    /// The derivation output (resources, CQF plan, ITP plan, port
    /// analysis).
    #[must_use]
    pub fn derived(&self) -> &DerivedConfig {
        &self.derived
    }

    /// The scenario.
    #[must_use]
    pub fn requirements(&self) -> &AppRequirements {
        &self.requirements
    }

    /// The Table III-style BRAM breakdown of this customization.
    #[must_use]
    pub fn usage_report(&self, policy: AllocationPolicy) -> UsageReport {
        UsageReport::of(&self.derived.resources, policy)
    }

    /// BRAM savings versus the BCM53154 commercial baseline, in percent.
    #[must_use]
    pub fn savings_vs_cots(&self, policy: AllocationPolicy) -> f64 {
        let custom = self.usage_report(policy);
        let cots = UsageReport::of(&tsn_resource::baseline::bcm53154(), policy);
        custom.reduction_vs(&cots)
    }

    /// Synthesizes the scenario into a runnable simulated network with
    /// the derived resources, slot and injection offsets.
    ///
    /// # Errors
    ///
    /// Propagates network-assembly errors (they indicate a derivation
    /// bug: the derived resources must always fit their own scenario).
    pub fn synthesize_network(&self, duration: SimDuration, sync: SyncSetup) -> TsnResult<Network> {
        self.synthesize_network_configured(duration, sync, |_| {})
    }

    /// As [`Customization::synthesize_network`], with a hook to adjust
    /// the final [`SimConfig`] (e.g. enable frame preemption) before the
    /// network is built. The derived slot, resources, offsets and gate
    /// schedule are applied first.
    ///
    /// # Errors
    ///
    /// As [`Customization::synthesize_network`].
    pub fn synthesize_network_configured(
        &self,
        duration: SimDuration,
        sync: SyncSetup,
        configure: impl FnOnce(&mut SimConfig),
    ) -> TsnResult<Network> {
        let mut config = SimConfig::paper_defaults();
        config.slot = self.derived.cqf.slot;
        config.resources = self.derived.resources.clone();
        config.duration = duration;
        config.sync = sync;
        config.aggregate_switch_tbl = self.derived.aggregate_switch_tbl;
        config.shards = tsn_sim::sweep::shards_from_env();
        configure(&mut config);
        match &self.derived.tas {
            None => Network::build(
                self.requirements.topology().clone(),
                self.requirements.flows().clone(),
                &self.derived.itp.offsets,
                config,
            ),
            Some(schedule) => Network::build_with_schedule(
                self.requirements.topology().clone(),
                self.requirements.flows().clone(),
                &self.derived.itp.offsets,
                config,
                &tsn_sim::GclSchedule::from_map(schedule.gcls()),
            ),
        }
    }

    /// Emits the per-switch Verilog bundle (the synthesis stage of
    /// Fig. 1).
    ///
    /// # Errors
    ///
    /// Propagates HDL validation errors.
    pub fn generate_hdl(&self) -> TsnResult<HdlBundle> {
        tsn_hdl::templates::generate(&self.derived.resources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use tsn_topology::presets;

    fn customization() -> Customization {
        let topo = presets::ring(6, 3).expect("builds");
        let flows = workloads::iec60802_ts_flows(&topo, 32, 42).expect("workload builds");
        TsnBuilder::new(topo, flows, SimDuration::from_nanos(50))
            .expect("valid requirements")
            .derive(&DeriveOptions::paper())
            .expect("derivation succeeds")
    }

    #[test]
    fn end_to_end_derive_report_hdl() {
        let c = customization();
        let report = c.usage_report(AllocationPolicy::PaperAccounting);
        assert_eq!(report.total_kb(), 2106.0, "ring column of Table III");
        assert!((c.savings_vs_cots(AllocationPolicy::PaperAccounting) - 80.53).abs() < 0.01);
        let hdl = c.generate_hdl().expect("emits verilog");
        assert_eq!(hdl.files().len(), 9, "eight modules plus the testbench");
    }

    #[test]
    fn synthesized_network_runs_losslessly() {
        let c = customization();
        let report = c
            .synthesize_network(SimDuration::from_millis(40), SyncSetup::Perfect)
            .expect("network builds")
            .run();
        assert_eq!(report.ts_lost(), 0);
        assert!(report.ts_injected() > 0);
        assert!(
            report.max_queue_high_water <= c.derived().resources.queue_depth() as usize,
            "derived depth must cover the observed occupancy"
        );
    }
}
