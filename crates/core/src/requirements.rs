//! Application requirements: the *input* to TSN-Builder's Top-down flow.
//!
//! Section II.A: "the features in TSN-related domains are pre-determined
//! and simple" — a scenario is its topology, its flow set and the required
//! synchronization precision. Everything else (Table II parameters, GCLs,
//! injection offsets) is derived.

use tsn_topology::Topology;
use tsn_types::{FlowSet, SimDuration, TsnError, TsnResult};

/// One application scenario.
///
/// # Example
///
/// ```
/// use tsn_builder::requirements::AppRequirements;
/// use tsn_topology::presets;
/// use tsn_types::{FlowSet, TsFlowSpec, FlowId, SimDuration};
///
/// let topo = presets::ring(6, 3)?;
/// let hosts = topo.hosts();
/// let mut flows = FlowSet::new();
/// flows.push(TsFlowSpec::new(
///     FlowId::new(0), hosts[0], hosts[1],
///     SimDuration::from_millis(10), SimDuration::from_millis(2), 64,
/// )?.into());
/// let req = AppRequirements::new(topo, flows, SimDuration::from_nanos(50))?;
/// assert_eq!(req.flows().len(), 1);
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AppRequirements {
    topology: Topology,
    flows: FlowSet,
    sync_precision: SimDuration,
}

impl AppRequirements {
    /// Creates and validates a requirement set: every flow must run
    /// host-to-host over an existing route, and at least one TS flow must
    /// exist (otherwise there is nothing to customize for).
    ///
    /// # Errors
    ///
    /// * [`TsnError::InvalidParameter`] for endpoint/flow-set problems.
    /// * [`TsnError::NoRoute`] / [`TsnError::UnknownNode`] for unroutable
    ///   flows.
    pub fn new(topology: Topology, flows: FlowSet, sync_precision: SimDuration) -> TsnResult<Self> {
        if flows.ts_count() == 0 {
            return Err(TsnError::invalid_parameter(
                "flows",
                "a TSN scenario needs at least one time-sensitive flow",
            ));
        }
        if sync_precision.is_zero() {
            return Err(TsnError::invalid_parameter(
                "sync_precision",
                "must be non-zero",
            ));
        }
        for flow in flows.iter() {
            for node in [flow.src(), flow.dst()] {
                if !topology.node(node)?.is_host() {
                    return Err(TsnError::invalid_parameter(
                        "flows",
                        format!("{} endpoint {node} is not a host", flow.id()),
                    ));
                }
            }
            // Routability check; the route itself is recomputed on demand.
            topology.route(flow.src(), flow.dst())?;
        }
        Ok(AppRequirements {
            topology,
            flows,
            sync_precision,
        })
    }

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The flow set.
    #[must_use]
    pub fn flows(&self) -> &FlowSet {
        &self.flows
    }

    /// Required synchronization precision (the paper's prototype achieves
    /// < 50 ns).
    #[must_use]
    pub fn sync_precision(&self) -> SimDuration {
        self.sync_precision
    }

    /// The largest switch-hop count over all TS flows.
    ///
    /// # Errors
    ///
    /// Propagates routing errors (cannot happen after successful
    /// construction unless the topology was swapped).
    pub fn max_ts_hops(&self) -> TsnResult<usize> {
        let mut max = 0;
        for flow in self.flows.ts_flows() {
            let route = self.topology.route(flow.src(), flow.dst())?;
            max = max.max(route.switch_hops());
        }
        Ok(max)
    }

    /// Decomposes into its parts.
    #[must_use]
    pub fn into_parts(self) -> (Topology, FlowSet, SimDuration) {
        (self.topology, self.flows, self.sync_precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_topology::presets;
    use tsn_types::{FlowId, TsFlowSpec};

    fn a_flow(topo: &Topology, id: u32) -> tsn_types::FlowSpec {
        let hosts = topo.hosts();
        TsFlowSpec::new(
            FlowId::new(id),
            hosts[0],
            hosts[1],
            SimDuration::from_millis(10),
            SimDuration::from_millis(2),
            64,
        )
        .expect("valid flow")
        .into()
    }

    #[test]
    fn accepts_a_valid_scenario() {
        let topo = presets::ring(4, 2).expect("builds");
        let mut flows = FlowSet::new();
        flows.push(a_flow(&topo, 0));
        let req =
            AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).expect("valid scenario");
        assert_eq!(req.max_ts_hops().expect("routable"), 2);
    }

    #[test]
    fn rejects_scenarios_without_ts_flows() {
        let topo = presets::ring(4, 2).expect("builds");
        assert!(AppRequirements::new(topo, FlowSet::new(), SimDuration::from_nanos(50)).is_err());
    }

    #[test]
    fn rejects_switch_endpoints() {
        let topo = presets::ring(4, 2).expect("builds");
        let sw = topo.switches()[0];
        let host = topo.hosts()[0];
        let mut flows = FlowSet::new();
        flows.push(
            TsFlowSpec::new(
                FlowId::new(0),
                host,
                sw,
                SimDuration::from_millis(10),
                SimDuration::from_millis(2),
                64,
            )
            .expect("spec itself is valid")
            .into(),
        );
        assert!(AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).is_err());
    }

    #[test]
    fn rejects_zero_precision() {
        let topo = presets::ring(4, 2).expect("builds");
        let mut flows = FlowSet::new();
        flows.push(a_flow(&topo, 0));
        assert!(AppRequirements::new(topo, flows, SimDuration::ZERO).is_err());
    }
}
