//! Large-plant scenario family — the customization flow at 10⁴…10⁶ flows.
//!
//! The paper evaluates TSN-Builder on cell-sized networks (≤ 6 switches).
//! This module models the other end of the deployment spectrum: a whole
//! factory commissioned at once, built from production *cells* (small
//! bidirectional switch rings with local controllers) joined by a gateway
//! backbone ring ([`tsn_topology::presets::multi_ring`]). Traffic is
//! mostly cell-local — each controller streams to the next one in its
//! cell — with a fixed fraction of supervisory flows crossing into the
//! neighbouring cell over the backbone.
//!
//! Everything here is O(flows) or O(talkers × cell): flows are generated
//! arithmetically (no RNG, no per-flow routing), injection offsets are
//! spread uniformly over the CQF slots of one period instead of running
//! the O(flows × slots) greedy planner, and the switch resources are
//! sized by a single counting pass over the routed hops (the same
//! guideline-(1)/(4) derivation the paper does, at plant scale). Route
//! trees go through [`tsn_topology::RouteTreeCache`], so peak routing
//! memory stays O(cache × nodes) even with thousands of talkers.
//!
//! # Example
//!
//! ```
//! use tsn_builder::plant;
//!
//! let plant = plant::large_plant(256)?;
//! assert_eq!(plant.flows.len(), 256);
//! let report = plant.into_network()?.run();
//! assert_eq!(report.ts_lost(), 0);
//! # Ok::<(), tsn_types::TsnError>(())
//! ```

use std::collections::BTreeSet;
use tsn_resource::ResourceConfig;
use tsn_sim::network::{Network, SimConfig, SyncSetup};
use tsn_topology::{presets, RouteTreeCache, Topology};
use tsn_types::{FlowId, FlowMap, FlowSet, NodeId, SimDuration, TsFlowSpec, TsnError, TsnResult};

/// TS period shared by every plant flow (the IEC 60802 default).
pub const PLANT_PERIOD: SimDuration = SimDuration::from_millis(10);
/// Deadline shared by every plant flow — wide enough for the longest
/// cross-cell CQF path at the 65 µs slot.
pub const PLANT_DEADLINE: SimDuration = SimDuration::from_millis(8);
/// One flow in [`CROSS_EVERY`] leaves its cell for the next one.
pub const CROSS_EVERY: u32 = 16;

/// Geometry picked for a flow-count target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlantDims {
    /// Production cells (each one ring in the backbone).
    pub cells: usize,
    /// Switches per cell ring.
    pub ring_size: usize,
    /// Controller hosts per cell. 7 is deliberate: it is coprime to the
    /// 4000-VLAN wheel of [`tsn_sim::network::vlan_for`], so two flows
    /// between the same host pair never collide on a classification key
    /// within a cell's flow range.
    pub hosts_per_cell: usize,
}

impl PlantDims {
    /// Sizes the plant so each cell carries ~1k flows: 10k flows → 10
    /// cells (87 nodes), 100k → 98 cells, 1M → 977 cells (~14.7k nodes).
    #[must_use]
    pub fn for_flows(flow_count: u32) -> Self {
        PlantDims {
            cells: (flow_count as usize).div_ceil(1024).max(1),
            ring_size: 8,
            hosts_per_cell: 7,
        }
    }

    /// Flows assigned to each cell (the last cell may get fewer).
    #[must_use]
    pub fn flows_per_cell(&self, flow_count: u32) -> u32 {
        flow_count.div_ceil(self.cells as u32).max(1)
    }
}

/// A ready-to-run plant: topology, workload, injection plan and a
/// counting-pass-sized [`SimConfig`].
#[derive(Debug, Clone)]
pub struct LargePlant {
    /// The multi-ring plant network.
    pub topology: Topology,
    /// Cell-major TS flows (all of cell 0's flows, then cell 1's, …).
    pub flows: FlowSet,
    /// Uniform-spread injection offsets, one per flow.
    pub offsets: FlowMap<SimDuration>,
    /// One-period duration, perfect sync, counting-pass resources.
    pub config: SimConfig,
    /// The geometry the flow count selected.
    pub dims: PlantDims,
}

impl LargePlant {
    /// Builds the simulation network (consumes the plant — flow sets at
    /// this scale are worth not cloning).
    ///
    /// # Errors
    ///
    /// Propagates [`Network::build`] validation.
    pub fn into_network(self) -> TsnResult<Network> {
        Network::build(self.topology, self.flows, &self.offsets, self.config)
    }
}

/// Generates the plant family member with `flow_count` TS flows.
///
/// # Errors
///
/// Returns [`TsnError::InvalidParameter`] for `flow_count == 0`;
/// propagates topology/flow validation.
pub fn large_plant(flow_count: u32) -> TsnResult<LargePlant> {
    if flow_count == 0 {
        return Err(TsnError::invalid_parameter(
            "flow_count",
            "a plant needs at least one flow",
        ));
    }
    let dims = PlantDims::for_flows(flow_count);
    let topology = presets::multi_ring(dims.cells, dims.ring_size, dims.hosts_per_cell)?;
    let hosts = topology.hosts();
    let hpc = dims.hosts_per_cell;
    let per_cell = dims.flows_per_cell(flow_count);

    // Cell-major, arithmetic flow generation: flow i lives in cell
    // i / per_cell with local index j = i % per_cell, streams from host
    // j mod 7 to the next host — in the same cell, or (every 16th flow)
    // in the next cell over the backbone. Cell-major order keeps each
    // talker's flows clustered, which is what makes the bounded
    // route-tree cache hit ~always during install.
    let host_of = |cell: usize, h: usize| hosts[cell * hpc + h];
    let mut flows = FlowSet::new();
    let mut offsets = FlowMap::with_capacity(flow_count as usize);
    // Spread each cell's injections over the CQF slots of one period.
    let slot = SimDuration::from_micros(65);
    let spread = (PLANT_PERIOD.as_nanos() / slot.as_nanos()) as u32;
    for i in 0..flow_count {
        let cell = (i / per_cell) as usize;
        let j = i % per_cell;
        let src = host_of(cell, (j as usize) % hpc);
        let cross = dims.cells > 1 && j % CROSS_EVERY == CROSS_EVERY - 1;
        let dst_cell = if cross { (cell + 1) % dims.cells } else { cell };
        let dst = host_of(dst_cell, (j as usize + 1) % hpc);
        let id = FlowId::new(i);
        flows.push(TsFlowSpec::new(id, src, dst, PLANT_PERIOD, PLANT_DEADLINE, 64)?.into());
        offsets.insert(
            id,
            SimDuration::from_nanos(slot.as_nanos() * u64::from(j % spread)),
        );
    }

    let resources = size_resources(&topology, &flows)?;
    let mut config = SimConfig::paper_defaults();
    config.slot = slot;
    config.resources = resources;
    config.duration = PLANT_PERIOD; // one frame per flow per run
    config.drain = SimDuration::from_millis(2);
    config.sync = SyncSetup::Perfect;
    config.aggregate_switch_tbl = true; // guideline (1) at plant scale

    Ok(LargePlant {
        topology,
        flows,
        offsets,
        config,
        dims,
    })
}

/// One counting pass over the routed hops: per-switch classification
/// entries and distinct destinations determine the table sizes exactly,
/// the way `derive_parameters` sizes them from the flow count on small
/// scenarios.
fn size_resources(topology: &Topology, flows: &FlowSet) -> TsnResult<ResourceConfig> {
    let node_count = topology.nodes().len();
    let mut class_entries = vec![0u32; node_count];
    let mut dsts: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); node_count];
    let mut cache = RouteTreeCache::new();
    for flow in flows.iter() {
        let route = cache.route(topology, flow.src(), flow.dst())?;
        for hop in route.switch_hops_iter() {
            let idx = hop.node.as_usize();
            class_entries[idx] += 1;
            dsts[idx].insert(flow.dst());
        }
    }
    let max_class = class_entries.iter().copied().max().unwrap_or(0);
    let max_dst = dsts.iter().map(BTreeSet::len).max().unwrap_or(0) as u32;
    let max_ports = topology
        .switches()
        .iter()
        .map(|&sw| topology.port_count(sw) as u32)
        .max()
        .unwrap_or(1);

    let mut resources = ResourceConfig::new();
    resources
        .set_switch_tbl(max_dst.max(16).next_power_of_two(), 0)?
        .set_class_tbl(max_class.max(16).next_power_of_two())?
        .set_meter_tbl(16)? // no rate-constrained plant flows
        .set_gate_tbl(2, 8, max_ports)?
        .set_cbs_tbl(1, 1, max_ports)?
        .set_queues(32, 8, max_ports)?
        .set_buffers(256, max_ports)?;
    Ok(resources)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_scale_with_the_flow_count() {
        assert_eq!(PlantDims::for_flows(10_000).cells, 10);
        assert_eq!(PlantDims::for_flows(100_000).cells, 98);
        assert_eq!(PlantDims::for_flows(1_000_000).cells, 977);
    }

    #[test]
    fn small_plant_runs_without_loss_or_misses() {
        let plant = large_plant(512).expect("plant builds");
        assert_eq!(plant.flows.len(), 512);
        let report = plant.into_network().expect("network builds").run();
        assert_eq!(report.ts_injected(), 512, "one frame per flow");
        assert_eq!(report.ts_lost(), 0);
        assert_eq!(report.ts_deadline_misses(), 0);
        assert!(report.ts_p99().is_some());
    }

    #[test]
    fn cross_cell_flows_really_cross() {
        let plant = large_plant(2048).expect("plant builds");
        let crossings = plant
            .flows
            .ts_flows()
            .filter(|f| {
                let src = plant.topology.switch_of_host(f.src()).expect("cabled");
                let dst = plant.topology.switch_of_host(f.dst()).expect("cabled");
                let route = plant.topology.route(f.src(), f.dst()).expect("routes");
                route.switch_hops() >= 2 && src != dst
            })
            .count();
        assert!(crossings > 0, "plant traffic is not all single-switch");
        let cross_cell = plant
            .flows
            .ts_flows()
            .filter(|f| {
                // Hosts are cell-major: integer-dividing the host index
                // by hosts_per_cell recovers the cell.
                let hosts = plant.topology.hosts();
                let cell_of = |n| {
                    hosts.iter().position(|&h| h == n).expect("host") / plant.dims.hosts_per_cell
                };
                cell_of(f.src()) != cell_of(f.dst())
            })
            .count();
        assert_eq!(
            cross_cell,
            (plant.flows.len() as u32 / CROSS_EVERY) as usize
        );
    }

    #[test]
    fn classification_keys_never_collide() {
        use std::collections::BTreeSet;
        let plant = large_plant(4096).expect("plant builds");
        let mut keys = BTreeSet::new();
        for f in plant.flows.ts_flows() {
            let vlan = tsn_sim::network::vlan_for(f.id());
            assert!(
                keys.insert((f.src(), f.dst(), vlan)),
                "flow {} reuses a (src, dst, vlan) classification key",
                f.id()
            );
        }
    }

    #[test]
    fn offsets_spread_over_the_period() {
        let plant = large_plant(1024).expect("plant builds");
        let distinct: BTreeSet<_> = plant.offsets.values().copied().collect();
        assert!(
            distinct.len() > 100,
            "injections spread over many slots, got {}",
            distinct.len()
        );
        for &offset in &distinct {
            assert!(offset < PLANT_PERIOD, "offsets stay inside one period");
        }
    }
}
