//! Error-path and saturation coverage for the customization API.
//!
//! Every `ResourceConfig` setter must reject meaningless inputs with
//! [`TsnError::InvalidParameter`] — never panic — and must leave the
//! configuration untouched when it does. The cost queries must saturate
//! at `u64::MAX` on absurd configurations instead of wrapping to a small
//! (and therefore dangerously plausible) number.

use tsn_resource::{AllocationPolicy, ResourceConfig};
use tsn_types::TsnError;

/// Asserts the result is the `InvalidParameter` error naming `param`.
fn assert_invalid<T: std::fmt::Debug>(result: Result<T, TsnError>, param: &str) {
    match result {
        Err(TsnError::InvalidParameter { ref name, .. }) => {
            assert_eq!(name, param, "wrong parameter blamed: {result:?}")
        }
        other => panic!("expected InvalidParameter({param}), got {other:?}"),
    }
}

#[test]
fn every_setter_rejects_zero_with_invalid_parameter() {
    let mut cfg = ResourceConfig::new();

    // A switch with no forwarding state at all is meaningless; either
    // table alone may be empty.
    assert_invalid(
        cfg.set_switch_tbl(0, 0).map(|_| ()),
        "unicast_size/multicast_size",
    );

    assert_invalid(cfg.set_class_tbl(0).map(|_| ()), "class_size");
    assert_invalid(cfg.set_meter_tbl(0).map(|_| ()), "meter_size");

    // set_gate_tbl: all three arguments required, blamed individually.
    assert_invalid(cfg.set_gate_tbl(0, 8, 1).map(|_| ()), "gate_size");
    assert_invalid(cfg.set_gate_tbl(2, 0, 1).map(|_| ()), "queue_num");
    assert_invalid(cfg.set_gate_tbl(2, 8, 0).map(|_| ()), "port_num");

    // set_cbs_tbl: only port_num is mandatory (0/0 disables shaping).
    assert_invalid(cfg.set_cbs_tbl(3, 3, 0).map(|_| ()), "port_num");

    // set_queues: all three arguments required.
    assert_invalid(cfg.set_queues(0, 8, 1).map(|_| ()), "queue_depth");
    assert_invalid(cfg.set_queues(12, 0, 1).map(|_| ()), "queue_num");
    assert_invalid(cfg.set_queues(12, 8, 0).map(|_| ()), "port_num");

    // set_buffers: both arguments required.
    assert_invalid(cfg.set_buffers(0, 1).map(|_| ()), "buffer_num");
    assert_invalid(cfg.set_buffers(96, 0).map(|_| ()), "port_num");
}

#[test]
fn failed_setters_leave_the_configuration_untouched() {
    let pristine = ResourceConfig::new();
    let mut cfg = ResourceConfig::new();
    let _ = cfg.set_switch_tbl(0, 0);
    let _ = cfg.set_class_tbl(0);
    let _ = cfg.set_meter_tbl(0);
    let _ = cfg.set_gate_tbl(2, 8, 0); // two valid args before the bad one
    let _ = cfg.set_cbs_tbl(3, 3, 0);
    let _ = cfg.set_queues(12, 8, 0);
    let _ = cfg.set_buffers(96, 0);
    assert_eq!(cfg, pristine, "a rejected setter mutated the config");
}

#[test]
fn deliberate_zeroes_that_mean_something_are_accepted() {
    let mut cfg = ResourceConfig::new();
    // Unicast-only and multicast-only switch tables are both valid.
    cfg.set_switch_tbl(16 * 1024, 0).expect("unicast-only");
    cfg.set_switch_tbl(0, 512).expect("multicast-only");
    // A 0/0 CBS pair disables credit-based shaping entirely.
    cfg.set_cbs_tbl(0, 0, 2).expect("shaping disabled");
    assert_eq!(cfg.cbs_map_size(), 0);
    assert_eq!(cfg.cbs_size(), 0);
    assert_eq!(cfg.port_num(), 2);
}

#[test]
fn policy_cost_primitives_saturate_instead_of_wrapping() {
    for policy in AllocationPolicy::ALL {
        // entries * width overflows u64 by many orders of magnitude: a
        // wrapping multiply would report a small cost here.
        assert_eq!(
            policy.table_cost_bits(u64::MAX, 8),
            u64::MAX,
            "{policy}: table cost wrapped"
        );
        // Near-MAX raw bits: the round-up multiply after div_ceil is the
        // overflow site, not the entries*width product.
        assert!(
            policy.table_cost_bits(u64::MAX / 2, 2) >= u64::MAX - 36 * 1024,
            "{policy}: round-up wrapped"
        );
        assert_eq!(
            policy.buffer_pool_cost_bits(u64::MAX),
            u64::MAX,
            "{policy}: buffer cost wrapped"
        );
        // Zero instances still cost nothing.
        assert_eq!(policy.table_cost_bits(0, u64::MAX), 0);
        assert_eq!(policy.buffer_pool_cost_bits(0), 0);
    }
}

#[test]
fn maxed_out_configuration_saturates_total_bits() {
    let mut cfg = ResourceConfig::new();
    cfg.set_switch_tbl(u32::MAX, u32::MAX)
        .expect("valid")
        .set_class_tbl(u32::MAX)
        .expect("valid")
        .set_meter_tbl(u32::MAX)
        .expect("valid")
        .set_gate_tbl(u32::MAX, u32::MAX, u32::MAX)
        .expect("valid")
        .set_cbs_tbl(u32::MAX, u32::MAX, u32::MAX)
        .expect("valid")
        .set_queues(u32::MAX, u32::MAX, u32::MAX)
        .expect("valid")
        .set_buffers(u32::MAX, u32::MAX)
        .expect("valid");

    for policy in AllocationPolicy::ALL {
        // port_num * queue_num * per-queue cost alone exceeds u64::MAX,
        // so the total must pin to the ceiling — not wrap past it.
        assert_eq!(cfg.queue_bits(policy), u64::MAX, "{policy}: queues wrapped");
        assert_eq!(cfg.total_bits(policy), u64::MAX, "{policy}: total wrapped");
        // And an absurd configuration must still cost at least as much as
        // a sane one under the same policy (ordering survives saturation).
        let sane = ResourceConfig::new();
        assert!(cfg.total_bits(policy) >= sane.total_bits(policy));
    }
}
