//! FPGA block-RAM cost model.
//!
//! Xilinx 7-series devices (the paper's Zynq-7020) provide block RAM in
//! 18 Kb primitives that can be fused into 36 Kb blocks. "The size of the
//! allocated BRAM block is 18Kb or 36Kb and it is determined by the
//! inputted width and depth" (Section IV.B). The accounting below was
//! reverse-engineered from the paper's published numbers and reproduces
//! every cell of Table I and Table III; see `DESIGN.md` §3 for the
//! derivation and cross-checks.

use core::fmt;

/// Bits in one 18 Kb BRAM primitive.
pub const BRAM18_BITS: u64 = 18 * 1024;
/// Bits in one 36 Kb BRAM block.
pub const BRAM36_BITS: u64 = 36 * 1024;
/// Bits in "1 Kb" as the paper reports it.
pub const KB_BITS: u64 = 1024;

/// Payload bytes of one packet buffer (holds one MTU frame).
pub const BUFFER_BYTES: u64 = 2048;
/// The effective per-buffer BRAM cost used by the paper's accounting:
/// 17 280 bits = 16.875 Kb = 2 160 B per buffer.
///
/// This single constant is consistent with *all* six buffer figures the
/// paper publishes (Table III: 128 buffers × 4 ports → 8640 Kb and
/// 96 × {3,2,1} → 4860/3240/1620 Kb; Table I: 128 → 2160 Kb, 96 →
/// 1620 Kb). We model it as the 2 048 B payload plus a 112 B
/// descriptor/alignment overhead per buffer slot in the per-port pool.
pub const PAPER_BUFFER_COST_BITS: u64 = 17_280;

/// How raw table/queue/buffer bits are mapped onto BRAM.
///
/// `PaperAccounting` regenerates the paper's tables; the other policies
/// exist for the ablation benches ("how sensitive are the headline savings
/// to the allocator?").
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationPolicy {
    /// The paper's accounting: every table/queue instance is rounded up to
    /// whole 18 Kb primitives independently; packet buffers cost
    /// [`PAPER_BUFFER_COST_BITS`] each (no further rounding).
    #[default]
    PaperAccounting,
    /// Raw bits with no rounding at all; buffers cost their 2 048 B
    /// payload. Lower bound on memory.
    ExactBits,
    /// Every instance rounded up to whole 36 Kb blocks; buffers are pooled
    /// per port and the pool rounded to 36 Kb. A coarser allocator, upper
    /// bound among the realistic policies.
    Bram36,
}

impl AllocationPolicy {
    /// All policies, for sweep-style benches.
    pub const ALL: [AllocationPolicy; 3] = [
        AllocationPolicy::PaperAccounting,
        AllocationPolicy::ExactBits,
        AllocationPolicy::Bram36,
    ];

    /// Cost in bits of one memory *instance* (a single physical table or
    /// queue) holding `entries` entries of `width_bits` each.
    ///
    /// An instance with zero entries costs nothing under every policy.
    /// Arithmetic saturates at `u64::MAX` rather than wrapping, so absurd
    /// inputs report an absurd (but ordered) cost instead of a small one.
    #[must_use]
    pub fn table_cost_bits(self, entries: u64, width_bits: u64) -> u64 {
        let raw = entries.saturating_mul(width_bits);
        if raw == 0 {
            return 0;
        }
        match self {
            AllocationPolicy::PaperAccounting => {
                raw.div_ceil(BRAM18_BITS).saturating_mul(BRAM18_BITS)
            }
            AllocationPolicy::ExactBits => raw,
            AllocationPolicy::Bram36 => raw.div_ceil(BRAM36_BITS).saturating_mul(BRAM36_BITS),
        }
    }

    /// Cost in bits of one per-port packet-buffer pool of `buffers`
    /// buffers. Saturates like [`AllocationPolicy::table_cost_bits`].
    #[must_use]
    pub fn buffer_pool_cost_bits(self, buffers: u64) -> u64 {
        if buffers == 0 {
            return 0;
        }
        match self {
            AllocationPolicy::PaperAccounting => buffers.saturating_mul(PAPER_BUFFER_COST_BITS),
            AllocationPolicy::ExactBits => buffers.saturating_mul(BUFFER_BYTES * 8),
            AllocationPolicy::Bram36 => buffers
                .saturating_mul(BUFFER_BYTES * 8)
                .div_ceil(BRAM36_BITS)
                .saturating_mul(BRAM36_BITS),
        }
    }

    /// Short human-readable name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AllocationPolicy::PaperAccounting => "paper",
            AllocationPolicy::ExactBits => "exact",
            AllocationPolicy::Bram36 => "bram36",
        }
    }
}

impl fmt::Display for AllocationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Formats a bit count the way the paper prints BRAM figures
/// (e.g. `10818Kb`, with fractions only when needed).
#[must_use]
pub fn format_kb(bits: u64) -> String {
    if bits.is_multiple_of(KB_BITS) {
        format!("{}Kb", bits / KB_BITS)
    } else {
        format!("{:.3}Kb", bits as f64 / KB_BITS as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_policy_rounds_each_instance_to_bram18() {
        let p = AllocationPolicy::PaperAccounting;
        // Table III shared tables.
        assert_eq!(p.table_cost_bits(16 * 1024, 72), 1152 * KB_BITS); // switch, commercial
        assert_eq!(p.table_cost_bits(1024, 72), 72 * KB_BITS); // switch, customized
        assert_eq!(p.table_cost_bits(1024, 117), 126 * KB_BITS); // classification
        assert_eq!(p.table_cost_bits(512, 68), 36 * KB_BITS); // meter, commercial
        assert_eq!(p.table_cost_bits(1024, 68), 72 * KB_BITS); // meter, customized
                                                               // Tiny tables still take one whole primitive.
        assert_eq!(p.table_cost_bits(2, 17), BRAM18_BITS);
        assert_eq!(p.table_cost_bits(0, 17), 0);
    }

    #[test]
    fn paper_buffer_cost_matches_every_published_number() {
        let p = AllocationPolicy::PaperAccounting;
        let per_port_128 = p.buffer_pool_cost_bits(128);
        let per_port_96 = p.buffer_pool_cost_bits(96);
        // Table III.
        assert_eq!(4 * per_port_128, 8640 * KB_BITS);
        assert_eq!(3 * per_port_96, 4860 * KB_BITS);
        assert_eq!(2 * per_port_96, 3240 * KB_BITS);
        assert_eq!(per_port_96, 1620 * KB_BITS);
        // Table I.
        assert_eq!(per_port_128, 2160 * KB_BITS);
        assert_eq!(per_port_128 - per_port_96, 540 * KB_BITS);
    }

    #[test]
    fn exact_policy_charges_raw_bits() {
        let p = AllocationPolicy::ExactBits;
        assert_eq!(p.table_cost_bits(1024, 117), 1024 * 117);
        assert_eq!(p.buffer_pool_cost_bits(96), 96 * 2048 * 8);
        assert_eq!(p.table_cost_bits(0, 99), 0);
    }

    #[test]
    fn bram36_policy_rounds_to_36kb() {
        let p = AllocationPolicy::Bram36;
        assert_eq!(p.table_cost_bits(1, 1), BRAM36_BITS);
        assert_eq!(p.table_cost_bits(1024, 72), 2 * BRAM36_BITS);
        // 96 buffers = 1 572 864 bits -> ceil(42.666) = 43 blocks.
        assert_eq!(p.buffer_pool_cost_bits(96), 43 * BRAM36_BITS);
        assert_eq!(p.buffer_pool_cost_bits(0), 0);
    }

    #[test]
    fn policies_order_as_expected_for_small_tables() {
        // exact <= paper <= bram36 for any single small instance.
        for (entries, width) in [(2u64, 17u64), (3, 72), (12, 32), (1024, 117)] {
            let exact = AllocationPolicy::ExactBits.table_cost_bits(entries, width);
            let paper = AllocationPolicy::PaperAccounting.table_cost_bits(entries, width);
            let coarse = AllocationPolicy::Bram36.table_cost_bits(entries, width);
            assert!(exact <= paper && paper <= coarse, "({entries},{width})");
        }
    }

    #[test]
    fn format_kb_prints_like_the_paper() {
        assert_eq!(format_kb(10_818 * KB_BITS), "10818Kb");
        assert_eq!(format_kb(PAPER_BUFFER_COST_BITS), "16.875Kb");
        assert_eq!(format_kb(0), "0Kb");
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(AllocationPolicy::PaperAccounting.to_string(), "paper");
        assert_eq!(AllocationPolicy::ExactBits.to_string(), "exact");
        assert_eq!(AllocationPolicy::Bram36.to_string(), "bram36");
        assert_eq!(
            AllocationPolicy::default(),
            AllocationPolicy::PaperAccounting
        );
    }
}
