//! The resource view of Fig. 4: which memory objects each of the five
//! components owns, with their customized geometry.
//!
//! The paper's Fig. 4 is the conceptual map between components and the
//! tables/queues/buffers they consume; [`ResourceView`] renders the same
//! map for a concrete [`ResourceConfig`], so a developer can see at a
//! glance what the customization APIs produced.

use crate::bram::{format_kb, AllocationPolicy};
use crate::config::ResourceConfig;
use core::fmt;

/// One memory object inside a component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryObject {
    /// Object name as in Fig. 4 (e.g. `"Unicast Table"`).
    pub name: String,
    /// Geometry, e.g. `"1024 x 72b"`.
    pub geometry: String,
    /// Physical instances (per-port objects list the port count).
    pub instances: u32,
    /// Total BRAM bits under the view's policy.
    pub bits: u64,
}

/// One of the five components with its memory objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentView {
    /// Component name (Fig. 3/4: Packet Switch, Ingress Filter, Gate
    /// Ctrl, Egress Sched, Time Sync).
    pub component: String,
    /// Its memory objects (Time Sync owns none — registers only).
    pub objects: Vec<MemoryObject>,
}

impl ComponentView {
    /// Total BRAM bits of the component.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.objects.iter().map(|o| o.bits).sum()
    }
}

/// The complete per-component resource map of one switch configuration.
///
/// # Example
///
/// ```
/// use tsn_resource::{view::ResourceView, ResourceConfig, AllocationPolicy};
///
/// let view = ResourceView::of(&ResourceConfig::new(), AllocationPolicy::PaperAccounting);
/// assert_eq!(view.components().len(), 5);
/// let text = view.to_string();
/// assert!(text.contains("Packet Switch"));
/// assert!(text.contains("Unicast/Multicast Table"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceView {
    policy: AllocationPolicy,
    components: Vec<ComponentView>,
}

impl ResourceView {
    /// Builds the view for `config` under `policy`.
    #[must_use]
    pub fn of(config: &ResourceConfig, policy: AllocationPolicy) -> Self {
        let w = config.widths();
        let ports = config.port_num();
        let components = vec![
            ComponentView {
                component: "Packet Switch".to_owned(),
                objects: vec![MemoryObject {
                    // The unicast and multicast tables share one physical
                    // memory, so they are priced together (as in Table
                    // III's single "Switch Tbl" row).
                    name: "Unicast/Multicast Table".to_owned(),
                    geometry: format!(
                        "{}+{} x {}b",
                        config.unicast_size(),
                        config.multicast_size(),
                        w.switch_tbl_bits
                    ),
                    instances: 1,
                    bits: config.switch_tbl_bits(policy),
                }],
            },
            ComponentView {
                component: "Ingress Filter".to_owned(),
                objects: vec![
                    MemoryObject {
                        name: "Classification Table".to_owned(),
                        geometry: format!("{} x {}b", config.class_size(), w.class_tbl_bits),
                        instances: 1,
                        bits: config.class_tbl_bits(policy),
                    },
                    MemoryObject {
                        name: "Meter Table".to_owned(),
                        geometry: format!("{} x {}b", config.meter_size(), w.meter_tbl_bits),
                        instances: 1,
                        bits: config.meter_tbl_bits(policy),
                    },
                ],
            },
            ComponentView {
                component: "Gate Ctrl".to_owned(),
                objects: vec![
                    MemoryObject {
                        name: "In/Out Gate Tables".to_owned(),
                        geometry: format!("{} x {}b", config.gate_size(), w.gate_tbl_bits),
                        instances: 2 * ports,
                        bits: config.gate_tbl_bits(policy),
                    },
                    MemoryObject {
                        name: "Metadata Queues".to_owned(),
                        geometry: format!("{} x {}b", config.queue_depth(), w.queue_meta_bits),
                        instances: config.queue_num() * ports,
                        bits: config.queue_bits(policy),
                    },
                    MemoryObject {
                        name: "Packet Buffers".to_owned(),
                        geometry: format!("{} x 2048B", config.buffer_num()),
                        instances: ports,
                        bits: config.buffer_bits(policy),
                    },
                ],
            },
            ComponentView {
                component: "Egress Sched".to_owned(),
                objects: vec![
                    MemoryObject {
                        name: "CBS Map Table".to_owned(),
                        geometry: format!("{} x {}b", config.cbs_map_size(), w.cbs_map_bits),
                        instances: ports,
                        bits: ports as u64
                            * policy.table_cost_bits(
                                u64::from(config.cbs_map_size()),
                                u64::from(w.cbs_map_bits),
                            ),
                    },
                    MemoryObject {
                        name: "CBS Table".to_owned(),
                        geometry: format!("{} x {}b", config.cbs_size(), w.cbs_tbl_bits),
                        instances: ports,
                        bits: ports as u64
                            * policy.table_cost_bits(
                                u64::from(config.cbs_size()),
                                u64::from(w.cbs_tbl_bits),
                            ),
                    },
                ],
            },
            ComponentView {
                component: "Time Sync".to_owned(),
                objects: Vec::new(),
            },
        ];
        ResourceView { policy, components }
    }

    /// The five components, in Fig. 3 order.
    #[must_use]
    pub fn components(&self) -> &[ComponentView] {
        &self.components
    }

    /// Looks up one component by name.
    #[must_use]
    pub fn component(&self, name: &str) -> Option<&ComponentView> {
        self.components.iter().find(|c| c.component == name)
    }

    /// Total BRAM bits across every component (equals
    /// [`ResourceConfig::total_bits`]).
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.components.iter().map(ComponentView::total_bits).sum()
    }
}

impl fmt::Display for ResourceView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Resource view (policy: {})", self.policy)?;
        for c in &self.components {
            writeln!(f, "+-- {} ({})", c.component, format_kb(c.total_bits()))?;
            if c.objects.is_empty() {
                writeln!(f, "|     (registers only)")?;
            }
            for o in &c.objects {
                writeln!(
                    f,
                    "|     {:<22} {:>16}  x{:<3} = {}",
                    o.name,
                    o.geometry,
                    o.instances,
                    format_kb(o.bits)
                )?;
            }
        }
        write!(f, "total: {}", format_kb(self.total_bits()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;

    #[test]
    fn view_totals_match_the_config() {
        let mut mixed = ResourceConfig::new();
        mixed.set_switch_tbl(100, 100).expect("valid");
        for config in [
            ResourceConfig::new(),
            baseline::bcm53154(),
            baseline::table1_case1(),
            mixed,
        ] {
            for policy in AllocationPolicy::ALL {
                let view = ResourceView::of(&config, policy);
                assert_eq!(
                    view.total_bits(),
                    config.total_bits(policy),
                    "the view is an exact decomposition"
                );
            }
        }
    }

    #[test]
    fn five_components_in_figure_order() {
        let view = ResourceView::of(&ResourceConfig::new(), AllocationPolicy::PaperAccounting);
        let names: Vec<&str> = view
            .components()
            .iter()
            .map(|c| c.component.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "Packet Switch",
                "Ingress Filter",
                "Gate Ctrl",
                "Egress Sched",
                "Time Sync"
            ]
        );
    }

    #[test]
    fn gate_ctrl_owns_queues_and_buffers() {
        let view = ResourceView::of(&baseline::bcm53154(), AllocationPolicy::PaperAccounting);
        let gate = view.component("Gate Ctrl").expect("component exists");
        assert_eq!(gate.objects.len(), 3);
        let buffers = gate
            .objects
            .iter()
            .find(|o| o.name == "Packet Buffers")
            .expect("buffers listed");
        assert_eq!(buffers.instances, 4, "one pool per port");
        assert_eq!(buffers.bits, 8640 * 1024);
    }

    #[test]
    fn time_sync_holds_no_tables() {
        // "Except for the Time Sync component, the other four components
        // have multiple tables" (Section III.B).
        let view = ResourceView::of(&ResourceConfig::new(), AllocationPolicy::PaperAccounting);
        assert_eq!(
            view.component("Time Sync")
                .expect("component exists")
                .total_bits(),
            0
        );
    }

    #[test]
    fn display_renders_the_figure() {
        let view = ResourceView::of(&ResourceConfig::new(), AllocationPolicy::PaperAccounting);
        let text = view.to_string();
        for needle in [
            "Packet Switch",
            "Unicast/Multicast Table",
            "Classification Table",
            "In/Out Gate Tables",
            "CBS Map Table",
            "registers only",
            "total: 2106Kb",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
