//! The commercial (COTS) reference configuration.
//!
//! Section IV.B: "The resource parameters of BCM53154 in datasheet includes
//! 4 TSN ports, 16K MAC entries, 1K classification entries, 512 meters,
//! 8 queues/shapers per port and 1MB buffers in total. Since there is only
//! a rough description of these parameters, the other unknown parameters
//! are set the same as the customized parameters."

use crate::config::ResourceConfig;

/// The Broadcom BCM53154 resource configuration as the paper encodes it in
/// Table III's "Commercial Switch" column:
///
/// | resource | parameters |
/// |---|---|
/// | switch table | 16 K unicast, 0 multicast |
/// | classification table | 1024 |
/// | meter table | 512 |
/// | gate tables | size 2, 8 queues, 4 ports |
/// | CBS map / CBS tables | 8, 8, 4 ports |
/// | queues | depth 16, 8 queues, 4 ports |
/// | buffers | 128 per port, 4 ports |
///
/// # Example
///
/// ```
/// use tsn_resource::{baseline, AllocationPolicy};
///
/// let cots = baseline::bcm53154();
/// assert_eq!(cots.port_num(), 4);
/// assert_eq!(
///     cots.total_bits(AllocationPolicy::PaperAccounting),
///     10_818 * 1024
/// );
/// ```
#[must_use]
pub fn bcm53154() -> ResourceConfig {
    let mut cfg = ResourceConfig::new();
    cfg.set_switch_tbl(16 * 1024, 0)
        .expect("baseline switch table parameters are valid")
        .set_class_tbl(1024)
        .expect("baseline classification parameters are valid")
        .set_meter_tbl(512)
        .expect("baseline meter parameters are valid")
        .set_gate_tbl(2, 8, 4)
        .expect("baseline gate parameters are valid")
        .set_cbs_tbl(8, 8, 4)
        .expect("baseline cbs parameters are valid")
        .set_queues(16, 8, 4)
        .expect("baseline queue parameters are valid")
        .set_buffers(128, 4)
        .expect("baseline buffer parameters are valid");
    cfg
}

/// The Table I "Case 1" configuration (motivation experiment): one enabled
/// port, 8 queues of depth 16, 128 buffers.
#[must_use]
pub fn table1_case1() -> ResourceConfig {
    let mut cfg = ResourceConfig::new();
    cfg.set_gate_tbl(2, 8, 1)
        .expect("case 1 gate parameters are valid")
        .set_queues(16, 8, 1)
        .expect("case 1 queue parameters are valid")
        .set_buffers(128, 1)
        .expect("case 1 buffer parameters are valid");
    cfg
}

/// The Table I "Case 2" configuration: one enabled port, 8 queues of depth
/// 12, 96 buffers — 540 Kb less BRAM at identical QoS.
#[must_use]
pub fn table1_case2() -> ResourceConfig {
    let mut cfg = ResourceConfig::new();
    cfg.set_gate_tbl(2, 8, 1)
        .expect("case 2 gate parameters are valid")
        .set_queues(12, 8, 1)
        .expect("case 2 queue parameters are valid")
        .set_buffers(96, 1)
        .expect("case 2 buffer parameters are valid");
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bram::{AllocationPolicy, KB_BITS};

    #[test]
    fn bcm53154_matches_datasheet_summary() {
        let cfg = bcm53154();
        assert_eq!(cfg.unicast_size(), 16 * 1024);
        assert_eq!(cfg.class_size(), 1024);
        assert_eq!(cfg.meter_size(), 512);
        assert_eq!(cfg.queue_num(), 8);
        assert_eq!(cfg.queue_depth(), 16);
        assert_eq!(cfg.buffer_num(), 128);
        assert_eq!(cfg.port_num(), 4);
    }

    #[test]
    fn table1_cases_differ_by_540kb_of_queue_and_buffer_memory() {
        let p = AllocationPolicy::PaperAccounting;
        let case1 = table1_case1();
        let case2 = table1_case2();
        let qb1 = case1.queue_bits(p) + case1.buffer_bits(p);
        let qb2 = case2.queue_bits(p) + case2.buffer_bits(p);
        assert_eq!(qb1, 2304 * KB_BITS, "Table I case 1 total");
        assert_eq!(qb2, 1764 * KB_BITS, "Table I case 2 total");
        assert_eq!(qb1 - qb2, 540 * KB_BITS, "Table I saving");
    }
}
