//! The design-space-search cost comparator.
//!
//! Candidate configurations are ranked by the resources the emitted RTL
//! actually consumes: BRAM36 blocks first (the scarce FPGA commodity the
//! paper optimizes, Table III), register bits as the tiebreak (flop
//! pressure of pointers, credits and gate state). Both come from the
//! [`crate::rtl`] memory-map contract, so the ordering reflects what
//! synthesis would see — not the raw table bit counts.

use crate::config::ResourceConfig;
use crate::rtl;

/// A totally ordered cost key: `(BRAM36 blocks, register bits)`,
/// compared lexicographically (the derived `Ord` on the field order).
///
/// # Example
///
/// ```
/// use tsn_resource::{CostKey, ResourceConfig};
///
/// let paper = CostKey::of(&ResourceConfig::new());
/// let mut bigger = ResourceConfig::new();
/// bigger.set_class_tbl(4096)?;
/// assert!(paper < CostKey::of(&bigger));
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CostKey {
    /// BRAM36 blocks consumed by the emitted memories.
    pub bram36_blocks: u64,
    /// Register (flip-flop) bits of the emitted modules.
    pub register_bits: u64,
}

impl CostKey {
    /// Prices a configuration from the emitted-RTL memory map.
    #[must_use]
    pub fn of(cfg: &ResourceConfig) -> Self {
        CostKey {
            bram36_blocks: rtl::emitted_bram36_blocks(cfg),
            register_bits: rtl::emitted_register_bits(cfg),
        }
    }
}

impl core::fmt::Display for CostKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} BRAM36 + {} register bits",
            self.bram36_blocks, self.register_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_dominates_registers() {
        let small = CostKey {
            bram36_blocks: 2,
            register_bits: 1_000_000,
        };
        let big = CostKey {
            bram36_blocks: 3,
            register_bits: 0,
        };
        assert!(small < big, "BRAM36 is the primary key");
        let tie_a = CostKey {
            bram36_blocks: 2,
            register_bits: 10,
        };
        let tie_b = CostKey {
            bram36_blocks: 2,
            register_bits: 11,
        };
        assert!(tie_a < tie_b, "register bits break ties");
    }

    #[test]
    fn cost_is_monotone_in_every_search_knob() {
        let base = ResourceConfig::new();
        let base_cost = CostKey::of(&base);

        let mut c = base.clone();
        c.set_switch_tbl(base.unicast_size() * 2, base.multicast_size())
            .expect("valid");
        assert!(CostKey::of(&c) >= base_cost, "unicast table");

        let mut c = base.clone();
        c.set_class_tbl(base.class_size() * 2).expect("valid");
        assert!(CostKey::of(&c) >= base_cost, "class table");

        let mut c = base.clone();
        c.set_meter_tbl(base.meter_size() * 2).expect("valid");
        assert!(CostKey::of(&c) >= base_cost, "meter table");

        let mut c = base.clone();
        c.set_queues(base.queue_depth() * 2, base.queue_num(), base.port_num())
            .expect("valid");
        assert!(CostKey::of(&c) >= base_cost, "queue depth");

        let mut c = base.clone();
        c.set_buffers(base.buffer_num() * 2, base.port_num())
            .expect("valid");
        assert!(CostKey::of(&c) >= base_cost, "buffer pool");
    }
}
