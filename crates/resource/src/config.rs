//! The seven platform-independent customization APIs of Table II.
//!
//! A [`ResourceConfig`] is the "resource specification" a developer injects
//! into the fixed processing logic: table sizes, queue geometry, buffer
//! counts and port counts. Setter names and parameter order follow the
//! paper's Table II exactly.

use crate::bram::AllocationPolicy;
use tsn_types::{TsnError, TsnResult};

/// Per-entry widths (in bits) of each memory object, as used in the paper's
/// prototype (Section IV.B). Customizable for other targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryWidths {
    /// Unicast/multicast switch-table entry (dst MAC + VID → outport).
    pub switch_tbl_bits: u32,
    /// Classification-table entry (src/dst MAC + VID + PRI → meter, queue).
    pub class_tbl_bits: u32,
    /// Meter-table entry (token-bucket state).
    pub meter_tbl_bits: u32,
    /// Gate-control-list entry (open/close state per time slot).
    pub gate_tbl_bits: u32,
    /// CBS map entry (queue → shaper index).
    pub cbs_map_bits: u32,
    /// CBS entry (`idleSlope` + `sendSlope` credit rates).
    pub cbs_tbl_bits: u32,
    /// Queue metadata (packet descriptor) width.
    pub queue_meta_bits: u32,
}

impl EntryWidths {
    /// The widths of the paper's FPGA prototype: 72 b switch, 117 b
    /// classification, 68 b meter, 17 b gate, 72 b CBS map+CBS combined
    /// (8 + 64), 32 b queue metadata.
    pub const PAPER: EntryWidths = EntryWidths {
        switch_tbl_bits: 72,
        class_tbl_bits: 117,
        meter_tbl_bits: 68,
        gate_tbl_bits: 17,
        cbs_map_bits: 8,
        cbs_tbl_bits: 64,
        queue_meta_bits: 32,
    };
}

impl Default for EntryWidths {
    fn default() -> Self {
        EntryWidths::PAPER
    }
}

/// The complete memory-resource specification of one TSN switch.
///
/// Every parameter corresponds to an argument of the Table II APIs. A
/// fresh `ResourceConfig` starts from the paper's *customized ring* values
/// and is then adjusted via the setters; [`crate::baseline::bcm53154`]
/// provides the commercial reference point.
///
/// # Example
///
/// ```
/// use tsn_resource::ResourceConfig;
///
/// let mut cfg = ResourceConfig::new();
/// cfg.set_gate_tbl(2, 8, 3)?      // CQF: 2 gate entries, 8 queues, 3 ports
///    .set_queues(12, 8, 3)?       // depth 12
///    .set_buffers(96, 3)?;        // 96 buffers per port
/// assert_eq!(cfg.port_num(), 3);
/// assert_eq!(cfg.buffer_num(), 96);
/// # Ok::<(), tsn_types::TsnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResourceConfig {
    widths: EntryWidths,
    unicast_size: u32,
    multicast_size: u32,
    class_size: u32,
    meter_size: u32,
    gate_size: u32,
    queue_num: u32,
    cbs_map_size: u32,
    cbs_size: u32,
    queue_depth: u32,
    buffer_num: u32,
    port_num: u32,
}

impl ResourceConfig {
    /// Creates a configuration preloaded with the paper's customized
    /// single-port (ring) parameters: 1024-entry unicast/class/meter
    /// tables, 2-entry gate tables, 3-entry CBS tables, 8 queues of depth
    /// 12, 96 buffers, 1 port.
    #[must_use]
    pub fn new() -> Self {
        ResourceConfig {
            widths: EntryWidths::PAPER,
            unicast_size: 1024,
            multicast_size: 0,
            class_size: 1024,
            meter_size: 1024,
            gate_size: 2,
            queue_num: 8,
            cbs_map_size: 3,
            cbs_size: 3,
            queue_depth: 12,
            buffer_num: 96,
            port_num: 1,
        }
    }

    /// `set_switch_tbl(unicast_size, multicast_size)` — sizes of the
    /// unicast and multicast switch tables.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if both sizes are zero (a
    /// switch needs some forwarding state).
    pub fn set_switch_tbl(
        &mut self,
        unicast_size: u32,
        multicast_size: u32,
    ) -> TsnResult<&mut Self> {
        if unicast_size == 0 && multicast_size == 0 {
            return Err(TsnError::invalid_parameter(
                "unicast_size/multicast_size",
                "switch table cannot be empty",
            ));
        }
        self.unicast_size = unicast_size;
        self.multicast_size = multicast_size;
        Ok(self)
    }

    /// `set_class_tbl(class_size)` — size of the classification table.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if `class_size` is zero.
    pub fn set_class_tbl(&mut self, class_size: u32) -> TsnResult<&mut Self> {
        Self::require_nonzero("class_size", class_size)?;
        self.class_size = class_size;
        Ok(self)
    }

    /// `set_meter_tbl(meter_size)` — size of the meter table.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if `meter_size` is zero.
    pub fn set_meter_tbl(&mut self, meter_size: u32) -> TsnResult<&mut Self> {
        Self::require_nonzero("meter_size", meter_size)?;
        self.meter_size = meter_size;
        Ok(self)
    }

    /// `set_gate_tbl(gate_size, queue_num, port_num)` — size of each gate
    /// table (entries per GCL), queues per port and number of ports.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if any argument is zero.
    pub fn set_gate_tbl(
        &mut self,
        gate_size: u32,
        queue_num: u32,
        port_num: u32,
    ) -> TsnResult<&mut Self> {
        Self::require_nonzero("gate_size", gate_size)?;
        Self::require_nonzero("queue_num", queue_num)?;
        Self::require_nonzero("port_num", port_num)?;
        self.gate_size = gate_size;
        self.queue_num = queue_num;
        self.port_num = port_num;
        Ok(self)
    }

    /// `set_cbs_tbl(cbs_map_size, cbs_size, port_num)` — sizes of the CBS
    /// map and CBS tables, and number of ports.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if `port_num` is zero, or if
    /// `cbs_map_size` and `cbs_size` are both zero while shapers are
    /// requested elsewhere. A zero/zero pair is allowed: it disables
    /// credit-based shaping.
    pub fn set_cbs_tbl(
        &mut self,
        cbs_map_size: u32,
        cbs_size: u32,
        port_num: u32,
    ) -> TsnResult<&mut Self> {
        Self::require_nonzero("port_num", port_num)?;
        self.cbs_map_size = cbs_map_size;
        self.cbs_size = cbs_size;
        self.port_num = port_num;
        Ok(self)
    }

    /// `set_queues(queue_depth, queue_num, port_num)` — depth of each
    /// queue, queues per port and number of ports.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if any argument is zero.
    pub fn set_queues(
        &mut self,
        queue_depth: u32,
        queue_num: u32,
        port_num: u32,
    ) -> TsnResult<&mut Self> {
        Self::require_nonzero("queue_depth", queue_depth)?;
        Self::require_nonzero("queue_num", queue_num)?;
        Self::require_nonzero("port_num", port_num)?;
        self.queue_depth = queue_depth;
        self.queue_num = queue_num;
        self.port_num = port_num;
        Ok(self)
    }

    /// `set_buffers(buffer_num, port_num)` — packet buffers per port and
    /// number of ports.
    ///
    /// # Errors
    ///
    /// Returns [`TsnError::InvalidParameter`] if any argument is zero.
    pub fn set_buffers(&mut self, buffer_num: u32, port_num: u32) -> TsnResult<&mut Self> {
        Self::require_nonzero("buffer_num", buffer_num)?;
        Self::require_nonzero("port_num", port_num)?;
        self.buffer_num = buffer_num;
        self.port_num = port_num;
        Ok(self)
    }

    /// Overrides the per-entry bit widths (platform retargeting).
    pub fn set_widths(&mut self, widths: EntryWidths) -> &mut Self {
        self.widths = widths;
        self
    }

    fn require_nonzero(name: &'static str, value: u32) -> TsnResult<()> {
        if value == 0 {
            Err(TsnError::invalid_parameter(name, "must be non-zero"))
        } else {
            Ok(())
        }
    }

    // --- getters -----------------------------------------------------------

    /// Entry widths in use.
    #[must_use]
    pub fn widths(&self) -> EntryWidths {
        self.widths
    }

    /// Unicast switch-table entries.
    #[must_use]
    pub fn unicast_size(&self) -> u32 {
        self.unicast_size
    }

    /// Multicast switch-table entries.
    #[must_use]
    pub fn multicast_size(&self) -> u32 {
        self.multicast_size
    }

    /// Classification-table entries.
    #[must_use]
    pub fn class_size(&self) -> u32 {
        self.class_size
    }

    /// Meter-table entries.
    #[must_use]
    pub fn meter_size(&self) -> u32 {
        self.meter_size
    }

    /// Entries per gate control list.
    #[must_use]
    pub fn gate_size(&self) -> u32 {
        self.gate_size
    }

    /// Queues per port.
    #[must_use]
    pub fn queue_num(&self) -> u32 {
        self.queue_num
    }

    /// CBS map entries per port.
    #[must_use]
    pub fn cbs_map_size(&self) -> u32 {
        self.cbs_map_size
    }

    /// CBS entries per port.
    #[must_use]
    pub fn cbs_size(&self) -> u32 {
        self.cbs_size
    }

    /// Metadata entries per queue.
    #[must_use]
    pub fn queue_depth(&self) -> u32 {
        self.queue_depth
    }

    /// Packet buffers per port.
    #[must_use]
    pub fn buffer_num(&self) -> u32 {
        self.buffer_num
    }

    /// Enabled TSN ports.
    #[must_use]
    pub fn port_num(&self) -> u32 {
        self.port_num
    }

    // --- cost queries -------------------------------------------------------

    /// BRAM bits of the shared switch table (unicast + multicast entries).
    #[must_use]
    pub fn switch_tbl_bits(&self, policy: AllocationPolicy) -> u64 {
        policy.table_cost_bits(
            u64::from(self.unicast_size) + u64::from(self.multicast_size),
            u64::from(self.widths.switch_tbl_bits),
        )
    }

    /// BRAM bits of the shared classification table.
    #[must_use]
    pub fn class_tbl_bits(&self, policy: AllocationPolicy) -> u64 {
        policy.table_cost_bits(
            u64::from(self.class_size),
            u64::from(self.widths.class_tbl_bits),
        )
    }

    /// BRAM bits of the shared meter table.
    #[must_use]
    pub fn meter_tbl_bits(&self, policy: AllocationPolicy) -> u64 {
        policy.table_cost_bits(
            u64::from(self.meter_size),
            u64::from(self.widths.meter_tbl_bits),
        )
    }

    /// BRAM bits of all gate tables: one In-GCL and one Out-GCL per port.
    #[must_use]
    pub fn gate_tbl_bits(&self, policy: AllocationPolicy) -> u64 {
        let per_table = policy.table_cost_bits(
            u64::from(self.gate_size),
            u64::from(self.widths.gate_tbl_bits),
        );
        (2 * u64::from(self.port_num)).saturating_mul(per_table)
    }

    /// BRAM bits of all CBS map + CBS tables (both per port).
    #[must_use]
    pub fn cbs_tbl_bits(&self, policy: AllocationPolicy) -> u64 {
        let map = policy.table_cost_bits(
            u64::from(self.cbs_map_size),
            u64::from(self.widths.cbs_map_bits),
        );
        let cbs = policy.table_cost_bits(
            u64::from(self.cbs_size),
            u64::from(self.widths.cbs_tbl_bits),
        );
        u64::from(self.port_num).saturating_mul(map.saturating_add(cbs))
    }

    /// BRAM bits of all metadata queues (`queue_num` per port).
    #[must_use]
    pub fn queue_bits(&self, policy: AllocationPolicy) -> u64 {
        let per_queue = policy.table_cost_bits(
            u64::from(self.queue_depth),
            u64::from(self.widths.queue_meta_bits),
        );
        (u64::from(self.port_num) * u64::from(self.queue_num)).saturating_mul(per_queue)
    }

    /// BRAM bits of all per-port packet-buffer pools.
    #[must_use]
    pub fn buffer_bits(&self, policy: AllocationPolicy) -> u64 {
        u64::from(self.port_num)
            .saturating_mul(policy.buffer_pool_cost_bits(u64::from(self.buffer_num)))
    }

    /// Total BRAM bits of the whole switch under `policy`. Saturates at
    /// `u64::MAX` instead of wrapping on absurd configurations.
    #[must_use]
    pub fn total_bits(&self, policy: AllocationPolicy) -> u64 {
        self.switch_tbl_bits(policy)
            .saturating_add(self.class_tbl_bits(policy))
            .saturating_add(self.meter_tbl_bits(policy))
            .saturating_add(self.gate_tbl_bits(policy))
            .saturating_add(self.cbs_tbl_bits(policy))
            .saturating_add(self.queue_bits(policy))
            .saturating_add(self.buffer_bits(policy))
    }
}

impl Default for ResourceConfig {
    fn default() -> Self {
        ResourceConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bram::KB_BITS;

    #[test]
    fn setters_follow_table_ii_signatures_and_chain() {
        let mut cfg = ResourceConfig::new();
        cfg.set_switch_tbl(16 * 1024, 0)
            .expect("valid")
            .set_class_tbl(1024)
            .expect("valid")
            .set_meter_tbl(512)
            .expect("valid")
            .set_gate_tbl(2, 8, 4)
            .expect("valid")
            .set_cbs_tbl(8, 8, 4)
            .expect("valid")
            .set_queues(16, 8, 4)
            .expect("valid")
            .set_buffers(128, 4)
            .expect("valid");
        assert_eq!(cfg.unicast_size(), 16 * 1024);
        assert_eq!(cfg.meter_size(), 512);
        assert_eq!(cfg.queue_depth(), 16);
        assert_eq!(cfg.port_num(), 4);
    }

    #[test]
    fn setters_reject_zero_where_it_is_meaningless() {
        let mut cfg = ResourceConfig::new();
        assert!(cfg.set_switch_tbl(0, 0).is_err());
        assert!(cfg.set_switch_tbl(0, 16).is_ok(), "multicast-only is fine");
        assert!(cfg.set_class_tbl(0).is_err());
        assert!(cfg.set_meter_tbl(0).is_err());
        assert!(cfg.set_gate_tbl(0, 8, 1).is_err());
        assert!(cfg.set_gate_tbl(2, 0, 1).is_err());
        assert!(cfg.set_gate_tbl(2, 8, 0).is_err());
        assert!(cfg.set_cbs_tbl(0, 0, 1).is_ok(), "shaping may be disabled");
        assert!(cfg.set_cbs_tbl(3, 3, 0).is_err());
        assert!(cfg.set_queues(0, 8, 1).is_err());
        assert!(cfg.set_buffers(0, 1).is_err());
    }

    #[test]
    fn per_resource_costs_match_table_iii_commercial_column() {
        let cfg = crate::baseline::bcm53154();
        let p = AllocationPolicy::PaperAccounting;
        assert_eq!(cfg.switch_tbl_bits(p), 1152 * KB_BITS);
        assert_eq!(cfg.class_tbl_bits(p), 126 * KB_BITS);
        assert_eq!(cfg.meter_tbl_bits(p), 36 * KB_BITS);
        assert_eq!(cfg.gate_tbl_bits(p), 144 * KB_BITS);
        assert_eq!(cfg.cbs_tbl_bits(p), 144 * KB_BITS);
        assert_eq!(cfg.queue_bits(p), 576 * KB_BITS);
        assert_eq!(cfg.buffer_bits(p), 8640 * KB_BITS);
        assert_eq!(cfg.total_bits(p), 10_818 * KB_BITS);
    }

    #[test]
    fn default_config_is_the_customized_ring_column() {
        let cfg = ResourceConfig::new();
        let p = AllocationPolicy::PaperAccounting;
        assert_eq!(cfg.total_bits(p), 2106 * KB_BITS);
        assert_eq!(cfg, ResourceConfig::default());
    }

    #[test]
    fn port_scaling_is_linear_for_per_port_resources() {
        let mut one = ResourceConfig::new();
        one.set_gate_tbl(2, 8, 1).expect("valid");
        let mut three = one.clone();
        three
            .set_gate_tbl(2, 8, 3)
            .expect("valid")
            .set_cbs_tbl(3, 3, 3)
            .expect("valid")
            .set_queues(12, 8, 3)
            .expect("valid")
            .set_buffers(96, 3)
            .expect("valid");
        let p = AllocationPolicy::PaperAccounting;
        assert_eq!(three.gate_tbl_bits(p), 3 * one.gate_tbl_bits(p));
        assert_eq!(three.queue_bits(p), 3 * one.queue_bits(p));
        assert_eq!(three.buffer_bits(p), 3 * one.buffer_bits(p));
        // Shared tables do not scale with ports.
        assert_eq!(three.switch_tbl_bits(p), one.switch_tbl_bits(p));
    }

    #[test]
    fn custom_widths_change_costs() {
        let mut cfg = ResourceConfig::new();
        let mut wide = EntryWidths::PAPER;
        wide.class_tbl_bits = 234; // double width
        cfg.set_widths(wide);
        let p = AllocationPolicy::ExactBits;
        assert_eq!(cfg.class_tbl_bits(p), 1024 * 234);
    }

    #[test]
    fn multicast_entries_share_the_switch_table() {
        let mut cfg = ResourceConfig::new();
        cfg.set_switch_tbl(512, 512).expect("valid");
        let p = AllocationPolicy::ExactBits;
        assert_eq!(cfg.switch_tbl_bits(p), 1024 * 72);
    }
}
