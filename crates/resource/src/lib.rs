//! On-chip memory resource abstraction — the heart of TSN-Builder.
//!
//! The paper decouples *what a switch does* (five fixed function templates)
//! from *how much memory each part gets* (tables, queues, packet buffers).
//! This crate implements that second half:
//!
//! * [`bram`] — the FPGA block-RAM cost model with selectable
//!   [`bram::AllocationPolicy`]s, including the accounting that reproduces
//!   the paper's Table I and Table III bit-for-bit;
//! * [`config`] — [`ResourceConfig`] with the seven platform-independent
//!   customization APIs of Table II (`set_switch_tbl`, `set_class_tbl`,
//!   `set_meter_tbl`, `set_gate_tbl`, `set_cbs_tbl`, `set_queues`,
//!   `set_buffers`);
//! * [`cost`] — [`CostKey`], the `(BRAM36 blocks, register bits)`
//!   lexicographic ordering that design-space search (`tsn-dse`)
//!   minimizes;
//! * [`report`] — [`UsageReport`], a Table III-style per-resource BRAM
//!   breakdown with reduction percentages;
//! * [`view`] — [`ResourceView`], the per-component memory map of
//!   Fig. 4;
//! * [`baseline`] — the Broadcom BCM53154 reference configuration the
//!   paper compares against;
//! * [`rtl`] — the emitted-RTL memory-map contract: an independent,
//!   config-only prediction of every memory instance and register bit
//!   the `tsn-hdl` generator emits, which the parsed-HDL cost model
//!   must match bit-exactly.
//!
//! # Example
//!
//! ```
//! use tsn_resource::{baseline, ResourceConfig, UsageReport, AllocationPolicy};
//!
//! // The paper's customized ring configuration (Table III, last column).
//! let mut custom = ResourceConfig::new();
//! custom
//!     .set_switch_tbl(1024, 0)?
//!     .set_class_tbl(1024)?
//!     .set_meter_tbl(1024)?
//!     .set_gate_tbl(2, 8, 1)?
//!     .set_cbs_tbl(3, 3, 1)?
//!     .set_queues(12, 8, 1)?
//!     .set_buffers(96, 1)?;
//!
//! let commercial = UsageReport::of(&baseline::bcm53154(), AllocationPolicy::PaperAccounting);
//! let customized = UsageReport::of(&custom, AllocationPolicy::PaperAccounting);
//! assert_eq!(commercial.total_kb(), 10_818.0);
//! assert_eq!(customized.total_kb(), 2_106.0);
//! // The headline result: −80.53 % on-chip memory.
//! assert!((customized.reduction_vs(&commercial) - 80.53).abs() < 0.005);
//! # Ok::<(), tsn_types::TsnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod bram;
pub mod config;
pub mod cost;
pub mod report;
pub mod rtl;
pub mod view;

pub use bram::AllocationPolicy;
pub use config::ResourceConfig;
pub use cost::CostKey;
pub use report::{ResourceRow, UsageReport};
pub use rtl::EmittedMemory;
pub use view::{ComponentView, MemoryObject, ResourceView};
