//! Table III-style usage reports.

use crate::bram::{format_kb, AllocationPolicy, KB_BITS};
use crate::config::ResourceConfig;
use core::fmt;

/// One row of a usage report (one resource category).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResourceRow {
    /// Resource name as printed in Table III (e.g. `"Gate Tbl"`).
    pub name: String,
    /// The API parameters, rendered the way the paper prints them
    /// (e.g. `"2, 8, 4"`).
    pub parameters: String,
    /// BRAM cost in bits under the report's policy.
    pub bits: u64,
}

impl ResourceRow {
    /// The cost in the paper's Kb units.
    #[must_use]
    pub fn kb(&self) -> f64 {
        self.bits as f64 / KB_BITS as f64
    }
}

/// A per-resource BRAM breakdown of one [`ResourceConfig`] — the data
/// behind one column of the paper's Table III.
///
/// # Example
///
/// ```
/// use tsn_resource::{baseline, UsageReport, AllocationPolicy};
///
/// let report = UsageReport::of(&baseline::bcm53154(), AllocationPolicy::PaperAccounting);
/// assert_eq!(report.total_kb(), 10_818.0);
/// assert_eq!(report.rows().len(), 7);
/// println!("{report}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UsageReport {
    policy: AllocationPolicy,
    rows: Vec<ResourceRow>,
}

impl UsageReport {
    /// Computes the report for `config` under `policy`.
    #[must_use]
    pub fn of(config: &ResourceConfig, policy: AllocationPolicy) -> Self {
        let rows = vec![
            ResourceRow {
                name: "Switch Tbl".to_owned(),
                parameters: format!("{}, {}", config.unicast_size(), config.multicast_size()),
                bits: config.switch_tbl_bits(policy),
            },
            ResourceRow {
                name: "Class. Tbl".to_owned(),
                parameters: format!("{}", config.class_size()),
                bits: config.class_tbl_bits(policy),
            },
            ResourceRow {
                name: "Meter Tbl".to_owned(),
                parameters: format!("{}", config.meter_size()),
                bits: config.meter_tbl_bits(policy),
            },
            ResourceRow {
                name: "Gate Tbl".to_owned(),
                parameters: format!(
                    "{}, {}, {}",
                    config.gate_size(),
                    config.queue_num(),
                    config.port_num()
                ),
                bits: config.gate_tbl_bits(policy),
            },
            ResourceRow {
                name: "CBS Tbl".to_owned(),
                parameters: format!(
                    "{}, {}, {}",
                    config.cbs_map_size(),
                    config.cbs_size(),
                    config.port_num()
                ),
                bits: config.cbs_tbl_bits(policy),
            },
            ResourceRow {
                name: "Queues".to_owned(),
                parameters: format!(
                    "{}, {}, {}",
                    config.queue_depth(),
                    config.queue_num(),
                    config.port_num()
                ),
                bits: config.queue_bits(policy),
            },
            ResourceRow {
                name: "Buffers".to_owned(),
                parameters: format!("{}, {}", config.buffer_num(), config.port_num()),
                bits: config.buffer_bits(policy),
            },
        ];
        UsageReport { policy, rows }
    }

    /// The allocation policy the report was computed under.
    #[must_use]
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// The seven resource rows, in Table III order.
    #[must_use]
    pub fn rows(&self) -> &[ResourceRow] {
        &self.rows
    }

    /// Looks up one row by its Table III name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&ResourceRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Total BRAM bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.rows.iter().map(|r| r.bits).sum()
    }

    /// Total in the paper's Kb units.
    #[must_use]
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / KB_BITS as f64
    }

    /// Percentage reduction of this report relative to `baseline`
    /// (positive when this report is smaller). The paper's headline
    /// figures are 46.59 % / 63.56 % / 80.53 %.
    #[must_use]
    pub fn reduction_vs(&self, baseline: &UsageReport) -> f64 {
        let base = baseline.total_bits() as f64;
        if base == 0.0 {
            return 0.0;
        }
        (1.0 - self.total_bits() as f64 / base) * 100.0
    }
}

impl fmt::Display for UsageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:<14} {:>10}   (policy: {})",
            "Resource", "Parameters", "BRAMs", self.policy
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<12} {:<14} {:>10}",
                row.name,
                row.parameters,
                format_kb(row.bits)
            )?;
        }
        write!(
            f,
            "{:<12} {:<14} {:>10}",
            "Total",
            "",
            format_kb(self.total_bits())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;

    fn customized(ports: u32) -> ResourceConfig {
        let mut cfg = ResourceConfig::new();
        cfg.set_switch_tbl(1024, 0)
            .expect("valid")
            .set_class_tbl(1024)
            .expect("valid")
            .set_meter_tbl(1024)
            .expect("valid")
            .set_gate_tbl(2, 8, ports)
            .expect("valid")
            .set_cbs_tbl(3, 3, ports)
            .expect("valid")
            .set_queues(12, 8, ports)
            .expect("valid")
            .set_buffers(96, ports)
            .expect("valid");
        cfg
    }

    #[test]
    fn table_iii_all_four_columns() {
        let policy = AllocationPolicy::PaperAccounting;
        let commercial = UsageReport::of(&baseline::bcm53154(), policy);
        assert_eq!(commercial.total_kb(), 10_818.0);

        let star = UsageReport::of(&customized(3), policy);
        assert_eq!(star.total_kb(), 5_778.0);
        assert!((star.reduction_vs(&commercial) - 46.59).abs() < 0.005);

        let linear = UsageReport::of(&customized(2), policy);
        assert_eq!(linear.total_kb(), 3_942.0);
        assert!((linear.reduction_vs(&commercial) - 63.56).abs() < 0.005);

        let ring = UsageReport::of(&customized(1), policy);
        assert_eq!(ring.total_kb(), 2_106.0);
        assert!((ring.reduction_vs(&commercial) - 80.53).abs() < 0.005);
    }

    #[test]
    fn table_iii_per_row_values_for_star() {
        let report = UsageReport::of(&customized(3), AllocationPolicy::PaperAccounting);
        let expect = [
            ("Switch Tbl", 72.0),
            ("Class. Tbl", 126.0),
            ("Meter Tbl", 72.0),
            ("Gate Tbl", 108.0),
            ("CBS Tbl", 108.0),
            ("Queues", 432.0),
            ("Buffers", 4860.0),
        ];
        for (name, kb) in expect {
            let row = report.row(name).unwrap_or_else(|| panic!("{name} row"));
            assert_eq!(row.kb(), kb, "{name}");
        }
    }

    #[test]
    fn parameters_render_like_the_paper() {
        let report = UsageReport::of(&baseline::bcm53154(), AllocationPolicy::PaperAccounting);
        assert_eq!(
            report.row("Switch Tbl").expect("row").parameters,
            "16384, 0"
        );
        assert_eq!(report.row("Gate Tbl").expect("row").parameters, "2, 8, 4");
        assert_eq!(report.row("Queues").expect("row").parameters, "16, 8, 4");
        assert_eq!(report.row("Buffers").expect("row").parameters, "128, 4");
    }

    #[test]
    fn display_contains_total_and_all_rows() {
        let report = UsageReport::of(&baseline::bcm53154(), AllocationPolicy::PaperAccounting);
        let text = report.to_string();
        assert!(text.contains("10818Kb"));
        assert!(text.contains("Gate Tbl"));
        assert!(text.contains("Total"));
    }

    #[test]
    fn reduction_vs_zero_baseline_is_zero() {
        let report = UsageReport::of(&baseline::bcm53154(), AllocationPolicy::PaperAccounting);
        let zero = UsageReport {
            policy: AllocationPolicy::PaperAccounting,
            rows: vec![],
        };
        assert_eq!(report.reduction_vs(&zero), 0.0);
    }

    #[test]
    fn exact_policy_totals_are_below_paper_policy() {
        let cfg = baseline::bcm53154();
        let paper = UsageReport::of(&cfg, AllocationPolicy::PaperAccounting);
        let exact = UsageReport::of(&cfg, AllocationPolicy::ExactBits);
        assert!(exact.total_bits() < paper.total_bits());
    }
}
