//! The emitted-RTL memory-map contract.
//!
//! `tsn-hdl` turns a [`ResourceConfig`] into Verilog; this module is the
//! *independent* prediction of what that Verilog contains — every memory
//! instance (hierarchical path, entry count, width) and every register
//! bit — written purely in terms of the config, with no HDL types in
//! sight. `tsn_hdl::cost` elaborates the parsed Verilog and must agree
//! with these functions bit-exactly (the `hdl-cost-agreement` oracle in
//! `tsn-verify`); the tests below tie the same numbers back to the
//! Table III cost queries, closing config → RTL → cost into one loop.
//!
//! Deliberate deltas from the paper's accounting, encoded here so both
//! sides agree *exactly* rather than approximately:
//!
//! * the switch table is split into two physical RAMs (unicast and
//!   multicast), each clamped to at least one entry so the RTL always
//!   elaborates — the paper costs the combined entry count;
//! * the egress scheduler adds a per-queue CBS map RAM (`queue_num`
//!   entries, not `cbs_map_size`) and a 32-bit credit array per shaper;
//! * packet buffers live off-chip of the generated modules and have no
//!   RTL counterpart.
//!
//! All widths in [`crate::config::EntryWidths`] are assumed ≥ 1: a
//! zero-width field would emit a degenerate `[0-1:0]` range that Verilog
//! reads as two bits, so the generator never ships one.

use crate::bram::{AllocationPolicy, BRAM18_BITS, BRAM36_BITS};
use crate::config::ResourceConfig;

/// One predicted memory instance of the emitted design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmittedMemory {
    /// Hierarchical path below `tsn_switch_top`, matching the generated
    /// instance names (e.g. `u_gate_ctrl0.u_queue3.mem`).
    pub path: String,
    /// Module that declares the memory.
    pub module: &'static str,
    /// Declared memory name.
    pub memory: &'static str,
    /// Entry count (depth).
    pub entries: u64,
    /// Entry width in bits.
    pub width_bits: u64,
}

impl EmittedMemory {
    /// Raw payload bits (`entries * width`).
    #[must_use]
    pub fn raw_bits(&self) -> u64 {
        self.entries.saturating_mul(self.width_bits)
    }
}

fn clog2(value: u32) -> u32 {
    32 - value.max(1).next_power_of_two().leading_zeros() - 1
}

fn addr_width(depth: u32) -> u32 {
    clog2(depth).max(1)
}

/// Every memory instance the generated design elaborates for `cfg`, in
/// hierarchy order.
#[must_use]
pub fn emitted_memories(cfg: &ResourceConfig) -> Vec<EmittedMemory> {
    let w = cfg.widths();
    let sw = u64::from(w.switch_tbl_bits);
    let ports = cfg.port_num().max(1);
    let queues = cfg.queue_num().max(1);
    let cbs = u64::from(cfg.cbs_size().max(1));
    let mut mems = vec![
        EmittedMemory {
            path: "u_packet_switch.u_unicast_tbl.mem".to_owned(),
            module: "dpram",
            memory: "mem",
            entries: u64::from(cfg.unicast_size().max(1)),
            width_bits: sw,
        },
        EmittedMemory {
            path: "u_packet_switch.u_multicast_tbl.mem".to_owned(),
            module: "dpram",
            memory: "mem",
            entries: u64::from(cfg.multicast_size().max(1)),
            width_bits: sw,
        },
        EmittedMemory {
            path: "u_ingress_filter.u_class_tbl.mem".to_owned(),
            module: "dpram",
            memory: "mem",
            entries: u64::from(cfg.class_size().max(1)),
            width_bits: u64::from(w.class_tbl_bits),
        },
        EmittedMemory {
            path: "u_ingress_filter.meter_tbl".to_owned(),
            module: "ingress_filter",
            memory: "meter_tbl",
            entries: u64::from(cfg.meter_size().max(1)),
            width_bits: u64::from(w.meter_tbl_bits),
        },
    ];
    for p in 0..ports {
        for gcl in ["in_gcl", "out_gcl"] {
            mems.push(EmittedMemory {
                path: format!("u_gate_ctrl{p}.{gcl}"),
                module: "gate_ctrl",
                memory: if gcl == "in_gcl" { "in_gcl" } else { "out_gcl" },
                entries: u64::from(cfg.gate_size().max(1)),
                width_bits: u64::from(w.gate_tbl_bits),
            });
        }
        for q in 0..queues {
            mems.push(EmittedMemory {
                path: format!("u_gate_ctrl{p}.u_queue{q}.mem"),
                module: "meta_fifo",
                memory: "mem",
                entries: u64::from(cfg.queue_depth().max(1)),
                width_bits: u64::from(w.queue_meta_bits),
            });
        }
        mems.push(EmittedMemory {
            path: format!("u_egress_sched{p}.cbs_map_tbl"),
            module: "egress_sched",
            memory: "cbs_map_tbl",
            entries: u64::from(queues),
            width_bits: u64::from(w.cbs_map_bits),
        });
        mems.push(EmittedMemory {
            path: format!("u_egress_sched{p}.cbs_tbl"),
            module: "egress_sched",
            memory: "cbs_tbl",
            entries: cbs,
            width_bits: u64::from(w.cbs_tbl_bits),
        });
        mems.push(EmittedMemory {
            path: format!("u_egress_sched{p}.credit"),
            module: "egress_sched",
            memory: "credit",
            entries: cbs,
            width_bits: 32,
        });
    }
    mems
}

/// Total table bits of the emitted design under `policy` (each memory
/// instance costed independently).
#[must_use]
pub fn emitted_table_bits(cfg: &ResourceConfig, policy: AllocationPolicy) -> u64 {
    emitted_memories(cfg).iter().fold(0u64, |acc, m| {
        acc.saturating_add(policy.table_cost_bits(m.entries, m.width_bits))
    })
}

/// 18 Kb BRAM primitives the emitted design needs, each memory rounded
/// up independently.
#[must_use]
pub fn emitted_bram18_blocks(cfg: &ResourceConfig) -> u64 {
    emitted_memories(cfg).iter().fold(0u64, |acc, m| {
        acc.saturating_add(m.raw_bits().div_ceil(BRAM18_BITS))
    })
}

/// 36 Kb BRAM blocks the emitted design needs, each memory rounded up
/// independently.
#[must_use]
pub fn emitted_bram36_blocks(cfg: &ResourceConfig) -> u64 {
    emitted_memories(cfg).iter().fold(0u64, |acc, m| {
        acc.saturating_add(m.raw_bits().div_ceil(BRAM36_BITS))
    })
}

/// Register bits of the emitted design (plain `reg`s plus `output reg`
/// ports, testbench excluded), mirroring the templates:
///
/// * `time_sync`: 3×64-bit time/offset registers + 32-bit rate = 224;
/// * `packet_switch`: `hit` (1) + `out_port` (4), plus the two table
///   RAMs' registered read ports (`switch_tbl_bits` each);
/// * `ingress_filter`: `accept` (1) + `queue_id` (3) + `tokens` (32),
///   plus the class RAM's registered read port (`class_tbl_bits`);
/// * per port: `grant_onehot` (`queue_num`) in the scheduler, and per
///   queue a FIFO with a `queue_meta_bits` output register and two
///   `addr_width(queue_depth)+1`-bit pointers.
#[must_use]
pub fn emitted_register_bits(cfg: &ResourceConfig) -> u64 {
    let w = cfg.widths();
    let ports = u64::from(cfg.port_num().max(1));
    let queues = u64::from(cfg.queue_num().max(1));
    let fifo_ptr = u64::from(addr_width(cfg.queue_depth().max(1))) + 1;
    let per_fifo = u64::from(w.queue_meta_bits) + 2 * fifo_ptr;
    let time_sync = 64 + 64 + 64 + 32;
    let packet_switch = 1 + 4 + 2 * u64::from(w.switch_tbl_bits);
    let ingress_filter = 1 + 3 + 32 + u64::from(w.class_tbl_bits);
    let per_port = queues + queues.saturating_mul(per_fifo);
    time_sync + packet_switch + ingress_filter + ports.saturating_mul(per_port)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bram::KB_BITS;

    #[test]
    fn gate_queue_class_meter_groups_match_the_cost_queries() {
        for cfg in [ResourceConfig::new(), crate::baseline::bcm53154()] {
            for policy in AllocationPolicy::ALL {
                let mems = emitted_memories(&cfg);
                let group = |pred: &dyn Fn(&EmittedMemory) -> bool| {
                    mems.iter().filter(|m| pred(m)).fold(0u64, |acc, m| {
                        acc + policy.table_cost_bits(m.entries, m.width_bits)
                    })
                };
                assert_eq!(
                    group(&|m| m.path.contains("u_class_tbl")),
                    cfg.class_tbl_bits(policy)
                );
                assert_eq!(
                    group(&|m| m.memory == "meter_tbl"),
                    cfg.meter_tbl_bits(policy)
                );
                assert_eq!(
                    group(&|m| m.memory == "in_gcl" || m.memory == "out_gcl"),
                    cfg.gate_tbl_bits(policy)
                );
                assert_eq!(
                    group(&|m| m.path.contains(".u_queue")),
                    cfg.queue_bits(policy)
                );
                // The split switch table can only cost more than the
                // paper's combined figure.
                assert!(
                    group(&|m| m.path.starts_with("u_packet_switch."))
                        >= cfg.switch_tbl_bits(policy)
                );
            }
        }
    }

    #[test]
    fn default_memory_map_has_the_expected_shape() {
        let cfg = ResourceConfig::new();
        let mems = emitted_memories(&cfg);
        // 4 shared + 1 port × (2 GCLs + 8 queues + 3 CBS-side arrays).
        assert_eq!(mems.len(), 4 + 2 + 8 + 3);
        let unicast = &mems[0];
        assert_eq!(unicast.path, "u_packet_switch.u_unicast_tbl.mem");
        assert_eq!(unicast.entries, 1024);
        assert_eq!(unicast.width_bits, 72);
        assert_eq!(unicast.raw_bits(), 1024 * 72);
        // The disabled multicast table still elaborates one entry.
        assert_eq!(mems[1].entries, 1);
    }

    #[test]
    fn commercial_baseline_scales_per_port_structures() {
        let cfg = crate::baseline::bcm53154();
        let mems = emitted_memories(&cfg);
        let gcls = mems.iter().filter(|m| m.memory == "in_gcl").count();
        assert_eq!(gcls as u32, cfg.port_num());
        let queues = mems.iter().filter(|m| m.path.contains(".u_queue")).count();
        assert_eq!(queues as u32, cfg.port_num() * cfg.queue_num());
    }

    #[test]
    fn block_counts_round_per_instance() {
        let cfg = ResourceConfig::new();
        // Paper accounting is exactly BRAM18 blocks × 18 Kb for tables.
        assert_eq!(
            emitted_table_bits(&cfg, AllocationPolicy::PaperAccounting),
            emitted_bram18_blocks(&cfg) * BRAM18_BITS
        );
        assert_eq!(
            emitted_table_bits(&cfg, AllocationPolicy::Bram36),
            emitted_bram36_blocks(&cfg) * BRAM36_BITS
        );
        // Exact bits are bounded by both rounded figures.
        assert!(
            emitted_table_bits(&cfg, AllocationPolicy::ExactBits)
                <= emitted_table_bits(&cfg, AllocationPolicy::PaperAccounting)
        );
    }

    #[test]
    fn register_bits_track_the_config() {
        let cfg = ResourceConfig::new();
        // 224 + (5 + 144) + (36 + 117) + 1×(8 + 8×(32 + 2×5)) = 870.
        assert_eq!(emitted_register_bits(&cfg), 870);
        let mut wide = ResourceConfig::new();
        wide.set_queues(1024, 8, 2).expect("valid");
        // Deeper queues widen the FIFO pointers; more ports add whole
        // per-port register sets.
        assert!(emitted_register_bits(&wide) > emitted_register_bits(&cfg));
    }

    #[test]
    fn table_costs_stay_in_paper_units() {
        let cfg = ResourceConfig::new();
        assert!(emitted_table_bits(&cfg, AllocationPolicy::PaperAccounting).is_multiple_of(KB_BITS));
    }
}
