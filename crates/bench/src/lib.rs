//! Benchmarks for the TSN-Builder reproduction, one per paper
//! table/figure plus ablations — built on a small self-contained harness
//! (the workspace builds offline, so criterion is not available).
//!
//! Run `cargo bench --workspace`. Groups map to the paper's artifacts:
//!
//! * `benches/resources.rs` — Table I / Table III accounting plus the
//!   BRAM allocation-policy ablation;
//! * `benches/templates.rs` — per-template datapath costs (lookup,
//!   classification, gate control, scheduling) and HDL emission;
//! * `benches/planning.rs` — CQF slot planning, ITP strategies, the full
//!   derivation pipeline;
//! * `benches/simulation.rs` — end-to-end network runs behind Fig. 2 and
//!   Fig. 7;
//! * `benches/sweep.rs` — scenario-sweep scaling: one Fig. 7-style
//!   8-scenario sweep at 1/2/4/… workers, reporting the speedup.
//!
//! Filter by substring like criterion: `cargo bench -p tsn-bench --bench
//! planning -- itp` runs only benchmarks whose name contains `itp`.
//! `TSN_BENCH_MS` (default 200) sets the per-benchmark time budget.

use std::time::Instant;

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Samples taken.
    pub samples: usize,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's time per iteration, nanoseconds.
    pub min_ns: f64,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
}

/// Formats nanoseconds human-readably (ns/µs/ms/s).
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// The benchmark runner: name filtering (positional CLI args, substring
/// match, as with criterion) and a per-benchmark time budget.
pub struct Runner {
    filters: Vec<String>,
    budget_ms: u64,
}

impl Runner {
    /// A runner configured from the process arguments (skipping `--…`
    /// flags cargo passes through) and `TSN_BENCH_MS`.
    #[must_use]
    pub fn from_env() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        let budget_ms = std::env::var("TSN_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Runner { filters, budget_ms }
    }

    /// The per-benchmark time budget in milliseconds (`TSN_BENCH_MS`).
    #[must_use]
    pub fn budget_ms(&self) -> u64 {
        self.budget_ms
    }

    /// Whether `name` passes the CLI filter.
    #[must_use]
    pub fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Measures `f`, prints one result line, and returns the measurement
    /// (`None` when filtered out).
    ///
    /// The closure runs a calibration pass first, then `samples` batches
    /// sized to fit the time budget; the median batch is the headline
    /// number, so one slow outlier (page fault, scheduler blip) does not
    /// skew the result.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Option<BenchResult> {
        if !self.selected(name) {
            return None;
        }
        // Calibration: how long does one call take?
        let calibration_start = Instant::now();
        std::hint::black_box(f());
        let one = calibration_start.elapsed().as_nanos().max(1) as u64;

        let budget_ns = self.budget_ms * 1_000_000;
        const SAMPLES: usize = 10;
        let iters = (budget_ns / SAMPLES as u64 / one).clamp(1, 1_000_000);

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let result = BenchResult {
            name: name.to_owned(),
            iters_per_sample: iters,
            samples: SAMPLES,
            median_ns: per_iter_ns[SAMPLES / 2],
            min_ns: per_iter_ns[0],
            mean_ns: per_iter_ns.iter().sum::<f64>() / SAMPLES as f64,
        };
        println!(
            "{:<44} median {:>10}  min {:>10}  ({} x {} iters)",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.min_ns),
            result.samples,
            result.iters_per_sample,
        );
        Some(result)
    }

    /// Times a single call of `f` (no batching) — for long-running
    /// benchmarks like whole sweeps where one run is the sample.
    pub fn time_once<R>(&self, mut f: impl FnMut() -> R) -> (f64, R) {
        let start = Instant::now();
        let value = f();
        (start.elapsed().as_nanos() as f64, value)
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_matches_substrings() {
        let runner = Runner {
            filters: vec!["itp".into()],
            budget_ms: 1,
        };
        assert!(runner.selected("itp/greedy"));
        assert!(runner.selected("scaling_itp_1024"));
        assert!(!runner.selected("cqf/choose_slot"));
        let all = Runner {
            filters: vec![],
            budget_ms: 1,
        };
        assert!(all.selected("anything"));
    }

    #[test]
    fn bench_measures_and_reports() {
        let runner = Runner {
            filters: vec![],
            budget_ms: 5,
        };
        let mut calls = 0u64;
        let result = runner
            .bench("selftest/counter", || {
                calls += 1;
                calls
            })
            .expect("not filtered");
        assert!(calls > result.samples as u64, "calibration + samples ran");
        assert!(result.median_ns > 0.0);
        assert!(result.min_ns <= result.median_ns);
    }

    #[test]
    fn formatting_picks_sane_units() {
        assert_eq!(fmt_ns(12.0), "12.0ns");
        assert_eq!(fmt_ns(12_500.0), "12.50us");
        assert_eq!(fmt_ns(12_500_000.0), "12.50ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50s");
    }
}
