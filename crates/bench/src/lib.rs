//! Criterion benchmarks for the TSN-Builder reproduction.
//!
//! Run `cargo bench --workspace`. Groups map to the paper's artifacts:
//!
//! * `benches/resources.rs` — Table I / Table III accounting plus the
//!   BRAM allocation-policy ablation;
//! * `benches/templates.rs` — per-template datapath costs (lookup,
//!   classification, gate control, scheduling) and HDL emission;
//! * `benches/planning.rs` — CQF slot planning, ITP strategies, the full
//!   derivation pipeline;
//! * `benches/simulation.rs` — end-to-end network runs behind Fig. 2 and
//!   Fig. 7.
