//! One-off profiling harness for the sharded engine: phase timings and
//! `ShardOverhead` counters on the BENCH_5 scenarios. Not a bench —
//! run it directly when hunting coordination overhead:
//! `cargo run --release -p tsn-bench --example shard_profile`

use std::time::Instant;
use tsn_builder::AppRequirements;
use tsn_sim::network::{Network, SimConfig, SyncSetup};
use tsn_topology::presets;
use tsn_types::{FlowMap, FlowSet, SimDuration};

fn scenario(
    label: &str,
) -> (
    tsn_topology::Topology,
    FlowSet,
    SimConfig,
    FlowMap<SimDuration>,
) {
    let (topo, ts) = match label {
        "ring12" => (presets::ring(12, 6).expect("topology builds"), 96),
        _ => (presets::star(8, 8).expect("topology builds"), 64),
    };
    let flows = tsn_builder::workloads::iec60802_ts_flows(&topo, ts, 42).expect("workload builds");
    let req = AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
        .expect("valid requirements");
    let derived =
        tsn_builder::derive::derive_parameters(&req, &tsn_builder::derive::DeriveOptions::paper())
            .expect("derivation succeeds");
    let mut config = SimConfig::paper_defaults();
    config.duration = SimDuration::from_millis(10);
    config.drain = SimDuration::from_millis(5);
    config.sync = SyncSetup::Perfect;
    config.slot = derived.cqf.slot;
    config.resources = derived.resources;
    config.aggregate_switch_tbl = derived.aggregate_switch_tbl;
    (topo, flows, config, derived.itp.offsets)
}

fn main() {
    for label in ["ring12", "star8"] {
        let (topo, flows, base, offsets) = scenario(label);
        let t0 = Instant::now();
        let net = Network::build(topo.clone(), flows.clone(), &offsets, base.clone())
            .expect("network builds");
        let build = t0.elapsed();
        let mut serial_t = std::time::Duration::MAX;
        let mut serial = net.run();
        for _ in 0..5 {
            let net = Network::build(topo.clone(), flows.clone(), &offsets, base.clone())
                .expect("network builds");
            let t0 = Instant::now();
            serial = net.run();
            serial_t = serial_t.min(t0.elapsed());
        }
        println!(
            "{label}: build {build:?} serial {serial_t:?} ({} events)",
            serial.events_processed
        );
        for shards in [2usize, 4] {
            let mut config = base.clone();
            config.shards = shards;
            let mut run_t = std::time::Duration::MAX;
            let mut report = Network::build(topo.clone(), flows.clone(), &offsets, config.clone())
                .expect("network builds")
                .run();
            for _ in 0..5 {
                let net = Network::build(topo.clone(), flows.clone(), &offsets, config.clone())
                    .expect("network builds");
                let t0 = Instant::now();
                report = net.run();
                run_t = run_t.min(t0.elapsed());
            }
            let s = report.events.shard;
            println!(
                "{label} shards={shards}: run {run_t:?} | epochs {} msgs {} released {} \
                 replayed {} deferred {} merge-lag {} recomputes {}",
                s.epochs,
                s.coord_messages,
                s.released_events,
                s.replayed_entries,
                s.deferred_replays,
                s.merge_lag_max,
                s.lookahead_recomputes,
            );
        }
    }
}
