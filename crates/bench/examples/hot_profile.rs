//! One-off profiling harness for the serial hot path on the scale
//! plant. Not a bench — run it under a sampling profiler when hunting
//! per-event cost:
//! `cargo run --release -p tsn-bench --example hot_profile -- 100000`

use std::time::Instant;
use tsn_builder::plant::large_plant;

fn main() {
    let flows: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let reps: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let heap = std::env::args().nth(3).as_deref() == Some("heap");
    for _ in 0..reps {
        let mut plant = large_plant(flows).expect("plant builds");
        if heap {
            plant.config.event_queue = tsn_sim::EventQueueKind::BinaryHeap;
        }
        let t0 = Instant::now();
        let net = plant.into_network().expect("network builds");
        let build = t0.elapsed();
        let t0 = Instant::now();
        let report = net.run();
        let run = t0.elapsed();
        let ev = report.events_processed;
        println!(
            "flows {flows}: build {build:?} run {run:?} {ev} events {:.0} events/sec",
            ev as f64 / run.as_secs_f64()
        );
        let s = &report.events;
        println!(
            "  injects {} host_kicks {} frame_arrives {} port_kicks {} tx_completes {} link_transitions {}",
            s.injects, s.host_kicks, s.frame_arrives, s.port_kicks, s.tx_completes, s.link_transitions
        );
    }
}
