//! Scenario-sweep scaling benchmark: the same Fig. 7-style sweep run
//! serially and through `run_scenarios` at increasing worker counts.
//!
//! Prints a speedup table and asserts that (a) every worker count
//! produces byte-identical per-scenario reports and (b) the parallel
//! sweep beats serial by at least 2x for 8+ scenarios when the machine
//! has the cores for it.

use tsn_bench::{fmt_ns, Runner};
use tsn_builder::{Scenario, SweepPlanner};
use tsn_sim::network::{SimConfig, SyncSetup};
use tsn_sim::sweep::available_workers;
use tsn_topology::presets;
use tsn_types::SimDuration;

/// Builds the sweep: 8 distinct scenarios (two topologies x four flow
/// counts), so planning is real work and only partially shared.
fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (tag, topo) in [
        ("ring", presets::ring(4, 2).expect("topology builds")),
        ("star", presets::star(3, 3).expect("topology builds")),
    ] {
        for flows in [32u32, 64, 96, 128] {
            let workload = tsn_builder::workloads::iec60802_ts_flows(&topo, flows, 7)
                .expect("workload builds");
            let mut config = SimConfig::paper_defaults();
            // COTS-sized resources: port_num=4 covers the star hub's
            // three TSN ports (the default provisions only one).
            config.resources = tsn_resource::baseline::bcm53154();
            config.duration = SimDuration::from_millis(20);
            config.drain = SimDuration::from_millis(5);
            config.sync = SyncSetup::Perfect;
            out.push(Scenario::explicit(
                format!("{tag}/{flows}"),
                topo.clone(),
                workload,
                config,
            ));
        }
    }
    out
}

fn main() {
    let runner = Runner::from_env();
    if !runner.selected("sweep/scaling") {
        return;
    }

    let scenarios = scenarios();
    let n = scenarios.len();
    let cores = available_workers();
    println!("sweep/scaling: {n} scenarios, {cores} workers available");

    // Serial baseline: one planner, scenarios one after another.
    let serial_planner = SweepPlanner::new();
    let (serial_ns, serial_reports) = runner.time_once(|| {
        scenarios
            .iter()
            .map(|s| {
                let outcome = serial_planner.run_one(s).expect("scenario runs");
                format!("{:?}", outcome.report)
            })
            .collect::<Vec<String>>()
    });
    println!(
        "  serial               {:>10}   cache {} hits / {} misses",
        fmt_ns(serial_ns),
        serial_planner.planning_hits(),
        serial_planner.planning_misses(),
    );

    // Oversubscribed counts still run (threads timeshare) and must still
    // produce identical reports; only counts <= cores can show speedup.
    let mut worker_counts = vec![1usize, 2, 4, 8];
    if !worker_counts.contains(&cores) && cores > 8 {
        worker_counts.push(cores);
    }

    let mut best_speedup = 0.0f64;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for &workers in &worker_counts {
        // A fresh planner per worker count (as `run_scenarios` would
        // use) so each run's cache hit/miss split is visible on its own.
        let planner = SweepPlanner::new();
        let (ns, reports) = runner.time_once(|| {
            planner
                .run(&scenarios, workers)
                .into_iter()
                .map(|r| format!("{:?}", r.expect("scenario runs").report))
                .collect::<Vec<String>>()
        });
        assert_eq!(
            reports, serial_reports,
            "reports must be byte-identical across worker counts"
        );
        let speedup = serial_ns / ns;
        best_speedup = best_speedup.max(speedup);
        cache_hits += planner.planning_hits();
        cache_misses += planner.planning_misses();
        println!(
            "  workers={workers:<2}           {:>10}   speedup {speedup:.2}x   cache {} hits / {} misses",
            fmt_ns(ns),
            planner.planning_hits(),
            planner.planning_misses(),
        );
    }

    if cores >= 4 {
        assert!(
            best_speedup >= 2.0,
            "expected >=2x speedup on an {n}-scenario sweep with {cores} cores, got {best_speedup:.2}x"
        );
    } else {
        println!("  ({cores} cores: skipping the 2x-speedup assertion)");
    }
    println!(
        "  best speedup: {best_speedup:.2}x | planning cache {cache_hits} hits / \
         {cache_misses} misses across parallel runs (reports identical across all runs)"
    );
}
