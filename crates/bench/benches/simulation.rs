//! End-to-end simulation benchmarks: the runs behind Fig. 2 and
//! Fig. 7, scaled down to bench-friendly durations (10 ms of traffic).
//!
//! These measure *simulator throughput*; the QoS numbers themselves come
//! from the `tsn-experiments` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use tsn_builder::{itp, AppRequirements, CqfPlan, Strategy};
use tsn_sim::network::{Network, SimConfig, SyncSetup};
use tsn_topology::presets;
use tsn_types::{DataRate, FlowId, FlowSet, SimDuration};

/// Plans injection offsets the way the real pipeline does, so the bench
/// scenarios are lossless (ITP is part of the system under test).
fn plan_offsets(
    topo: &tsn_topology::Topology,
    flows: &FlowSet,
) -> HashMap<FlowId, SimDuration> {
    let req = AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
        .expect("valid requirements");
    let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
        .expect("slot feasible");
    itp::plan(&req, &plan, Strategy::GreedyLeastLoaded)
        .expect("itp plans")
        .offsets
}

fn sim_config() -> SimConfig {
    let mut config = SimConfig::paper_defaults();
    config.duration = SimDuration::from_millis(10);
    config.drain = SimDuration::from_millis(5);
    config.sync = SyncSetup::Perfect;
    config
}

fn ring_flows(ts: u32, bg_mbps: u64) -> (tsn_topology::Topology, FlowSet) {
    let topo = presets::ring(6, 3).expect("topology builds");
    let mut flows =
        tsn_builder::workloads::iec60802_ts_flows(&topo, ts, 42).expect("workload builds");
    if bg_mbps > 0 {
        flows.extend(
            tsn_builder::workloads::background_flows(
                &topo,
                DataRate::mbps(bg_mbps),
                DataRate::mbps(bg_mbps),
                10_000,
            )
            .expect("workload builds"),
        );
    }
    (topo, flows)
}

/// Fig. 7(a)-shaped run: TS flows over the ring, quiet network.
fn bench_fig7_quiet(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_fig7");
    group.sample_size(10);
    for ts in [32u32, 128] {
        let (topo, flows) = ring_flows(ts, 0);
        let offsets = plan_offsets(&topo, &flows);
        group.bench_with_input(
            BenchmarkId::new("ts_flows", ts),
            &(topo, flows, offsets),
            |b, (topo, flows, offsets)| {
                b.iter(|| {
                    let report =
                        Network::build(topo.clone(), flows.clone(), offsets, sim_config())
                            .expect("network builds")
                            .run();
                    assert_eq!(report.ts_lost(), 0);
                    black_box(report.events_processed)
                });
            },
        );
    }
    group.finish();
}

/// Fig. 2 / Fig. 7(d)-shaped run: TS flows under RC+BE background.
fn bench_fig2_background(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_fig2");
    group.sample_size(10);
    for bg in [100u64, 400] {
        let (topo, flows) = ring_flows(64, bg);
        let offsets = plan_offsets(&topo, &flows);
        group.bench_with_input(
            BenchmarkId::new("bg_mbps", bg),
            &(topo, flows, offsets),
            |b, (topo, flows, offsets)| {
                b.iter(|| {
                    let report =
                        Network::build(topo.clone(), flows.clone(), offsets, sim_config())
                            .expect("network builds")
                            .run();
                    black_box(report.events_processed)
                });
            },
        );
    }
    group.finish();
}

/// Table I-shaped run: build cost of the whole network (table
/// programming dominates at scale).
fn bench_network_build(c: &mut Criterion) {
    let (topo, flows) = ring_flows(512, 0);
    let mut group = c.benchmark_group("sim_build");
    group.sample_size(20);
    group.bench_function("network_build_512_flows", |b| {
        b.iter(|| {
            Network::build(topo.clone(), flows.clone(), &HashMap::new(), sim_config())
                .expect("network builds")
        });
    });
    group.finish();
}

/// Preemption machinery cost: the same loaded run with 802.3br on/off.
fn bench_preemption(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_preemption");
    group.sample_size(10);
    for preemption in [false, true] {
        let (topo, flows) = ring_flows(64, 300);
        let offsets = plan_offsets(&topo, &flows);
        group.bench_with_input(
            BenchmarkId::new("enabled", preemption),
            &preemption,
            |b, &preemption| {
                b.iter(|| {
                    let mut config = sim_config();
                    config.frame_preemption = preemption;
                    let report =
                        Network::build(topo.clone(), flows.clone(), &offsets, config)
                            .expect("network builds")
                            .run();
                    black_box(report.events_processed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig7_quiet,
    bench_fig2_background,
    bench_network_build,
    bench_preemption
);
criterion_main!(benches);
