//! End-to-end simulation benchmarks: the runs behind Fig. 2 and
//! Fig. 7, scaled down to bench-friendly durations (10 ms of traffic).
//!
//! These measure *simulator throughput*; the QoS numbers themselves come
//! from the `tsn-experiments` binaries.

use std::collections::HashMap;
use std::hint::black_box;
use tsn_bench::Runner;
use tsn_builder::{itp, AppRequirements, CqfPlan, Strategy};
use tsn_sim::network::{Network, SimConfig, SyncSetup};
use tsn_topology::presets;
use tsn_types::{DataRate, FlowId, FlowSet, SimDuration};

/// Plans injection offsets the way the real pipeline does, so the bench
/// scenarios are lossless (ITP is part of the system under test).
fn plan_offsets(topo: &tsn_topology::Topology, flows: &FlowSet) -> HashMap<FlowId, SimDuration> {
    let req = AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
        .expect("valid requirements");
    let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
        .expect("slot feasible");
    itp::plan(&req, &plan, Strategy::GreedyLeastLoaded)
        .expect("itp plans")
        .offsets
}

fn sim_config() -> SimConfig {
    let mut config = SimConfig::paper_defaults();
    config.duration = SimDuration::from_millis(10);
    config.drain = SimDuration::from_millis(5);
    config.sync = SyncSetup::Perfect;
    config
}

fn ring_flows(ts: u32, bg_mbps: u64) -> (tsn_topology::Topology, FlowSet) {
    let topo = presets::ring(6, 3).expect("topology builds");
    let mut flows =
        tsn_builder::workloads::iec60802_ts_flows(&topo, ts, 42).expect("workload builds");
    if bg_mbps > 0 {
        flows.extend(
            tsn_builder::workloads::background_flows(
                &topo,
                DataRate::mbps(bg_mbps),
                DataRate::mbps(bg_mbps),
                10_000,
            )
            .expect("workload builds"),
        );
    }
    (topo, flows)
}

fn main() {
    let runner = Runner::from_env();

    // Fig. 7(a)-shaped run: TS flows over the ring, quiet network.
    for ts in [32u32, 128] {
        let (topo, flows) = ring_flows(ts, 0);
        let offsets = plan_offsets(&topo, &flows);
        runner.bench(&format!("sim_fig7/ts_flows/{ts}"), || {
            let report = Network::build(topo.clone(), flows.clone(), &offsets, sim_config())
                .expect("network builds")
                .run();
            assert_eq!(report.ts_lost(), 0);
            black_box(report.events_processed)
        });
    }

    // Fig. 2 / Fig. 7(d)-shaped run: TS flows under RC+BE background.
    for bg in [100u64, 400] {
        let (topo, flows) = ring_flows(64, bg);
        let offsets = plan_offsets(&topo, &flows);
        runner.bench(&format!("sim_fig2/bg_mbps/{bg}"), || {
            let report = Network::build(topo.clone(), flows.clone(), &offsets, sim_config())
                .expect("network builds")
                .run();
            black_box(report.events_processed)
        });
    }

    // Table I-shaped run: build cost of the whole network (table
    // programming dominates at scale).
    {
        let (topo, flows) = ring_flows(512, 0);
        runner.bench("sim_build/network_build_512_flows", || {
            Network::build(topo.clone(), flows.clone(), &HashMap::new(), sim_config())
                .expect("network builds")
        });
    }

    // Preemption machinery cost: the same loaded run with 802.3br on/off.
    for preemption in [false, true] {
        let (topo, flows) = ring_flows(64, 300);
        let offsets = plan_offsets(&topo, &flows);
        runner.bench(&format!("sim_preemption/enabled/{preemption}"), || {
            let mut config = sim_config();
            config.frame_preemption = preemption;
            let report = Network::build(topo.clone(), flows.clone(), &offsets, config)
                .expect("network builds")
                .run();
            black_box(report.events_processed)
        });
    }
}
