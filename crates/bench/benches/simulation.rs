//! End-to-end simulation benchmarks: the runs behind Fig. 2 and
//! Fig. 7, scaled down to bench-friendly durations (10 ms of traffic).
//!
//! These measure *simulator throughput*; the QoS numbers themselves come
//! from the `tsn-experiments` binaries. Besides printing the usual
//! result lines, this bench writes `BENCH_2.json` at the repo root with
//! each case's median next to the tracked pre-calendar-queue baseline,
//! so the perf trajectory of the event core is machine-readable.
//!
//! A second section exercises the sharded conservative-parallel engine
//! (`SimConfig::shards`) on multi-switch scenarios at 1–4 shards and
//! writes `BENCH_5.json`: each sharded case's `speedup_vs_serial` is
//! computed against the *same run's* shards=1 median, so the scaling
//! numbers always reflect the machine they were measured on (they only
//! exceed 1.0 when real cores are available), while the shards=1 cases
//! are gated against pinned serial baselines like `BENCH_2.json`. The
//! two coverage-honest summaries live in separate fields:
//! `serial_geomean_vs_baseline` folds only the shards=1 rows (the rows
//! that *have* a pinned baseline — sharded rows no longer silently drop
//! out of a field named like it covered them), and
//! `shards_geomean_vs_serial` / `shards2_geomean_vs_serial` fold the
//! sharded rows against their same-run serial medians. Each sharded row
//! also carries the engine's `ShardOverhead` counters from an untimed
//! run, and `message_reduction_vs_per_event_min` is the worst-case
//! ratio of work units (released + replayed events) to coordinator
//! messages — how many per-event exchanges one epoch message replaces.

use std::collections::HashMap;
use std::hint::black_box;
use tsn_bench::{BenchResult, Runner};
use tsn_builder::{itp, AppRequirements, CqfPlan, Strategy};
use tsn_sim::network::{Network, SimConfig, SyncSetup};
use tsn_sim::ShardOverhead;
use tsn_topology::presets;
use tsn_types::{DataRate, FlowMap, FlowSet, SimDuration};

/// Median ns/iter measured at commit b8cca7c (BinaryHeap event queue,
/// poll-based port wakeups) with `TSN_BENCH_MS=2000` — the pre-overhaul
/// baseline every later run is compared against.
const BASELINE_NS: [(&str, f64); 7] = [
    ("sim_fig7/ts_flows/32", 178_620.0),
    ("sim_fig7/ts_flows/128", 616_120.0),
    ("sim_fig2/bg_mbps/100", 735_880.0),
    ("sim_fig2/bg_mbps/400", 2_210_000.0),
    ("sim_build/network_build_512_flows", 653_640.0),
    ("sim_preemption/enabled/false", 1_960_000.0),
    ("sim_preemption/enabled/true", 133_480_000.0),
];

/// Median ns/iter of the serial engine on the shard-scaling scenarios,
/// measured on the reference machine with `TSN_BENCH_MS=2000` when the
/// sharded engine landed. The shards=1 runs are gated against these (the
/// dispatch through `SimConfig::shards` must stay free); the sharded
/// runs are compared against the same-run serial median instead.
const SHARD_SERIAL_BASELINE_NS: [(&str, f64); 2] = [
    ("sim_shards/ring12/shards/1", 479_140.0),
    ("sim_shards/star8/shards/1", 458_380.0),
];

/// Plans injection offsets the way the real pipeline does, so the bench
/// scenarios are lossless (ITP is part of the system under test).
fn plan_offsets(topo: &tsn_topology::Topology, flows: &FlowSet) -> FlowMap<SimDuration> {
    let req = AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
        .expect("valid requirements");
    let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
        .expect("slot feasible");
    itp::plan(&req, &plan, Strategy::GreedyLeastLoaded)
        .expect("itp plans")
        .offsets
}

fn sim_config() -> SimConfig {
    let mut config = SimConfig::paper_defaults();
    config.duration = SimDuration::from_millis(10);
    config.drain = SimDuration::from_millis(5);
    config.sync = SyncSetup::Perfect;
    config
}

fn ring_flows(ts: u32, bg_mbps: u64) -> (tsn_topology::Topology, FlowSet) {
    let topo = presets::ring(6, 3).expect("topology builds");
    let mut flows =
        tsn_builder::workloads::iec60802_ts_flows(&topo, ts, 42).expect("workload builds");
    if bg_mbps > 0 {
        flows.extend(
            tsn_builder::workloads::background_flows(
                &topo,
                DataRate::mbps(bg_mbps),
                DataRate::mbps(bg_mbps),
                10_000,
            )
            .expect("workload builds"),
        );
    }
    (topo, flows)
}

/// Serializes the results as `BENCH_2.json` next to the workspace root
/// (hand-rolled JSON: the workspace builds offline, so no serde).
fn write_bench_json(results: &[BenchResult], budget_ms: u64) {
    let baselines: HashMap<&str, f64> = BASELINE_NS.iter().copied().collect();
    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    for r in results {
        let baseline = baselines.get(r.name.as_str()).copied();
        let speedup = baseline.map(|b| b / r.median_ns);
        if let Some(s) = speedup {
            speedups.push(s);
        }
        entries.push(format!(
            "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \
             \"baseline_median_ns\": {}, \"speedup_vs_baseline\": {}}}",
            r.name,
            r.median_ns,
            r.min_ns,
            baseline.map_or("null".into(), |b| format!("{b:.1}")),
            speedup.map_or("null".into(), |s| format!("{s:.3}")),
        ));
    }
    let geomean = if speedups.is_empty() {
        "null".to_owned()
    } else {
        let g = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
        format!("{g:.3}")
    };
    let json = format!(
        "{{\n  \"bench\": \"simulation\",\n  \"baseline_commit\": \"b8cca7c\",\n  \
         \"baseline_budget_ms\": 2000,\n  \"budget_ms\": {budget_ms},\n  \
         \"geomean_speedup\": {geomean},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} (geomean speedup {geomean}x vs baseline)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The shard-scaling scenarios: multi-switch topologies large enough for
/// the partitioner to produce balanced shards. Resources, slot and
/// injection offsets come from the full derivation pipeline (the star
/// hub needs more ports than the paper's ring column provisions).
#[allow(clippy::type_complexity)]
fn shard_scenarios() -> Vec<(
    &'static str,
    tsn_topology::Topology,
    FlowSet,
    SimConfig,
    FlowMap<SimDuration>,
)> {
    let mut scenarios = Vec::new();
    for (label, topo, ts) in [
        ("ring12", presets::ring(12, 6).expect("topology builds"), 96),
        ("star8", presets::star(8, 8).expect("topology builds"), 64),
    ] {
        let flows =
            tsn_builder::workloads::iec60802_ts_flows(&topo, ts, 42).expect("workload builds");
        let req = AppRequirements::new(topo.clone(), flows.clone(), SimDuration::from_nanos(50))
            .expect("valid requirements");
        let derived = tsn_builder::derive::derive_parameters(
            &req,
            &tsn_builder::derive::DeriveOptions::paper(),
        )
        .expect("derivation succeeds");
        let mut config = sim_config();
        config.slot = derived.cqf.slot;
        config.resources = derived.resources;
        config.aggregate_switch_tbl = derived.aggregate_switch_tbl;
        scenarios.push((label, topo, flows, config, derived.itp.offsets));
    }
    scenarios
}

/// Geometric mean, or `"null"` when nothing qualified.
fn geomean(values: &[f64]) -> String {
    if values.is_empty() {
        "null".to_owned()
    } else {
        let g = (values.iter().map(|s| s.ln()).sum::<f64>() / values.len() as f64).exp();
        format!("{g:.3}")
    }
}

/// Serializes the shard-scaling results as `BENCH_5.json` at the repo
/// root. `speedup_vs_serial` divides the same run's shards=1 median, so
/// the scaling column is always same-machine. Summary fields are named
/// for exactly what they cover: `serial_geomean_vs_baseline` (the CI
/// gate on the serial dispatch path) folds only the shards=1 rows,
/// which are the only rows with pinned baselines; the sharded rows get
/// their own `shards_geomean_vs_serial` / `shards2_geomean_vs_serial`
/// instead of silently vanishing from a combined geomean.
fn write_shard_json(
    results: &[BenchResult],
    overheads: &HashMap<String, ShardOverhead>,
    budget_ms: u64,
) {
    let baselines: HashMap<&str, f64> = SHARD_SERIAL_BASELINE_NS.iter().copied().collect();
    let serial_of = |name: &str| {
        let scenario = name.split('/').nth(1)?;
        let serial_name = format!("sim_shards/{scenario}/shards/1");
        results
            .iter()
            .find(|r| r.name == serial_name)
            .map(|r| r.median_ns)
    };
    let mut entries = Vec::new();
    let mut gated = Vec::new();
    let mut sharded = Vec::new();
    let mut sharded2 = Vec::new();
    let mut message_reduction_min: Option<f64> = None;
    for r in results {
        let shards: u64 = r
            .name
            .rsplit('/')
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1);
        let vs_serial = serial_of(&r.name).map(|serial| serial / r.median_ns);
        let vs_baseline = baselines.get(r.name.as_str()).map(|b| b / r.median_ns);
        if let Some(s) = vs_baseline {
            gated.push(s);
        }
        if shards > 1 {
            if let Some(s) = vs_serial {
                sharded.push(s);
                if shards == 2 {
                    sharded2.push(s);
                }
            }
        }
        let counters = overheads.get(&r.name).map_or_else(
            || "null".to_owned(),
            |o| {
                let per_epoch = o.coord_messages as f64 / (o.epochs.max(1)) as f64;
                let work_units = (o.released_events + o.replayed_entries) as f64;
                let reduction = work_units / (o.coord_messages.max(1)) as f64;
                message_reduction_min = Some(match message_reduction_min {
                    Some(m) => m.min(reduction),
                    None => reduction,
                });
                format!(
                    "{{\"epochs\": {}, \"coord_messages\": {}, \
                     \"messages_per_epoch\": {per_epoch:.2}, \"released_events\": {}, \
                     \"replayed_entries\": {}, \"deferred_replays\": {}, \
                     \"lookahead_recomputes\": {}}}",
                    o.epochs,
                    o.coord_messages,
                    o.released_events,
                    o.replayed_entries,
                    o.deferred_replays,
                    o.lookahead_recomputes,
                )
            },
        );
        entries.push(format!(
            "    {{\"name\": \"{}\", \"shards\": {shards}, \"median_ns\": {:.1}, \
             \"min_ns\": {:.1}, \"speedup_vs_serial\": {}, \"speedup_vs_baseline\": {}, \
             \"overhead\": {counters}}}",
            r.name,
            r.median_ns,
            r.min_ns,
            vs_serial.map_or("null".into(), |s| format!("{s:.3}")),
            vs_baseline.map_or("null".into(), |s| format!("{s:.3}")),
        ));
    }
    let serial_geomean = geomean(&gated);
    let shards_geomean = geomean(&sharded);
    let shards2_geomean = geomean(&sharded2);
    let reduction = message_reduction_min.map_or("null".to_owned(), |m| format!("{m:.1}"));
    let json = format!(
        "{{\n  \"bench\": \"shard_scaling\",\n  \"baseline\": \"same-machine serial \
         (shards=1), TSN_BENCH_MS=2000\",\n  \"budget_ms\": {budget_ms},\n  \
         \"serial_geomean_vs_baseline\": {serial_geomean},\n  \
         \"shards_geomean_vs_serial\": {shards_geomean},\n  \
         \"shards2_geomean_vs_serial\": {shards2_geomean},\n  \
         \"message_reduction_vs_per_event_min\": {reduction},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!(
            "wrote {path} (serial-path geomean {serial_geomean}x vs baseline, \
             shards=2 geomean {shards2_geomean}x vs serial)"
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let runner = Runner::from_env();
    let mut results: Vec<BenchResult> = Vec::new();

    // Fig. 7(a)-shaped run: TS flows over the ring, quiet network.
    for ts in [32u32, 128] {
        let (topo, flows) = ring_flows(ts, 0);
        let offsets = plan_offsets(&topo, &flows);
        results.extend(runner.bench(&format!("sim_fig7/ts_flows/{ts}"), || {
            let report = Network::build(topo.clone(), flows.clone(), &offsets, sim_config())
                .expect("network builds")
                .run();
            assert_eq!(report.ts_lost(), 0);
            black_box(report.events_processed)
        }));
    }

    // Fig. 2 / Fig. 7(d)-shaped run: TS flows under RC+BE background.
    for bg in [100u64, 400] {
        let (topo, flows) = ring_flows(64, bg);
        let offsets = plan_offsets(&topo, &flows);
        results.extend(runner.bench(&format!("sim_fig2/bg_mbps/{bg}"), || {
            let report = Network::build(topo.clone(), flows.clone(), &offsets, sim_config())
                .expect("network builds")
                .run();
            black_box(report.events_processed)
        }));
    }

    // Table I-shaped run: build cost of the whole network (table
    // programming dominates at scale).
    {
        let (topo, flows) = ring_flows(512, 0);
        results.extend(runner.bench("sim_build/network_build_512_flows", || {
            Network::build(topo.clone(), flows.clone(), &FlowMap::new(), sim_config())
                .expect("network builds")
        }));
    }

    // Preemption machinery cost: the same loaded run with 802.3br on/off.
    for preemption in [false, true] {
        let (topo, flows) = ring_flows(64, 300);
        let offsets = plan_offsets(&topo, &flows);
        results.extend(
            runner.bench(&format!("sim_preemption/enabled/{preemption}"), || {
                let mut config = sim_config();
                config.frame_preemption = preemption;
                let report = Network::build(topo.clone(), flows.clone(), &offsets, config)
                    .expect("network builds")
                    .run();
                black_box(report.events_processed)
            }),
        );
    }

    if !results.is_empty() {
        write_bench_json(&results, runner.budget_ms());
    }

    // Shard scaling: the conservative-parallel engine at 1–4 shards on
    // scenarios that actually partition. Reports are byte-identical
    // across shard counts (the shard_golden tests pin that); only the
    // wall clock may differ.
    let mut shard_results: Vec<BenchResult> = Vec::new();
    let mut shard_overheads: HashMap<String, ShardOverhead> = HashMap::new();
    for (label, topo, flows, base_config, offsets) in shard_scenarios() {
        for shards in 1..=4usize {
            let name = format!("sim_shards/{label}/shards/{shards}");
            if shards > 1 {
                // One untimed run to capture the engine's coordination
                // counters (epochs, messages, replay volume) for the row.
                let mut config = base_config.clone();
                config.shards = shards;
                let report = Network::build(topo.clone(), flows.clone(), &offsets, config)
                    .expect("network builds")
                    .run();
                shard_overheads.insert(name.clone(), report.events.shard);
            }
            shard_results.extend(runner.bench(&name, || {
                let mut config = base_config.clone();
                config.shards = shards;
                let report = Network::build(topo.clone(), flows.clone(), &offsets, config)
                    .expect("network builds")
                    .run();
                assert_eq!(report.ts_lost(), 0);
                black_box(report.events_processed)
            }));
        }
    }
    if !shard_results.is_empty() {
        write_shard_json(&shard_results, &shard_overheads, runner.budget_ms());
    }
}
