//! Scale benchmark: the large-plant family at 10k and 100k flows (1M
//! behind `TSN_SCALE_1M=1`), tracking simulation throughput (events/sec)
//! and peak RSS (`VmHWM`). Writes `BENCH_7.json` at the repo root; the
//! recorded file is produced at the full `TSN_BENCH_MS=2000` budget and
//! CI smokes the 10k case against an events/sec floor, a peak-RSS
//! ceiling and the pinned events/sec baselines (geomean ≥ 0.95×).
//!
//! Unlike the iteration benches, each case here is a single timed
//! build + run: a 100k-flow plant takes seconds end to end, so medians
//! over dozens of iterations are not affordable — and a single
//! discrete-event run of ~10⁶ events is already an average over that
//! many scheduler operations. The 10k case additionally re-runs under
//! the binary-heap event queue and the sharded engine and asserts the
//! reports stay byte-identical, so the determinism contract is checked
//! at scale on every bench run, not just on the small golden tests.

use std::time::Instant;
use tsn_bench::{fmt_ns, Runner};
use tsn_builder::plant::{large_plant, LargePlant};
use tsn_sim::{EventQueueKind, SimReport};

/// Pinned events/sec per case, recorded on this machine at
/// `TSN_BENCH_MS=2000` (commit that introduced BENCH_7.json). The CI
/// gate keeps the geomean of current/baseline ≥ 0.95.
const BASELINE_EVENTS_PER_SEC: &[(&str, f64)] = &[
    ("scale/flows/10k", 3_800_000.0),
    ("scale/flows/100k", 1_000_000.0),
];

/// `VmHWM` (peak resident set) in bytes from `/proc/self/status`;
/// `None` off Linux. Monotone over the process lifetime, so cases must
/// run smallest-first for per-case readings to mean anything.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

struct ScaleCase {
    name: String,
    flows: u32,
    cells: usize,
    build_ns: u64,
    run_ns: u64,
    events: u64,
    events_per_sec: f64,
    peak_rss_bytes: Option<u64>,
    p99_us: f64,
    determinism_checked: bool,
}

fn run_case(name: &str, flows: u32, repeats: u32, check_determinism: bool) -> ScaleCase {
    // Best-of-`repeats`: one run is one measurement of ~10⁵–10⁶
    // scheduler operations, but wall-clock noise (cold caches, CI
    // neighbours) still moves a single run by tens of percent. The
    // fastest repetition is the stable, gateable number.
    let mut build_ns = u64::MAX;
    let mut run_ns = u64::MAX;
    let mut first: Option<(SimReport, LargePlant)> = None;
    let mut cells = 0;
    for rep in 0..repeats.max(1) {
        let build_start = Instant::now();
        let plant = large_plant(flows).expect("plant builds");
        cells = plant.dims.cells;
        let reference = plant.clone();
        let network = plant.into_network().expect("network builds");
        build_ns = build_ns.min(build_start.elapsed().as_nanos() as u64);

        let run_start = Instant::now();
        let report = network.run();
        run_ns = run_ns.min(run_start.elapsed().as_nanos() as u64);
        if rep == 0 {
            first = Some((report, reference));
        } else {
            let baseline = &first.as_ref().expect("set on rep 0").0;
            assert_eq!(
                &report, baseline,
                "{name}: repetition {rep} diverged from the first run"
            );
        }
    }
    let (report, reference) = first.expect("at least one repetition");
    if std::env::var("TSN_SCALE_DEBUG").is_ok() {
        println!("{name}: {:?}", report.events);
    }

    assert_eq!(report.ts_lost(), 0, "{name}: plant loses TS frames");
    assert_eq!(
        report.ts_deadline_misses(),
        0,
        "{name}: plant misses deadlines"
    );
    let events = report.events_processed;
    let events_per_sec = events as f64 / (run_ns as f64 / 1e9);
    let p99_us = report.ts_p99().map_or(0.0, |d| d.as_micros_f64());
    let peak_rss = peak_rss_bytes();
    if flows <= 100_000 {
        if let Some(rss) = peak_rss {
            assert!(
                rss < 1 << 30,
                "{name}: peak RSS {}MiB breaches the 1 GiB scale budget",
                rss >> 20
            );
        }
    }

    if check_determinism {
        check_byte_identity(&reference, &report);
    }

    ScaleCase {
        name: name.to_owned(),
        flows,
        cells,
        build_ns,
        run_ns,
        events,
        events_per_sec,
        peak_rss_bytes: peak_rss,
        p99_us,
        determinism_checked: check_determinism,
    }
}

/// Re-runs the plant under the reference event queue and the sharded
/// engine; all reports must render byte-identically.
fn check_byte_identity(plant: &LargePlant, calendar_report: &SimReport) {
    let baseline = format!("{calendar_report:?}");
    for (label, mutate) in [
        (
            "binary-heap event queue",
            Box::new(|p: &mut LargePlant| p.config.event_queue = EventQueueKind::BinaryHeap)
                as Box<dyn Fn(&mut LargePlant)>,
        ),
        (
            "sharded engine (shards=2)",
            Box::new(|p: &mut LargePlant| p.config.shards = 2),
        ),
    ] {
        let mut variant = plant.clone();
        mutate(&mut variant);
        let report = variant.into_network().expect("network builds").run();
        assert_eq!(
            format!("{report:?}"),
            baseline,
            "{label} diverged from the calendar-queue serial report"
        );
    }
}

fn write_bench_json(cases: &[ScaleCase], budget_ms: u64) {
    let baselines: std::collections::HashMap<&str, f64> =
        BASELINE_EVENTS_PER_SEC.iter().copied().collect();
    let mut entries = Vec::new();
    let mut ratios = Vec::new();
    for c in cases {
        let baseline = baselines.get(c.name.as_str()).copied();
        let ratio = baseline.map(|b| c.events_per_sec / b);
        if let Some(r) = ratio {
            ratios.push(r);
        }
        entries.push(format!(
            "    {{\"name\": \"{}\", \"flows\": {}, \"cells\": {}, \"build_ns\": {}, \
             \"run_ns\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"peak_rss_bytes\": {}, \"p99_us\": {:.1}, \"determinism_checked\": {}, \
             \"baseline_events_per_sec\": {}, \"vs_baseline\": {}}}",
            c.name,
            c.flows,
            c.cells,
            c.build_ns,
            c.run_ns,
            c.events,
            c.events_per_sec,
            c.peak_rss_bytes.map_or("null".into(), |b| b.to_string()),
            c.p99_us,
            c.determinism_checked,
            baseline.map_or("null".into(), |b| format!("{b:.0}")),
            ratio.map_or("null".into(), |r| format!("{r:.3}")),
        ));
    }
    let geomean = if ratios.is_empty() {
        "null".to_owned()
    } else {
        let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        format!("{g:.3}")
    };
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"baseline\": \"same machine, TSN_BENCH_MS=2000\",\n  \
         \"budget_ms\": {budget_ms},\n  \"events_per_sec_geomean_vs_baseline\": {geomean},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} (events/sec geomean {geomean}x vs baseline)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let runner = Runner::from_env();
    // Ascending flow counts: VmHWM is a process-lifetime high-water
    // mark, so each case's reading is only inflated by *smaller*
    // predecessors.
    let mut targets: Vec<(&str, u32, u32, bool)> = vec![
        ("scale/flows/10k", 10_000, 5, true),
        ("scale/flows/100k", 100_000, 3, false),
    ];
    if std::env::var("TSN_SCALE_1M").is_ok_and(|v| v == "1") {
        targets.push(("scale/flows/1m", 1_000_000, 1, false));
    }
    let mut cases = Vec::new();
    for (name, flows, repeats, check) in targets {
        if !runner.selected(name) {
            continue;
        }
        let case = run_case(name, flows, repeats, check);
        println!(
            "{:<24} build {:>10}  run {:>10}  {:>9} events  {:>12.0} events/sec  \
             rss {:>8}  p99 {:.1}us{}",
            case.name,
            fmt_ns(case.build_ns as f64),
            fmt_ns(case.run_ns as f64),
            case.events,
            case.events_per_sec,
            case.peak_rss_bytes
                .map_or("n/a".into(), |b| format!("{}MiB", b >> 20)),
            case.p99_us,
            if case.determinism_checked {
                "  [backends+shards byte-identical]"
            } else {
                ""
            },
        );
        cases.push(case);
    }
    if cases.is_empty() {
        println!("scale: no case selected");
        return;
    }
    write_bench_json(&cases, runner.budget_ms());
}
