//! Scale benchmark: the large-plant family at 10k and 100k flows (1M
//! behind `TSN_SCALE_1M=1`), tracking simulation throughput (events/sec)
//! and peak RSS (`VmHWM`), plus the incremental-reconfiguration cases
//! comparing [`NetworkTemplate::reconfigure`] against a from-scratch
//! `Network::build` on the same plant. Writes `BENCH_7.json` (flow
//! cases) and `BENCH_10.json` (reconfig cases) at the repo root; the
//! recorded files are produced at the full `TSN_BENCH_MS=2000` budget
//! and CI smokes the 10k cases against events/sec floors, a peak-RSS
//! ceiling, the pinned events/sec baselines (geomean ≥ 0.95×) and a
//! reconfigure-speedup floor.
//!
//! Unlike the iteration benches, each case here is a single timed
//! build + run: a 100k-flow plant takes seconds end to end, so medians
//! over dozens of iterations are not affordable — and a single
//! discrete-event run of ~10⁶ events is already an average over that
//! many scheduler operations. Every case (100k included) re-runs under
//! the binary-heap event queue and the sharded engine and asserts the
//! reports stay byte-identical, so the determinism contract is checked
//! at scale on every bench run, not just on the small golden tests.
//! Reports are compared by a streamed digest of their full `Debug`
//! rendering — no second report or rendered string is ever held — so
//! the 100k check costs no extra peak RSS.

use std::fmt::Write as _;
use std::hash::Hasher as _;
use std::sync::Arc;
use std::time::Instant;
use tsn_bench::{fmt_ns, Runner};
use tsn_builder::plant::{large_plant, LargePlant};
use tsn_sim::network::{ConfigDelta, Network, NetworkTemplate};
use tsn_sim::{EventQueueKind, SimReport};

/// Pinned events/sec per flow case, recorded on this machine at
/// `TSN_BENCH_MS=2000` and re-pinned (from 3.8M / 1.0M) when the
/// hot-path flattening landed — quiet-host full-budget runs now measure
/// ~6.8–7.2M / ~1.9–2.2M. The CI gate keeps the geomean of
/// current/baseline ≥ 0.95.
const BASELINE_EVENTS_PER_SEC: &[(&str, f64)] = &[
    ("scale/flows/10k", 6_000_000.0),
    ("scale/flows/100k", 1_800_000.0),
];

/// Pinned events/sec for the reconfigure-path runs (BENCH_10.json),
/// recorded at `TSN_BENCH_MS=2000` when the incremental path landed
/// (quiet-host full-budget runs: ~7.5M / ~2.7M; pins leave headroom for
/// this host's scheduling noise).
const BASELINE_RECONFIG_EVENTS_PER_SEC: &[(&str, f64)] = &[
    ("reconfig/flows/10k", 5_500_000.0),
    ("reconfig/flows/100k", 2_200_000.0),
];

/// The events/sec BENCH_7.json recorded at 10k/100k flows *before* the
/// hot-path flattening — the fixed base the ≥ 1.4× acceptance target and
/// the 10k→100k slowdown comparison are measured against.
const BENCH7_PIN_10K: f64 = 4_041_109.0;
const BENCH7_PIN_100K: f64 = 1_426_799.0;

/// `VmHWM` (peak resident set) in bytes from `/proc/self/status`;
/// `None` off Linux. Monotone over the process lifetime, so cases must
/// run smallest-first for per-case readings to mean anything.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A 64-bit digest of the report's complete `Debug` rendering, streamed
/// through a fixed-key `DefaultHasher` (`SipHash-1-3` with zero keys —
/// stable across processes). Two reports digest equal iff they render
/// byte-identically, but neither a second report nor its multi-megabyte
/// rendering ever exists in memory.
fn report_digest(report: &SimReport) -> u64 {
    struct HashWriter(std::collections::hash_map::DefaultHasher);
    impl std::fmt::Write for HashWriter {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            self.0.write(s.as_bytes());
            Ok(())
        }
    }
    let mut sink = HashWriter(std::collections::hash_map::DefaultHasher::new());
    write!(sink, "{report:?}").expect("digest sink never fails");
    sink.0.finish()
}

struct ScaleCase {
    name: String,
    flows: u32,
    cells: usize,
    build_ns: u64,
    run_ns: u64,
    events: u64,
    events_per_sec: f64,
    peak_rss_bytes: Option<u64>,
    p99_us: f64,
    determinism_checked: bool,
}

fn run_case(name: &str, flows: u32, repeats: u32, check_determinism: bool) -> ScaleCase {
    // Best-of-`repeats`: one run is one measurement of ~10⁵–10⁶
    // scheduler operations, but wall-clock noise (cold caches, CI
    // neighbours) still moves a single run by tens of percent. The
    // fastest repetition is the stable, gateable number. Each report is
    // reduced to a small summary (digest + the gated metrics) and
    // dropped before the next repetition, so no multi-hundred-megabyte
    // report distorts the allocator during a timed section.
    struct RunSummary {
        digest: u64,
        events: u64,
        ts_lost: u64,
        deadline_misses: u64,
        p99_us: f64,
    }
    fn summarize(report: &SimReport) -> RunSummary {
        RunSummary {
            digest: report_digest(report),
            events: report.events_processed,
            ts_lost: report.ts_lost(),
            deadline_misses: report.ts_deadline_misses(),
            p99_us: report.ts_p99().map_or(0.0, |d| d.as_micros_f64()),
        }
    }
    let mut build_ns = u64::MAX;
    let mut run_ns = u64::MAX;
    let mut first: Option<RunSummary> = None;
    let mut reference: Option<LargePlant> = None;
    let mut cells = 0;
    for rep in 0..repeats.max(1) {
        let plant = large_plant(flows).expect("plant builds");
        cells = plant.dims.cells;
        // The reference plant for the backend byte-identity check is
        // cloned exactly once (outside the timed section).
        if check_determinism && rep == 0 {
            reference = Some(plant.clone());
        }
        let build_start = Instant::now();
        let network = plant.into_network().expect("network builds");
        build_ns = build_ns.min(build_start.elapsed().as_nanos() as u64);

        let run_start = Instant::now();
        let report = network.run();
        run_ns = run_ns.min(run_start.elapsed().as_nanos() as u64);
        let summary = summarize(&report);
        if rep == 0 {
            if std::env::var("TSN_SCALE_DEBUG").is_ok() {
                println!("{name}: {:?}", report.events);
            }
            first = Some(summary);
        } else {
            assert_eq!(
                summary.digest,
                first.as_ref().expect("set on rep 0").digest,
                "{name}: repetition {rep} diverged from the first run"
            );
        }
    }
    let summary = first.expect("at least one repetition");

    assert_eq!(summary.ts_lost, 0, "{name}: plant loses TS frames");
    assert_eq!(summary.deadline_misses, 0, "{name}: plant misses deadlines");
    let events = summary.events;
    let events_per_sec = events as f64 / (run_ns as f64 / 1e9);
    let p99_us = summary.p99_us;
    let peak_rss = peak_rss_bytes();
    if flows <= 100_000 {
        if let Some(rss) = peak_rss {
            assert!(
                rss < 1 << 30,
                "{name}: peak RSS {}MiB breaches the 1 GiB scale budget",
                rss >> 20
            );
        }
    }

    if let Some(reference) = reference {
        check_byte_identity(&reference, summary.digest);
    }

    ScaleCase {
        name: name.to_owned(),
        flows,
        cells,
        build_ns,
        run_ns,
        events,
        events_per_sec,
        peak_rss_bytes: peak_rss,
        p99_us,
        determinism_checked: check_determinism,
    }
}

/// Re-runs the plant under the reference event queue and the sharded
/// engine; all reports must digest-identically to the calendar-queue
/// serial baseline. Variants run one at a time, so the peak-RSS cost of
/// the check is one extra resident plant, not a second report.
fn check_byte_identity(plant: &LargePlant, baseline_digest: u64) {
    for (label, mutate) in [
        (
            "binary-heap event queue",
            Box::new(|p: &mut LargePlant| p.config.event_queue = EventQueueKind::BinaryHeap)
                as Box<dyn Fn(&mut LargePlant)>,
        ),
        (
            "sharded engine (shards=2)",
            Box::new(|p: &mut LargePlant| p.config.shards = 2),
        ),
    ] {
        let mut variant = plant.clone();
        mutate(&mut variant);
        let report = variant.into_network().expect("network builds").run();
        assert_eq!(
            report_digest(&report),
            baseline_digest,
            "{label} diverged from the calendar-queue serial report"
        );
    }
}

struct ReconfigCase {
    name: String,
    flows: u32,
    template_build_ns: u64,
    rebuild_ns: u64,
    reconfigure_ns: u64,
    speedup: f64,
    run_ns: u64,
    events: u64,
    events_per_sec: f64,
    byte_identical: bool,
}

/// Times a from-scratch `Network::build` against an incremental
/// `NetworkTemplate::reconfigure` carrying a `ResourceConfig` delta (the
/// DSE/sweep inner loop), then runs one reconfigured instance to both
/// measure reconfigure-path throughput and prove its report digests
/// identically to the from-scratch build's.
fn run_reconfig_case(name: &str, flows: u32, repeats: u32) -> ReconfigCase {
    let plant = large_plant(flows).expect("plant builds");
    let template_start = Instant::now();
    let template = Arc::new(
        NetworkTemplate::new(
            plant.topology.clone(),
            plant.flows.clone(),
            &plant.offsets,
            plant.config.clone(),
        )
        .expect("template builds"),
    );
    let template_build_ns = template_start.elapsed().as_nanos() as u64;
    // A delta that re-submits the resource configuration: the same work
    // a sweep/DSE candidate swap performs, with an effective config
    // identical to the plant's so the from-scratch comparison below is
    // exact.
    let delta = ConfigDelta::resources(plant.config.resources.clone());

    let mut rebuild_ns = u64::MAX;
    let mut reconfigure_ns = u64::MAX;
    for _ in 0..repeats.max(1) {
        let topology = plant.topology.clone();
        let flow_set = plant.flows.clone();
        let config = plant.config.clone();
        let build_start = Instant::now();
        let network =
            Network::build(topology, flow_set, &plant.offsets, config).expect("network builds");
        rebuild_ns = rebuild_ns.min(build_start.elapsed().as_nanos() as u64);
        drop(network);

        let reconfig_start = Instant::now();
        let network = template.reconfigure(&delta).expect("reconfigure succeeds");
        reconfigure_ns = reconfigure_ns.min(reconfig_start.elapsed().as_nanos() as u64);
        drop(network);
    }

    // Full runs through each path: the from-scratch digest is the
    // oracle every timed reconfigure-path run must match. Best-of for
    // the run timing, the same noise-floor estimator as `run_case` —
    // on this single-CPU host a repetition is occasionally descheduled
    // for tens of percent of its wall-clock, and the minimum is the
    // only estimator that reliably rejects that.
    let scratch_digest = {
        let network = Network::build(
            plant.topology.clone(),
            plant.flows.clone(),
            &plant.offsets,
            plant.config.clone(),
        )
        .expect("network builds");
        report_digest(&network.run())
    };
    let mut run_ns = u64::MAX;
    let mut events = 0;
    for _ in 0..repeats.max(1) {
        let network = template.reconfigure(&delta).expect("reconfigure succeeds");
        let run_start = Instant::now();
        let report = network.run();
        run_ns = run_ns.min(run_start.elapsed().as_nanos() as u64);
        events = report.events_processed;
        assert_eq!(
            report_digest(&report),
            scratch_digest,
            "{name}: reconfigure-path report diverged from the from-scratch build"
        );
    }
    let byte_identical = true;
    ReconfigCase {
        name: name.to_owned(),
        flows,
        template_build_ns,
        rebuild_ns,
        reconfigure_ns,
        speedup: rebuild_ns as f64 / reconfigure_ns as f64,
        run_ns,
        events,
        events_per_sec: events as f64 / (run_ns as f64 / 1e9),
        byte_identical,
    }
}

fn write_bench7_json(cases: &[ScaleCase], budget_ms: u64) {
    let baselines: std::collections::HashMap<&str, f64> =
        BASELINE_EVENTS_PER_SEC.iter().copied().collect();
    let mut entries = Vec::new();
    let mut ratios = Vec::new();
    for c in cases {
        let baseline = baselines.get(c.name.as_str()).copied();
        let ratio = baseline.map(|b| c.events_per_sec / b);
        if let Some(r) = ratio {
            ratios.push(r);
        }
        entries.push(format!(
            "    {{\"name\": \"{}\", \"flows\": {}, \"cells\": {}, \"build_ns\": {}, \
             \"run_ns\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"peak_rss_bytes\": {}, \"p99_us\": {:.1}, \"determinism_checked\": {}, \
             \"baseline_events_per_sec\": {}, \"vs_baseline\": {}}}",
            c.name,
            c.flows,
            c.cells,
            c.build_ns,
            c.run_ns,
            c.events,
            c.events_per_sec,
            c.peak_rss_bytes.map_or("null".into(), |b| b.to_string()),
            c.p99_us,
            c.determinism_checked,
            baseline.map_or("null".into(), |b| format!("{b:.0}")),
            ratio.map_or("null".into(), |r| format!("{r:.3}")),
        ));
    }
    let geomean = geomean_str(&ratios);
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"baseline\": \"same machine, TSN_BENCH_MS=2000\",\n  \
         \"budget_ms\": {budget_ms},\n  \"events_per_sec_geomean_vs_baseline\": {geomean},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_7.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} (events/sec geomean {geomean}x vs baseline)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn geomean_str(ratios: &[f64]) -> String {
    if ratios.is_empty() {
        "null".to_owned()
    } else {
        let g = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
        format!("{g:.3}")
    }
}

/// The DSE bench's recorded queries/sec geomean (BENCH_9.json), so the
/// reconfigure summary records all three acceptance numbers in one
/// place. `null` when the file is absent or unparsable.
fn bench9_dse_geomean() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_9.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        return "null".to_owned();
    };
    text.lines()
        .find_map(|l| {
            let rest = l
                .trim()
                .strip_prefix("\"queries_per_sec_geomean_vs_baseline\":")?;
            let value: f64 = rest.trim().trim_end_matches(',').parse().ok()?;
            Some(format!("{value:.3}"))
        })
        .unwrap_or_else(|| "null".to_owned())
}

fn write_bench10_json(cases: &[ReconfigCase], budget_ms: u64) {
    let baselines: std::collections::HashMap<&str, f64> =
        BASELINE_RECONFIG_EVENTS_PER_SEC.iter().copied().collect();
    let mut entries = Vec::new();
    let mut ratios = Vec::new();
    for c in cases {
        let baseline = baselines.get(c.name.as_str()).copied();
        let ratio = baseline.map(|b| c.events_per_sec / b);
        if let Some(r) = ratio {
            ratios.push(r);
        }
        entries.push(format!(
            "    {{\"name\": \"{}\", \"flows\": {}, \"template_build_ns\": {}, \
             \"rebuild_ns\": {}, \"reconfigure_ns\": {}, \"reconfigure_speedup\": {:.2}, \
             \"run_ns\": {}, \"events\": {}, \"events_per_sec\": {:.0}, \
             \"byte_identical\": {}, \"baseline_events_per_sec\": {}, \"vs_baseline\": {}}}",
            c.name,
            c.flows,
            c.template_build_ns,
            c.rebuild_ns,
            c.reconfigure_ns,
            c.speedup,
            c.run_ns,
            c.events,
            c.events_per_sec,
            c.byte_identical,
            baseline.map_or("null".into(), |b| format!("{b:.0}")),
            ratio.map_or("null".into(), |r| format!("{r:.3}")),
        ));
    }
    let geomean = geomean_str(&ratios);
    // Acceptance summary: the 100k events/sec vs the pre-flattening
    // BENCH_7 pin, the 10k→100k per-event slowdown (BENCH_7 recorded
    // 2.83× before the flattening), the 100k reconfigure speedup, and
    // the DSE geomean cross-referenced from BENCH_9.json.
    let case_100k = cases.iter().find(|c| c.flows == 100_000);
    let vs_pin_100k = case_100k.map_or("null".to_owned(), |c| {
        format!("{:.3}", c.events_per_sec / BENCH7_PIN_100K)
    });
    let speedup_100k = case_100k.map_or("null".to_owned(), |c| format!("{:.2}", c.speedup));
    let slowdown = match (cases.iter().find(|c| c.flows == 10_000), case_100k) {
        (Some(a), Some(b)) => format!("{:.2}", a.events_per_sec / b.events_per_sec),
        _ => "null".to_owned(),
    };
    let bench7_slowdown = BENCH7_PIN_10K / BENCH7_PIN_100K;
    let dse_geomean = bench9_dse_geomean();
    let json = format!(
        "{{\n  \"bench\": \"reconfig\",\n  \"baseline\": \"same machine, TSN_BENCH_MS=2000\",\n  \
         \"budget_ms\": {budget_ms},\n  \"events_per_sec_geomean_vs_baseline\": {geomean},\n  \
         \"events_per_sec_100k_vs_bench7_pin\": {vs_pin_100k},\n  \
         \"reconfigure_speedup_100k\": {speedup_100k},\n  \
         \"slowdown_10k_to_100k\": {slowdown},\n  \
         \"bench7_slowdown_10k_to_100k\": {bench7_slowdown:.2},\n  \
         \"dse_queries_per_sec_geomean_vs_baseline\": {dse_geomean},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_10.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} (reconfigure speedup at 100k: {speedup_100k}x)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn main() {
    let runner = Runner::from_env();
    // Ascending flow counts: VmHWM is a process-lifetime high-water
    // mark, so each case's reading is only inflated by *smaller*
    // predecessors.
    let mut targets: Vec<(&str, u32, u32, bool)> = vec![
        ("scale/flows/10k", 10_000, 5, true),
        ("scale/flows/100k", 100_000, 3, true),
    ];
    if std::env::var("TSN_SCALE_1M").is_ok_and(|v| v == "1") {
        targets.push(("scale/flows/1m", 1_000_000, 1, false));
    }
    let mut cases = Vec::new();
    for (name, flows, repeats, check) in targets {
        if !runner.selected(name) {
            continue;
        }
        let case = run_case(name, flows, repeats, check);
        println!(
            "{:<24} build {:>10}  run {:>10}  {:>9} events  {:>12.0} events/sec  \
             rss {:>8}  p99 {:.1}us{}",
            case.name,
            fmt_ns(case.build_ns as f64),
            fmt_ns(case.run_ns as f64),
            case.events,
            case.events_per_sec,
            case.peak_rss_bytes
                .map_or("n/a".into(), |b| format!("{}MiB", b >> 20)),
            case.p99_us,
            if case.determinism_checked {
                "  [backends+shards byte-identical]"
            } else {
                ""
            },
        );
        cases.push(case);
    }

    let reconfig_targets: Vec<(&str, u32, u32)> = vec![
        ("reconfig/flows/10k", 10_000, 5),
        ("reconfig/flows/100k", 100_000, 3),
    ];
    let mut reconfig_cases = Vec::new();
    for (name, flows, repeats) in reconfig_targets {
        if !runner.selected(name) {
            continue;
        }
        let case = run_reconfig_case(name, flows, repeats);
        println!(
            "{:<24} rebuild {:>10}  reconfigure {:>10}  speedup {:>6.2}x  \
             run {:>10}  {:>12.0} events/sec  [byte-identical]",
            case.name,
            fmt_ns(case.rebuild_ns as f64),
            fmt_ns(case.reconfigure_ns as f64),
            case.speedup,
            fmt_ns(case.run_ns as f64),
            case.events_per_sec,
        );
        reconfig_cases.push(case);
    }

    if cases.is_empty() && reconfig_cases.is_empty() {
        println!("scale: no case selected");
        return;
    }
    if !cases.is_empty() {
        write_bench7_json(&cases, runner.budget_ms());
    }
    if !reconfig_cases.is_empty() {
        write_bench10_json(&reconfig_cases, runner.budget_ms());
    }
}
