//! Per-template datapath benchmarks: what one frame costs in each of the
//! five function templates, plus HDL emission (the synthesis stage).

use std::hint::black_box;
use tsn_bench::Runner;
use tsn_resource::ResourceConfig;
use tsn_switch::egress_sched::{CreditBasedShaper, EgressScheduler};
use tsn_switch::gate_ctrl::GateCtrl;
use tsn_switch::ingress_filter::{ClassEntry, ClassKey, IngressFilter, TokenBucketMeter};
use tsn_switch::layout::QueueLayout;
use tsn_switch::packet_switch::PacketSwitch;
use tsn_types::{
    DataRate, EthernetFrame, FlowId, MacAddr, MeterId, QueueId, SimDuration, SimTime, TrafficClass,
    VlanId,
};

const SLOT: SimDuration = SimDuration::from_micros(65);

fn frame(i: u64) -> EthernetFrame {
    EthernetFrame::builder()
        .src(MacAddr::station(1))
        .dst(MacAddr::station(100 + (i % 1024)))
        .class(TrafficClass::TimeSensitive)
        .size_bytes(64)
        .flow(FlowId::new((i % 1024) as u32))
        .build()
        .expect("valid frame")
}

fn bench_packet_switch(runner: &Runner) {
    let mut ps = PacketSwitch::new(1024, 0);
    for i in 0..1024u64 {
        ps.add_unicast(
            MacAddr::station(100 + i),
            VlanId::DEFAULT,
            tsn_types::PortId::new(0),
        )
        .expect("fits");
    }
    let frames: Vec<EthernetFrame> = (0..1024).map(frame).collect();
    let mut i = 0usize;
    runner.bench("packet_switch/lookup_hit", || {
        let hit = ps.lookup(black_box(&frames[i % frames.len()]));
        i += 1;
        hit
    });
    let miss = EthernetFrame::builder()
        .dst(MacAddr::station(99_999))
        .size_bytes(64)
        .build()
        .expect("valid frame");
    runner.bench("packet_switch/lookup_miss", || ps.lookup(black_box(&miss)));
}

fn bench_ingress_filter(runner: &Runner) {
    let mut filter = IngressFilter::new(1024, 1024, QueueLayout::standard8());
    let frames: Vec<EthernetFrame> = (0..1024).map(frame).collect();
    for (i, f) in frames.iter().enumerate() {
        filter
            .set_meter(
                MeterId::new(i as u32),
                TokenBucketMeter::new(DataRate::gbps(1), 4096).expect("valid meter"),
            )
            .expect("slot");
        filter
            .add_class_entry(
                ClassKey::of(f),
                ClassEntry {
                    queue: QueueId::new(6),
                    meter: Some(MeterId::new(i as u32)),
                },
            )
            .expect("fits");
    }
    let mut i = 0usize;
    let mut now = SimTime::ZERO;
    runner.bench("ingress_filter/classify_and_police", || {
        now += SimDuration::from_nanos(672);
        let v = filter.classify(black_box(&frames[i % frames.len()]), now);
        i += 1;
        v
    });
}

fn bench_gate_ctrl(runner: &Runner) {
    let mut now = SimTime::ZERO;
    let mut gates = GateCtrl::cqf(QueueLayout::standard8(), 1024, SLOT).expect("valid cqf");
    runner.bench("gate_ctrl/enqueue_dequeue_cycle", || {
        now += SimDuration::from_nanos(700);
        let q = gates
            .enqueue(QueueId::new(6), frame(0), now)
            .expect("gate open");
        // Drain in the next slot so the queue never fills up.
        let later = now + SLOT;
        if gates.eligible(q, later) {
            gates.pop(q);
        } else {
            // Alternate parity: eligible two slots later.
            gates.pop(q);
        }
    });
}

fn bench_egress_sched(runner: &Runner) {
    let mut gates = GateCtrl::new(
        QueueLayout::standard8(),
        64,
        tsn_switch::GateControlList::always_open(SLOT),
        tsn_switch::GateControlList::always_open(SLOT),
    )
    .expect("valid gates");
    let mut sched = EgressScheduler::new(8, 3, 3);
    for (slot, queue) in [(0usize, 3u8), (1, 4), (2, 5)] {
        sched
            .set_shaper(
                slot,
                CreditBasedShaper::new(DataRate::mbps(100)).expect("valid"),
            )
            .expect("slot");
        sched.map_queue(QueueId::new(queue), slot).expect("map");
    }
    for q in [0u8, 3, 6] {
        for _ in 0..32 {
            gates
                .enqueue(QueueId::new(q), frame(0), SimTime::ZERO)
                .expect("open");
        }
    }
    let mut now = SimTime::ZERO;
    runner.bench("egress_sched/select", || {
        now += SimDuration::from_nanos(672);
        black_box(sched.select(&gates, now))
    });
}

fn bench_time_sync(runner: &Runner) {
    use tsn_switch::time_sync::{ClockModel, SyncConfig, TimeSync};
    let mut node = TimeSync::new(ClockModel::new(40.0, 500_000.0), SyncConfig::default(), 1);
    node.measure_pdelay(SimDuration::from_nanos(50));
    let mut t = SimTime::ZERO;
    runner.bench("time_sync/process_sync", || {
        t += SimDuration::from_millis(125);
        node.process_sync(t.as_nanos() as f64, t + SimDuration::from_nanos(50));
        black_box(node.error_ns(t))
    });
}

fn bench_hdl(runner: &Runner) {
    let config = ResourceConfig::new();
    runner.bench("hdl/generate_bundle", || {
        tsn_hdl::templates::generate(black_box(&config)).expect("generates")
    });
}

fn main() {
    let runner = Runner::from_env();
    bench_packet_switch(&runner);
    bench_ingress_filter(&runner);
    bench_gate_ctrl(&runner);
    bench_egress_sched(&runner);
    bench_time_sync(&runner);
    bench_hdl(&runner);
}
