//! Resource-accounting benchmarks: the arithmetic behind Table I and
//! Table III, and the allocation-policy ablation from DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsn_resource::{baseline, AllocationPolicy, ResourceConfig, UsageReport};

fn customized(ports: u32) -> ResourceConfig {
    let mut cfg = ResourceConfig::new();
    cfg.set_gate_tbl(2, 8, ports)
        .expect("valid")
        .set_cbs_tbl(3, 3, ports)
        .expect("valid")
        .set_queues(12, 8, ports)
        .expect("valid")
        .set_buffers(96, ports)
        .expect("valid");
    cfg
}

/// Table III: computing all four columns plus reductions.
fn bench_table3(c: &mut Criterion) {
    let commercial = baseline::bcm53154();
    let columns = [customized(3), customized(2), customized(1)];
    c.bench_function("table3/full_comparison", |b| {
        b.iter(|| {
            let cots = UsageReport::of(black_box(&commercial), AllocationPolicy::PaperAccounting);
            let mut total = 0.0;
            for config in &columns {
                let report = UsageReport::of(black_box(config), AllocationPolicy::PaperAccounting);
                total += report.reduction_vs(&cots);
            }
            total
        });
    });
}

/// Table I: the queue/buffer delta between the two cases.
fn bench_table1(c: &mut Criterion) {
    let case1 = baseline::table1_case1();
    let case2 = baseline::table1_case2();
    c.bench_function("table1/queue_buffer_delta", |b| {
        b.iter(|| {
            let policy = AllocationPolicy::PaperAccounting;
            let a = case1.queue_bits(policy) + case1.buffer_bits(policy);
            let b2 = case2.queue_bits(policy) + case2.buffer_bits(policy);
            black_box(a - b2)
        });
    });
}

/// Ablation: total BRAM under the three allocation policies.
fn bench_bram_policies(c: &mut Criterion) {
    let config = baseline::bcm53154();
    let mut group = c.benchmark_group("bram_policies");
    for policy in AllocationPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| b.iter(|| black_box(&config).total_bits(policy)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3, bench_table1, bench_bram_policies);
criterion_main!(benches);
