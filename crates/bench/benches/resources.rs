//! Resource-accounting benchmarks: the arithmetic behind Table I and
//! Table III, and the allocation-policy ablation from DESIGN.md §5.

use std::hint::black_box;
use tsn_bench::Runner;
use tsn_resource::{baseline, AllocationPolicy, ResourceConfig, UsageReport};

fn customized(ports: u32) -> ResourceConfig {
    let mut cfg = ResourceConfig::new();
    cfg.set_gate_tbl(2, 8, ports)
        .expect("valid")
        .set_cbs_tbl(3, 3, ports)
        .expect("valid")
        .set_queues(12, 8, ports)
        .expect("valid")
        .set_buffers(96, ports)
        .expect("valid");
    cfg
}

fn main() {
    let runner = Runner::from_env();

    // Table III: computing all four columns plus reductions.
    let commercial = baseline::bcm53154();
    let columns = [customized(3), customized(2), customized(1)];
    runner.bench("table3/full_comparison", || {
        let cots = UsageReport::of(black_box(&commercial), AllocationPolicy::PaperAccounting);
        let mut total = 0.0;
        for config in &columns {
            let report = UsageReport::of(black_box(config), AllocationPolicy::PaperAccounting);
            total += report.reduction_vs(&cots);
        }
        total
    });

    // Table I: the queue/buffer delta between the two cases.
    let case1 = baseline::table1_case1();
    let case2 = baseline::table1_case2();
    runner.bench("table1/queue_buffer_delta", || {
        let policy = AllocationPolicy::PaperAccounting;
        let a = case1.queue_bits(policy) + case1.buffer_bits(policy);
        let b = case2.queue_bits(policy) + case2.buffer_bits(policy);
        black_box(a - b)
    });

    // Ablation: total BRAM under the three allocation policies.
    let config = baseline::bcm53154();
    for policy in AllocationPolicy::ALL {
        runner.bench(&format!("bram_policies/{policy}"), || {
            black_box(&config).total_bits(policy)
        });
    }
}
