//! Planning-pipeline benchmarks: CQF slot selection, the ITP strategies
//! (the §V ablation axis), and the full Section III.C derivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsn_builder::{cqf::CqfPlan, derive_parameters, itp, AppRequirements, DeriveOptions};
use tsn_topology::presets;
use tsn_types::{DataRate, SimDuration};

fn requirements(flow_count: u32) -> AppRequirements {
    let topo = presets::ring(6, 3).expect("topology builds");
    let flows =
        tsn_builder::workloads::iec60802_ts_flows(&topo, flow_count, 42).expect("workload builds");
    AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).expect("valid requirements")
}

fn bench_cqf(c: &mut Criterion) {
    let req = requirements(256);
    c.bench_function("cqf/choose_slot", |b| {
        b.iter(|| CqfPlan::choose_slot(black_box(&req), DataRate::gbps(1)).expect("feasible"));
    });
}

fn bench_itp_strategies(c: &mut Criterion) {
    let req = requirements(256);
    let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
        .expect("slot feasible");
    let mut group = c.benchmark_group("itp");
    group.sample_size(20);
    for strategy in [
        itp::Strategy::AllZero,
        itp::Strategy::UniformSpread,
        itp::Strategy::GreedyLeastLoaded,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter(|| itp::plan(black_box(&req), &plan, strategy).expect("plans"));
            },
        );
    }
    group.finish();
}

fn bench_itp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("itp_scaling");
    group.sample_size(10);
    for flows in [64u32, 256, 1024] {
        let req = requirements(flows);
        let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
            .expect("slot feasible");
        group.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            b.iter(|| {
                itp::plan(black_box(&req), &plan, itp::Strategy::GreedyLeastLoaded)
                    .expect("plans")
            });
        });
    }
    group.finish();
}

fn bench_derivation(c: &mut Criterion) {
    let req = requirements(256);
    let options = DeriveOptions::paper();
    let mut group = c.benchmark_group("derive");
    group.sample_size(20);
    group.bench_function("full_pipeline_256_flows", |b| {
        b.iter(|| derive_parameters(black_box(&req), &options).expect("derives"));
    });
    group.finish();
}

fn bench_tas_synthesis(c: &mut Criterion) {
    use tsn_builder::tas::TasSchedule;
    use tsn_switch::QueueLayout;
    let req = requirements(256);
    let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
        .expect("slot feasible");
    let planned =
        itp::plan(&req, &plan, itp::Strategy::GreedyLeastLoaded).expect("itp plans");
    let layout = QueueLayout::standard8();
    let mut group = c.benchmark_group("tas");
    group.sample_size(20);
    group.bench_function("synthesize_256_flows", |b| {
        b.iter(|| {
            TasSchedule::synthesize(black_box(&req), &plan, &planned, &layout)
                .expect("synthesizes")
        });
    });
    group.finish();
}

fn bench_per_switch(c: &mut Criterion) {
    use tsn_builder::PerSwitchConfig;
    let topo = presets::star(3, 3).expect("topology builds");
    let flows =
        tsn_builder::workloads::iec60802_ts_flows(&topo, 256, 42).expect("workload builds");
    let req = tsn_builder::AppRequirements::new(topo, flows, SimDuration::from_nanos(50))
        .expect("valid requirements");
    let options = DeriveOptions::paper();
    let mut group = c.benchmark_group("per_switch");
    group.sample_size(20);
    group.bench_function("derive_star_256_flows", |b| {
        b.iter(|| PerSwitchConfig::derive(black_box(&req), &options).expect("derives"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cqf,
    bench_itp_strategies,
    bench_itp_scaling,
    bench_derivation,
    bench_tas_synthesis,
    bench_per_switch
);
criterion_main!(benches);
