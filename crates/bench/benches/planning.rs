//! Planning-pipeline benchmarks: CQF slot selection, the ITP strategies
//! (the §V ablation axis), and the full Section III.C derivation.

use std::hint::black_box;
use tsn_bench::Runner;
use tsn_builder::{cqf::CqfPlan, derive_parameters, itp, AppRequirements, DeriveOptions};
use tsn_topology::presets;
use tsn_types::{DataRate, SimDuration};

fn requirements(flow_count: u32) -> AppRequirements {
    let topo = presets::ring(6, 3).expect("topology builds");
    let flows =
        tsn_builder::workloads::iec60802_ts_flows(&topo, flow_count, 42).expect("workload builds");
    AppRequirements::new(topo, flows, SimDuration::from_nanos(50)).expect("valid requirements")
}

fn main() {
    let runner = Runner::from_env();

    let req = requirements(256);
    runner.bench("cqf/choose_slot", || {
        CqfPlan::choose_slot(black_box(&req), DataRate::gbps(1)).expect("feasible")
    });

    let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
        .expect("slot feasible");
    for strategy in [
        itp::Strategy::AllZero,
        itp::Strategy::UniformSpread,
        itp::Strategy::GreedyLeastLoaded,
    ] {
        runner.bench(&format!("itp/{strategy:?}"), || {
            itp::plan(black_box(&req), &plan, strategy).expect("plans")
        });
    }

    for flows in [64u32, 256, 1024] {
        let req = requirements(flows);
        let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
            .expect("slot feasible");
        runner.bench(&format!("itp_scaling/{flows}"), || {
            itp::plan(black_box(&req), &plan, itp::Strategy::GreedyLeastLoaded).expect("plans")
        });
    }

    let options = DeriveOptions::paper();
    runner.bench("derive/full_pipeline_256_flows", || {
        derive_parameters(black_box(&req), &options).expect("derives")
    });

    {
        use tsn_builder::tas::TasSchedule;
        use tsn_switch::QueueLayout;
        let req = requirements(256);
        let plan = CqfPlan::with_slot(&req, tsn_builder::PAPER_SLOT, DataRate::gbps(1))
            .expect("slot feasible");
        let planned = itp::plan(&req, &plan, itp::Strategy::GreedyLeastLoaded).expect("itp plans");
        let layout = QueueLayout::standard8();
        runner.bench("tas/synthesize_256_flows", || {
            TasSchedule::synthesize(black_box(&req), &plan, &planned, &layout).expect("synthesizes")
        });
    }

    {
        use tsn_builder::PerSwitchConfig;
        let topo = presets::star(3, 3).expect("topology builds");
        let flows =
            tsn_builder::workloads::iec60802_ts_flows(&topo, 256, 42).expect("workload builds");
        let req = tsn_builder::AppRequirements::new(topo, flows, SimDuration::from_nanos(50))
            .expect("valid requirements");
        let options = DeriveOptions::paper();
        runner.bench("per_switch/derive_star_256_flows", || {
            PerSwitchConfig::derive(black_box(&req), &options).expect("derives")
        });
    }
}
