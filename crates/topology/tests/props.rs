//! Property tests over random topologies: routing sanity and
//! enabled-port bounds.

use proptest::prelude::*;
use tsn_topology::{presets, NodeKind, Topology};
use tsn_types::{DataRate, NodeId};

/// A random connected topology: a host-and-switch tree plus a few extra
/// cross links.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (
        2usize..12,                                  // switches
        proptest::collection::vec(any::<u16>(), 0..8), // extra link seeds
        1usize..6,                                   // hosts
    )
        .prop_map(|(switches, extras, hosts)| {
            let mut topo = Topology::new();
            let sw: Vec<NodeId> = (0..switches)
                .map(|i| topo.add_switch(format!("s{i}")))
                .collect();
            // Random tree: node i attaches to a previous node.
            for i in 1..switches {
                let parent = (extras.first().copied().unwrap_or(0) as usize + i * 7) % i;
                topo.connect(sw[parent], sw[i], DataRate::gbps(1))
                    .expect("tree link");
            }
            // Extra cross links (ignore duplicates/self — connect allows
            // parallel links, which is fine).
            for (k, seed) in extras.iter().enumerate() {
                let a = (*seed as usize) % switches;
                let b = (*seed as usize / 7 + k) % switches;
                if a != b {
                    topo.connect(sw[a], sw[b], DataRate::gbps(1))
                        .expect("cross link");
                }
            }
            for (h, &attach) in sw.iter().enumerate().take(hosts.min(switches)) {
                let host = topo.add_host(format!("h{h}"));
                topo.connect(host, attach, DataRate::gbps(1))
                    .expect("host link");
            }
            topo
        })
}

proptest! {
    /// Every pair of nodes in a connected topology routes, the route is
    /// loop-free, starts/ends correctly, and its hop ports are cabled
    /// consistently.
    #[test]
    fn routes_are_consistent(topo in arb_topology()) {
        let nodes: Vec<NodeId> = topo.nodes().iter().map(|n| n.id()).collect();
        for &from in &nodes {
            for &to in &nodes {
                let route = topo.route(from, to).expect("connected graph routes");
                prop_assert_eq!(route.src(), from);
                prop_assert_eq!(route.dst(), to);
                // Loop-free: nodes are unique.
                let mut seen = std::collections::HashSet::new();
                for hop in route.hops() {
                    prop_assert!(seen.insert(hop.node), "route revisits {}", hop.node);
                }
                // Ports connect adjacent hops.
                for pair in route.hops().windows(2) {
                    let egress = pair[0].egress.expect("non-terminal hop has egress");
                    let link = topo.link_at(pair[0].node, egress).expect("cabled");
                    prop_assert_eq!(
                        link.peer_of(pair[0].node).expect("two ends").node,
                        pair[1].node
                    );
                }
            }
        }
    }

    /// BFS routes are minimal: no route is longer than the node count,
    /// and a direct neighbour is always reached in one step.
    #[test]
    fn routes_are_short(topo in arb_topology()) {
        let nodes: Vec<NodeId> = topo.nodes().iter().map(|n| n.id()).collect();
        for &from in &nodes {
            for &to in &nodes {
                let route = topo.route(from, to).expect("routes");
                prop_assert!(route.len() <= nodes.len());
            }
        }
        for link in topo.links() {
            let (a, b) = (link.a().node, link.b().node);
            if link.allows_egress_from(a) {
                let route = topo.route(a, b).expect("neighbours route");
                prop_assert_eq!(route.len(), 2, "direct neighbours: 1 hop");
            }
        }
    }

    /// Enabled TSN ports never exceed the switch's cabled port count.
    #[test]
    fn enabled_ports_bounded_by_degree(topo in arb_topology(), flow_count in 1u32..16) {
        use tsn_topology::EnabledPorts;
        use tsn_types::{FlowId, FlowSet, SimDuration, TsFlowSpec};
        let hosts = topo.hosts();
        prop_assume!(hosts.len() >= 2);
        let mut flows = FlowSet::new();
        for id in 0..flow_count {
            flows.push(
                TsFlowSpec::new(
                    FlowId::new(id),
                    hosts[id as usize % hosts.len()],
                    hosts[(id as usize + 1) % hosts.len()],
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(8),
                    64,
                )
                .expect("valid flow")
                .into(),
            );
        }
        let enabled = EnabledPorts::from_flows(&topo, &flows).expect("analysis runs");
        for (node, count) in enabled.iter() {
            prop_assert!(count <= topo.port_count(node));
            prop_assert!(
                topo.node(node).expect("exists").kind() == NodeKind::Switch,
                "only switches enable TSN ports"
            );
        }
    }
}

#[test]
fn preset_shapes_are_stable() {
    // Pin the preset geometry the experiments depend on.
    for (topo, switches, hosts, links) in [
        (presets::ring(6, 3).expect("builds"), 6, 3, 9),
        (presets::linear(6, 2).expect("builds"), 6, 2, 7),
        (presets::star(3, 3).expect("builds"), 4, 3, 6),
    ] {
        assert_eq!(topo.switches().len(), switches);
        assert_eq!(topo.hosts().len(), hosts);
        assert_eq!(topo.links().len(), links);
    }
}
